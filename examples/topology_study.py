#!/usr/bin/env python
"""Topology and protocol study: how beta*kappa shapes the dynamics.

Sweeps the three knobs of the coupling-strength formula
``v_p = beta * kappa / (t_comp + t_comm)`` (paper Sec. 3.1):

1. the communication distance set (kappa = sum of distances),
2. eager vs. rendezvous protocol (beta = 1 vs 2),
3. separate waits vs. one MPI_Waitall (kappa = sum vs. max),

and measures the idle-wave speed and resynchronisation time for each —
the Sec. 5.1.1 story: beta*kappa ~ 0 = free processes, beta*kappa = 1 =
slowest wave, large beta*kappa = stiff, strongly synchronising system.

Run:  python examples/topology_study.py
"""

from repro.core import (
    CouplingSpec,
    OneOffDelay,
    PhysicalOscillatorModel,
    Protocol,
    TanhPotential,
    WaitMode,
    ring,
    simulate,
)
from repro.metrics import measure_wave_speed, settle_time

N = 24
T_INJECT = 20.0
T_END = 1500.0

print(f"{'distances':>16} {'protocol':>11} {'waits':>9} "
      f"{'bk':>5} {'wave speed':>11} {'resync':>9}")
print("-" * 70)

for distances in [(1, -1), (1, -1, -2), (1, -1, 2, -2), (3, -3)]:
    for protocol in (Protocol.EAGER, Protocol.RENDEZVOUS):
        for wait_mode in (WaitMode.SEPARATE, WaitMode.WAITALL):
            coupling = CouplingSpec(protocol=protocol, wait_mode=wait_mode)
            model = PhysicalOscillatorModel(
                topology=ring(N, distances),
                potential=TanhPotential(),
                t_comp=0.9,
                t_comm=0.1,
                coupling=coupling,
                delays=(OneOffDelay(rank=4, t_start=T_INJECT, delay=0.5),),
            )
            traj = simulate(model, T_END, seed=0)
            wave = measure_wave_speed(traj.ts, traj.thetas, model.omega, 4,
                                      t_injection=T_INJECT)
            resync = settle_time(traj.ts, traj.thetas, model.omega, tol=0.1)
            resync_s = (f"{resync - T_INJECT:7.1f}s"
                        if resync != float("inf") else "    inf")
            print(f"{str(distances):>16} {protocol.value:>11} "
                  f"{wait_mode.value:>9} {model.beta_kappa:5.1f} "
                  f"{wave.speed:9.3f} r/s {resync_s:>9}")

print()
print("reading: wave speed and resync rate both grow with beta*kappa;")
print("the WAITALL kappa rule (max distance) weakens long-distance sets.")
