#!/usr/bin/env python
"""Quickstart: the physical oscillator model in 40 lines.

Builds the paper's canonical scenario — a ring of 16 MPI-process
oscillators with next-neighbour communication (d = ±1), scalable
(tanh) coupling, and a one-off delay on rank 4 — then shows the idle
wave rippling through the system and the subsequent resynchronisation.

Run:  python examples/quickstart.py
"""

from repro.core import (
    OneOffDelay,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    simulate,
)
from repro.metrics import classify, measure_wave_speed
from repro.viz import circle_diagram, heatmap

N = 16
T_COMP, T_COMM = 0.9, 0.1        # seconds per cycle phase
DELAY_RANK, T_INJECT = 4, 10.0

model = PhysicalOscillatorModel(
    topology=ring(N, (1, -1)),                 # d = ±1 halo exchange
    potential=TanhPotential(),                 # resource-scalable code
    t_comp=T_COMP,
    t_comm=T_COMM,
    delays=(OneOffDelay(rank=DELAY_RANK, t_start=T_INJECT, delay=1.0),),
)
print(f"N={model.n}  period={model.period}s  omega={model.omega:.3f} rad/s")
print(f"coupling: beta*kappa={model.beta_kappa:g}  v_p={model.v_p:g}")

traj = simulate(model, t_end=600.0, seed=0)

# The paper's standard view: phases relative to the slowest process.
print()
print(heatmap(traj.lagger_normalized(),
              title="lagger-normalised phases — the idle wave is the ridge"))

# Where did the wave go and how fast?
wave = measure_wave_speed(traj.ts, traj.thetas, model.omega, DELAY_RANK,
                          t_injection=T_INJECT)
print(f"\nidle wave: speed {wave.speed:.3f} ranks/s, "
      f"reached {wave.n_reached}/{N - 1} ranks")

# Asymptotics: scalable codes resynchronise.
verdict = classify(traj.ts, traj.thetas, model.omega)
print(f"asymptotic state: {verdict.state.value} "
      f"(spread {verdict.final_spread:.4f} rad, r = {verdict.r_final:.4f})")

print()
print(circle_diagram(traj.final_phases, title="final phases (circle view)"))
