#!/usr/bin/env python
"""Noise study: what the paper's Sec. 6 lists as future work.

The POM carries two noise channels — process-local frequency jitter
``zeta_i(t)`` and interaction delays ``tau_ij(t)``.  This example
explores the question the paper leaves open ("we have not yet explored
the role of the noise functions... whether these would be able to
properly describe idle wave decay"): does local jitter damp idle waves,
as observed on real clusters [2]?

For each noise level the same one-off delay is injected; the wave's
amplitude decay length (ranks to e-fold) is measured from the phase
deficits.  On the DES side the analogous experiment adds exponential
compute noise.

Run:  python examples/noise_study.py
"""


from repro.analysis import measure_trace_wave
from repro.core import (
    GaussianJitter,
    OneOffDelay,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    simulate,
)
from repro.metrics import paired_wave_decay
from repro.simulator import (
    ExponentialComputeNoise,
    Injection,
    PiSolverKernel,
    paper_program,
    run_program,
)

N = 32
T_INJECT = 20.0

print("=== model side: wave decay length vs. local jitter level ===")
print("(paired runs: same noise seed with and without the injection,")
print(" so the subtraction isolates the coherent wave)")
print(f"{'jitter std (s)':>15} {'decay length (ranks)':>22}")
for std in (0.0, 0.01, 0.03, 0.1):
    common = dict(
        topology=ring(N, (1, -1)),
        potential=TanhPotential(),
        t_comp=0.9,
        t_comm=0.1,
        local_noise=GaussianJitter(std=std, refresh=0.5),
    )
    with_delay = PhysicalOscillatorModel(
        **common,
        delays=(OneOffDelay(rank=4, t_start=T_INJECT, delay=1.0),),
    )
    without_delay = PhysicalOscillatorModel(**common)
    traj_d = simulate(with_delay, 400.0, seed=3, n_samples=1500)
    traj_b = simulate(without_delay, 400.0, seed=3, n_samples=1500)
    decay = paired_wave_decay(traj_b.thetas, traj_d.thetas, source=4)
    print(f"{std:>15.3f} {decay['decay_length']:>22.2f}")

print()
print("=== simulator side: wave amplitude vs. compute noise ===")
kernel = PiSolverKernel(1e6)
spec = paper_program(kernel, n_ranks=N, n_iterations=60, distances=(1, -1))
extra = 3.0 * kernel.single_core_time(spec.machine)
inj = (Injection(rank=4, iteration=5, extra_time=extra),)

print(f"{'noise scale':>12} {'wave speed (r/it)':>18} {'decay (ranks)':>15}")
for scale in (0.0, 0.1, 0.3):
    noise = (ExponentialComputeNoise(scale=scale * kernel.core_time, prob=0.2)
             if scale > 0 else None)
    base = run_program(spec, compute_noise=noise, seed=11)
    disturbed = run_program(spec, injections=inj, compute_noise=noise, seed=11)
    fit = measure_trace_wave(base, disturbed, source=4)
    print(f"{scale:>12.2f} {fit.speed_ranks_per_iteration:>18.2f} "
          f"{fit.decay_length_ranks:>15.2f}")

print()
print("reading: in the DES the injected deficit is conserved on a silent")
print("system (infinite decay length) and absorbed within a finite number")
print("of ranks under noise — the damping reported on real clusters [2].")
print("In the POM the tanh coupling alone already disperses the wave")
print("(finite decay length even at zero jitter), and local jitter barely")
print("changes it: evidence for the paper's Sec. 6 remark that whether the")
print("model's noise channels reproduce idle-wave decay is an open question.")
