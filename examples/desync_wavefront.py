#!/usr/bin/env python
"""Desynchronisation of a memory-bound program, on both sides of the
paper's analogy.

Left side (oscillator model): a ring of oscillators with the
*bottleneck* potential starts almost synchronised; the symmetric state
is unstable and the system settles into a computational wavefront whose
adjacent phase gaps sit at the potential's first zero, 2*sigma/3.

Right side (cluster simulator): the STREAM-triad kernel on a simulated
Meggie socket — ranks sharing the memory interface drift apart after a
one-off delay and keep a persistent iteration-time stagger (bottleneck
evasion).

Run:  python examples/desync_wavefront.py
"""

import numpy as np

from repro.analysis import analyze_desync, measure_trace_wave
from repro.core import (
    BottleneckPotential,
    PhysicalOscillatorModel,
    ring,
    simulate,
)
from repro.metrics import classify
from repro.simulator import StreamTriadKernel, paper_program, run_with_one_off_delay
from repro.viz import circle_diagram, timeline

SIGMA = 1.5
N = 24

# ----------------------------------------------------------------- model
print("=" * 70)
print("oscillator model: bottleneck potential, sigma =", SIGMA)
print("=" * 70)
model = PhysicalOscillatorModel(
    topology=ring(N, (1, -1)),
    potential=BottleneckPotential(sigma=SIGMA),
    t_comp=0.9,
    t_comm=0.1,
)
rng = np.random.default_rng(7)
theta0 = rng.normal(0.0, 1e-3, N)        # tiny symmetry-breaking noise
traj = simulate(model, t_end=1200.0, theta0=theta0, seed=7)

verdict = classify(traj.ts, traj.thetas, model.omega)
print(f"state: {verdict.state.value}")
print(f"mean |adjacent gap| = {verdict.mean_abs_gap:.4f} rad "
      f"(theory: 2*sigma/3 = {2 * SIGMA / 3:.4f})")
print(f"phase spread = {verdict.final_spread:.3f} rad, "
      f"order parameter r = {verdict.r_final:.3f}")
print()
print(circle_diagram(traj.final_phases,
                     title="asymptotic phases: broken translational symmetry"))

# ------------------------------------------------------------- simulator
print()
print("=" * 70)
print("cluster simulator: STREAM triad, 20 ranks on 2 Meggie sockets")
print("=" * 70)
spec = paper_program(StreamTriadKernel(4e6), n_ranks=20, n_iterations=40,
                     distances=(1, -1))
baseline, disturbed = run_with_one_off_delay(spec, delay_rank=4,
                                             delay_iteration=5, seed=0)

wave = measure_trace_wave(baseline, disturbed, source=4)
print(f"idle wave speed: {wave.speed_ranks_per_iteration:.2f} ranks/iteration")

report = analyze_desync(disturbed, socket_size=10)
print(f"desync index: {report.desync_index:.3f} "
      f"-> desynchronized = {report.is_desynchronized}")
print(f"wavefront slope: {report.slope_per_rank * 1e3:.3f} ms/rank")
print()
print(timeline(disturbed.wait_matrix(),
               title="trace: waits per (rank x iteration) — "
                     "note the persistent stagger"))
