#!/usr/bin/env python
"""Closing the loop: calibrate the oscillator model from cluster traces.

The paper's pitch (Sec. 6) is that the POM characterises a system with
very few parameters.  This example demonstrates the full workflow:

1. run a memory-bound program on the simulated cluster and *fit* the
   model parameters (cycle split, interaction horizon sigma) from its
   trace alone;
2. measure an idle-wave speed on a compute-bound run and invert the
   model's speed-vs-coupling curve to recover beta*kappa;
3. instantiate the calibrated POM and check it reproduces the trace's
   verdict.

Run:  python examples/model_calibration.py
"""

import numpy as np

from repro.analysis import (
    analyze_desync,
    calibrate_beta_kappa,
    fit_model_to_trace,
    measure_trace_wave,
)
from repro.core import (
    BottleneckPotential,
    PhysicalOscillatorModel,
    ring,
    simulate,
)
from repro.metrics import classify
from repro.simulator import (
    MachineSpec,
    PiSolverKernel,
    StreamTriadKernel,
    paper_program,
    run_with_one_off_delay,
)

print("=" * 70)
print("step 1: fit sigma and the cycle from a memory-bound trace")
print("=" * 70)
machine = MachineSpec.meggie()
spec = paper_program(StreamTriadKernel(4e6), n_ranks=20, n_iterations=40,
                     distances=(1, -1), machine=machine)
_, disturbed = run_with_one_off_delay(spec, delay_rank=4,
                                      delay_iteration=5, seed=0)
fit = fit_model_to_trace(disturbed, socket_size=machine.cores_per_socket)
print(f"recovered cycle: t_comp={fit['t_comp'] * 1e3:.2f} ms, "
      f"t_comm={fit['t_comm'] * 1e3:.2f} ms")
print(f"recovered sigma: {fit['sigma']:.4f} "
      f"(scalable={fit['scalable']})")

print()
print("=" * 70)
print("step 2: recover beta*kappa from a measured idle-wave speed")
print("=" * 70)
spec_cpu = paper_program(PiSolverKernel(1e6), n_ranks=24, n_iterations=30,
                         distances=(1, -1))
base, dist = run_with_one_off_delay(spec_cpu, delay_rank=6,
                                    delay_iteration=4, seed=0)
wave = measure_trace_wave(base, dist, 6)
period = spec_cpu.kernel.single_core_time(spec_cpu.machine)
speed_per_second = wave.speed_ranks_per_iteration / period
# Express in the model's time units (period = 1 s):
model_speed = wave.speed_ranks_per_iteration / 1.0
print(f"trace wave speed: {wave.speed_ranks_per_iteration:.2f} "
      f"ranks/iteration")
result = calibrate_beta_kappa(model_speed * 0.03, n_ranks=24, t_end=150.0)
print(f"calibrated beta*kappa = {result['beta_kappa']:.2f} "
      f"(speed match {result['speed']:.4f}, converged="
      f"{result['converged']})")

print()
print("=" * 70)
print("step 3: the calibrated model reproduces the trace verdict")
print("=" * 70)
model = PhysicalOscillatorModel(
    topology=ring(20, (1, -1)),
    potential=BottleneckPotential(sigma=max(fit["sigma"], 0.3)),
    t_comp=0.9, t_comm=0.1,   # normalised cycle
    v_p_override=6.0,
)
rng = np.random.default_rng(0)
traj = simulate(model, 150.0, theta0=rng.normal(0, 1e-3, 20), seed=0)
verdict = classify(traj.ts, traj.thetas, model.omega)
trace_report = analyze_desync(disturbed,
                              socket_size=machine.cores_per_socket)
print(f"model verdict: {verdict.state.value}")
print(f"trace verdict: desynchronized={trace_report.is_desynchronized}")
print(f"agreement: "
      f"{verdict.is_desynchronized == trace_report.is_desynchronized}")
