#!/usr/bin/env python
"""Fig. 1(b) live: socket-level scalability of the three microbenchmarks.

Runs the paper's kernels — STREAM triad, "slow" Schönauer triad, and
PISOLVER — on a simulated Meggie socket at every occupancy from one
rank to the full ten cores, and prints the achieved aggregate memory
bandwidth next to the closed-form expectation.

Run:  python examples/cluster_scaling.py
"""

from repro.analysis import measure_scaling
from repro.simulator import (
    MachineSpec,
    PiSolverKernel,
    SchoenauerTriadKernel,
    StreamTriadKernel,
)
from repro.viz import sparkline

machine = MachineSpec.meggie()
print(f"machine: {machine.cores_per_socket}-core socket, "
      f"{machine.socket_bandwidth / 1e9:.0f} GB/s ceiling, "
      f"{machine.core_bandwidth / 1e9:.0f} GB/s per core")
print()

for kernel in (StreamTriadKernel(4e6), SchoenauerTriadKernel(4e6),
               PiSolverKernel(1e6)):
    curve = measure_scaling(kernel, machine, n_iterations=8)
    print(f"--- {kernel.name} "
          f"(traffic {kernel.traffic_bytes / 1e6:.0f} MB/sweep, "
          f"in-core {kernel.core_time * 1e3:.2f} ms/sweep)")
    if curve.saturates:
        print(f"    saturates the socket at ~{curve.saturation_ranks:.1f} cores")
    else:
        print("    never saturates (resource-scalable)")
    print(f"    {'ranks':>6} {'measured GB/s':>14} {'analytic GB/s':>14} "
          f"{'ms/sweep':>10}")
    for n, bw, an, t in zip(curve.ranks, curve.bandwidth_GBs,
                            curve.analytic_GBs, curve.time_per_iteration):
        print(f"    {n:>6d} {bw:>14.1f} {an:>14.1f} {t * 1e3:>10.2f}")
    print(f"    bandwidth curve: {sparkline(curve.bandwidth_GBs)}")
    print()

print("reading: STREAM saturates ~5 Broadwell cores; the slow Schönauer")
print("triad's cosine+division push saturation towards the full socket;")
print("PISOLVER exercises no memory traffic at all (linear scaling).")
