"""Tests for Solution, the step controller, and the history buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrate import (
    HistoryBuffer,
    Solution,
    SolverStats,
    StepController,
    error_norm,
)


class TestSolution:
    def make(self):
        ts = np.linspace(0.0, 1.0, 11)
        ys = np.stack([ts, ts**2], axis=1)
        return Solution(ts=ts, ys=ys)

    def test_basic_accessors(self):
        sol = self.make()
        assert sol.t0 == 0.0
        assert sol.t_end == 1.0
        assert sol.n_dim == 2
        assert len(sol) == 11
        np.testing.assert_allclose(sol.y_end, [1.0, 1.0])

    def test_1d_ys_promoted_to_column(self):
        sol = Solution(ts=[0.0, 1.0], ys=[1.0, 2.0])
        assert sol.ys.shape == (2, 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            Solution(ts=[0.0, 1.0], ys=np.zeros((3, 2)))

    def test_linear_interpolation_fallback(self):
        sol = self.make()
        val = sol(0.55)
        assert val[0] == pytest.approx(0.55, abs=1e-12)
        # t^2 interpolated linearly between 0.5^2 and 0.6^2.
        assert val[1] == pytest.approx((0.25 + 0.36) / 2, abs=1e-12)

    def test_vector_evaluation_shape(self):
        sol = self.make()
        out = sol(np.array([0.1, 0.2, 0.9]))
        assert out.shape == (3, 2)

    def test_out_of_range_rejected(self):
        sol = self.make()
        with pytest.raises(ValueError, match="outside"):
            sol(1.5)

    def test_resample_uniform(self):
        sol = self.make()
        r = sol.resample(5)
        assert len(r) == 5
        np.testing.assert_allclose(r.ts, np.linspace(0, 1, 5))

    def test_resample_needs_two_points(self):
        with pytest.raises(ValueError, match="two points"):
            self.make().resample(1)

    def test_stats_merge(self):
        a = SolverStats(n_rhs=5, n_steps=2, n_rejected=1)
        b = SolverStats(n_rhs=3, n_steps=1, n_rejected=0)
        c = a.merge(b)
        assert (c.n_rhs, c.n_steps, c.n_rejected) == (8, 3, 1)


class TestErrorNorm:
    def test_zero_error_is_zero(self):
        y = np.ones(4)
        assert error_norm(np.zeros(4), y, y, 1e-6, 1e-9) == 0.0

    def test_norm_scales_with_tolerance(self):
        err = np.full(3, 1e-6)
        y = np.ones(3)
        loose = error_norm(err, y, y, rtol=1e-3, atol=1e-6)
        tight = error_norm(err, y, y, rtol=1e-6, atol=1e-9)
        assert tight > loose

    def test_unit_norm_at_exact_tolerance(self):
        # err == atol with y = 0 gives norm exactly 1.
        err = np.full(5, 1e-9)
        y = np.zeros(5)
        assert error_norm(err, y, y, rtol=1e-6, atol=1e-9) == pytest.approx(1.0)


class TestStepController:
    def test_grows_step_on_small_error(self):
        c = StepController(order=5)
        assert c.propose(0.1, err=1e-4, accepted=True) > 0.1

    def test_shrinks_step_on_large_error(self):
        c = StepController(order=5)
        assert c.propose(0.1, err=10.0, accepted=False) < 0.1

    def test_never_grows_after_rejection(self):
        c = StepController(order=5)
        assert c.propose(0.1, err=0.5, accepted=False) <= 0.1

    def test_growth_clamped_at_f_max(self):
        c = StepController(order=5, f_max=5.0)
        assert c.propose(1.0, err=1e-12, accepted=True) <= 5.0

    def test_shrink_clamped_at_f_min(self):
        c = StepController(order=5, f_min=0.2)
        assert c.propose(1.0, err=1e9, accepted=False) >= 0.2

    def test_perfect_step_grows_max(self):
        c = StepController(order=5, f_max=5.0)
        assert c.propose(1.0, err=0.0, accepted=True) == pytest.approx(5.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StepController(order=0)
        with pytest.raises(ValueError):
            StepController(safety=1.5)
        with pytest.raises(ValueError):
            StepController(f_min=1.0, f_max=0.5)

    def test_reset_clears_memory(self):
        c = StepController(order=5)
        c.propose(1.0, err=0.5, accepted=True)
        c.reset()
        assert c._err_prev == 1.0


class TestHistoryBuffer:
    def test_initial_state_returned_before_t0(self):
        buf = HistoryBuffer(0.0, np.array([1.0, 2.0]))
        np.testing.assert_allclose(buf(-5.0), [1.0, 2.0])

    def test_custom_prehistory(self):
        buf = HistoryBuffer(0.0, np.array([0.0]),
                            prehistory=lambda t: np.array([t]))
        np.testing.assert_allclose(buf(-2.0), [-2.0])

    def test_linear_interpolation_without_derivatives(self):
        buf = HistoryBuffer(0.0, np.array([0.0]))
        buf.append(1.0, np.array([2.0]))
        np.testing.assert_allclose(buf(0.5), [1.0])

    def test_hermite_interpolation_matches_cubic(self):
        # y(t) = t^3 has derivative 3t^2; Hermite is exact for cubics.
        buf = HistoryBuffer(0.0, np.array([0.0]))
        buf._fs[0] = np.array([0.0])  # derivative at t0
        buf.append(1.0, np.array([1.0]), f=np.array([3.0]))
        buf.append(2.0, np.array([8.0]), f=np.array([12.0]))
        for t in (1.25, 1.5, 1.75):
            np.testing.assert_allclose(buf(t), [t**3], atol=1e-12)

    def test_clamps_beyond_latest(self):
        buf = HistoryBuffer(0.0, np.array([1.0]))
        buf.append(1.0, np.array([5.0]))
        np.testing.assert_allclose(buf(99.0), [5.0])

    def test_rejects_decreasing_time(self):
        buf = HistoryBuffer(0.0, np.array([1.0]))
        buf.append(1.0, np.array([2.0]))
        with pytest.raises(ValueError, match="non-decreasing"):
            buf.append(0.5, np.array([3.0]))

    def test_max_points_evicts_oldest(self):
        buf = HistoryBuffer(0.0, np.array([0.0]), max_points=3)
        for k in range(1, 6):
            buf.append(float(k), np.array([float(k)]))
        assert len(buf) == 3
        assert buf.t_latest == 5.0

    def test_evaluate_many_shape(self):
        buf = HistoryBuffer(0.0, np.array([0.0, 1.0]))
        buf.append(1.0, np.array([1.0, 2.0]))
        out = buf.evaluate_many(np.array([0.0, 0.5, 1.0]))
        assert out.shape == (3, 2)


@settings(max_examples=30, deadline=None)
@given(
    t_points=st.lists(st.floats(min_value=0.01, max_value=1.0),
                      min_size=1, max_size=8),
    query=st.floats(min_value=-1.0, max_value=5.0),
)
def test_property_history_exact_for_linear_signal(t_points, query):
    """Hermite interpolation (and the beyond-latest linear
    extrapolation) reproduce a linear-in-time signal exactly inside the
    record, and extrapolate it exactly beyond."""
    buf = HistoryBuffer(0.0, np.array([0.0]))
    buf._fs[0] = np.array([1.0])
    t = 0.0
    for dt in t_points:
        t += dt
        buf.append(t, np.array([t]), f=np.array([1.0]))
    val = float(buf(query)[0])
    expected = max(query, 0.0)   # pre-history is the frozen y0 = 0
    assert val == pytest.approx(expected, abs=1e-9)
