"""Tests for the durable work queue and the queue executor (repro.runs)."""

import multiprocessing as mp
import signal

import numpy as np
import pytest

from repro.runs import (
    ResultCache,
    ScenarioSpec,
    WorkQueue,
    compile_plan,
    drain_queue,
    run_plan,
    run_plan_queue,
    run_spec,
)
from repro.runs.executor import _queue_worker_entry
from repro.runs.queue import default_queue_sibling, writable_queue_path


def grid_spec(t_end=6.0):
    return ScenarioSpec(
        name="queue-test",
        model={
            "topology": {"kind": "ring", "n": 10, "distances": [1, -1]},
            "potential": {"kind": "bottleneck", "sigma": 1.0},
            "t_comp": 0.9,
            "t_comm": 0.1,
        },
        t_end=t_end,
        solver={"method": "rk4"},
        initial={"kind": "normal", "std": 1e-3, "seed": 0},
        axes=[("potential.sigma", [0.5, 1.0, 1.5, 2.0]), ("seed", [0, 1])],
    )


@pytest.fixture
def plan():
    return compile_plan(grid_spec(), shard_members=2)


@pytest.fixture
def queue(tmp_path, plan):
    q = WorkQueue(tmp_path / "campaign.db", backoff=0.5)
    q.enqueue_plan(plan)
    return q


class TestWorkQueue:
    def test_enqueue_is_idempotent(self, queue, plan):
        assert queue.counts()["pending"] == 4
        assert queue.enqueue_plan(plan) == 0
        assert queue.counts()["pending"] == 4
        assert queue.spec_hash() == plan.spec.content_hash()

    def test_claim_is_atomic_and_ordered(self, queue):
        a = queue.claim("w1", lease_ttl=60, now=100.0)
        b = queue.claim("w2", lease_ttl=60, now=100.0)
        assert a.index == 0 and b.index == 1
        assert a.lease_id != b.lease_id
        queue.claim("w1", now=100.0)
        queue.claim("w2", now=100.0)
        assert queue.claim("w3", now=100.0) is None  # all leased out
        assert queue.counts()["leased"] == 4

    def test_complete_and_heartbeat_are_fenced(self, queue):
        lease = queue.claim("w1", lease_ttl=10, now=0.0)
        assert queue.heartbeat(lease.key, lease.lease_id,
                               lease_ttl=10, now=5.0)
        assert not queue.heartbeat(lease.key, "not-the-lease", now=6.0)
        # lease expires at 15 (refreshed by the heartbeat); the reaper
        # takes it back and the original holder is fenced out.
        assert queue.reap(now=16.0) == [lease.key]
        assert not queue.heartbeat(lease.key, lease.lease_id, now=16.5)
        assert not queue.complete(lease.key, lease.lease_id, now=16.5)
        assert queue.counts()["pending"] == 4

    def test_reap_applies_exponential_backoff(self, queue):
        lease = queue.claim("w1", lease_ttl=10, now=0.0)
        assert queue.reap(now=5.0) == []          # still within the lease
        assert queue.reap(now=11.0) == [lease.key]
        # attempt 1 lost -> not claimable until 11 + backoff*2**0 = 11.5
        held = [queue.claim("w", now=11.0) for _ in range(3)]
        assert all(lease_.index != lease.index for lease_ in held
                   if lease_ is not None)
        retried = queue.claim("w2", now=20.0)
        # the other three shards were claimed above; the backed-off one
        # is the only shard left, now claimable with attempts=2
        assert retried.index == lease.index
        assert retried.attempts == 2

    def test_fail_retries_then_quarantines(self, queue):
        key = None
        for attempt in (1, 2, 3):
            lease = queue.claim("w1", lease_ttl=60, now=1000.0 * attempt)
            key = lease.key
            verdict = queue.fail(key, lease.lease_id, f"boom {attempt}",
                                 now=1000.0 * attempt + 1)
            assert verdict == ("quarantined" if attempt == 3 else "retry")
        counts = queue.counts()
        assert counts["quarantined"] == 1 and counts["pending"] == 3
        (row,) = queue.quarantined()
        assert row.key == key and "boom 3" in row.error
        assert queue.describe()["quarantined"][0]["attempts"] == 3

        assert queue.requeue_quarantined() == 1
        fresh = queue.claim("w1", now=10000.0)
        assert fresh.key == key and fresh.attempts == 1

    def test_fail_is_fenced(self, queue):
        lease = queue.claim("w1", lease_ttl=10, now=0.0)
        queue.reap(now=11.0)
        assert queue.fail(lease.key, lease.lease_id, "late", now=12.0) \
            == "fenced"

    def test_requeue_resets_done(self, queue):
        lease = queue.claim("w1", now=0.0)
        assert queue.complete(lease.key, lease.lease_id, seconds=1.0,
                              now=1.0)
        assert queue.counts()["done"] == 1
        assert queue.requeue([lease.key], now=2.0) == 1
        assert queue.counts()["done"] == 0
        assert queue.unfinished() == 4

    def test_writable_probe(self, tmp_path):
        assert writable_queue_path(tmp_path / "sub" / "q.db")
        blocker = tmp_path / "a-file"
        blocker.write_text("x")
        # parent is a regular file: mkdir/connect must fail cleanly
        assert not writable_queue_path(blocker / "q.db")

    def test_default_queue_sibling(self, tmp_path):
        assert default_queue_sibling(tmp_path / "q.db", "cache") \
            == tmp_path / "q.db.cache"


class TestDrainQueue:
    def test_drain_solves_everything(self, queue, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        events = []
        stats = drain_queue(queue, cache, worker="w0",
                            progress=events.append)
        assert stats["solved"] == 4
        assert queue.counts()["done"] == 4
        assert {e["outcome"] for e in events} == {"solved"}
        # a second drain has nothing to do
        assert drain_queue(queue, cache)["solved"] == 0

    def test_drain_serves_requeues_from_cache(self, queue, plan, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        drain_queue(queue, cache)
        queue.requeue([s.key for s in plan.shards])
        stats = drain_queue(queue, cache, worker="w1")
        assert stats["cache_hits"] == 4 and stats["solved"] == 0


class TestQueueExecutor:
    def test_queue_run_bits_match_inline(self, tmp_path):
        spec = grid_spec()
        ref = run_spec(spec, jobs=1, shard_members=2)
        queued = run_spec(spec, jobs=2, shard_members=2,
                          queue=tmp_path / "q.db", lease_ttl=10.0)
        assert queued.queue is not None
        assert queued.queue["counts"]["done"] == 4
        assert queued.n_executed == 4
        for a, b in zip(ref.members, queued.members):
            assert a.index == b.index
            np.testing.assert_array_equal(a.ts, b.ts)
            np.testing.assert_array_equal(a.thetas, b.thetas)

    def test_queue_replay_is_pure_cache_hit(self, tmp_path):
        spec = grid_spec()
        first = run_spec(spec, jobs=2, shard_members=2,
                         queue=tmp_path / "q.db")
        replay = run_spec(spec, jobs=2, shard_members=2,
                          queue=tmp_path / "q.db")
        assert replay.n_executed == 0
        assert replay.n_cached == 4
        for a, b in zip(first.members, replay.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)

    def test_unwritable_queue_degrades_to_inline(self, tmp_path):
        blocker = tmp_path / "a-file"
        blocker.write_text("x")
        with pytest.warns(RuntimeWarning, match="degrading"):
            res = run_spec(grid_spec(), jobs=2, shard_members=2,
                           queue=blocker / "q.db")
        assert res.queue is None           # plain run_plan result
        assert res.n_executed == 4

    def test_queue_kwargs_require_queue(self):
        with pytest.raises(TypeError, match="queue"):
            run_spec(grid_spec(), jobs=1, lease_ttl=5.0)

    def test_poisoned_shard_quarantines_with_traceback(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("POM_FAULTS", "raise:shard=0,times=3")
        monkeypatch.setenv("POM_FAULTS_STATE", str(tmp_path / "faults"))
        with pytest.raises(RuntimeError, match="quarantined"):
            run_spec(grid_spec(), jobs=2, shard_members=2,
                     queue=tmp_path / "q.db",
                     lease_ttl=5.0, backoff=0.05, max_attempts=3)
        queue = WorkQueue(tmp_path / "q.db")
        (row,) = queue.quarantined()
        assert row.index == 0 and row.attempts == 3
        assert "InjectedFault" in row.error

        # operator workflow: requeue and rerun clean
        monkeypatch.delenv("POM_FAULTS")
        monkeypatch.delenv("POM_FAULTS_STATE")
        queue.requeue_quarantined()
        res = run_spec(grid_spec(), jobs=2, shard_members=2,
                       queue=tmp_path / "q.db", backoff=0.05)
        ref = run_spec(grid_spec(), jobs=1, shard_members=2)
        for a, b in zip(ref.members, res.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)


class TestKilledWorkerResume:
    def test_sigkilled_worker_campaign_resumes_bit_identical(
            self, tmp_path, plan, monkeypatch):
        """Satellite: SIGKILL a worker mid-shard, restart the campaign,
        and the result is bit-identical to an uninterrupted jobs=1 run."""
        queue = WorkQueue(tmp_path / "q.db", backoff=0.05)
        queue.enqueue_plan(plan)
        cache_root = tmp_path / "q.db.cache"

        monkeypatch.setenv("POM_FAULTS", "kill:shard=0")
        monkeypatch.setenv("POM_FAULTS_STATE", str(tmp_path / "faults"))
        victim = mp.Process(
            target=_queue_worker_entry,
            args=(str(queue.path), str(cache_root),
                  {"worker": "victim", "lease_ttl": 1.0}))
        victim.start()
        victim.join(timeout=60)
        assert victim.exitcode == -signal.SIGKILL
        # the shard died leased; its lease must still be visible
        counts = queue.counts()
        assert counts["leased"] == 1 and counts["done"] == 0

        monkeypatch.delenv("POM_FAULTS")
        monkeypatch.delenv("POM_FAULTS_STATE")
        result = run_plan_queue(plan, queue.path, jobs=2,
                                cache=ResultCache(cache_root),
                                lease_ttl=1.0, backoff=0.05)
        ref = run_plan(plan)
        assert len(result.members) == len(ref.members) == 8
        for a, b in zip(ref.members, result.members):
            np.testing.assert_array_equal(a.ts, b.ts)
            np.testing.assert_array_equal(a.thetas, b.thetas)
        # the recovered death is visible in the report, not hidden
        assert result.queue["retried"].get(0, 0) >= 2

    def test_orchestrator_respawns_killed_workers(self, tmp_path,
                                                  monkeypatch):
        """End-to-end chaos through run_plan_queue itself: the injected
        kill takes a spawned worker down and the orchestrator recovers
        without outside help."""
        monkeypatch.setenv("POM_FAULTS", "kill:shard=1")
        monkeypatch.setenv("POM_FAULTS_STATE", str(tmp_path / "faults"))
        res = run_spec(grid_spec(), jobs=2, shard_members=2,
                       queue=tmp_path / "q.db",
                       lease_ttl=1.0, backoff=0.05)
        monkeypatch.delenv("POM_FAULTS")
        monkeypatch.delenv("POM_FAULTS_STATE")
        ref = run_spec(grid_spec(), jobs=1, shard_members=2)
        for a, b in zip(ref.members, res.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)
        assert res.queue["spawned"] >= 3   # at least one respawn
        assert res.queue["retried"].get(1, 0) >= 2
