"""Tests for communication topologies and the kappa rules."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Topology,
    all_to_all,
    chain,
    from_edges,
    from_networkx,
    grid2d,
    random_topology,
    ring,
    torus2d,
)
from repro.core.topology import dependency_topology


class TestTopologyValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            Topology(matrix=np.zeros((2, 3)))

    def test_rejects_non_binary(self):
        m = np.zeros((3, 3))
        m[0, 1] = 0.5
        with pytest.raises(ValueError, match="0 or 1"):
            Topology(matrix=m)

    def test_rejects_self_coupling(self):
        m = np.eye(3)
        with pytest.raises(ValueError, match="diagonal"):
            Topology(matrix=m)


class TestRing:
    def test_next_neighbor_structure(self):
        topo = ring(6, (1, -1))
        assert topo.n == 6
        for i in range(6):
            partners = set(topo.neighbors(i))
            assert partners == {(i + 1) % 6, (i - 1) % 6}

    def test_symmetric_by_default(self):
        assert ring(8, (1, -1, -2)).is_symmetric

    def test_asymmetric_when_requested(self):
        topo = ring(8, (1,), symmetrize=False)
        assert not topo.is_symmetric

    def test_paper_distance_set(self):
        topo = ring(10, (1, -1, -2))
        # Symmetrised: partners at +-1 and +-2.
        assert set(topo.neighbors(5)) == {4, 6, 3, 7}

    def test_wraparound(self):
        topo = ring(5, (2, -2))
        assert set(topo.neighbors(4)) == {1, 2}

    def test_rejects_zero_distance(self):
        with pytest.raises(ValueError, match="distance 0"):
            ring(5, (0, 1))

    def test_rejects_tiny_ring(self):
        with pytest.raises(ValueError, match="two processes"):
            ring(1, (1,))

    def test_connected(self):
        assert ring(12, (1, -1)).is_connected()


class TestChain:
    def test_open_ends_have_fewer_partners(self):
        topo = chain(6, (1, -1))
        assert set(topo.neighbors(0)) == {1}
        assert set(topo.neighbors(5)) == {4}
        assert set(topo.neighbors(3)) == {2, 4}

    def test_not_periodic(self):
        assert chain(6, (1, -1)).periodic is False

    def test_no_wraparound_edges(self):
        topo = chain(6, (2, -2))
        assert 4 not in topo.neighbors(0) or topo.matrix[0, 4] == 0.0
        assert topo.matrix[0, 5] == 0.0


class TestOtherBuilders:
    def test_all_to_all_degree(self):
        topo = all_to_all(7)
        np.testing.assert_array_equal(topo.degree(), np.full(7, 6.0))

    def test_grid2d_interior_degree(self):
        topo = grid2d(4, 4)
        # rank 5 = (1, 1) is interior: 4 neighbours.
        assert len(topo.neighbors(5)) == 4
        # corner 0 has 2.
        assert len(topo.neighbors(0)) == 2

    def test_torus2d_uniform_degree(self):
        topo = torus2d(4, 3)
        assert np.all(topo.degree() == 4)

    def test_torus_2xN_degenerate_wrap(self):
        # On a 2-wide torus +1 and -1 wrap to the same neighbour; the
        # builder must not produce self-loops or double edges.
        topo = torus2d(2, 3)
        assert np.all(np.diag(topo.matrix) == 0)

    def test_random_topology_connected(self, rng):
        topo = random_topology(12, 0.3, rng=rng)
        assert topo.is_connected()

    def test_random_topology_rejects_bad_p(self, rng):
        with pytest.raises(ValueError):
            random_topology(5, 1.5, rng=rng)

    def test_from_edges(self):
        topo = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.is_symmetric
        assert topo.n_edges == 6

    def test_from_edges_rejects_self_edge(self):
        with pytest.raises(ValueError, match="self-edges"):
            from_edges(4, [(1, 1)])

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edges(3, [(0, 7)])

    def test_from_networkx_roundtrip(self):
        g = nx.cycle_graph(6)
        topo = from_networkx(g)
        expected = ring(6, (1, -1))
        np.testing.assert_array_equal(topo.matrix, expected.matrix)


class TestKappaRules:
    def test_kappa_sum_next_neighbor(self):
        # d = +-1: kappa = |1| + |-1| = 2 (paper Sec. 3.1).
        assert ring(10, (1, -1)).kappa() == 2.0

    def test_kappa_sum_paper_set(self):
        # d = +-1, -2: kappa = 1 + 1 + 2 = 4.
        assert ring(10, (1, -1, -2)).kappa() == 4.0

    def test_kappa_waitall_is_max(self):
        # Grouped MPI_Waitall: kappa = longest distance only.
        assert ring(10, (1, -1, -2)).kappa(waitall_grouped=True) == 2.0
        assert ring(10, (1, -1)).kappa(waitall_grouped=True) == 1.0

    def test_kappa_extracted_from_matrix(self):
        # Topology built without a distance set still yields kappa.
        explicit = ring(10, (1, -1))
        anonymous = Topology(matrix=explicit.matrix)
        assert anonymous.kappa() == explicit.kappa()

    def test_distance_multiset_known(self):
        assert sorted(ring(10, (1, -1, -2)).distance_multiset()) == [-2, -1, 1]


class TestSpectralProperties:
    def test_laplacian_rows_sum_to_zero(self):
        lap = ring(8, (1, -1)).laplacian()
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-12)

    def test_ring_spectral_gap_formula(self):
        # Ring Laplacian eigenvalues: 2 - 2cos(2*pi*k/n).
        n = 10
        gap = ring(n, (1, -1)).spectral_gap()
        assert gap == pytest.approx(2 - 2 * np.cos(2 * np.pi / n), abs=1e-9)

    def test_all_to_all_gap_is_n(self):
        assert all_to_all(6).spectral_gap() == pytest.approx(6.0)

    def test_more_edges_larger_gap(self):
        assert (ring(12, (1, -1, 2, -2)).spectral_gap()
                > ring(12, (1, -1)).spectral_gap())


class TestDependencyTopology:
    def test_eager_is_directed_for_asymmetric_set(self):
        # Sends d = +1,-1,-2: rank i receives from i-1, i+1, i+2.
        topo = dependency_topology(10, (1, -1, -2))
        assert set(np.flatnonzero(topo.matrix[5])) == {4, 6, 7}
        assert not topo.is_symmetric

    def test_rendezvous_adds_reverse_edges(self):
        topo = dependency_topology(10, (1, -1, -2), rendezvous=True)
        # Senders also block: i depends on i+1, i-1, i-2 as well.
        assert set(np.flatnonzero(topo.matrix[5])) == {3, 4, 6, 7}

    def test_symmetric_set_eager_is_symmetric(self):
        topo = dependency_topology(8, (1, -1))
        assert topo.is_symmetric

    def test_open_chain_variant(self):
        topo = dependency_topology(6, (1,), periodic=False)
        # rank 0 receives from -1: nothing.
        assert len(topo.neighbors(0)) == 0
        assert len(topo.neighbors(3)) == 1


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=4, max_value=24),
       dists=st.lists(st.sampled_from([1, -1, 2, -2, 3, -3]),
                      min_size=1, max_size=4, unique=True))
def test_property_ring_symmetrized_matrix(n, dists):
    """Symmetrised ring matrices are symmetric with zero diagonal and
    their kappa follows the sum/max rules exactly."""
    topo = ring(n, dists)
    assert topo.is_symmetric
    assert np.all(np.diag(topo.matrix) == 0)
    mags = [abs(d) for d in dists]
    assert topo.kappa() == pytest.approx(sum(mags))
    assert topo.kappa(waitall_grouped=True) == pytest.approx(max(mags))


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=3, max_value=30))
def test_property_all_to_all_edge_count(n):
    assert all_to_all(n).n_edges == n * (n - 1)
