"""Tests for the artifact store and cache layer (repro.runs.store/cache)."""

import numpy as np
import pytest

from repro.runs import ArtifactStore, ResultCache, shard_key


KEY = "ab" * 32


class TestArtifactStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_bytes(KEY, b"hello")
        assert store.get_bytes(KEY) == b"hello"
        assert store.has(KEY)

    def test_fanout_layout(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.put_bytes(KEY, b"x")
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.npz"

    def test_missing_is_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.get_bytes(KEY) is None
        assert not store.has(KEY)

    def test_delete(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_bytes(KEY, b"x")
        assert store.delete(KEY)
        assert not store.delete(KEY)

    def test_keys_and_size(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        other = "cd" * 32
        store.put_bytes(KEY, b"xx")
        store.put_bytes(other, b"yyy")
        assert sorted(store.keys()) == sorted([KEY, other])
        assert store.size_bytes() == 5

    def test_malformed_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ValueError, match="malformed"):
            store.put_bytes("../../etc/passwd", b"nope")
        with pytest.raises(ValueError, match="malformed"):
            store.has("short")

    def test_no_tmp_droppings_after_write(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_bytes(KEY, b"x" * 1000)
        leftovers = [p for p in (tmp_path / "store").rglob("*.tmp")]
        assert leftovers == []


class TestResultCache:
    def _data(self):
        return {"ts": np.linspace(0, 1, 5),
                "thetas": np.ones((2, 5, 3)),
                "indices": np.array([4, 7]),
                "seconds": 1.25}

    def test_save_load_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.save(KEY, self._data())
        out = cache.load(KEY)
        np.testing.assert_array_equal(out["ts"], np.linspace(0, 1, 5))
        np.testing.assert_array_equal(out["indices"], [4, 7])
        assert out["seconds"] == 1.25

    def test_load_miss(self, tmp_path):
        assert ResultCache(tmp_path / "c").load(KEY) is None

    def test_describe(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.save(KEY, self._data())
        info = cache.describe()
        assert info["entries"] == 1
        assert info["size_bytes"] > 0


class TestShardKey:
    def test_stable_and_canonical(self):
        payload = {"members": [{"index": 0, "model": {"a": 1, "b": 2}}],
                   "t_end": 5.0, "solver": {"method": "rk4", "dt": 0.01}}
        reordered = {"solver": {"dt": 0.01, "method": "rk4"},
                     "t_end": 5.0,
                     "members": [{"model": {"b": 2, "a": 1}, "index": 0}]}
        assert shard_key(payload) == shard_key(reordered)

    def test_sensitive_to_content(self):
        a = {"members": [], "t_end": 5.0, "solver": {}}
        b = {"members": [], "t_end": 6.0, "solver": {}}
        assert shard_key(a) != shard_key(b)
