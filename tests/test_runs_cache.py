"""Tests for the artifact store and cache layer (repro.runs.store/cache)."""

import hashlib
import warnings

import numpy as np
import pytest

from repro.runs import ArtifactStore, ResultCache, shard_key


KEY = "ab" * 32


class TestArtifactStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_bytes(KEY, b"hello")
        assert store.get_bytes(KEY) == b"hello"
        assert store.has(KEY)

    def test_fanout_layout(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.put_bytes(KEY, b"x")
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.npz"

    def test_missing_is_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.get_bytes(KEY) is None
        assert not store.has(KEY)

    def test_delete(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_bytes(KEY, b"x")
        assert store.delete(KEY)
        assert not store.delete(KEY)

    def test_keys_and_size(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        other = "cd" * 32
        store.put_bytes(KEY, b"xx")
        store.put_bytes(other, b"yyy")
        # sidecars are not keys
        assert sorted(store.keys()) == sorted([KEY, other])
        # 5 payload bytes + two 65-byte checksum sidecars
        assert store.size_bytes() == 5 + 2 * 65

    def test_malformed_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ValueError, match="malformed"):
            store.put_bytes("../../etc/passwd", b"nope")
        with pytest.raises(ValueError, match="malformed"):
            store.has("short")

    def test_no_tmp_droppings_after_write(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_bytes(KEY, b"x" * 1000)
        leftovers = [p for p in (tmp_path / "store").rglob("*.tmp")]
        assert leftovers == []


class TestChecksums:
    """Satellite: integrity sidecars make corrupt entries a miss."""

    def _reset_warning(self):
        from repro.runs import store as store_mod

        store_mod._warned_corrupt = False

    def test_sidecar_written_with_blob(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.put_bytes(KEY, b"payload")
        sidecar = path.with_name(path.name + ".sha256")
        assert sidecar.read_text().strip() == \
            hashlib.sha256(b"payload").hexdigest()

    def test_truncated_blob_is_a_miss_with_one_warning(self, tmp_path):
        self._reset_warning()
        store = ArtifactStore(tmp_path / "store")
        path = store.put_bytes(KEY, b"x" * 100)
        path.write_bytes(b"x" * 40)          # torn write
        with pytest.warns(RuntimeWarning, match="integrity"):
            assert store.get_bytes(KEY) is None
        # the second corrupt read is silent (one warning per process)
        other = "cd" * 32
        store.put_bytes(other, b"y" * 100)
        store.path_for(other).write_bytes(b"z" * 100)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get_bytes(other) is None

    def test_bitflipped_blob_is_a_miss(self, tmp_path):
        self._reset_warning()
        store = ArtifactStore(tmp_path / "store")
        path = store.put_bytes(KEY, b"abcdef")
        path.write_bytes(b"abcdeX")
        with pytest.warns(RuntimeWarning):
            assert store.get_bytes(KEY) is None

    def test_rewrite_heals_corruption(self, tmp_path):
        self._reset_warning()
        store = ArtifactStore(tmp_path / "store")
        path = store.put_bytes(KEY, b"good")
        path.write_bytes(b"bad!")
        with pytest.warns(RuntimeWarning):
            assert store.get_bytes(KEY) is None
        store.put_bytes(KEY, b"good")
        assert store.get_bytes(KEY) == b"good"

    def test_legacy_blob_without_sidecar_still_reads(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"pre-checksum blob")
        assert store.get_bytes(KEY) == b"pre-checksum blob"

    def test_delete_removes_sidecar(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.put_bytes(KEY, b"x")
        assert store.delete(KEY)
        assert not path.with_name(path.name + ".sha256").exists()


class TestResultCache:
    def _data(self):
        return {"ts": np.linspace(0, 1, 5),
                "thetas": np.ones((2, 5, 3)),
                "indices": np.array([4, 7]),
                "seconds": 1.25}

    def test_save_load_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.save(KEY, self._data())
        out = cache.load(KEY)
        np.testing.assert_array_equal(out["ts"], np.linspace(0, 1, 5))
        np.testing.assert_array_equal(out["indices"], [4, 7])
        assert out["seconds"] == 1.25

    def test_load_miss(self, tmp_path):
        assert ResultCache(tmp_path / "c").load(KEY) is None

    def test_describe(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.save(KEY, self._data())
        info = cache.describe()
        assert info["entries"] == 1
        assert info["size_bytes"] > 0


class TestShardKey:
    def test_stable_and_canonical(self):
        payload = {"members": [{"index": 0, "model": {"a": 1, "b": 2}}],
                   "t_end": 5.0, "solver": {"method": "rk4", "dt": 0.01}}
        reordered = {"solver": {"dt": 0.01, "method": "rk4"},
                     "t_end": 5.0,
                     "members": [{"model": {"b": 2, "a": 1}, "index": 0}]}
        assert shard_key(payload) == shard_key(reordered)

    def test_sensitive_to_content(self):
        a = {"members": [], "t_end": 5.0, "solver": {}}
        b = {"members": [], "t_end": 6.0, "solver": {}}
        assert shard_key(a) != shard_key(b)
