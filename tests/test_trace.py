"""Tests for the trace containers and serialisation."""

import numpy as np
import pytest

from repro.simulator import Interval, RankTimeline, Trace
from repro.simulator.trace import Activity, merge_time_ordered


def small_trace():
    tl0 = RankTimeline(rank=0)
    tl0.add(Activity.COMPUTE, 0.0, 1.0, 0)
    tl0.add(Activity.SEND, 1.0, 1.1, 0)
    tl0.add(Activity.WAIT, 1.1, 1.5, 0)
    tl0.add(Activity.COMPUTE, 1.5, 2.5, 1)
    tl0.add(Activity.SEND, 2.5, 2.6, 1)
    tl0.add(Activity.WAIT, 2.6, 2.6, 1)
    tl1 = RankTimeline(rank=1)
    tl1.add(Activity.COMPUTE, 0.0, 1.2, 0)
    tl1.add(Activity.SEND, 1.2, 1.3, 0)
    tl1.add(Activity.WAIT, 1.3, 1.5, 0)
    tl1.add(Activity.COMPUTE, 1.5, 2.4, 1)
    tl1.add(Activity.SEND, 2.4, 2.5, 1)
    tl1.add(Activity.WAIT, 2.5, 2.6, 1)
    ends = np.array([[1.5, 1.5], [2.6, 2.6]])
    return Trace(timelines=[tl0, tl1], iteration_ends=ends,
                 meta={"n_ranks": 2})


class TestInterval:
    def test_duration(self):
        iv = Interval(Activity.COMPUTE, 1.0, 2.5, 0)
        assert iv.duration == pytest.approx(1.5)

    def test_zero_length_allowed(self):
        iv = Interval(Activity.WAIT, 1.0, 1.0, 0)
        assert iv.duration == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            Interval("sleeping", 0.0, 1.0, 0)
        with pytest.raises(ValueError, match="ends before"):
            Interval(Activity.COMPUTE, 2.0, 1.0, 0)
        with pytest.raises(ValueError, match="iteration"):
            Interval(Activity.COMPUTE, 0.0, 1.0, -1)


class TestRankTimeline:
    def test_overlap_rejected(self):
        tl = RankTimeline(rank=0)
        tl.add(Activity.COMPUTE, 0.0, 1.0, 0)
        with pytest.raises(ValueError, match="overlaps"):
            tl.add(Activity.SEND, 0.5, 1.5, 0)

    def test_totals(self):
        trace = small_trace()
        assert trace.timelines[0].total(Activity.COMPUTE) == pytest.approx(2.0)
        assert trace.timelines[0].total(Activity.WAIT) == pytest.approx(0.4)

    def test_busy_fraction(self):
        trace = small_trace()
        frac = trace.timelines[0].busy_fraction()
        assert frac == pytest.approx(2.0 / 2.6)


class TestTrace:
    def test_shapes_and_props(self):
        trace = small_trace()
        assert trace.n_ranks == 2
        assert trace.n_iterations == 2
        assert trace.makespan == pytest.approx(2.6)

    def test_wait_matrix(self):
        trace = small_trace()
        w = trace.wait_matrix()
        assert w.shape == (2, 2)
        assert w[0, 0] == pytest.approx(0.4)
        assert w[1, 1] == pytest.approx(0.1)

    def test_compute_matrix(self):
        trace = small_trace()
        c = trace.compute_matrix()
        assert c[0, 1] == pytest.approx(1.2)

    def test_iteration_durations(self):
        trace = small_trace()
        d = trace.iteration_durations()
        np.testing.assert_allclose(d[:, 0], [1.5, 1.1])

    def test_total_wait(self):
        trace = small_trace()
        assert trace.total_wait() == pytest.approx(0.4 + 0.0 + 0.2 + 0.1)

    def test_aggregate_bandwidth(self):
        trace = small_trace()
        bw = trace.aggregate_bandwidth(traffic_per_iteration=1e9)
        assert bw == pytest.approx(2 * 2 * 1e9 / 2.6)

    def test_json_roundtrip(self):
        trace = small_trace()
        clone = Trace.from_json(trace.to_json())
        assert clone.n_ranks == trace.n_ranks
        np.testing.assert_allclose(clone.iteration_ends,
                                   trace.iteration_ends)
        assert clone.meta == trace.meta
        assert clone.timelines[1].intervals == trace.timelines[1].intervals

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            Trace(timelines=[], iteration_ends=np.zeros(3))
        with pytest.raises(ValueError, match="disagree"):
            Trace(timelines=[RankTimeline(rank=0)],
                  iteration_ends=np.zeros((2, 3)))

    def test_merge_time_ordered(self):
        ivs = [Interval(Activity.WAIT, 2.0, 3.0, 0),
               Interval(Activity.COMPUTE, 0.0, 1.0, 0)]
        merged = merge_time_ordered(ivs)
        assert merged[0].kind == Activity.COMPUTE
