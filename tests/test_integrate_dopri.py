"""Tests for the from-scratch Dormand-Prince 5(4) solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.integrate import solve_ivp

from repro.integrate import solve_dopri45
from repro.integrate.dopri import DOPRI_A, DOPRI_B4, DOPRI_B5, DOPRI_C


class TestButcherTableau:
    def test_c_matches_row_sums(self):
        # Consistency condition: c_i = sum_j a_ij.
        np.testing.assert_allclose(DOPRI_A.sum(axis=1), DOPRI_C, atol=1e-14)

    def test_b5_order_conditions(self):
        # 5th-order weights: sum b = 1, sum b*c = 1/2, sum b*c^2 = 1/3.
        assert abs(DOPRI_B5.sum() - 1.0) < 1e-14
        assert abs(DOPRI_B5 @ DOPRI_C - 0.5) < 1e-14
        assert abs(DOPRI_B5 @ DOPRI_C**2 - 1.0 / 3.0) < 1e-14
        assert abs(DOPRI_B5 @ DOPRI_C**3 - 0.25) < 1e-14
        assert abs(DOPRI_B5 @ DOPRI_C**4 - 0.2) < 1e-14

    def test_b4_order_conditions(self):
        # Embedded 4th-order weights satisfy up to c^3.
        assert abs(DOPRI_B4.sum() - 1.0) < 1e-14
        assert abs(DOPRI_B4 @ DOPRI_C - 0.5) < 1e-14
        assert abs(DOPRI_B4 @ DOPRI_C**2 - 1.0 / 3.0) < 1e-14
        assert abs(DOPRI_B4 @ DOPRI_C**3 - 0.25) < 1e-14

    def test_fsal_property(self):
        # Last stage of A equals B5 (first-same-as-last).
        np.testing.assert_allclose(DOPRI_A[6, :6], DOPRI_B5[:6], atol=1e-15)


class TestExponentialDecay:
    def test_matches_exact_solution(self):
        sol = solve_dopri45(lambda t, y: -y, (0.0, 5.0), [1.0],
                            rtol=1e-8, atol=1e-10)
        assert sol.success
        np.testing.assert_allclose(sol.y_end[0], np.exp(-5.0), rtol=1e-6)

    def test_tolerance_controls_error(self):
        errs = []
        for rtol in (1e-4, 1e-7):
            sol = solve_dopri45(lambda t, y: -y, (0.0, 5.0), [1.0],
                                rtol=rtol, atol=1e-12)
            errs.append(abs(sol.y_end[0] - np.exp(-5.0)))
        assert errs[1] < errs[0] / 10.0

    def test_fewer_steps_at_looser_tolerance(self):
        loose = solve_dopri45(lambda t, y: -y, (0.0, 5.0), [1.0], rtol=1e-3)
        tight = solve_dopri45(lambda t, y: -y, (0.0, 5.0), [1.0], rtol=1e-10)
        assert loose.stats.n_steps < tight.stats.n_steps


class TestHarmonicOscillator:
    def rhs(self, t, y):
        return np.array([y[1], -y[0]])

    def test_period_and_energy(self):
        sol = solve_dopri45(self.rhs, (0.0, 2 * np.pi), [1.0, 0.0],
                            rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(sol.y_end, [1.0, 0.0], atol=1e-6)

    def test_against_scipy(self):
        sol = solve_dopri45(self.rhs, (0.0, 10.0), [1.0, 0.0],
                            rtol=1e-8, atol=1e-10)
        ref = solve_ivp(self.rhs, (0.0, 10.0), [1.0, 0.0], method="RK45",
                        rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(sol.y_end, ref.y[:, -1], atol=1e-6)

    def test_dense_output_accuracy(self):
        sol = solve_dopri45(self.rhs, (0.0, 10.0), [1.0, 0.0],
                            rtol=1e-8, atol=1e-10)
        ts = np.linspace(0.0, 10.0, 197)
        ys = sol(ts)
        np.testing.assert_allclose(ys[:, 0], np.cos(ts), atol=1e-5)
        np.testing.assert_allclose(ys[:, 1], -np.sin(ts), atol=1e-5)

    def test_dense_output_matches_mesh_points(self):
        sol = solve_dopri45(self.rhs, (0.0, 5.0), [1.0, 0.0], rtol=1e-7)
        ys = sol(sol.ts)
        np.testing.assert_allclose(ys, sol.ys, atol=1e-9)


class TestAPIBehaviour:
    def test_rejects_reversed_time(self):
        with pytest.raises(ValueError, match="t_end > t0"):
            solve_dopri45(lambda t, y: -y, (5.0, 0.0), [1.0])

    def test_accepts_stacked_2d_initial_state(self):
        # Shape-agnostic states: a (R, N) stack integrates member-wise
        # (the batched-ensemble super-state path).
        y0 = np.array([[1.0, 2.0], [3.0, 4.0]])
        sol = solve_dopri45(lambda t, y: -y, (0.0, 1.0), y0)
        assert sol.success
        assert sol.ys.shape[1:] == (2, 2)
        np.testing.assert_allclose(sol.ys[-1], np.exp(-1.0) * y0, rtol=1e-5)

    def test_rejects_scalar_initial_state(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            solve_dopri45(lambda t, y: -y, (0.0, 1.0), np.asarray(1.0))

    def test_rejects_bad_rhs_shape(self):
        with pytest.raises(ValueError, match="RHS returned shape"):
            solve_dopri45(lambda t, y: np.zeros(3), (0.0, 1.0), [1.0, 2.0])

    def test_max_steps_reports_failure(self):
        sol = solve_dopri45(lambda t, y: -y, (0.0, 100.0), [1.0],
                            max_steps=3)
        assert not sol.success
        assert "max_steps" in sol.message

    def test_max_step_is_respected(self):
        sol = solve_dopri45(lambda t, y: -y, (0.0, 2.0), [1.0],
                            max_step=0.05)
        assert np.max(np.diff(sol.ts)) <= 0.05 + 1e-12

    def test_t_eval_returns_requested_mesh(self):
        t_eval = np.linspace(0.0, 2.0, 17)
        sol = solve_dopri45(lambda t, y: -y, (0.0, 2.0), [1.0],
                            t_eval=t_eval)
        np.testing.assert_allclose(sol.ts, t_eval)
        np.testing.assert_allclose(sol.ys[:, 0], np.exp(-t_eval), rtol=1e-5)

    def test_first_step_accepted(self):
        sol = solve_dopri45(lambda t, y: -y, (0.0, 1.0), [1.0],
                            first_step=0.01)
        assert sol.success
        assert abs((sol.ts[1] - sol.ts[0]) - 0.01) < 1e-12

    def test_step_callback_sees_every_accepted_step(self):
        seen = []
        sol = solve_dopri45(lambda t, y: -y, (0.0, 1.0), [1.0],
                            step_callback=lambda t, y: seen.append(t))
        assert len(seen) == sol.stats.n_steps
        np.testing.assert_allclose(seen, sol.ts[1:])

    def test_stats_counters_consistent(self):
        sol = solve_dopri45(lambda t, y: np.array([np.sin(50 * t) * y[0]]),
                            (0.0, 3.0), [1.0], rtol=1e-8)
        assert sol.stats.n_rhs >= 6 * sol.stats.n_steps
        assert sol.stats.n_steps == len(sol.ts) - 1


class TestStiffishProblem:
    def test_moderate_stiffness_still_converges(self):
        # lambda = -200: explicit method must shrink steps but succeed.
        sol = solve_dopri45(lambda t, y: -200.0 * (y - np.cos(t)),
                            (0.0, 1.0), [0.0], rtol=1e-6, atol=1e-9)
        assert sol.success
        # Reference from scipy at tight tolerance.
        ref = solve_ivp(lambda t, y: -200.0 * (y - np.cos(t)), (0.0, 1.0),
                        [0.0], method="RK45", rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(sol.y_end, ref.y[:, -1], atol=1e-4)

    def test_discontinuous_rhs_is_integrated(self):
        # Piecewise-constant forcing (like the noise processes).
        def f(t, y):
            return np.array([1.0 if t < 0.5 else -1.0])

        sol = solve_dopri45(f, (0.0, 1.0), [0.0], rtol=1e-8, max_step=0.01)
        assert sol.success
        np.testing.assert_allclose(sol.y_end[0], 0.0, atol=1e-3)


@settings(max_examples=25, deadline=None)
@given(
    lam=st.floats(min_value=-3.0, max_value=-0.1),
    y0=st.floats(min_value=-10.0, max_value=10.0),
    t_end=st.floats(min_value=0.1, max_value=5.0),
)
def test_property_linear_decay_exact(lam, y0, t_end):
    """For dy/dt = lam*y the solver must match exp(lam*t)*y0."""
    sol = solve_dopri45(lambda t, y: lam * y, (0.0, t_end), [y0],
                        rtol=1e-8, atol=1e-11)
    assert sol.success
    expected = y0 * np.exp(lam * t_end)
    np.testing.assert_allclose(sol.y_end[0], expected,
                               rtol=1e-5, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(t_query=st.floats(min_value=0.0, max_value=4.0))
def test_property_dense_output_between_points(t_query):
    """Dense output stays within solver accuracy anywhere inside."""
    sol = solve_dopri45(lambda t, y: np.array([np.cos(t)]), (0.0, 4.0),
                        [0.0], rtol=1e-9, atol=1e-12)
    val = sol(t_query)
    np.testing.assert_allclose(val[0], np.sin(t_query), atol=1e-6)
