"""Smoke tests for the example scripts.

Every example must at least compile; the quickstart (the one a new user
runs first) is executed end-to-end.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_present():
    assert EXAMPLES_DIR.is_dir()
    assert len(ALL_EXAMPLES) >= 5


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_end_to_end():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "idle wave" in out
    assert "synchronized" in out


def test_cluster_scaling_runs_end_to_end():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "cluster_scaling.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "saturates" in proc.stdout
