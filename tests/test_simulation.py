"""Tests for the simulation driver and the trajectory container."""

import numpy as np
import pytest

from repro.core import (
    ConstantInteractionNoise,
    GaussianJitter,
    KuramotoModel,
    OneOffDelay,
    PhysicalOscillatorModel,
    TanhPotential,
    default_dt,
    perturbed,
    ring,
    simulate,
    simulate_kuramoto,
    splayed,
    synchronized,
)
from repro.metrics import classify, order_parameter


class TestInitialConditions:
    def test_synchronized(self):
        np.testing.assert_array_equal(synchronized(5), np.zeros(5))

    def test_synchronized_with_phase(self):
        np.testing.assert_array_equal(synchronized(3, phase=1.5),
                                      np.full(3, 1.5))

    def test_perturbed(self):
        theta = perturbed(5, rank=2, offset=-0.7)
        assert theta[2] == pytest.approx(-0.7)
        assert np.all(theta[[0, 1, 3, 4]] == 0.0)

    def test_perturbed_rank_validated(self):
        with pytest.raises(ValueError):
            perturbed(3, rank=5)

    def test_splayed_gap(self):
        theta = splayed(4, gap=0.5)
        np.testing.assert_allclose(np.diff(theta), 0.5)


class TestSimulateDriver:
    def test_free_oscillators_advance_at_omega(self):
        m = PhysicalOscillatorModel(topology=ring(4, (1, -1)),
                                    potential=TanhPotential(),
                                    t_comp=0.9, t_comm=0.1,
                                    v_p_override=0.0)
        traj = simulate(m, 3.0, seed=0)
        np.testing.assert_allclose(traj.final_phases,
                                   np.full(4, m.omega * 3.0), rtol=1e-6)

    def test_methods_agree_on_smooth_problem(self, small_scalable_model):
        theta0 = perturbed(8, rank=3, offset=-0.8)
        kw = dict(theta0=theta0, seed=0)
        dop = simulate(small_scalable_model, 5.0, method="dopri", **kw)
        rk4 = simulate(small_scalable_model, 5.0, method="rk4", dt=1e-3, **kw)
        eul = simulate(small_scalable_model, 5.0, method="euler", dt=1e-4, **kw)
        np.testing.assert_allclose(dop.final_phases, rk4.final_phases,
                                   atol=1e-5)
        np.testing.assert_allclose(dop.final_phases, eul.final_phases,
                                   atol=1e-3)

    def test_bad_method_rejected(self, small_scalable_model):
        with pytest.raises(ValueError, match="unknown method"):
            simulate(small_scalable_model, 1.0, method="leapfrog")

    def test_bad_theta0_shape(self, small_scalable_model):
        with pytest.raises(ValueError, match="theta0"):
            simulate(small_scalable_model, 1.0, theta0=np.zeros(3))

    def test_negative_t_end(self, small_scalable_model):
        with pytest.raises(ValueError, match="positive"):
            simulate(small_scalable_model, -1.0)

    def test_n_samples_resampling(self, small_scalable_model):
        traj = simulate(small_scalable_model, 2.0, n_samples=64)
        assert traj.n_samples == 64
        assert np.allclose(np.diff(traj.ts), traj.ts[1] - traj.ts[0])

    def test_seed_reproducibility_with_noise(self):
        m = PhysicalOscillatorModel(
            topology=ring(6, (1, -1)), potential=TanhPotential(),
            t_comp=0.9, t_comm=0.1,
            local_noise=GaussianJitter(std=0.02, refresh=0.2))
        a = simulate(m, 3.0, seed=11)
        b = simulate(m, 3.0, seed=11)
        np.testing.assert_array_equal(a.final_phases, b.final_phases)

    def test_different_seeds_differ(self):
        m = PhysicalOscillatorModel(
            topology=ring(6, (1, -1)), potential=TanhPotential(),
            t_comp=0.9, t_comm=0.1,
            local_noise=GaussianJitter(std=0.02, refresh=0.2))
        a = simulate(m, 3.0, seed=11)
        b = simulate(m, 3.0, seed=12)
        assert not np.allclose(a.final_phases, b.final_phases)

    def test_default_dt_resolves_both_scales(self, small_scalable_model):
        dt = default_dt(small_scalable_model)
        assert dt <= small_scalable_model.period / 10
        assert dt <= 1.0 / small_scalable_model.v_p


class TestOneOffDelayIntegration:
    def test_exact_phase_deficit(self):
        """After a full-stall delay, the free-running rank lags by
        exactly omega*delay (no coupling to pull it back)."""
        delay = 0.8
        m = PhysicalOscillatorModel(
            topology=ring(4, (1, -1)), potential=TanhPotential(),
            t_comp=0.9, t_comm=0.1, v_p_override=0.0,
            delays=(OneOffDelay(rank=1, t_start=2.0, delay=delay),))
        traj = simulate(m, 6.0, seed=0, method="rk4", dt=1e-3)
        deficit = traj.final_phases[0] - traj.final_phases[1]
        assert deficit == pytest.approx(m.omega * delay, rel=1e-3)

    def test_windowed_delay_same_deficit(self):
        delay = 0.5
        m = PhysicalOscillatorModel(
            topology=ring(4, (1, -1)), potential=TanhPotential(),
            t_comp=0.9, t_comm=0.1, v_p_override=0.0,
            delays=(OneOffDelay(rank=1, t_start=1.0, delay=delay,
                                window=2.0),))
        traj = simulate(m, 5.0, seed=0, method="rk4", dt=1e-3)
        deficit = traj.final_phases[0] - traj.final_phases[1]
        assert deficit == pytest.approx(m.omega * delay, rel=1e-3)


class TestDDEPath:
    def test_dde_converges_linearly_to_ode(self, small_scalable_model):
        """As tau -> 0 the DDE solution approaches the ODE one, with the
        leading difference being the *physical* delay-induced frequency
        shift ~ (v_p/N) * degree * omega * tau * t."""
        theta0 = perturbed(8, rank=2, offset=-0.5)
        ode = simulate(small_scalable_model, 4.0, theta0=theta0, seed=0)
        diffs = []
        for tau in (1e-5, 1e-4, 1e-3):
            m_dde = PhysicalOscillatorModel(
                topology=small_scalable_model.topology,
                potential=small_scalable_model.potential,
                t_comp=0.9, t_comm=0.1, v_p_override=8.0,
                interaction_noise=ConstantInteractionNoise(tau=tau))
            dde = simulate(m_dde, 4.0, theta0=theta0, seed=0)
            diffs.append(np.abs(dde.final_phases - ode.final_phases).max())
        # Linear in tau: each decade of tau shrinks the gap ~10x.
        assert diffs[0] < diffs[1] / 5.0 < diffs[2] / 25.0
        # And the predicted physical shift magnitude for tau=1e-3:
        # (v_p/N)*deg*omega*tau*t = 1*2*2pi*1e-3*4 ~ 5e-2.
        assert diffs[2] == pytest.approx(2 * 2 * np.pi * 1e-3 * 4.0,
                                         rel=0.3)

    def test_delay_slows_synchronization(self):
        """Interaction delays weaken the effective pull towards sync
        (the partner's past phase is further back)."""
        def final_spread(tau):
            noise = ConstantInteractionNoise(tau=tau)
            m = PhysicalOscillatorModel(
                topology=ring(8, (1, -1)), potential=TanhPotential(),
                t_comp=0.9, t_comm=0.1, v_p_override=8.0,
                interaction_noise=noise)
            traj = simulate(m, 6.0, theta0=perturbed(8, 2, -1.0), seed=0)
            x = traj.comoving_phases()
            return float(x[-1].max() - x[-1].min())

        assert final_spread(0.08) > final_spread(1e-4)


class TestEulerMaruyamaPath:
    def test_em_requires_gaussian_noise(self, small_scalable_model):
        with pytest.raises(ValueError, match="GaussianJitter"):
            simulate(small_scalable_model, 1.0, method="em")

    def test_em_runs_and_stays_coherent(self):
        m = PhysicalOscillatorModel(
            topology=ring(8, (1, -1)), potential=TanhPotential(),
            t_comp=0.9, t_comm=0.1, v_p_override=8.0,
            local_noise=GaussianJitter(std=0.01))
        traj = simulate(m, 5.0, method="em", dt=1e-3, seed=0)
        assert order_parameter(traj.final_phases) > 0.9


class TestKuramotoDriver:
    def test_all_to_all_synchronizes(self):
        km = KuramotoModel(n=10, coupling_k=5.0, omega=2 * np.pi)
        theta0 = np.random.default_rng(0).uniform(-1.0, 1.0, 10)
        sol = simulate_kuramoto(km, 20.0, theta0=theta0)
        assert order_parameter(sol.y_end) > 0.999

    def test_below_critical_coupling_stays_incoherent(self):
        rng = np.random.default_rng(1)
        # Lorentzian-ish spread via Cauchy draws, K below K_c = 2*gamma.
        gamma = 1.0
        omega = rng.standard_cauchy(200) * gamma
        km = KuramotoModel(n=200, coupling_k=0.5, omega=omega)
        theta0 = rng.uniform(0, 2 * np.pi, 200)
        sol = simulate_kuramoto(km, 30.0, theta0=theta0, method="rk4",
                                dt=0.01)
        # Finite-size fluctuations around r ~ 1/sqrt(N).
        assert order_parameter(sol.y_end) < 0.3

    def test_methods_match(self):
        km = KuramotoModel(n=6, coupling_k=2.0, omega=1.0)
        theta0 = np.linspace(0, 1, 6)
        a = simulate_kuramoto(km, 5.0, theta0=theta0, method="dopri")
        b = simulate_kuramoto(km, 5.0, theta0=theta0, method="rk4", dt=1e-3)
        np.testing.assert_allclose(a.y_end, b.y_end, atol=1e-5)

    def test_invalid_args(self):
        km = KuramotoModel(n=4, coupling_k=1.0)
        with pytest.raises(ValueError):
            simulate_kuramoto(km, -1.0)
        with pytest.raises(ValueError):
            simulate_kuramoto(km, 1.0, theta0=np.zeros(7))
        with pytest.raises(ValueError):
            simulate_kuramoto(km, 1.0, method="verlet")


class TestPaperDynamics:
    """The headline physics at test scale (boosted coupling)."""

    def test_scalable_resynchronizes_after_delay(self, small_scalable_model):
        m = PhysicalOscillatorModel(
            topology=small_scalable_model.topology,
            potential=small_scalable_model.potential,
            t_comp=0.9, t_comm=0.1, v_p_override=8.0,
            delays=(OneOffDelay(rank=3, t_start=2.0, delay=0.5),))
        traj = simulate(m, 40.0, seed=0)
        verdict = classify(traj.ts, traj.thetas, m.omega)
        assert verdict.is_synchronized

    def test_bottleneck_desynchronizes_from_noise(self,
                                                  small_bottleneck_model):
        rng = np.random.default_rng(5)
        theta0 = rng.normal(0.0, 1e-3, 8)
        traj = simulate(small_bottleneck_model, 60.0, theta0=theta0, seed=0)
        verdict = classify(traj.ts, traj.thetas,
                           small_bottleneck_model.omega)
        assert verdict.is_desynchronized
        # |gaps| settle at the first zero 2*sigma/3.
        assert verdict.mean_abs_gap == pytest.approx(2.0 / 3.0, rel=0.05)

    def test_bottleneck_splayed_state_is_stable(self,
                                                small_bottleneck_model):
        gap = small_bottleneck_model.potential.stable_gap()
        # Zigzag (alternating-sign) splay is ring-compatible.
        theta0 = np.array([0.0, gap] * 4)
        traj = simulate(small_bottleneck_model, 30.0, theta0=theta0, seed=0)
        x = traj.comoving_phases()
        final_gaps = np.abs(np.diff(x[-1]))
        np.testing.assert_allclose(final_gaps, gap, rtol=0.05)

    def test_tanh_sync_state_is_stable(self, small_scalable_model):
        traj = simulate(small_scalable_model, 10.0,
                        theta0=synchronized(8), seed=0)
        x = traj.comoving_phases()
        assert float(np.abs(x[-1] - x[-1, 0]).max()) < 1e-8
