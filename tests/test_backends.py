"""Equivalence and selection tests for the RHS compute backends.

The dense backend is the ground truth (it is the original
implementation); the sparse edge-list and batched kernels must agree
with it to machine precision on every shipped topology factory and
potential, including the delayed (DDE) path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    SPARSE_DENSITY_THRESHOLD,
    BatchedBackend,
    DenseBackend,
    auto_backend_name,
    available_backends,
    make_backend,
)
from repro.core import (
    BottleneckPotential,
    ConstantInteractionNoise,
    GaussianJitter,
    KuramotoPotential,
    LinearPotential,
    OneOffDelay,
    PhysicalOscillatorModel,
    RandomInteractionNoise,
    TanhPotential,
    all_to_all,
    chain,
    random_topology,
    ring,
    torus2d,
)
from repro.integrate import HistoryBuffer

TOPOLOGY_FACTORIES = {
    "ring": lambda: ring(24, (1, -1)),
    "ring-asym": lambda: ring(24, (1, -1, -2)),
    "chain": lambda: chain(17, (1, -1)),
    "torus2d": lambda: torus2d(4, 5),
    "random": lambda: random_topology(
        20, 0.3, rng=np.random.default_rng(7)),
    "all-to-all": lambda: all_to_all(12),
}

POTENTIALS = {
    "tanh": TanhPotential(),
    "bottleneck": BottleneckPotential(sigma=1.0),
    "kuramoto": KuramotoPotential(),
    "linear": LinearPotential(k=0.7),
}

TIGHT = dict(rtol=1e-13, atol=1e-13)


def make_model(topology, potential, **kw):
    defaults = dict(topology=topology, potential=potential,
                    t_comp=0.9, t_comm=0.1)
    defaults.update(kw)
    return PhysicalOscillatorModel(**defaults)


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGY_FACTORIES))
@pytest.mark.parametrize("pot_name", sorted(POTENTIALS))
class TestSparseMatchesDense:
    def test_rhs_equivalence(self, topo_name, pot_name):
        model = make_model(TOPOLOGY_FACTORIES[topo_name](),
                           POTENTIALS[pot_name],
                           local_noise=GaussianJitter(std=0.02, refresh=0.5))
        dense = model.realize(10.0, rng=3, backend="dense")
        sparse = model.realize(10.0, rng=3, backend="sparse")
        rng = np.random.default_rng(0)
        for t in (0.0, 1.3, 7.9):
            theta = rng.normal(0.0, 2.0, model.n)
            np.testing.assert_allclose(sparse.rhs(t, theta),
                                       dense.rhs(t, theta), **TIGHT)

    def test_batched_matches_dense_per_member(self, topo_name, pot_name):
        model = make_model(TOPOLOGY_FACTORIES[topo_name](),
                           POTENTIALS[pot_name],
                           local_noise=GaussianJitter(std=0.02, refresh=0.5))
        seeds = range(5)
        members = [model.realize(10.0, rng=s) for s in seeds]
        stacked = BatchedBackend(members)
        thetas = np.random.default_rng(1).normal(0.0, 2.0,
                                                 (len(members), model.n))
        got = stacked.rhs(1.3, thetas)
        ref = np.stack([
            model.realize(10.0, rng=s, backend="dense").rhs(1.3, thetas[i])
            for i, s in enumerate(seeds)
        ])
        np.testing.assert_allclose(got, ref, **TIGHT)


class TestDelayedPathEquivalence:
    @pytest.mark.parametrize("noise", [
        ConstantInteractionNoise(tau=0.25),
        RandomInteractionNoise(lo=0.0, hi=0.4, refresh=1.0),
    ], ids=["constant-tau", "random-tau"])
    def test_sparse_matches_dense_dde(self, noise):
        model = make_model(ring(16, (1, -1)), TanhPotential(),
                           interaction_noise=noise)
        dense = model.realize(10.0, rng=5, backend="dense")
        sparse = model.realize(10.0, rng=5, backend="sparse")
        assert dense.has_delays

        rng = np.random.default_rng(2)
        hist = HistoryBuffer(0.0, rng.normal(0, 1, model.n))
        for t in (0.5, 1.0, 1.5):
            y = rng.normal(0, 1, model.n)
            hist.append(t, y, f=rng.normal(0, 0.1, model.n))
        theta = rng.normal(0, 1, model.n)
        np.testing.assert_allclose(
            sparse.coupling_term(1.5, theta, hist),
            dense.coupling_term(1.5, theta, hist), **TIGHT)

    def test_batched_matches_dense_dde(self):
        model = make_model(ring(12, (1, -1)), BottleneckPotential(sigma=1.0),
                           interaction_noise=RandomInteractionNoise(
                               lo=0.0, hi=0.3, refresh=1.0))
        seeds = (0, 1, 2)
        members = [model.realize(10.0, rng=s) for s in seeds]
        stacked = BatchedBackend(members)
        assert stacked.has_delays

        rng = np.random.default_rng(4)
        r, n = len(seeds), model.n
        hist = HistoryBuffer(0.0, rng.normal(0, 1, (r, n)))
        for t in (0.4, 0.8, 1.2):
            hist.append(t, rng.normal(0, 1, (r, n)),
                        f=rng.normal(0, 0.1, (r, n)))
        thetas = rng.normal(0, 1, (r, n))
        got = stacked.coupling(1.2, thetas, hist)
        for i, m in enumerate(members):
            # Per-member reference through the dense kernel on the
            # member's own slice of the batched history.
            dense = DenseBackend(m)

            class _Slice:
                def __call__(self, t, _i=i):
                    return hist(t)[_i]

            np.testing.assert_allclose(got[i],
                                       dense.coupling(1.2, thetas[i],
                                                      _Slice()), **TIGHT)

    def test_one_off_delays_equivalent(self):
        model = make_model(
            ring(10, (1, -1)), TanhPotential(),
            delays=(OneOffDelay(rank=3, t_start=1.0, delay=2.0),))
        dense = model.realize(10.0, rng=0, backend="dense")
        sparse = model.realize(10.0, rng=0, backend="sparse")
        theta = np.random.default_rng(0).normal(0, 1, model.n)
        for t in (0.5, 2.0, 4.0):   # before / inside / after the stall
            np.testing.assert_allclose(sparse.rhs(t, theta),
                                       dense.rhs(t, theta), **TIGHT)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       scale=st.floats(min_value=0.01, max_value=20.0))
def test_property_sparse_equals_dense_on_random_states(seed, scale):
    """Property: for arbitrary phase states the kernels agree."""
    model = make_model(ring(24, (1, -1, -2)), BottleneckPotential(sigma=1.3))
    dense = model.realize(5.0, rng=11, backend="dense")
    sparse = model.realize(5.0, rng=11, backend="sparse")
    theta = np.random.default_rng(seed).normal(0.0, scale, model.n)
    np.testing.assert_allclose(sparse.rhs(0.0, theta),
                               dense.rhs(0.0, theta), **TIGHT)


class TestSelection:
    def test_available_backends(self):
        assert available_backends() == ("auto", "dense", "sparse")

    def test_auto_prefers_sparse_for_ring(self):
        model = make_model(ring(64, (1, -1)), TanhPotential())
        assert model.realize(5.0, rng=0).backend_name == "sparse"

    def test_auto_prefers_dense_for_all_to_all(self):
        model = make_model(all_to_all(16), TanhPotential())
        assert model.realize(5.0, rng=0).backend_name == "dense"

    def test_density_threshold_rule(self):
        topo = ring(64, (1, -1))
        assert topo.density <= SPARSE_DENSITY_THRESHOLD
        assert auto_backend_name(topo) == "sparse"
        assert auto_backend_name(all_to_all(8)) == "dense"

    def test_explicit_override_wins(self):
        model = make_model(ring(64, (1, -1)), TanhPotential(),
                           backend="dense")
        assert model.realize(5.0, rng=0).backend_name == "dense"
        assert model.realize(5.0, rng=0,
                             backend="sparse").backend_name == "sparse"

    def test_unknown_backend_rejected_by_model(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_model(ring(8, (1, -1)), TanhPotential(), backend="gpu")

    def test_unknown_backend_rejected_by_factory(self):
        model = make_model(ring(8, (1, -1)), TanhPotential())
        realized = model.realize(5.0, rng=0)
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend(realized, "fancy")

    def test_describe_reports_backend(self):
        model = make_model(ring(8, (1, -1)), TanhPotential())
        assert model.describe()["backend"] == "auto"
        realized = model.realize(5.0, rng=0)
        assert realized.backend.describe()["backend"] == realized.backend_name


class TestTopologyViews:
    def test_edge_list_matches_matrix(self):
        topo = torus2d(3, 4)
        rows, cols = topo.edge_list()
        assert rows.shape == cols.shape == (topo.n_edges,)
        m = np.zeros_like(topo.matrix)
        m[rows, cols] = 1.0
        np.testing.assert_array_equal(m, topo.matrix)

    def test_edge_list_is_cached_and_readonly(self):
        topo = ring(12, (1, -1))
        a = topo.edge_list()
        b = topo.edge_list()
        assert a[0] is b[0] and a[1] is b[1]
        with pytest.raises(ValueError):
            a[0][0] = 5

    def test_csr_matches_neighbors(self):
        topo = chain(9, (1, -1))
        indptr, indices = topo.csr()
        assert indptr[0] == 0 and indptr[-1] == topo.n_edges
        for i in range(topo.n):
            np.testing.assert_array_equal(
                indices[indptr[i]:indptr[i + 1]], topo.neighbors(i))

    def test_density(self):
        assert all_to_all(4).density == pytest.approx(12 / 16)
        assert ring(100, (1, -1)).density == pytest.approx(200 / 10000)


class TestBatchedBackendValidation:
    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchedBackend([])

    def test_mismatched_n_rejected(self):
        a = make_model(ring(8, (1, -1)), TanhPotential()).realize(5.0, rng=0)
        b = make_model(ring(10, (1, -1)), TanhPotential()).realize(5.0, rng=0)
        with pytest.raises(ValueError, match="disagree on N"):
            BatchedBackend([a, b])

    def test_mismatched_period_rejected(self):
        a = make_model(ring(8, (1, -1)), TanhPotential(),
                       v_p_override=2.0).realize(5.0, rng=0)
        b = make_model(ring(8, (1, -1)), TanhPotential(), t_comp=0.5,
                       v_p_override=2.0).realize(5.0, rng=0)
        with pytest.raises(ValueError, match="period"):
            BatchedBackend([a, b])

    def test_mismatched_topology_rejected(self):
        a = make_model(ring(8, (1, -1)), TanhPotential(),
                       v_p_override=2.0).realize(5.0, rng=0)
        b = make_model(chain(8, (1, -1)), TanhPotential(),
                       v_p_override=2.0).realize(5.0, rng=0)
        with pytest.raises(ValueError, match="topology"):
            BatchedBackend([a, b])

    def test_mismatched_potential_rejected(self):
        a = make_model(ring(8, (1, -1)), TanhPotential()).realize(5.0, rng=0)
        b = make_model(ring(8, (1, -1)),
                       BottleneckPotential(sigma=1.0)).realize(5.0, rng=0)
        with pytest.raises(ValueError, match="potential"):
            BatchedBackend([a, b])

    def test_mismatched_delay_schedule_rejected(self):
        # intrinsic_frequency broadcasts member 0's schedule, so a
        # member without the delay must not batch silently.
        a = make_model(ring(8, (1, -1)), TanhPotential(),
                       delays=(OneOffDelay(rank=2, t_start=1.0,
                                           delay=2.0),)).realize(5.0, rng=0)
        b = make_model(ring(8, (1, -1)),
                       TanhPotential()).realize(5.0, rng=0)
        with pytest.raises(ValueError, match="delay schedule"):
            BatchedBackend([a, b])

    def test_shared_delay_schedule_accepted_and_applied(self):
        model = make_model(ring(8, (1, -1)), TanhPotential(),
                           delays=(OneOffDelay(rank=2, t_start=1.0,
                                               delay=2.0),))
        members = [model.realize(5.0, rng=s) for s in range(3)]
        stacked = BatchedBackend(members)
        freq = stacked.intrinsic_frequency(1.5)    # inside the stall
        assert np.all(freq[:, 2] == 0.0)
        assert np.all(freq[:, [0, 1, 3]] > 0.0)

    def test_equal_models_accepted_without_shared_objects(self):
        # Two separately-constructed but identical models batch fine.
        a = make_model(ring(8, (1, -1)), TanhPotential()).realize(5.0, rng=0)
        b = make_model(ring(8, (1, -1)), TanhPotential()).realize(5.0, rng=1)
        assert BatchedBackend([a, b]).n_members == 2

    def test_single_state_backend_compiles_lazily(self):
        # The batched path stacks many realisations and never touches
        # their single-state backends — they must not be compiled.
        model = make_model(ring(8, (1, -1)), TanhPotential())
        members = [model.realize(5.0, rng=s) for s in range(3)]
        BatchedBackend(members)
        assert all(m._backend is None for m in members)
        members[0].rhs(0.0, np.zeros(8))   # first use compiles
        assert members[0]._backend is not None

    def test_zeta_stack_used_for_shared_grid(self):
        model = make_model(ring(8, (1, -1)), TanhPotential(),
                           local_noise=GaussianJitter(std=0.01, refresh=0.5))
        members = [model.realize(5.0, rng=s) for s in range(3)]
        stacked = BatchedBackend(members)
        assert stacked._zeta_stack is not None
        got = stacked.intrinsic_frequency(1.3)
        ref = np.stack([m.intrinsic_frequency(1.3) for m in members])
        np.testing.assert_allclose(got, ref, **TIGHT)


class TestShapeAgnosticIntegration:
    def test_error_norm_reduces_per_member(self):
        from repro.integrate import error_norm
        # Member 0 has zero error, member 1 a large one: the batched
        # norm must be the worst member's, not the pooled RMS.
        err = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.zeros((2, 2))
        batched = error_norm(err, y, y, rtol=0.0, atol=1.0)
        single = error_norm(err[1], y[1], y[1], rtol=0.0, atol=1.0)
        assert batched == pytest.approx(single)

    def test_dopri_batched_matches_member_solves(self):
        from repro.integrate import solve_dopri45
        a = np.array([0.5, 1.0, 2.0])

        def f(t, y):
            return -a * y          # broadcasts over (R, 3)

        y0 = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        sol = solve_dopri45(f, (0.0, 2.0), y0, rtol=1e-9, atol=1e-12)
        assert sol.success
        np.testing.assert_allclose(sol.ys[-1], y0 * np.exp(-2.0 * a),
                                   rtol=1e-7)

    def test_dense_output_works_for_batched_states(self):
        from repro.integrate import solve_dopri45
        y0 = np.ones((3, 4))
        sol = solve_dopri45(lambda t, y: -y, (0.0, 1.0), y0)
        mid = sol(0.5)
        assert mid.shape == (3, 4)
        np.testing.assert_allclose(mid, np.exp(-0.5) * y0, rtol=1e-6)
