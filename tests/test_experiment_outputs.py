"""Tests for the CSV artefacts the experiments write (the files a user
plots the paper's figures from)."""

import json

import numpy as np
import pytest

from repro.experiments import (
    kuramoto_baseline,
    run_fig2,
    run_panel,
    sweep_beta_kappa,
    sweep_sigma,
)
from repro.viz import read_csv


class TestPanelOutputs:
    @pytest.fixture(scope="class")
    def out(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("panel")
        run_panel("fig2b", scalable=False, distances=(1, -1), sigma=1.5,
                  n_ranks=12, n_iterations=20, t_end=400.0, seed=0,
                  array_elements=1e6, out_dir=d)
        return d

    def test_phase_matrix_written(self, out):
        data = read_csv(out / "fig2b_model_phases.csv")
        assert len(data) == 12          # one column per oscillator

    def test_circle_written_on_unit_circle(self, out):
        data = read_csv(out / "fig2b_model_circle.csv")
        np.testing.assert_allclose(data["x"] ** 2 + data["y"] ** 2, 1.0,
                                   atol=1e-9)
        assert len(data["rank"]) == 12

    def test_wait_matrix_written(self, out):
        data = read_csv(out / "fig2b_trace_wait.csv")
        assert len(data) == 12
        # Waits are non-negative times.
        for col in data.values():
            assert np.all(col >= 0.0)

    def test_meta_header_is_json(self, out):
        first = (out / "fig2b_model_circle.csv").read_text().splitlines()[0]
        meta = json.loads(first[2:])
        assert meta["experiment"] == "FIG2B"


class TestSummaryOutputs:
    def test_fig2_summary_csv(self, tmp_path):
        run_fig2(n_ranks=12, n_iterations=20, t_end=400.0, seed=0,
                 out_dir=tmp_path)
        data = read_csv(tmp_path / "fig2_summary.csv")
        assert len(data["panel"]) == 4

    def test_sweep_csvs(self, tmp_path):
        sweep_beta_kappa(values=[1.0, 4.0], n_ranks=8, t_end=100.0,
                         out_dir=tmp_path)
        data = read_csv(tmp_path / "sweep_beta_kappa.csv")
        np.testing.assert_allclose(data["beta_kappa"], [1.0, 4.0])

        sweep_sigma(sigmas=[1.0], n_ranks=8, t_end=100.0,
                    out_dir=tmp_path)
        data = read_csv(tmp_path / "sweep_sigma.csv")
        assert data["theory_gap"][0] == pytest.approx(2 / 3)

    def test_kuramoto_csv(self, tmp_path):
        kuramoto_baseline(n=8, t_end=60.0, out_dir=tmp_path)
        path = tmp_path / "kuramoto_baseline.csv"
        assert path.exists()
        # Non-numeric first column: read raw text instead of read_csv.
        text = path.read_text()
        assert "sync_time_s" in text
        assert "phase_slip_rhs_change" in text
