"""Tests for the discrete-event engine."""

import pytest

from repro.simulator import EventEngine


class TestScheduling:
    def test_events_dispatch_in_time_order(self):
        eng = EventEngine()
        order = []
        eng.schedule(3.0, lambda: order.append("c"))
        eng.schedule(1.0, lambda: order.append("a"))
        eng.schedule(2.0, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        eng = EventEngine()
        order = []
        for tag in ("first", "second", "third"):
            eng.schedule(1.0, lambda t=tag: order.append(t))
        eng.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        eng = EventEngine()
        seen = []
        eng.schedule(2.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [2.5]
        assert eng.now == 2.5

    def test_schedule_after(self):
        eng = EventEngine()
        times = []
        eng.schedule(1.0, lambda: eng.schedule_after(0.5,
                                                     lambda: times.append(eng.now)))
        eng.run()
        assert times == [1.5]

    def test_scheduling_into_past_rejected(self):
        eng = EventEngine()
        eng.schedule(5.0, lambda: None)
        eng.step()
        with pytest.raises(ValueError, match="past"):
            eng.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        eng = EventEngine()
        with pytest.raises(ValueError, match="negative delay"):
            eng.schedule_after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_not_dispatched(self):
        eng = EventEngine()
        fired = []
        h = eng.schedule(1.0, lambda: fired.append(1))
        h.cancel()
        eng.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        eng = EventEngine()
        fired = []
        eng.schedule(1.0, lambda: fired.append("keep"))
        h = eng.schedule(1.0, lambda: fired.append("drop"))
        eng.schedule(2.0, lambda: fired.append("keep2"))
        h.cancel()
        eng.run()
        assert fired == ["keep", "keep2"]


class TestRunControls:
    def test_run_until_stops_before_later_events(self):
        eng = EventEngine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(5.0, lambda: fired.append(5))
        eng.run(until=3.0)
        assert fired == [1]
        assert eng.n_pending >= 1

    def test_run_resumes_after_until(self):
        eng = EventEngine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(5.0, lambda: fired.append(5))
        eng.run(until=3.0)
        eng.run()
        assert fired == [1, 5]

    def test_max_events_guard(self):
        eng = EventEngine()

        def reschedule():
            eng.schedule_after(1.0, reschedule)

        eng.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError, match="budget"):
            eng.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert EventEngine().step() is False

    def test_dispatch_counter(self):
        eng = EventEngine()
        for k in range(5):
            eng.schedule(float(k), lambda: None)
        eng.run()
        assert eng.n_dispatched == 5

    def test_events_scheduled_during_dispatch(self):
        eng = EventEngine()
        order = []

        def first():
            order.append("first")
            eng.schedule_after(0.0, lambda: order.append("nested"))

        eng.schedule(1.0, first)
        eng.schedule(1.0, lambda: order.append("second"))
        eng.run()
        # Nested zero-delay event runs after already-queued same-time ones.
        assert order == ["first", "second", "nested"]
