"""Equivalence and validation tests for the heterogeneous batched backend.

Each row of a :class:`HeteroBatchedBackend` evaluation must match the
corresponding single-member backend to machine precision even when the
members disagree on ``v_p``, period, potential, noise realisation, and
one-off delay schedule — only the topology is shared.
"""

import numpy as np
import pytest

from repro.backends import (
    BatchedBackend,
    HeteroBatchedBackend,
    make_batched_backend,
)
from repro.core import (
    BottleneckPotential,
    GaussianJitter,
    OneOffDelay,
    PhysicalOscillatorModel,
    RandomInteractionNoise,
    TanhPotential,
    chain,
    ring,
)
from repro.integrate import HistoryBuffer

TIGHT = dict(rtol=1e-13, atol=1e-13)


def make_model(**kw):
    defaults = dict(topology=ring(16, (1, -1)), potential=TanhPotential(),
                    t_comp=0.9, t_comm=0.1)
    defaults.update(kw)
    return PhysicalOscillatorModel(**defaults)


def hetero_members():
    """A deliberately mixed grid: v_p, period, potential, delays differ."""
    topo = ring(16, (1, -1))
    models = [
        make_model(topology=topo, v_p_override=0.0),
        make_model(topology=topo, v_p_override=2.5),
        make_model(topology=topo, potential=BottleneckPotential(sigma=0.7),
                   t_comp=0.5, t_comm=0.5),
        make_model(topology=topo, potential=BottleneckPotential(sigma=1.4),
                   delays=(OneOffDelay(rank=3, t_start=1.0, delay=2.0),)),
        make_model(topology=topo,
                   local_noise=GaussianJitter(std=0.02, refresh=0.5)),
    ]
    return models, [m.realize(10.0, rng=i) for i, m in enumerate(models)]


class TestHeteroEquivalence:
    def test_rows_match_single_member_backends(self):
        models, members = hetero_members()
        stacked = HeteroBatchedBackend(members)
        rng = np.random.default_rng(0)
        for t in (0.0, 1.5, 7.3):
            thetas = rng.normal(0.0, 2.0, (len(members), models[0].n))
            got = stacked.rhs(t, thetas)
            ref = np.stack([
                models[i].realize(10.0, rng=i).rhs(t, thetas[i])
                for i in range(len(members))
            ])
            np.testing.assert_allclose(got, ref, **TIGHT)

    def test_potential_groups_share_vectorised_calls(self):
        topo = ring(12, (1, -1))
        # Separately-constructed-but-equal potentials must merge into
        # one group; distinct sigmas must not.
        models = [make_model(topology=topo, potential=TanhPotential()),
                  make_model(topology=topo, potential=TanhPotential()),
                  make_model(topology=topo,
                             potential=BottleneckPotential(sigma=1.0)),
                  make_model(topology=topo,
                             potential=BottleneckPotential(sigma=2.0))]
        stacked = HeteroBatchedBackend(
            [m.realize(5.0, rng=i) for i, m in enumerate(models)])
        assert stacked.describe()["potential_groups"] == 3

    def test_mixed_delay_schedules_evaluate_per_member(self):
        topo = ring(8, (1, -1))
        delayed = make_model(topology=topo,
                             delays=(OneOffDelay(rank=2, t_start=1.0,
                                                 delay=2.0),))
        free = make_model(topology=topo)
        stacked = HeteroBatchedBackend([delayed.realize(5.0, rng=0),
                                        free.realize(5.0, rng=1)])
        freq = stacked.intrinsic_frequency(1.5)   # inside member 0's stall
        assert freq[0, 2] == 0.0
        assert freq[1, 2] > 0.0

    def test_scratch_buffers_do_not_leak_between_calls(self):
        models, members = hetero_members()
        stacked = HeteroBatchedBackend(members)
        rng = np.random.default_rng(3)
        a = rng.normal(0.0, 1.0, (len(members), models[0].n))
        b = rng.normal(0.0, 1.0, (len(members), models[0].n))
        ra1 = stacked.rhs(0.5, a).copy()
        stacked.rhs(0.5, b)
        ra2 = stacked.rhs(0.5, a)
        np.testing.assert_array_equal(ra1, ra2)

    def test_subset_matches_full_rows(self):
        models, members = hetero_members()
        stacked = HeteroBatchedBackend(members)
        idx = (1, 3)
        sub = stacked.subset(idx)
        thetas = np.random.default_rng(2).normal(
            0.0, 1.0, (len(members), models[0].n))
        full = stacked.rhs(2.0, thetas)
        part = sub.rhs(2.0, thetas[list(idx)])
        np.testing.assert_allclose(part, full[list(idx)], **TIGHT)

    def test_delayed_dde_rows_match_single_member(self):
        topo = ring(10, (1, -1))
        models = [
            make_model(topology=topo, potential=BottleneckPotential(sigma=1.0),
                       interaction_noise=RandomInteractionNoise(
                           lo=0.0, hi=0.3, refresh=1.0)),
            make_model(topology=topo, v_p_override=3.0,
                       interaction_noise=RandomInteractionNoise(
                           lo=0.0, hi=0.2, refresh=1.0)),
        ]
        members = [m.realize(5.0, rng=i) for i, m in enumerate(models)]
        stacked = HeteroBatchedBackend(members)
        assert stacked.has_delays

        rng = np.random.default_rng(4)
        r, n = len(members), topo.n
        hist = HistoryBuffer(0.0, rng.normal(0, 1, (r, n)))
        for t in (0.4, 0.8, 1.2):
            hist.append(t, rng.normal(0, 1, (r, n)),
                        f=rng.normal(0, 0.1, (r, n)))
        thetas = rng.normal(0, 1, (r, n))
        got = stacked.coupling(1.2, thetas, hist)
        for i, m in enumerate(members):
            class _Slice:
                def __call__(self, t, _i=i):
                    return hist(t)[_i]

            ref = m.coupling_term(1.2, thetas[i], _Slice())
            np.testing.assert_allclose(got[i], ref, **TIGHT)

    def test_em_drift_matches_sequential_formula(self):
        from repro.backends import frequency_from_period
        models, members = hetero_members()
        # Drop the delayed member: EM drift is ODE-only in spirit but the
        # one-off (zeta-channel) schedules stay in.
        stacked = HeteroBatchedBackend(members)
        drift = stacked.make_em_drift()
        thetas = np.random.default_rng(5).normal(
            0.0, 1.0, (len(members), models[0].n))
        got = drift(1.5, thetas)
        for i, m in enumerate(members):
            freq = frequency_from_period(
                models[i].period + m.delay_schedule(1.5, models[i].n))
            ref = freq + m.coupling_term(1.5, thetas[i])
            np.testing.assert_allclose(got[i], ref, **TIGHT)


class TestHeteroValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            HeteroBatchedBackend([])

    def test_mismatched_n_rejected(self):
        a = make_model(topology=ring(8, (1, -1))).realize(5.0, rng=0)
        b = make_model(topology=ring(10, (1, -1))).realize(5.0, rng=0)
        with pytest.raises(ValueError, match="disagree on N"):
            HeteroBatchedBackend([a, b])

    def test_mixed_same_n_topologies_accepted(self):
        # Same-N mixed topologies are a supported machine-design batch
        # (topology-axis fusion); only the homogeneous BatchedBackend
        # contract rejects them.
        a = make_model(topology=ring(8, (1, -1))).realize(5.0, rng=0)
        b = make_model(topology=chain(8, (1, -1))).realize(5.0, rng=0)
        backend = HeteroBatchedBackend([a, b], kernel="numpy")
        assert backend.describe()["mixed_topologies"]
        with pytest.raises(ValueError, match="topology"):
            BatchedBackend([a, b])

    def test_hetero_accepts_what_batched_rejects(self):
        topo = ring(8, (1, -1))
        a = make_model(topology=topo, v_p_override=1.0).realize(5.0, rng=0)
        b = make_model(topology=topo, v_p_override=4.0).realize(5.0, rng=0)
        with pytest.raises(ValueError, match="v_p"):
            BatchedBackend([a, b])
        assert HeteroBatchedBackend([a, b]).n_members == 2


class TestBatchedBackendFactory:
    def test_auto_prefers_strict_batched_for_ensembles(self):
        model = make_model()
        members = [model.realize(5.0, rng=s) for s in range(3)]
        assert make_batched_backend(members).name == "batched"

    def test_auto_falls_back_to_hetero_for_grids(self):
        topo = ring(8, (1, -1))
        members = [
            make_model(topology=topo, v_p_override=v).realize(5.0, rng=0)
            for v in (0.5, 2.0)
        ]
        assert make_batched_backend(members).name == "hetero"

    def test_explicit_name(self):
        model = make_model()
        members = [model.realize(5.0, rng=s) for s in range(2)]
        assert make_batched_backend(members, "hetero").name == "hetero"
        with pytest.raises(ValueError, match="unknown batched backend"):
            make_batched_backend(members, "gpu")

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            make_batched_backend([])
