"""Regression tests: ``run_ensemble(batched=True)`` vs. the sequential path.

With a fixed-step method the batched super-state performs exactly the
same arithmetic per member as the one-seed-at-a-time loop, so per-seed
metrics must agree to machine precision.  With the adaptive method the
members share a mesh chosen by the worst member's error norm, so metrics
agree within integrator tolerance.
"""

import numpy as np
import pytest

from repro.core import (
    BottleneckPotential,
    ConstantInteractionNoise,
    GaussianJitter,
    PhysicalOscillatorModel,
    TanhPotential,
    random_phases,
    ring,
    run_ensemble,
    simulate,
    simulate_batched,
)

METRICS = {
    "final_spread": lambda tr: float(np.ptp(tr.final_phases)),
    "mean_gap": lambda tr: float(np.abs(tr.asymptotic_gaps()).mean()),
    "mean_freq": lambda tr: float(tr.mean_frequency().mean()),
}


def noisy_model(n=16, **kw):
    defaults = dict(
        topology=ring(n, (1, -1)),
        potential=BottleneckPotential(sigma=1.0),
        t_comp=0.9, t_comm=0.1,
        local_noise=GaussianJitter(std=0.02, refresh=0.5),
    )
    defaults.update(kw)
    return PhysicalOscillatorModel(**defaults)


class TestBatchedEnsembleRegression:
    def test_rk4_batched_reproduces_sequential_exactly(self):
        model = noisy_model()
        seeds = tuple(range(6))
        seq = run_ensemble(model, 8.0, METRICS, seeds=seeds,
                           method="rk4", dt=0.02)
        bat = run_ensemble(model, 8.0, METRICS, seeds=seeds,
                           method="rk4", dt=0.02, batched=True)
        assert seq.seeds == bat.seeds
        for name in METRICS:
            np.testing.assert_allclose(bat.values[name], seq.values[name],
                                       rtol=1e-12, atol=1e-12)

    def test_dopri_batched_within_tolerance(self):
        model = noisy_model()
        seeds = tuple(range(4))
        # The adaptive meshes differ between the two paths, and
        # sample-window metrics (asymptotic_gaps) are mesh-sensitive —
        # resample both onto the same uniform mesh before comparing.
        seq = run_ensemble(model, 8.0, METRICS, seeds=seeds, rtol=1e-8,
                           atol=1e-10, n_samples=400)
        bat = run_ensemble(model, 8.0, METRICS, seeds=seeds, rtol=1e-8,
                           atol=1e-10, n_samples=400, batched=True)
        for name in METRICS:
            np.testing.assert_allclose(bat.values[name], seq.values[name],
                                       rtol=1e-4, atol=1e-5)

    def test_theta0_factory_is_per_seed(self):
        model = noisy_model(potential=TanhPotential())
        seeds = (0, 1, 2)

        def factory(seed):
            return random_phases(model.n, spread=0.5,
                                 rng=np.random.default_rng(seed))

        trajs = simulate_batched(model, 4.0, seeds=seeds,
                                 theta0_factory=factory, method="rk4",
                                 dt=0.02)
        for seed, traj in zip(seeds, trajs):
            ref = simulate(model, 4.0, theta0=factory(seed), seed=seed,
                           method="rk4", dt=0.02)
            np.testing.assert_allclose(traj.final_phases, ref.final_phases,
                                       rtol=1e-12, atol=1e-12)

    def test_batched_dde_reproduces_sequential(self):
        model = noisy_model(
            n=10,
            local_noise=GaussianJitter(std=0.01, refresh=0.5),
            interaction_noise=ConstantInteractionNoise(tau=0.05),
        )
        seeds = (0, 1, 2)
        seq = run_ensemble(model, 4.0, METRICS, seeds=seeds, dt=0.02)
        bat = run_ensemble(model, 4.0, METRICS, seeds=seeds, dt=0.02,
                           batched=True)
        for name in METRICS:
            np.testing.assert_allclose(bat.values[name], seq.values[name],
                                       rtol=1e-10, atol=1e-10)

    def test_trajectories_are_per_seed_objects(self):
        model = noisy_model()
        seeds = (3, 5, 8)
        trajs = simulate_batched(model, 3.0, seeds=seeds)
        assert [tr.seed for tr in trajs] == list(seeds)
        assert all(tr.thetas.shape[1] == model.n for tr in trajs)
        # Shared mesh across members.
        for tr in trajs[1:]:
            np.testing.assert_array_equal(tr.ts, trajs[0].ts)
        # Different noise realisations actually differ.
        assert not np.allclose(trajs[0].thetas, trajs[1].thetas)

    def test_n_samples_resamples_members(self):
        model = noisy_model()
        trajs = simulate_batched(model, 3.0, seeds=(0, 1), n_samples=50)
        assert all(tr.n_samples == 50 for tr in trajs)

    def test_em_batched_matches_sequential_seed_for_seed(self):
        # The batched Euler-Maruyama draws each member's (N,) Wiener
        # increments from its own seeded generator in the same order as
        # the sequential per-seed solve, so at equal dt the phases must
        # agree to machine precision.
        model = noisy_model()
        seeds = (0, 1, 5)
        trajs = simulate_batched(model, 4.0, seeds=seeds, method="em",
                                 dt=0.01)
        for seed, traj in zip(seeds, trajs):
            ref = simulate(model, 4.0, seed=seed, method="em", dt=0.01)
            np.testing.assert_allclose(traj.thetas, ref.thetas,
                                       rtol=1e-12, atol=1e-12)

    def test_em_ensemble_metrics_match(self):
        model = noisy_model()
        seeds = tuple(range(4))
        seq = run_ensemble(model, 4.0, METRICS, seeds=seeds, method="em",
                           dt=0.01)
        bat = run_ensemble(model, 4.0, METRICS, seeds=seeds, method="em",
                           dt=0.01, batched=True)
        for name in METRICS:
            np.testing.assert_allclose(bat.values[name], seq.values[name],
                                       rtol=1e-12, atol=1e-12)

    def test_em_with_interaction_delays_rejected(self):
        # Delays switch to the deterministic DDE path, which has no
        # diffusion term — that must fail loudly, not silently drop the
        # white noise.
        model = noisy_model(
            interaction_noise=ConstantInteractionNoise(tau=0.05))
        with pytest.raises(ValueError, match="interaction delays"):
            simulate_batched(model, 2.0, seeds=(0, 1), method="em", dt=0.01)

    def test_em_requires_gaussian_noise(self):
        model = PhysicalOscillatorModel(
            topology=ring(16, (1, -1)),
            potential=BottleneckPotential(sigma=1.0),
            t_comp=0.9, t_comm=0.1,
        )
        with pytest.raises(ValueError, match="GaussianJitter"):
            simulate_batched(model, 2.0, seeds=(0, 1), method="em", dt=0.01)

    def test_empty_seed_list_rejected(self):
        model = noisy_model()
        with pytest.raises(ValueError, match="seed"):
            simulate_batched(model, 2.0, seeds=())
