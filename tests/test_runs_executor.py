"""Tests for the sharded executor and result cache (repro.runs)."""

import numpy as np
import pytest

from repro.core import (
    BottleneckPotential,
    OneOffDelay,
    PhysicalOscillatorModel,
    ring,
    simulate_grid,
)
from repro.runs import (
    ResultCache,
    ScenarioSpec,
    compile_plan,
    run_plan,
    run_spec,
)


def grid_spec(method="rk4", t_end=6.0, axes=None, **model_extra):
    model = {
        "topology": {"kind": "ring", "n": 10, "distances": [1, -1]},
        "potential": {"kind": "bottleneck", "sigma": 1.0},
        "t_comp": 0.9,
        "t_comm": 0.1,
    }
    model.update(model_extra)
    return ScenarioSpec(
        name="exec-test",
        model=model,
        t_end=t_end,
        solver={"method": method},
        initial={"kind": "normal", "std": 1e-3, "seed": 0},
        axes=axes or [("potential.sigma", [0.5, 1.0, 1.5, 2.0]),
                      ("seed", [0, 1])],
    )


class TestJobsEquivalence:
    def test_jobs_do_not_change_bits(self):
        spec = grid_spec()
        r1 = run_spec(spec, jobs=1, shard_members=2)
        r2 = run_spec(spec, jobs=2, shard_members=2)
        assert len(r1.members) == len(r2.members) == 8
        for a, b in zip(r1.members, r2.members):
            assert a.index == b.index
            np.testing.assert_array_equal(a.ts, b.ts)
            np.testing.assert_array_equal(a.thetas, b.thetas)

    def test_fixed_step_chunking_is_split_invariant(self):
        spec = grid_spec()
        whole = run_spec(spec)
        chunked = run_spec(spec, shard_members=3, jobs=2)
        for a, b in zip(whole.members, chunked.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)

    def test_matches_preexisting_batched_grid_path(self):
        # dopri, whole-grid fusion: the routed result must be bit-for-bit
        # the PR-2 simulate_grid(batched) output.
        spec = grid_spec(method="dopri", t_end=8.0,
                         delays=[{"rank": 3, "t_start": 2.0,
                                  "delay": 1.0}])
        res = run_spec(spec, jobs=1)

        sigmas = [0.5, 1.0, 1.5, 2.0]
        topo = ring(10, (1, -1))
        theta0 = np.random.default_rng(0).normal(0.0, 1e-3, size=10)
        models = [PhysicalOscillatorModel(
            topology=topo, potential=BottleneckPotential(sigma=s),
            t_comp=0.9, t_comm=0.1,
            delays=(OneOffDelay(rank=3, t_start=2.0, delay=1.0),))
            for s in sigmas for _ in (0, 1)]
        ref = simulate_grid(models, 8.0,
                            seeds=[0, 1] * 4, theta0=theta0)
        for r, m in zip(ref, res.members):
            np.testing.assert_array_equal(r.ts, m.ts)
            np.testing.assert_array_equal(r.thetas, m.thetas)


class TestCache:
    def test_replay_is_pure_cache_hit(self, tmp_path):
        spec = grid_spec()
        cache = ResultCache(tmp_path / "cache")
        first = run_spec(spec, shard_members=2, cache=cache)
        assert first.n_executed == first.n_shards == 4
        assert first.n_cached == 0

        replay = run_spec(spec, shard_members=2, cache=cache)
        assert replay.n_executed == 0          # zero solves
        assert replay.n_cached == 4
        for a, b in zip(first.members, replay.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)

    def test_killed_campaign_resumes_from_completed_shards(self, tmp_path):
        from repro.runs.executor import execute_shard

        spec = grid_spec()
        plan = compile_plan(spec, shard_members=2)
        cache = ResultCache(tmp_path / "cache")
        # Simulate a campaign killed after two of four shards finished.
        for shard in plan.shards[:2]:
            cache.save(shard.key, execute_shard(shard.payload))

        events = []
        result = run_plan(plan, cache=cache, progress=events.append)
        assert result.n_cached == 2
        assert result.n_executed == 2
        cached_flags = {e["shard"]: e["cached"] for e in events}
        assert cached_flags == {0: True, 1: True, 2: False, 3: False}

        # and the resumed result equals a from-scratch run
        fresh = run_plan(compile_plan(spec, shard_members=2))
        for a, b in zip(result.members, fresh.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)

    def test_no_resume_recomputes(self, tmp_path):
        spec = grid_spec()
        cache = ResultCache(tmp_path / "cache")
        run_spec(spec, shard_members=2, cache=cache)
        again = run_spec(spec, shard_members=2, cache=cache, resume=False)
        assert again.n_executed == 4

    def test_cache_shared_across_jobs_settings(self, tmp_path):
        spec = grid_spec()
        cache = ResultCache(tmp_path / "cache")
        run_spec(spec, shard_members=2, jobs=2, cache=cache)
        replay = run_spec(spec, shard_members=2, jobs=1, cache=cache)
        assert replay.n_executed == 0

    def test_corrupt_blob_is_a_miss(self, tmp_path):
        spec = grid_spec()
        cache = ResultCache(tmp_path / "cache")
        plan = compile_plan(spec, shard_members=2)
        run_plan(plan, cache=cache)
        # truncate one artifact
        path = cache.store.path_for(plan.shards[0].key)
        path.write_bytes(path.read_bytes()[:40])
        result = run_plan(plan, cache=cache)
        assert result.n_executed == 1
        assert result.n_cached == 3

    def test_numerics_version_partitions_keys(self):
        from repro.runs import cache as cache_mod

        payload = compile_plan(grid_spec()).shards[0].payload
        k1 = cache_mod.shard_key(payload)
        old = cache_mod.NUMERICS_VERSION
        try:
            cache_mod.NUMERICS_VERSION = "test-bump"
            k2 = cache_mod.shard_key(payload)
        finally:
            cache_mod.NUMERICS_VERSION = old
        assert k1 != k2


class TestRunResult:
    def test_trajectories_carry_model_metadata(self):
        res = run_spec(grid_spec())
        trajs = res.trajectories()
        assert [t.model.potential.sigma for t in trajs[::2]] == \
            [0.5, 1.0, 1.5, 2.0]
        assert trajs[1].seed == 1
        assert trajs[0].n == 10

    def test_summary_table_columns(self):
        res = run_spec(grid_spec())
        table = res.summary_table()
        assert len(table["potential.sigma"]) == 8
        assert table["seed"][:2] == [0, 1]
        assert all(len(v) == 8 for v in table.values())

    def test_save_npz_roundtrip(self, tmp_path):
        res = run_spec(grid_spec())
        path = res.save_npz(tmp_path / "out.npz")
        with np.load(path) as npz:
            assert bytes(npz["spec_hash"]).decode() == \
                grid_spec().content_hash()
            np.testing.assert_array_equal(npz["thetas_3"],
                                          res.members[3].thetas)

    def test_progress_events(self):
        events = []
        run_spec(grid_spec(), shard_members=2, progress=events.append)
        assert len(events) == 4
        assert events[-1]["done"] == 4
        assert all(not e["cached"] for e in events)

    def test_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_spec(grid_spec(), jobs=0)


class TestTransportAndPinning:
    """PR-5: shared-memory shard transport and worker thread pinning."""

    def test_shm_bits_match_inline(self):
        spec = grid_spec()
        inline = run_spec(spec, jobs=1, shard_members=2)
        shm = run_spec(spec, jobs=2, shard_members=2, transport="shm")
        assert shm.transport == "shm"
        for a, b in zip(inline.members, shm.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)

    def test_pickle_bits_match_shm(self):
        spec = grid_spec()
        shm = run_spec(spec, jobs=2, shard_members=2, transport="shm")
        pickled = run_spec(spec, jobs=2, shard_members=2,
                           transport="pickle")
        assert pickled.transport == "pickle"
        for a, b in zip(shm.members, pickled.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)

    def test_bad_transport(self):
        with pytest.raises(ValueError, match="transport"):
            run_spec(grid_spec(), jobs=2, transport="carrier-pigeon")

    def test_workers_pinned_to_one_thread_by_default(self):
        res = run_spec(grid_spec(), jobs=2, shard_members=2)
        assert res.worker_omp == "1"

    def test_explicit_threads_reaches_workers(self):
        res = run_spec(grid_spec(), jobs=2, shard_members=2, threads=2)
        assert res.worker_omp == "2"

    def test_inline_run_has_no_pool_metadata(self):
        res = run_spec(grid_spec(), jobs=1, shard_members=2)
        assert res.transport is None
        assert res.worker_omp is None

    def test_threads_do_not_enter_cache_keys(self, tmp_path):
        spec = grid_spec()
        cache = ResultCache(tmp_path / "cache")
        first = run_spec(spec, jobs=2, shard_members=2, cache=cache)
        assert first.n_executed == 4
        # A different jobs/threads/transport configuration must replay
        # the same campaign as a pure cache hit.
        replay = run_spec(spec, jobs=1, shard_members=2, cache=cache,
                          threads=2, transport="pickle")
        assert replay.n_executed == 0
        assert replay.n_cached == 4
        for a, b in zip(first.members, replay.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)

    def test_shm_resume_from_partial_cache(self, tmp_path):
        spec = grid_spec()
        cache = ResultCache(tmp_path / "cache")
        full = run_spec(spec, jobs=2, shard_members=2, cache=cache)
        # Drop one stored shard; the rerun must solve exactly that one
        # (through the shm pool path is impossible with a single pending
        # shard — it runs inline — so drop two to keep the pool).
        plan = compile_plan(spec, shard_members=2)
        for shard in plan.shards[:2]:
            cache.store.delete(shard.key)
        resumed = run_spec(spec, jobs=2, shard_members=2, cache=cache)
        assert resumed.n_executed == 2
        assert resumed.n_cached == 2
        for a, b in zip(full.members, resumed.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)

    def test_no_leftover_segments(self):
        from multiprocessing import shared_memory
        import os

        run_spec(grid_spec(), jobs=2, shard_members=2)
        shm_dir = "/dev/shm"
        if os.path.isdir(shm_dir):
            leftovers = [f for f in os.listdir(shm_dir)
                         if f.startswith(f"pom-{os.getpid()}-")]
            assert leftovers == []
        else:  # pragma: no cover - non-Linux
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=f"pom-{os.getpid()}-0-x")


def _pom_segments():
    import os

    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("no /dev/shm")
    return [f for f in os.listdir("/dev/shm") if f.startswith("pom-")]


class TestPoolChaos:
    """Satellite: the PR-5 process pool survives injected faults."""

    def test_reclaim_stale_segments(self):
        from multiprocessing import shared_memory

        from repro.runs import reclaim_stale_segments

        # A segment whose embedded owner pid is dead: the crashed-worker
        # leftover that resource_tracker never saw.
        import os
        import subprocess

        dead = subprocess.Popen(["true"])
        dead.wait()
        name = f"pom-{dead.pid}-0-deadbeef"
        seg = shared_memory.SharedMemory(name=name, create=True, size=16)
        seg.close()
        try:
            from multiprocessing import resource_tracker
            resource_tracker.unregister(f"/{name}", "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
        assert os.path.exists(f"/dev/shm/{name}")
        reclaimed = reclaim_stale_segments()
        assert name in reclaimed
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_reclaim_leaves_live_segments_alone(self):
        import os
        from multiprocessing import shared_memory

        from repro.runs import reclaim_stale_segments

        name = f"pom-{os.getpid()}-9-aaaaaaaa"
        seg = shared_memory.SharedMemory(name=name, create=True, size=16)
        try:
            assert name not in reclaim_stale_segments()
            assert os.path.exists(f"/dev/shm/{name}")
        finally:
            seg.close()
            seg.unlink()

    def test_dropped_shm_segment_is_resolved_inline(self, monkeypatch,
                                                    tmp_path):
        """A worker's result segment vanishing (tmpfs purge, crash) must
        not lose the shard: the parent re-solves it inline."""
        import os

        monkeypatch.setenv("POM_FAULTS", "drop-shm:shard=0")
        monkeypatch.setenv("POM_FAULTS_STATE", str(tmp_path / "faults"))
        with pytest.warns(RuntimeWarning, match="re-solving inline"):
            chaos = run_spec(grid_spec(), jobs=2, shard_members=2,
                             transport="shm")
        monkeypatch.delenv("POM_FAULTS")
        monkeypatch.delenv("POM_FAULTS_STATE")
        ref = run_spec(grid_spec(), jobs=1, shard_members=2)
        for a, b in zip(ref.members, chaos.members):
            np.testing.assert_array_equal(a.thetas, b.thetas)
        assert not [s for s in _pom_segments()
                    if s.startswith(f"pom-{os.getpid()}-")]

    def test_sigkilled_pool_worker_falls_back_inline(self, monkeypatch,
                                                     tmp_path):
        """SIGKILL inside the pool breaks the whole executor
        (BrokenProcessPool); unfinished shards re-solve inline and the
        result stays bit-identical."""
        before = set(_pom_segments())
        monkeypatch.setenv("POM_FAULTS", "kill:shard=1")
        monkeypatch.setenv("POM_FAULTS_STATE", str(tmp_path / "faults"))
        with pytest.warns(RuntimeWarning, match="worker process died"):
            chaos = run_spec(grid_spec(), jobs=2, shard_members=2)
        monkeypatch.delenv("POM_FAULTS")
        monkeypatch.delenv("POM_FAULTS_STATE")
        ref = run_spec(grid_spec(), jobs=1, shard_members=2)
        assert len(chaos.members) == 8
        for a, b in zip(ref.members, chaos.members):
            np.testing.assert_array_equal(a.ts, b.ts)
            np.testing.assert_array_equal(a.thetas, b.thetas)
        # no orphaned segments survive the chaos run
        assert set(_pom_segments()) <= before
