"""Tests for the campaign planner (repro.runs.plan)."""

import pytest

from repro.core.simulation import default_dt
from repro.runs import ScenarioSpec, compile_plan


def spec_with(**overrides) -> ScenarioSpec:
    kwargs = dict(
        name="plan-test",
        model={
            "topology": {"kind": "ring", "n": 8, "distances": [1, -1]},
            "potential": {"kind": "tanh"},
            "t_comp": 0.9,
            "t_comm": 0.1,
        },
        t_end=5.0,
        solver={"method": "rk4"},
        axes=[("v_p_override", [0.5, 1.0, 2.0, 4.0])],
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestFusion:
    def test_single_group_fuses_whole_grid(self):
        plan = compile_plan(spec_with())
        assert plan.n_shards == 1
        assert plan.shards[0].n_members == 4
        assert plan.shards[0].member_indices == [0, 1, 2, 3]

    def test_topology_axis_splits_groups(self):
        plan = compile_plan(spec_with(axes=[
            ("topology.n", [8, 12]),
            ("v_p_override", [0.5, 1.0]),
        ]))
        # two topologies -> two shards, each batching its two members
        assert plan.n_shards == 2
        assert sorted(s.n_members for s in plan.shards) == [2, 2]
        assert plan.n_members == 4

    def test_t_end_axis_splits_groups(self):
        plan = compile_plan(spec_with(axes=[("t_end", [5.0, 10.0])]))
        assert plan.n_shards == 2

    def test_chunking_bounds_shard_size(self):
        plan = compile_plan(spec_with(), shard_members=3)
        assert [s.n_members for s in plan.shards] == [3, 1]
        # chunking never reorders members
        assert plan.shards[0].member_indices == [0, 1, 2]
        assert plan.shards[1].member_indices == [3]

    def test_bad_shard_members(self):
        with pytest.raises(ValueError, match="positive"):
            compile_plan(spec_with(), shard_members=0)


class TestDtResolution:
    def test_dt_is_group_minimum(self):
        spec = spec_with()
        plan = compile_plan(spec, shard_members=1)
        models = [m.build_model() for m in spec.members()]
        expected = min(default_dt(m) for m in models)
        # every chunk carries the *group* dt, not its own chunk minimum
        for shard in plan.shards:
            assert shard.payload["solver"]["dt"] == expected

    def test_explicit_dt_wins(self):
        plan = compile_plan(spec_with(solver={"method": "rk4",
                                              "dt": 0.004}))
        assert plan.shards[0].payload["solver"]["dt"] == 0.004


class TestDeterminism:
    def test_same_spec_same_keys(self):
        a = compile_plan(spec_with(), shard_members=2)
        b = compile_plan(spec_with(), shard_members=2)
        assert [s.key for s in a.shards] == [s.key for s in b.shards]

    def test_keys_differ_across_chunkings(self):
        whole = compile_plan(spec_with())
        chunked = compile_plan(spec_with(), shard_members=2)
        assert whole.shards[0].key not in {s.key for s in chunked.shards}

    def test_chunked_adaptive_gets_distinct_keys(self):
        spec = spec_with(solver={})          # dopri default
        whole = compile_plan(spec)
        chunked = compile_plan(spec, shard_members=2)
        assert all(s.payload["solver"].get("chunked_adaptive")
                   for s in chunked.shards)
        assert whole.shards[0].key not in {s.key for s in chunked.shards}
        # unsplit plans carry no marker — a shard_members bound that
        # never splits is identical to the unbounded plan
        assert "chunked_adaptive" not in whole.shards[0].payload["solver"]
        loose = compile_plan(spec, shard_members=10)
        assert loose.shards[0].key == whole.shards[0].key

    def test_key_ignores_name(self):
        a = compile_plan(spec_with(name="alpha"))
        b = compile_plan(spec_with(name="beta"))
        assert a.shards[0].key == b.shards[0].key
        assert a.spec.content_hash() != b.spec.content_hash()


class TestDescribe:
    def test_describe_shape(self):
        plan = compile_plan(spec_with(), shard_members=2)
        info = plan.describe()
        assert info["members"] == 4
        assert len(info["shards"]) == 2
        assert info["shards"][0]["method"] == "rk4"
        assert "cache" not in info
