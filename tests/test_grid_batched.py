"""Regression tests for batched parameter grids and batched EM.

``simulate_grid`` / ``grid_sweep(batched=True)`` stack all grid points
into one (R, N) super-state.  With a fixed-step method every point
performs exactly the same arithmetic as its individual solve, so phases
must agree to machine precision; the adaptive method agrees within
integrator tolerance.  The batched Euler-Maruyama must reproduce the
sequential per-seed draws bit for bit.
"""

import numpy as np
import pytest

from repro.core import (
    BottleneckPotential,
    GaussianJitter,
    OneOffDelay,
    PhysicalOscillatorModel,
    TanhPotential,
    grid_sweep,
    ring,
    simulate,
    simulate_grid,
)
from repro.experiments.sweeps import sweep_beta_kappa, sweep_sigma
from repro.viz.export import read_csv

N = 12
TOPO = ring(N, (1, -1))


def sigma_model(sigma, **kw):
    defaults = dict(
        topology=TOPO,
        potential=BottleneckPotential(sigma=float(sigma)),
        t_comp=0.9, t_comm=0.1,
        delays=(OneOffDelay(rank=2, t_start=2.0, delay=2.0),),
    )
    defaults.update(kw)
    return PhysicalOscillatorModel(**defaults)


def bk_model(bk):
    return PhysicalOscillatorModel(
        topology=TOPO, potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1, v_p_override=bk,
    )


class TestSimulateGrid:
    def test_rk4_grid_matches_looped_exactly(self):
        models = [sigma_model(s) for s in (0.5, 1.0, 2.0)]
        trajs = simulate_grid(models, 8.0, seeds=0, method="rk4", dt=0.02)
        for model, traj in zip(models, trajs):
            ref = simulate(model, 8.0, seed=0, method="rk4", dt=0.02)
            np.testing.assert_allclose(traj.thetas, ref.thetas,
                                       rtol=1e-12, atol=1e-12)
            assert traj.model is model

    def test_mixed_vp_grid_matches_looped_exactly(self):
        models = [bk_model(v) for v in (0.0, 0.5, 2.0, 8.0)]
        theta0 = np.random.default_rng(1).normal(0.0, 0.3, N)
        trajs = simulate_grid(models, 6.0, seeds=0, theta0=theta0,
                              method="rk4", dt=0.02)
        for model, traj in zip(models, trajs):
            ref = simulate(model, 6.0, theta0=theta0, seed=0,
                           method="rk4", dt=0.02)
            np.testing.assert_allclose(traj.thetas, ref.thetas,
                                       rtol=1e-12, atol=1e-12)

    def test_dopri_grid_within_tolerance(self):
        # Smooth models (no full-stall kink): two different adaptive
        # meshes agree to integrator tolerance everywhere.  The kinked
        # one-off-delay case is covered at machine precision by the
        # fixed-step tests above.
        models = [
            sigma_model(s, delays=(),
                        local_noise=GaussianJitter(std=0.02, refresh=0.5))
            for s in (0.8, 1.5)
        ]
        trajs = simulate_grid(models, 8.0, seeds=0, rtol=1e-8, atol=1e-10,
                              n_samples=300)
        for model, traj in zip(models, trajs):
            ref = simulate(model, 8.0, seed=0, rtol=1e-8, atol=1e-10,
                           n_samples=300)
            np.testing.assert_allclose(traj.thetas, ref.thetas,
                                       rtol=1e-4, atol=1e-5)

    def test_per_seed_grid(self):
        models = [sigma_model(s) for s in (0.5, 1.0)]
        trajs = simulate_grid(models, 4.0, seeds=(3, 7), method="rk4",
                              dt=0.02)
        assert [tr.seed for tr in trajs] == [3, 7]
        for model, seed, traj in zip(models, (3, 7), trajs):
            ref = simulate(model, 4.0, seed=seed, method="rk4", dt=0.02)
            np.testing.assert_allclose(traj.thetas, ref.thetas,
                                       rtol=1e-12, atol=1e-12)

    def test_em_grid_matches_looped_seed_for_seed(self):
        models = [
            sigma_model(s, local_noise=GaussianJitter(std=0.02, refresh=0.5),
                        delays=())
            for s in (0.5, 1.0, 2.0)
        ]
        trajs = simulate_grid(models, 4.0, seeds=0, method="em", dt=0.01)
        for model, traj in zip(models, trajs):
            ref = simulate(model, 4.0, seed=0, method="em", dt=0.01)
            np.testing.assert_allclose(traj.thetas, ref.thetas,
                                       rtol=1e-12, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one model"):
            simulate_grid([], 4.0)
        models = [sigma_model(1.0),
                  sigma_model(1.0, topology=ring(N + 2, (1, -1)))]
        with pytest.raises(ValueError, match="disagree on N"):
            simulate_grid(models, 4.0)
        with pytest.raises(ValueError, match="seeds"):
            simulate_grid([sigma_model(1.0)], 4.0, seeds=(1, 2))


class TestGridSweep:
    def test_batched_matches_looped_per_point(self):
        grid = {"sigma": [0.5, 1.0, 2.0]}
        looped = grid_sweep(grid, model_factory=sigma_model, t_end=6.0,
                            method="rk4", dt=0.02)
        batched = grid_sweep(grid, model_factory=sigma_model, t_end=6.0,
                             method="rk4", dt=0.02, batched=True)
        assert looped.points == batched.points
        for a, b in zip(looped.results, batched.results):
            np.testing.assert_allclose(b.thetas, a.thetas,
                                       rtol=1e-12, atol=1e-12)

    def test_runner_mode_unchanged(self):
        res = grid_sweep({"x": [1.0, 2.0]}, lambda x: x * x)
        assert res.results == [1.0, 4.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            grid_sweep({"x": [1]}, lambda x: x, model_factory=sigma_model)
        with pytest.raises(ValueError, match="exactly one"):
            grid_sweep({"x": [1]})
        with pytest.raises(ValueError, match="batched"):
            grid_sweep({"x": [1]}, lambda x: x, batched=True)
        with pytest.raises(ValueError, match="t_end"):
            grid_sweep({"sigma": [1.0]}, model_factory=sigma_model)

    def test_as_table_write_csv_round_trip(self, tmp_path):
        res = grid_sweep({"sigma": [0.5, 1.0]}, model_factory=sigma_model,
                         t_end=4.0, method="rk4", dt=0.05, batched=True)
        extractors = {
            "spread": lambda tr: float(np.ptp(tr.final_phases)),
            "seed": lambda tr: tr.seed,
        }
        table = res.as_table(extractors)
        assert list(table) == ["sigma", "spread", "seed"]
        path = res.write_csv(tmp_path / "grid.csv", extractors,
                             meta={"experiment": "test"})
        data = read_csv(path)
        np.testing.assert_allclose(data["sigma"], table["sigma"])
        np.testing.assert_allclose(data["spread"], table["spread"],
                                   rtol=1e-9)
        np.testing.assert_allclose(data["seed"], table["seed"])


class TestClaimSweepsBatched:
    def test_sweep_sigma_batched_matches_looped(self):
        kw = dict(sigmas=[0.5, 1.5], n_ranks=12, t_end=120.0)
        fast = sweep_sigma(batched=True, **kw)
        slow = sweep_sigma(batched=False, **kw)
        np.testing.assert_allclose(fast.mean_abs_gap, slow.mean_abs_gap,
                                   rtol=5e-2, atol=5e-3)
        np.testing.assert_allclose(fast.phase_spread, slow.phase_spread,
                                   rtol=5e-2, atol=5e-3)

    def test_sweep_beta_kappa_batched_matches_looped(self):
        kw = dict(values=[0.5, 4.0], n_ranks=12, t_end=120.0)
        fast = sweep_beta_kappa(batched=True, **kw)
        slow = sweep_beta_kappa(batched=False, **kw)
        np.testing.assert_allclose(fast.spread_peak, slow.spread_peak,
                                   rtol=5e-2, atol=5e-3)


class TestPerMemberStepControl:
    def test_stiff_member_substeps_alone(self):
        # One member is far stiffer than the rest; with the subset-RHS
        # hook the shared mesh follows the easy members while the stiff
        # row re-steps on its own, and the bookkeeping records it.
        from repro.integrate import solve_dopri45

        a = np.array([1.0, 1.0, 80.0])[:, None]   # per-member frequency

        def f(t, y):
            return a * np.cos(a * t) + 0.0 * y

        def subset_rhs(idx):
            sub = a[list(idx)]
            return lambda t, y: sub * np.cos(sub * t) + 0.0 * y

        y0 = np.zeros((3, 4))
        sol = solve_dopri45(f, (0.0, 2.0), y0, rtol=1e-7, atol=1e-9,
                            subset_rhs=subset_rhs)
        assert sol.success
        exact = np.broadcast_to(np.sin(2.0 * a), (3, 4))
        np.testing.assert_allclose(sol.ys[-1], exact, rtol=1e-5, atol=1e-6)
        rej = sol.stats.member_rejections
        assert rej is not None
        assert rej[2] > 0
        # The easy members must not have been the bottleneck.
        assert rej[2] >= rej[0] and rej[2] >= rej[1]

    def test_member_rejections_tracked_without_subset_hook(self):
        from repro.integrate import solve_dopri45

        a = np.array([1.0, 50.0])[:, None]
        sol = solve_dopri45(lambda t, y: -a * y, (0.0, 1.0),
                            np.ones((2, 3)), rtol=1e-9, atol=1e-12)
        assert sol.success
        assert sol.stats.member_rejections is not None

    def test_grid_solve_succeeds_with_wildly_mixed_stiffness(self):
        models = [bk_model(v) for v in (0.0, 0.1, 30.0)]
        theta0 = np.random.default_rng(0).normal(0.0, 0.5, N)
        trajs = simulate_grid(models, 10.0, seeds=0, theta0=theta0)
        for model, traj in zip(models, trajs):
            ref = simulate(model, 10.0, theta0=theta0, seed=0,
                           n_samples=200)
            np.testing.assert_allclose(traj.resample(200).thetas, ref.thetas,
                                       rtol=1e-3, atol=1e-4)

    def test_stats_merge_sums_member_rejections(self):
        from repro.integrate import SolverStats

        a = SolverStats(n_rhs=1, member_rejections=np.array([1, 2]))
        b = SolverStats(n_rhs=2, member_rejections=np.array([3, 4]))
        m = a.merge(b)
        np.testing.assert_array_equal(m.member_rejections, [4, 6])
        assert a.merge(SolverStats()).member_rejections is not None
