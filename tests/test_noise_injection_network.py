"""Tests for DES noise injection and the network model."""

import numpy as np
import pytest

from repro.core.coupling import Protocol
from repro.simulator import (
    ExponentialComputeNoise,
    GaussianComputeNoise,
    Injection,
    NetworkModel,
    NoComputeNoise,
    injection_matrix,
)


class TestInjection:
    def test_validation(self):
        with pytest.raises(ValueError):
            Injection(rank=-1, iteration=0, extra_time=1.0)
        with pytest.raises(ValueError):
            Injection(rank=0, iteration=0, extra_time=0.0)

    def test_matrix_placement(self):
        inj = [Injection(rank=2, iteration=1, extra_time=0.5),
               Injection(rank=2, iteration=1, extra_time=0.25)]
        m = injection_matrix(inj, n_ranks=4, n_iterations=3)
        assert m[1, 2] == pytest.approx(0.75)
        assert m.sum() == pytest.approx(0.75)

    def test_matrix_bounds_checked(self):
        with pytest.raises(ValueError, match="rank"):
            injection_matrix([Injection(rank=9, iteration=0,
                                        extra_time=1.0)], 4, 3)
        with pytest.raises(ValueError, match="iteration"):
            injection_matrix([Injection(rank=0, iteration=9,
                                        extra_time=1.0)], 4, 3)


class TestComputeNoise:
    def test_no_noise(self, rng):
        m = NoComputeNoise().realize(4, 5, rng)
        np.testing.assert_array_equal(m, 0.0)

    def test_gaussian_nonnegative(self, rng):
        m = GaussianComputeNoise(std=0.1).realize(10, 100, rng)
        assert np.all(m >= 0.0)
        assert m.mean() == pytest.approx(0.1 * np.sqrt(2 / np.pi), rel=0.1)

    def test_exponential_sparsity(self, rng):
        m = ExponentialComputeNoise(scale=1.0, prob=0.1).realize(
            20, 200, rng)
        frac = np.count_nonzero(m) / m.size
        assert frac == pytest.approx(0.1, abs=0.02)

    def test_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            GaussianComputeNoise(std=-1.0).realize(2, 2, rng)
        with pytest.raises(ValueError):
            ExponentialComputeNoise(scale=1.0, prob=1.5).realize(2, 2, rng)

    def test_describe(self):
        d = ExponentialComputeNoise(scale=0.5, prob=0.2).describe()
        assert d["type"] == "ExponentialComputeNoise"
        assert d["scale"] == 0.5


class TestNetworkModel:
    def test_transfer_time_formula(self):
        net = NetworkModel(latency=1e-6, bandwidth=1e9)
        assert net.transfer_time(1e6) == pytest.approx(1e-6 + 1e-3)

    def test_protocol_by_size(self):
        net = NetworkModel(eager_limit=1024.0)
        assert net.protocol_for(100.0) is Protocol.EAGER
        assert net.protocol_for(1e6) is Protocol.RENDEZVOUS

    def test_forced_protocol_wins(self):
        net = NetworkModel(eager_limit=1024.0,
                           forced_protocol=Protocol.RENDEZVOUS)
        assert net.protocol_for(1.0) is Protocol.RENDEZVOUS

    def test_with_protocol_copy(self):
        net = NetworkModel()
        pinned = net.with_protocol(Protocol.RENDEZVOUS)
        assert pinned.forced_protocol is Protocol.RENDEZVOUS
        assert net.forced_protocol is None
        assert pinned.latency == net.latency

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency=-1.0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-5.0)

    def test_describe(self):
        d = NetworkModel().describe()
        assert d["forced_protocol"] is None
        assert d["latency_us"] == pytest.approx(1.5)
