"""Tests for the metrics package (order parameter, phase, sync, wave)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    SyncState,
    adjacent_gaps,
    arrival_times,
    classify,
    comoving,
    fixed_point_residual,
    gap_statistics,
    lagger_baseline,
    mean_phase,
    measure_wave_speed,
    order_parameter,
    order_parameter_series,
    paired_wave_decay,
    phase_spread,
    phase_spread_series,
    settle_time,
    splay_order_parameter,
    wave_decay,
)


class TestOrderParameter:
    def test_synchronized_is_one(self):
        assert order_parameter(np.full(10, 1.234)) == pytest.approx(1.0)

    def test_antipodal_pair_is_zero(self):
        assert order_parameter(np.array([0.0, np.pi])) == pytest.approx(
            0.0, abs=1e-12)

    def test_uniform_splay_is_zero(self):
        n = 8
        theta = 2 * np.pi * np.arange(n) / n
        assert order_parameter(theta) == pytest.approx(0.0, abs=1e-12)

    def test_series_shape(self):
        thetas = np.zeros((7, 5))
        assert order_parameter_series(thetas).shape == (7,)

    def test_mean_phase_of_cluster(self):
        theta = np.array([0.5, 0.5, 0.5])
        assert mean_phase(theta) == pytest.approx(0.5)

    def test_splay_formula_matches_direct(self):
        n, gap = 12, 0.37
        theta = np.arange(n) * gap
        direct = order_parameter(theta)
        formula = splay_order_parameter(n, gap)
        assert formula == pytest.approx(direct, abs=1e-12)

    def test_splay_formula_limits(self):
        assert splay_order_parameter(5, 0.0) == 1.0
        assert splay_order_parameter(8, 2 * np.pi / 8) == pytest.approx(
            0.0, abs=1e-12)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            order_parameter(np.array([]))


class TestPhaseMetrics:
    def test_spread(self):
        assert phase_spread(np.array([0.0, 1.0, 0.2])) == pytest.approx(1.0)

    def test_spread_series(self):
        thetas = np.array([[0.0, 1.0], [0.0, 3.0]])
        np.testing.assert_allclose(phase_spread_series(thetas), [1.0, 3.0])

    def test_adjacent_gaps_periodic(self):
        theta = np.array([0.0, 0.5, 1.0])
        gaps = adjacent_gaps(theta, periodic=True)
        np.testing.assert_allclose(gaps, [0.5, 0.5, -1.0])
        assert gaps.sum() == pytest.approx(0.0)

    def test_adjacent_gaps_open(self):
        theta = np.array([0.0, 0.5, 1.0])
        np.testing.assert_allclose(adjacent_gaps(theta, periodic=False),
                                   [0.5, 0.5])

    def test_gap_statistics_tail(self):
        # Constant gaps of 0.3 in the final window.
        ts = np.linspace(0, 1, 20)
        thetas = np.arange(4)[None, :] * 0.3 + ts[:, None] * 0.0
        stats = gap_statistics(thetas, periodic=False)
        assert stats["mean"] == pytest.approx(0.3)
        assert stats["std"] == pytest.approx(0.0, abs=1e-12)

    def test_comoving_and_lagger(self):
        ts = np.linspace(0, 2, 9)
        omega = 3.0
        thetas = omega * ts[:, None] + np.array([0.0, 0.5])[None, :]
        x = comoving(ts, thetas, omega)
        np.testing.assert_allclose(x[:, 1] - x[:, 0], 0.5)
        lag = lagger_baseline(ts, thetas, omega)
        np.testing.assert_allclose(lag[:, 0], 0.0, atol=1e-12)


class TestClassify:
    def _traj(self, offsets, n_t=60, t_end=10.0, omega=2 * np.pi,
              drift_fn=None):
        ts = np.linspace(0.0, t_end, n_t)
        thetas = omega * ts[:, None] + np.asarray(offsets)[None, :]
        if drift_fn is not None:
            thetas = thetas + drift_fn(ts)[:, None] * np.arange(
                len(offsets))[None, :]
        return ts, thetas

    def test_synchronized_state(self):
        ts, thetas = self._traj(np.zeros(6))
        v = classify(ts, thetas, 2 * np.pi)
        assert v.state is SyncState.SYNCHRONIZED
        assert v.final_spread == pytest.approx(0.0, abs=1e-12)

    def test_desynchronized_state(self):
        ts, thetas = self._traj(np.arange(6) * 0.5)
        v = classify(ts, thetas, 2 * np.pi)
        assert v.state is SyncState.DESYNCHRONIZED
        assert v.mean_abs_gap == pytest.approx(0.5)
        assert v.gap_uniformity == pytest.approx(1.0)

    def test_zigzag_ring_state_counts_as_desync(self):
        offsets = np.array([0.0, 0.6] * 4)
        ts, thetas = self._traj(offsets)
        v = classify(ts, thetas, 2 * np.pi)
        assert v.state is SyncState.DESYNCHRONIZED
        assert v.mean_abs_gap == pytest.approx(0.6)
        # Signed mean is ~0 on the zigzag.
        assert abs(v.mean_gap) < 0.1

    def test_transient_shrinking_spread(self):
        # Spread decaying towards sync at the end: TRANSIENT.
        ts = np.linspace(0.0, 10.0, 80)
        decay = np.exp(-0.2 * ts)
        thetas = 2 * np.pi * ts[:, None] + np.outer(decay, np.arange(4))
        v = classify(ts, thetas, 2 * np.pi, drift_tol=1e-4)
        assert v.state is SyncState.TRANSIENT

    def test_incoherent_growing_spread(self):
        ts = np.linspace(0.0, 10.0, 80)
        growth = 0.1 * ts
        thetas = 2 * np.pi * ts[:, None] + np.outer(growth, np.arange(4))
        v = classify(ts, thetas, 2 * np.pi, drift_tol=1e-4)
        assert v.state is SyncState.INCOHERENT

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            classify(np.zeros(3), np.zeros((4, 2)), 1.0)


class TestSettleTime:
    def test_sync_settle_time(self):
        ts = np.linspace(0.0, 10.0, 101)
        spread = np.where(ts < 4.0, 1.0, 0.01)
        thetas = np.zeros((101, 2))
        thetas[:, 1] = spread
        st_ = settle_time(ts, thetas, omega=0.0, tol=0.05)
        assert st_ == pytest.approx(4.0, abs=0.2)

    def test_never_settles(self):
        ts = np.linspace(0.0, 10.0, 50)
        thetas = np.zeros((50, 2))
        thetas[:, 1] = 1.0
        assert settle_time(ts, thetas, omega=0.0, tol=0.05) == float("inf")

    def test_desync_mode_requires_target(self):
        ts = np.linspace(0.0, 1.0, 5)
        with pytest.raises(ValueError, match="target_gap"):
            settle_time(ts, np.zeros((5, 3)), 0.0, mode="desync")

    def test_desync_settle(self):
        ts = np.linspace(0.0, 10.0, 101)
        gap = np.where(ts < 3.0, 0.0, 0.5)
        thetas = np.outer(np.ones(101), np.arange(3)) * gap[:, None]
        st_ = settle_time(ts, thetas, 0.0, tol=0.05, mode="desync",
                          target_gap=0.5)
        assert st_ == pytest.approx(3.0, abs=0.2)

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            settle_time(np.zeros(3), np.zeros((3, 2)), 0.0, mode="x")


class TestFixedPointResidual:
    def test_zero_for_common_frequency(self):
        ts = np.linspace(0, 1, 10)
        thetas = 3.0 * ts[:, None] + np.array([0.0, 1.0])[None, :]
        assert fixed_point_residual(thetas, ts) == pytest.approx(0.0,
                                                                 abs=1e-12)

    def test_positive_for_unequal_frequencies(self):
        ts = np.linspace(0, 1, 10)
        thetas = np.stack([1.0 * ts, 2.0 * ts], axis=1)
        assert fixed_point_residual(thetas, ts) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            fixed_point_residual(np.zeros((1, 2)), np.zeros(1))


class TestWaveMetrics:
    def _wave_traj(self, n=12, speed=2.0, amp=0.5, omega=2 * np.pi,
                   t_end=10.0, n_t=400, src=4, t0=1.0):
        """Synthetic wave: rank at distance d drops by amp at t0 + d/speed."""
        ts = np.linspace(0.0, t_end, n_t)
        idx = np.arange(n)
        raw = np.abs(idx - src)
        dist = np.minimum(raw, n - raw)
        arrive = t0 + dist / speed
        thetas = omega * ts[:, None] - amp * (ts[:, None] >= arrive[None, :])
        return ts, thetas, dist

    def test_arrival_times_ordering(self):
        ts, thetas, dist = self._wave_traj()
        arr = arrival_times(ts, thetas, 2 * np.pi, 4, threshold=0.1,
                            t_injection=0.5)
        # Arrival grows with distance.
        finite = np.isfinite(arr)
        assert np.all(finite)
        order = np.argsort(dist)
        assert np.all(np.diff(arr[order]) >= -1e-9)

    def test_measured_speed_matches_construction(self):
        for speed in (0.5, 1.0, 3.0):
            ts, thetas, _ = self._wave_traj(speed=speed)
            fit = measure_wave_speed(ts, thetas, 2 * np.pi, 4,
                                     threshold=0.1, t_injection=0.5)
            assert fit.speed == pytest.approx(speed, rel=0.15)

    def test_unreached_ranks_reported(self):
        ts, thetas, dist = self._wave_traj(speed=0.3, t_end=5.0)
        fit = measure_wave_speed(ts, thetas, 2 * np.pi, 4, threshold=0.1,
                                 t_injection=0.5)
        assert fit.n_reached < 11

    def test_no_wave_gives_nan(self):
        ts = np.linspace(0, 5, 100)
        thetas = 2 * np.pi * ts[:, None] * np.ones((1, 8))
        fit = measure_wave_speed(ts, thetas, 2 * np.pi, 3)
        assert np.isnan(fit.speed)

    def test_decay_length_of_damped_wave(self):
        n, src, L = 16, 5, 3.0
        ts = np.linspace(0, 10, 300)
        idx = np.arange(n)
        raw = np.abs(idx - src)
        dist = np.minimum(raw, n - raw)
        amp = np.exp(-dist / L)
        thetas = 2 * np.pi * ts[:, None] - amp[None, :] * (
            ts[:, None] >= 1.0 + dist[None, :])
        res = wave_decay(ts, thetas, 2 * np.pi, src, t_injection=0.5)
        assert res["decay_length"] == pytest.approx(L, rel=0.1)

    def test_paired_decay_matches_unpaired_noise_free(self):
        ts, thetas, dist = self._wave_traj()
        base = 2 * np.pi * ts[:, None] * np.ones((1, 12))
        paired = paired_wave_decay(base, thetas, 4)
        assert paired["max_deficit"].max() == pytest.approx(0.5, abs=1e-9)

    def test_paired_requires_same_shape(self):
        with pytest.raises(ValueError, match="shapes"):
            paired_wave_decay(np.zeros((5, 3)), np.zeros((4, 3)), 0)

    def test_source_validation(self):
        with pytest.raises(ValueError, match="source"):
            arrival_times(np.zeros(3), np.zeros((3, 4)), 1.0, 9)


@settings(max_examples=50, deadline=None)
@given(theta=st.lists(st.floats(min_value=-100.0, max_value=100.0),
                      min_size=1, max_size=40))
def test_property_order_parameter_in_unit_interval(theta):
    r = order_parameter(np.asarray(theta))
    assert -1e-12 <= r <= 1.0 + 1e-12


@settings(max_examples=50, deadline=None)
@given(theta=st.lists(st.floats(min_value=-10.0, max_value=10.0),
                      min_size=2, max_size=20),
       shift=st.floats(min_value=-10.0, max_value=10.0))
def test_property_order_parameter_shift_invariant(theta, shift):
    a = order_parameter(np.asarray(theta))
    b = order_parameter(np.asarray(theta) + shift)
    assert a == pytest.approx(b, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(theta=st.lists(st.floats(min_value=-10.0, max_value=10.0),
                      min_size=2, max_size=20))
def test_property_periodic_gaps_sum_to_zero(theta):
    gaps = adjacent_gaps(np.asarray(theta), periodic=True)
    assert gaps.sum() == pytest.approx(0.0, abs=1e-9)
