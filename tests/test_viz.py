"""Tests for the ASCII renderers and CSV/JSON exporters."""

import json

import numpy as np
import pytest

from repro.viz import (
    circle_animation_frames,
    circle_diagram,
    circle_frame,
    heatmap,
    phase_clusters,
    read_csv,
    sparkline,
    timeline,
    write_csv,
    write_json,
    write_matrix,
)
from repro.core import PhysicalOscillatorModel, TanhPotential, ring, simulate


class TestAscii:
    def test_heatmap_dimensions(self):
        m = np.random.default_rng(0).random((30, 8))
        out = heatmap(m, width=40, title="test")
        lines = out.splitlines()
        assert lines[0] == "test"
        assert len(lines) == 1 + 8 + 1      # title + ranks + footer

    def test_heatmap_rejects_1d(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(5))

    def test_heatmap_constant_matrix(self):
        out = heatmap(np.ones((4, 3)))
        assert "value" in out

    def test_circle_diagram_renders_all(self):
        theta = np.linspace(0, 2 * np.pi, 8, endpoint=False)
        out = circle_diagram(theta)
        digits = sum(c.isdigit() for c in out)
        assert digits >= 6   # collisions possible at low resolution

    def test_circle_diagram_cluster_collapses(self):
        out = circle_diagram(np.zeros(9))
        assert "9" in out

    def test_timeline_legend(self):
        w = np.random.default_rng(1).random((10, 4)) * 0.1
        out = timeline(w, title="t")
        assert "compute" in out
        assert out.splitlines()[0] == "t"

    def test_sparkline_length(self):
        s = sparkline(np.arange(100), width=20)
        assert len(s) == 20

    def test_sparkline_validation(self):
        with pytest.raises(ValueError):
            sparkline(np.array([]))


class TestCircleData:
    def make_traj(self):
        m = PhysicalOscillatorModel(topology=ring(6, (1, -1)),
                                    potential=TanhPotential(),
                                    t_comp=0.9, t_comm=0.1)
        return simulate(m, 3.0, seed=0)

    def test_circle_frame_fields(self):
        fr = circle_frame(self.make_traj())
        assert fr.angles.shape == (6,)
        np.testing.assert_allclose(fr.x**2 + fr.y**2, 1.0, atol=1e-12)

    def test_animation_frames(self):
        frames = circle_animation_frames(self.make_traj(), n_frames=7)
        assert len(frames) == 7
        assert frames[0].t <= frames[-1].t

    def test_phase_clusters_single_cluster(self):
        clusters = phase_clusters(np.full(5, 0.3))
        assert len(clusters) == 1
        assert len(clusters[0]) == 5

    def test_phase_clusters_two_groups(self):
        angles = np.array([0.0, 0.05, np.pi, np.pi + 0.05])
        clusters = phase_clusters(angles, gap_threshold=1.0)
        assert len(clusters) == 2
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [2, 2]

    def test_phase_clusters_wraparound(self):
        # Cluster spanning the 0/2pi seam must not be split.
        angles = np.array([6.2, 0.05, 0.1])
        clusters = phase_clusters(angles, gap_threshold=1.0)
        assert len(clusters) == 1

    def test_phase_clusters_empty(self):
        assert phase_clusters(np.array([])) == []


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "x.csv",
                         {"a": [1.0, 2.0], "b": [3.0, 4.0]},
                         meta={"experiment": "TEST"})
        data = read_csv(path)
        np.testing.assert_allclose(data["a"], [1.0, 2.0])
        np.testing.assert_allclose(data["b"], [3.0, 4.0])
        first = path.read_text().splitlines()[0]
        assert first.startswith("# ")
        assert json.loads(first[2:])["experiment"] == "TEST"

    def test_csv_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="lengths"):
            write_csv(tmp_path / "x.csv", {"a": [1], "b": [1, 2]})

    def test_csv_empty_columns_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="one column"):
            write_csv(tmp_path / "x.csv", {})

    def test_json_numpy_conversion(self, tmp_path):
        path = write_json(tmp_path / "y.json",
                          {"arr": np.arange(3), "val": np.float64(1.5)})
        payload = json.loads(path.read_text())
        assert payload["arr"] == [0, 1, 2]
        assert payload["val"] == 1.5

    def test_matrix_roundtrip(self, tmp_path):
        m = np.arange(12.0).reshape(4, 3)
        path = write_matrix(tmp_path / "m.csv", m)
        data = read_csv(path)
        np.testing.assert_allclose(data["c1"], m[:, 1])

    def test_matrix_rejects_1d(self, tmp_path):
        with pytest.raises(ValueError):
            write_matrix(tmp_path / "m.csv", np.zeros(4))

    def test_directories_created(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "nested" / "f.csv",
                         {"a": [1.0]})
        assert path.exists()
