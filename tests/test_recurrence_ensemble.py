"""Tests for the max-plus recurrence and the ensemble utilities."""

import numpy as np
import pytest

from repro.analysis import maxplus_iteration_ends, predicted_wave_cone
from repro.core import (
    GaussianJitter,
    PhysicalOscillatorModel,
    TanhPotential,
    grid_sweep,
    ring,
    run_ensemble,
)
from repro.core.coupling import Protocol
from repro.metrics import order_parameter, phase_spread
from repro.simulator import (
    ClusterSimulator,
    GaussianComputeNoise,
    Injection,
    MachineSpec,
    NetworkModel,
    PiSolverKernel,
    ProgramSpec,
    StreamTriadKernel,
)


def compute_spec(n_ranks=8, n_iters=10, distances=(1, -1), **kw):
    m = MachineSpec(nodes=2, sockets_per_node=2, cores_per_socket=4,
                    socket_bandwidth=40e9, core_bandwidth=10e9,
                    core_flops=30e9)
    return ProgramSpec(n_ranks=n_ranks, n_iterations=n_iters,
                       kernel=PiSolverKernel(1e5, machine=m), machine=m,
                       distances=distances, **kw)


class TestMaxPlusRecurrence:
    def test_exactly_matches_des_silent(self):
        spec = compute_spec()
        analytic = maxplus_iteration_ends(spec)
        des = ClusterSimulator(spec, seed=0).run().iteration_ends
        np.testing.assert_allclose(analytic, des, rtol=1e-12, atol=1e-15)

    def test_exactly_matches_des_with_injection(self):
        spec = compute_spec(n_ranks=10, n_iters=14)
        inj = [Injection(rank=3, iteration=4, extra_time=2e-3)]
        analytic = maxplus_iteration_ends(spec, injections=inj)
        des = ClusterSimulator(spec, injections=inj,
                               seed=0).run().iteration_ends
        np.testing.assert_allclose(analytic, des, rtol=1e-12, atol=1e-15)

    def test_exactly_matches_des_with_noise(self):
        spec = compute_spec(n_ranks=6, n_iters=12)
        noise = GaussianComputeNoise(std=0.3 * spec.kernel.core_time)
        analytic = maxplus_iteration_ends(spec, compute_noise=noise, seed=7)
        des = ClusterSimulator(spec, compute_noise=noise,
                               seed=7).run().iteration_ends
        np.testing.assert_allclose(analytic, des, rtol=1e-12, atol=1e-15)

    def test_exactly_matches_des_asymmetric_distances(self):
        spec = compute_spec(n_ranks=10, n_iters=12, distances=(1, -1, -2))
        inj = [Injection(rank=2, iteration=3, extra_time=1e-3)]
        analytic = maxplus_iteration_ends(spec, injections=inj)
        des = ClusterSimulator(spec, injections=inj,
                               seed=0).run().iteration_ends
        np.testing.assert_allclose(analytic, des, rtol=1e-12, atol=1e-15)

    def test_rejects_memory_bound(self):
        m = MachineSpec(nodes=1, sockets_per_node=1, cores_per_socket=4,
                        socket_bandwidth=40e9, core_bandwidth=10e9,
                        core_flops=30e9)
        spec = ProgramSpec(n_ranks=4, n_iterations=3,
                           kernel=StreamTriadKernel(1e6), machine=m,
                           distances=(1, -1))
        with pytest.raises(ValueError, match="compute-bound"):
            maxplus_iteration_ends(spec)

    def test_rejects_rendezvous(self):
        spec = compute_spec(
            network=NetworkModel(forced_protocol=Protocol.RENDEZVOUS))
        with pytest.raises(ValueError, match="eager"):
            maxplus_iteration_ends(spec)

    def test_rejects_barriers(self):
        spec = compute_spec(barrier_interval=2)
        with pytest.raises(ValueError, match="barrier"):
            maxplus_iteration_ends(spec)


class TestWaveCone:
    def test_next_neighbor_cone(self):
        spec = compute_spec(n_ranks=10, n_iters=20)
        cone = predicted_wave_cone(spec, source=4, iteration=3)
        assert cone[4] == 3
        # Direct receivers are late within the injection iteration.
        assert cone[5] == 3 and cone[3] == 3
        assert cone[6] == 4 and cone[2] == 4
        # Opposite side of the ring: 5 hops => 3 + 4.
        assert cone[9] == 7

    def test_asymmetric_cone_speeds(self):
        spec = compute_spec(n_ranks=12, n_iters=20, distances=(1, -1, -2))
        cone = predicted_wave_cone(spec, source=6, iteration=2)
        # Left via -2 (2 ranks/hop): rank 4 in the same iteration,
        # rank 2 one later.
        assert cone[4] == 2 and cone[2] == 3
        # Right via +1: rank 7 same iteration, rank 8 one later.
        assert cone[7] == 2 and cone[8] == 3

    def test_cone_matches_des_arrivals(self):
        """The dependency-cone bound is attained by the DES (a large
        delay reaches each rank exactly when the cone first allows)."""
        spec = compute_spec(n_ranks=10, n_iters=16)
        extra = 10.0 * spec.kernel.core_time
        inj = [Injection(rank=3, iteration=4, extra_time=extra)]
        base = maxplus_iteration_ends(spec)
        dist = maxplus_iteration_ends(spec, injections=inj)
        lag = dist - base
        cone = predicted_wave_cone(spec, source=3, iteration=4)
        for r in range(10):
            k = int(cone[r])
            assert lag[k, r] > 1e-9
            if k > 0:
                assert lag[k - 1, r] < 1e-12


class TestEnsemble:
    def make_model(self):
        return PhysicalOscillatorModel(
            topology=ring(8, (1, -1)), potential=TanhPotential(),
            t_comp=0.9, t_comm=0.1, v_p_override=8.0,
            local_noise=GaussianJitter(std=0.01, refresh=0.2))

    def test_metrics_aggregated_over_seeds(self):
        res = run_ensemble(
            self.make_model(), 10.0,
            metrics={"r": lambda t: order_parameter(t.final_phases),
                     "spread": lambda t: phase_spread(
                         t.comoving_phases()[-1])},
            seeds=range(5))
        assert res.values["r"].shape == (5,)
        assert 0.9 < res.mean("r") <= 1.0
        assert res.std("spread") >= 0.0
        assert "r" in res.summary()

    def test_seeds_recorded(self):
        res = run_ensemble(self.make_model(), 5.0,
                           metrics={"r": lambda t: 1.0}, seeds=[3, 5])
        assert res.seeds == (3, 5)

    def test_requires_metrics(self):
        with pytest.raises(ValueError, match="metric"):
            run_ensemble(self.make_model(), 5.0, metrics={})

    def test_theta0_factory_used(self):
        captured = []

        def factory(seed):
            captured.append(seed)
            return np.zeros(8)

        run_ensemble(self.make_model(), 2.0,
                     metrics={"r": lambda t: 1.0}, seeds=[1, 2],
                     theta0_factory=factory)
        assert captured == [1, 2]

    def test_quantile(self):
        res = run_ensemble(self.make_model(), 5.0,
                           metrics={"r": lambda t: order_parameter(
                               t.final_phases)}, seeds=range(4))
        q = res.quantile("r", 0.5)
        assert 0.0 <= q <= 1.0


class TestGridSweep:
    def test_cartesian_product(self):
        res = grid_sweep({"a": [1, 2], "b": [10, 20, 30]},
                         lambda a, b: a * b)
        assert len(res.points) == 6
        assert res.results[0] == 10
        assert res.results[-1] == 60

    def test_column_extraction(self):
        res = grid_sweep({"x": [1.0, 2.0, 3.0]}, lambda x: {"sq": x * x})
        col = res.column(lambda r: r["sq"])
        np.testing.assert_allclose(col, [1.0, 4.0, 9.0])

    def test_as_table(self):
        res = grid_sweep({"x": [1, 2]}, lambda x: x + 1)
        table = res.as_table({"y": lambda r: r})
        assert table["x"] == [1, 2]
        assert table["y"] == [2, 3]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep({}, lambda: None)
