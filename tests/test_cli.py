"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import REGISTRY


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_args(self):
        args = build_parser().parse_args(["run", "fig1a", "--out", "/tmp/x"])
        assert args.experiment == "fig1a"
        assert args.out == "/tmp/x"

    def test_model_defaults(self):
        args = build_parser().parse_args(["model"])
        assert args.n == 24
        assert args.potential == "tanh"
        assert args.view == "phases"

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.kernel == "pisolver"
        assert args.ranks == 40

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out
        assert "fig2" in out

    def test_run_fig1a(self, capsys, tmp_path):
        assert main(["run", "fig1a", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig1a_potentials.csv").exists()
        assert "FIG1A" in capsys.readouterr().out

    def test_model_summary_view(self, capsys):
        rc = main(["model", "--n", "8", "--t-end", "20",
                   "--view", "summary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "beta*kappa=2" in out

    def test_model_circle_view(self, capsys):
        rc = main(["model", "--n", "8", "--t-end", "10",
                   "--view", "circle"])
        assert rc == 0
        assert "asymptotic phases" in capsys.readouterr().out

    def test_model_bottleneck_with_delay(self, capsys):
        rc = main(["model", "--n", "8", "--potential", "bottleneck",
                   "--sigma", "1.0", "--t-end", "30", "--delay-rank", "2",
                   "--view", "summary"])
        assert rc == 0

    def test_model_rendezvous_waitall(self, capsys):
        rc = main(["model", "--n", "8", "--t-end", "10",
                   "--protocol", "rendezvous", "--waitall",
                   "--distances", "1,-1,-2", "--view", "summary"])
        assert rc == 0
        # beta=2, kappa=max=2 under waitall.
        assert "beta*kappa=4" in capsys.readouterr().out

    def test_trace_with_delay(self, capsys):
        rc = main(["trace", "--kernel", "pisolver", "--ranks", "8",
                   "--iters", "10", "--delay-rank", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_bad_distances_message(self):
        with pytest.raises(SystemExit, match="bad distance set"):
            main(["model", "--distances", "1,x"])

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig77"])


SPEC_JSON = """
{
  "name": "cli-grid",
  "model": {
    "topology": {"kind": "ring", "n": 10, "distances": [1, -1]},
    "potential": {"kind": "bottleneck", "sigma": 1.0},
    "t_comp": 0.9,
    "t_comm": 0.1
  },
  "t_end": 6.0,
  "solver": {"method": "rk4"},
  "initial": {"kind": "normal", "std": 0.001, "seed": 0},
  "axes": [["potential.sigma", [0.5, 1.0, 1.5]], ["seed", [0, 1]]]
}
"""


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(SPEC_JSON)
    return str(path)


class TestPlanCommand:
    def test_plan_spec_file(self, capsys, spec_file):
        assert main(["plan", spec_file, "--shard-members", "2"]) == 0
        out = capsys.readouterr().out
        assert "6 members -> 3 shard(s)" in out
        assert "method=rk4" in out

    def test_plan_registry_spec(self, capsys):
        assert main(["plan", "sigma", "--quick"]) == 0
        assert "sweep-sigma" in capsys.readouterr().out

    def test_plan_with_cache_state(self, capsys, spec_file, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["plan", spec_file, "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "[pending]" in out
        assert "0 entries" in out

    def test_plan_speclesss_experiment_rejected(self):
        with pytest.raises(SystemExit, match="no declarative scenario"):
            main(["plan", "fig1a"])


class TestRunSpecFile:
    def test_run_writes_artifacts(self, capsys, spec_file, tmp_path):
        out_dir = tmp_path / "out"
        assert main(["run", spec_file, "--shard-members", "2",
                     "--out", str(out_dir)]) == 0
        assert (out_dir / "cli-grid.csv").exists()
        assert (out_dir / "cli-grid.npz").exists()
        assert "3 shard(s) solved" in capsys.readouterr().out

    def test_jobs_equality_and_cache_replay(self, capsys, spec_file,
                                            tmp_path):
        cache = str(tmp_path / "cache")
        out1, out2 = tmp_path / "o1", tmp_path / "o2"
        assert main(["run", spec_file, "--jobs", "2", "--shard-members",
                     "2", "--cache", cache, "--out", str(out1)]) == 0
        assert main(["run", spec_file, "--jobs", "1", "--shard-members",
                     "2", "--out", str(out2)]) == 0
        with np.load(out1 / "cli-grid.npz") as a, \
                np.load(out2 / "cli-grid.npz") as b:
            assert sorted(a.files) == sorted(b.files)
            for key in a.files:
                np.testing.assert_array_equal(a[key], b[key])
        capsys.readouterr()
        # warm replay: pure cache hit
        assert main(["run", spec_file, "--jobs", "2", "--shard-members",
                     "2", "--cache", cache]) == 0
        assert "0 shard(s) solved, 3 from cache" in capsys.readouterr().out


class TestQueueInspect:
    def test_missing_queue_prints_empty_ledger(self, capsys, tmp_path):
        """Inspection must not create the database as a side effect."""
        path = tmp_path / "nope" / "q.db"
        assert main(["queue", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no such queue file" in out
        assert "pending=0" in out and "quarantined=0" in out
        assert not path.exists()
        assert not path.parent.exists()


class TestRegistrySmoke:
    """Every REGISTRY entry must run end-to-end through ``pom run``.

    Quick configurations (the entry's ``quick_kwargs``) into a tmpdir,
    so registry entries can never silently rot.
    """

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_pom_run_quick(self, name, capsys, tmp_path):
        assert main(["run", name, "--quick", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"[{REGISTRY[name].id}]" in out
        # every experiment writes at least one CSV artefact
        assert list(tmp_path.glob("*.csv")), f"{name} wrote no CSV"

    def test_orchestrated_sweep_through_pom_run(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["run", "sigma", "--quick", "--cache", cache]) == 0
        capsys.readouterr()
        # the sweep's campaign is cached: replay hits the cache
        assert main(["run", "sigma", "--quick", "--cache", cache]) == 0

    def test_orchestration_flags_noop_notice(self, capsys, tmp_path):
        assert main(["run", "fig1a", "--jobs", "2",
                     "--out", str(tmp_path)]) == 0
        assert "no effect" in capsys.readouterr().out
