"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_args(self):
        args = build_parser().parse_args(["run", "fig1a", "--out", "/tmp/x"])
        assert args.experiment == "fig1a"
        assert args.out == "/tmp/x"

    def test_model_defaults(self):
        args = build_parser().parse_args(["model"])
        assert args.n == 24
        assert args.potential == "tanh"
        assert args.view == "phases"

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.kernel == "pisolver"
        assert args.ranks == 40

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out
        assert "fig2" in out

    def test_run_fig1a(self, capsys, tmp_path):
        assert main(["run", "fig1a", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig1a_potentials.csv").exists()
        assert "FIG1A" in capsys.readouterr().out

    def test_model_summary_view(self, capsys):
        rc = main(["model", "--n", "8", "--t-end", "20",
                   "--view", "summary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "beta*kappa=2" in out

    def test_model_circle_view(self, capsys):
        rc = main(["model", "--n", "8", "--t-end", "10",
                   "--view", "circle"])
        assert rc == 0
        assert "asymptotic phases" in capsys.readouterr().out

    def test_model_bottleneck_with_delay(self, capsys):
        rc = main(["model", "--n", "8", "--potential", "bottleneck",
                   "--sigma", "1.0", "--t-end", "30", "--delay-rank", "2",
                   "--view", "summary"])
        assert rc == 0

    def test_model_rendezvous_waitall(self, capsys):
        rc = main(["model", "--n", "8", "--t-end", "10",
                   "--protocol", "rendezvous", "--waitall",
                   "--distances", "1,-1,-2", "--view", "summary"])
        assert rc == 0
        # beta=2, kappa=max=2 under waitall.
        assert "beta*kappa=4" in capsys.readouterr().out

    def test_trace_with_delay(self, capsys):
        rc = main(["trace", "--kernel", "pisolver", "--ranks", "8",
                   "--iters", "10", "--delay-rank", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_bad_distances_message(self):
        with pytest.raises(SystemExit, match="bad distance set"):
            main(["model", "--distances", "1,x"])

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig77"])
