"""End-to-end verification of the paper's quantified claims at test scale.

Each test cites the claim it checks; the full-scale numbers live in the
benchmarks and EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.analysis import compare_scenario, measure_trace_wave
from repro.core import (
    BottleneckPotential,
    CouplingSpec,
    OneOffDelay,
    PhysicalOscillatorModel,
    Protocol,
    TanhPotential,
    WaitMode,
    ring,
    simulate,
)
from repro.metrics import classify, measure_wave_speed, settle_time
from repro.simulator import (
    PiSolverKernel,
    StreamTriadKernel,
    paper_program,
    run_with_one_off_delay,
)


class TestSection51DelayPropagation:
    """Sec. 5.1: idle waves ripple through the program; speed is set by
    the coupling; scalable programs resynchronise afterwards."""

    def test_idle_wave_reaches_every_rank_model(self):
        m = PhysicalOscillatorModel(
            topology=ring(12, (1, -1)), potential=TanhPotential(),
            t_comp=0.9, t_comm=0.1, v_p_override=6.0,
            delays=(OneOffDelay(rank=3, t_start=5.0, delay=1.0),))
        traj = simulate(m, 80.0, seed=0)
        fit = measure_wave_speed(traj.ts, traj.thetas, m.omega, 3,
                                 t_injection=5.0)
        assert fit.n_reached == 11

    def test_trace_wave_speed_eager_next_neighbor_is_one(self):
        spec = paper_program(PiSolverKernel(1e6), n_ranks=20,
                             n_iterations=25, distances=(1, -1))
        base, dist = run_with_one_off_delay(spec, delay_rank=4,
                                            delay_iteration=4, seed=0)
        fit = measure_trace_wave(base, dist, 4)
        assert fit.speed_ranks_per_iteration == pytest.approx(1.0, rel=0.2)

    def test_faster_wave_with_longer_distances(self):
        speeds = {}
        for dist_set in ((1, -1), (1, -1, -2)):
            spec = paper_program(PiSolverKernel(1e6), n_ranks=20,
                                 n_iterations=25, distances=dist_set)
            base, dist = run_with_one_off_delay(spec, delay_rank=4,
                                                delay_iteration=4, seed=0)
            speeds[dist_set] = measure_trace_wave(
                base, dist, 4).speed_ranks_per_iteration
        assert speeds[(1, -1, -2)] > 1.4 * speeds[(1, -1)]

    def test_larger_beta_kappa_faster_model_wave(self):
        speeds = []
        for bk in (1.0, 4.0, 12.0):
            m = PhysicalOscillatorModel(
                topology=ring(16, (1, -1)), potential=TanhPotential(),
                t_comp=0.9, t_comm=0.1, v_p_override=bk,
                delays=(OneOffDelay(rank=3, t_start=5.0, delay=1.0),))
            traj = simulate(m, 120.0, seed=0)
            speeds.append(measure_wave_speed(traj.ts, traj.thetas, m.omega,
                                             3, t_injection=5.0).speed)
        assert speeds[0] < speeds[1] < speeds[2]

    def test_protocol_and_waitall_rules_affect_stiffness(self):
        """beta = 2 for rendezvous; kappa = max distance under waitall."""
        topo = ring(12, (1, -1, -2))
        base = CouplingSpec()
        assert CouplingSpec(protocol=Protocol.RENDEZVOUS).beta_kappa(topo) \
            == pytest.approx(2 * base.beta_kappa(topo))
        assert CouplingSpec(wait_mode=WaitMode.WAITALL).beta_kappa(topo) \
            == pytest.approx(2.0)


class TestSection52ScalabilityAndPotential:
    """Sec. 5.2: potentials encode the scaling class."""

    def test_scalable_snaps_back(self):
        """5.2.1: the system 'snaps back' into a synchronised state."""
        m = PhysicalOscillatorModel(
            topology=ring(10, (1, -1)), potential=TanhPotential(),
            t_comp=0.9, t_comm=0.1, v_p_override=6.0,
            delays=(OneOffDelay(rank=2, t_start=3.0, delay=0.8),))
        traj = simulate(m, 60.0, seed=0)
        v = classify(traj.ts, traj.thetas, m.omega)
        assert v.is_synchronized
        # And all oscillators run at the natural frequency again.
        tail = traj.tail(0.2)
        np.testing.assert_allclose(tail.mean_frequency(), m.omega,
                                   rtol=1e-3)

    def test_bottleneck_gap_settles_at_first_zero(self):
        """5.2.2: phase differences settle at the first zero 2*sigma/3."""
        for sigma in (0.75, 1.5):
            m = PhysicalOscillatorModel(
                topology=ring(10, (1, -1)),
                potential=BottleneckPotential(sigma=sigma),
                t_comp=0.9, t_comm=0.1, v_p_override=6.0)
            rng = np.random.default_rng(1)
            traj = simulate(m, 80.0, theta0=rng.normal(0, 1e-3, 10), seed=0)
            v = classify(traj.ts, traj.thetas, m.omega)
            assert v.is_desynchronized
            assert v.mean_abs_gap == pytest.approx(2 * sigma / 3, rel=0.07)

    def test_smaller_sigma_means_smaller_spread(self):
        """5.2.2: stiffer code (smaller sigma) = smaller phase spread
        and proportionally smaller gaps (the gaps scale exactly as
        2*sigma/3; the spread also shrinks, though its ratio depends on
        the domain pattern the ring freezes into)."""
        spreads, gaps = [], []
        for sigma in (0.5, 1.5):
            m = PhysicalOscillatorModel(
                topology=ring(12, (1, -1)),
                potential=BottleneckPotential(sigma=sigma),
                t_comp=0.9, t_comm=0.1, v_p_override=6.0)
            rng = np.random.default_rng(2)
            traj = simulate(m, 120.0, theta0=rng.normal(0, 1e-3, 12),
                            seed=0)
            v = classify(traj.ts, traj.thetas, m.omega)
            spreads.append(v.final_spread)
            gaps.append(v.mean_abs_gap)
        assert spreads[1] > spreads[0]
        assert gaps[1] == pytest.approx(3.0 * gaps[0], rel=0.15)

    def test_desync_survives_a_delay(self):
        """5.1.2: after the idle wave runs out, the computational
        wavefront remains."""
        m = PhysicalOscillatorModel(
            topology=ring(10, (1, -1)),
            potential=BottleneckPotential(sigma=1.0),
            t_comp=0.9, t_comm=0.1, v_p_override=6.0,
            delays=(OneOffDelay(rank=3, t_start=20.0, delay=0.5),))
        rng = np.random.default_rng(3)
        traj = simulate(m, 120.0, theta0=rng.normal(0, 1e-3, 10), seed=0)
        v = classify(traj.ts, traj.thetas, m.omega)
        assert v.is_desynchronized
        assert v.mean_abs_gap == pytest.approx(2 / 3, rel=0.1)


class TestFig2CrossValidation:
    """The model and the DES agree on the sync/desync verdict for the
    paper's four scenarios (reduced scale)."""

    @pytest.mark.parametrize("name,kernel,potential,distances", [
        ("a", PiSolverKernel(1e6), TanhPotential(), (1, -1)),
        ("b", StreamTriadKernel(2e6), BottleneckPotential(sigma=1.5),
         (1, -1)),
        ("c", PiSolverKernel(1e6), TanhPotential(), (1, -1, -2)),
        ("d", StreamTriadKernel(2e6), BottleneckPotential(sigma=0.5),
         (1, -1, -2)),
    ])
    def test_scenario_agreement(self, name, kernel, potential, distances):
        res = compare_scenario(
            f"fig2{name}", kernel=kernel, potential=potential,
            distances=distances, n_ranks=20, n_iterations=30,
            model_t_end=900.0, seed=0)
        assert res.agree, (
            f"panel {name}: model={res.model_state}, "
            f"trace_desync={res.trace_desynchronized}")


class TestResyncTimescale:
    def test_resync_time_scales_with_spectral_gap(self):
        """Linearised resync rate = (v_p/N) * lambda_2(L): the 2-distance
        ring (larger gap) resynchronises faster at equal v_p."""
        times = {}
        for dists in ((1, -1), (1, -1, 2, -2)):
            topo = ring(12, dists)
            m = PhysicalOscillatorModel(
                topology=topo, potential=TanhPotential(),
                t_comp=0.9, t_comm=0.1, v_p_override=6.0,
                delays=(OneOffDelay(rank=3, t_start=5.0, delay=0.5),))
            traj = simulate(m, 150.0, seed=0)
            times[dists] = settle_time(traj.ts, traj.thetas, m.omega,
                                       tol=0.05)
        assert times[(1, -1, 2, -2)] < times[(1, -1)]
