"""Topology-axis batching: planner fusion + mixed-topology bit-identity.

PR 10's tentpole claim: a machine-design sweep (one axis ranging over
same-N candidate interconnects) fuses into one stacked solve that is
**bit-for-bit identical** to the per-topology-group shards — across
kernels, worker counts, and the fault-injected queue path.
"""

import numpy as np
import pytest

from repro import kernels
from repro.backends.hetero import HeteroBatchedBackend
from repro.runs import ScenarioSpec, compile_plan, run_plan, run_spec

needs_cc = pytest.mark.skipif(not kernels.cc_available(),
                              reason="no C compiler")

#: four same-N machine candidates (N = 16), incl. two real interconnects
TOPOLOGIES_N16 = [
    {"kind": "ring", "n": 16, "distances": [1, -1]},
    {"kind": "torus2d", "nx": 4, "ny": 4},
    {"kind": "hypercube", "dim": 4},
    {"kind": "dragonfly", "groups": 4, "routers": 4},
]


def topo_axis_spec(*, method="rk4", dt=0.05, t_end=12.0, seeds=(0, 1),
                   topologies=None, name="machine-design",
                   trajectories="none",
                   metrics=("order_parameter", "phase_spread")):
    return ScenarioSpec(
        name=name,
        model={
            "topology": dict(TOPOLOGIES_N16[0]),
            "potential": {"kind": "bottleneck", "sigma": 1.5},
            "t_comp": 0.9,
            "t_comm": 0.1,
        },
        t_end=t_end,
        solver=({"method": method, "dt": dt} if dt is not None
                else {"method": method}),
        initial={"kind": "normal", "std": 1e-3, "seed": 7},
        axes=[
            ("topology", [dict(t) for t in
                          (topologies or TOPOLOGIES_N16)]),
            ("seed", list(seeds)),
        ],
        metrics=list(metrics),
        trajectories=trajectories,
    )


class TestPlannerFusion:
    def test_same_n_fixed_step_fuses_into_one_shard(self):
        plan = compile_plan(topo_axis_spec())
        assert plan.n_shards == 1
        assert plan.shards[0].n_members == 8
        assert plan.shards[0].member_indices == list(range(8))
        row = plan.describe()["shards"][0]
        assert row["topologies"] == 4

    def test_opt_out_restores_per_group_shards(self):
        plan = compile_plan(topo_axis_spec(), fuse_topologies=False)
        assert plan.n_shards == 4
        for row in plan.describe()["shards"]:
            assert row["topologies"] == 1

    def test_adaptive_defaults_to_per_group(self):
        plan = compile_plan(topo_axis_spec(method="dopri", dt=None))
        assert plan.n_shards == 4

    def test_adaptive_fuse_opt_in_raises(self):
        with pytest.raises(ValueError, match="fixed-step"):
            compile_plan(topo_axis_spec(method="dopri", dt=None),
                         fuse_topologies=True)

    def test_no_explicit_dt_stays_per_group(self):
        # Without solver["dt"] each topology group resolves its own
        # kappa-dependent default dt; dt sits inside the merge key, so
        # the groups (correctly) refuse to fuse.
        plan = compile_plan(topo_axis_spec(dt=None))
        assert plan.n_shards > 1
        dts = {s.payload["solver"]["dt"] for s in plan.shards}
        assert len(dts) > 1

    def test_mixed_n_never_merges(self):
        spec = topo_axis_spec(topologies=[
            {"kind": "ring", "n": 8, "distances": [1, -1]},
            {"kind": "hypercube", "dim": 3},   # N = 8 — merges with ring
            {"kind": "ring", "n": 12, "distances": [1, -1]},
        ])
        plan = compile_plan(spec)
        assert plan.n_shards == 2
        sizes = sorted(s.n_members for s in plan.shards)
        assert sizes == [2, 4]

    def test_single_topology_plan_is_unchanged(self):
        # No topology axis -> stage 3 is a no-op: payloads and cache
        # keys must be identical with fusion on, off, or auto (no cache
        # churn for every pre-existing campaign).
        spec = topo_axis_spec(topologies=[TOPOLOGIES_N16[0]])
        keys = [tuple(s.key for s in compile_plan(spec, fuse_topologies=f)
                      .shards) for f in (None, False, True)]
        assert keys[0] == keys[1] == keys[2]


def _members_equal(a, b):
    for ma, mb in zip(a.members, b.members):
        assert ma.member.index == mb.member.index
        for name in ma.metrics:
            np.testing.assert_array_equal(ma.metrics[name],
                                          mb.metrics[name])
        np.testing.assert_array_equal(ma.metrics_ts, mb.metrics_ts)


class TestFusedBitIdentity:
    def test_fused_equals_per_group(self):
        spec = topo_axis_spec()
        fused = run_spec(spec)
        grouped = run_spec(spec, fuse_topologies=False)
        _members_equal(fused, grouped)
        assert fused.npz_bytes() == grouped.npz_bytes()

    def test_jobs_do_not_change_bits(self):
        spec = topo_axis_spec()
        fused = run_spec(spec, jobs=1)
        multi = run_spec(spec, jobs=2, shard_members=4)
        grouped = run_spec(spec, jobs=2, fuse_topologies=False)
        assert fused.npz_bytes() == multi.npz_bytes()
        assert fused.npz_bytes() == grouped.npz_bytes()

    def test_queue_with_faults_matches_inline(self, tmp_path, monkeypatch):
        spec = topo_axis_spec(name="machine-design-chaos")
        monkeypatch.setenv("POM_FAULTS", "kill:shard=1,times=1")
        monkeypatch.setenv("POM_FAULTS_STATE", str(tmp_path / "faults"))
        res = run_spec(spec, jobs=2, shard_members=2,
                       queue=tmp_path / "q.db",
                       lease_ttl=1.0, backoff=0.05)
        monkeypatch.delenv("POM_FAULTS")
        monkeypatch.delenv("POM_FAULTS_STATE")
        ref = run_spec(spec, jobs=1, fuse_topologies=False)
        assert res.queue["retried"].get(1, 0) >= 1
        _members_equal(ref, res)

    def test_full_trajectories_identical(self):
        spec = topo_axis_spec(trajectories="full", metrics=(),
                              t_end=6.0, seeds=(0,))
        fused = run_plan(compile_plan(spec))
        grouped = run_plan(compile_plan(spec, fuse_topologies=False))
        for a, b in zip(fused.members, grouped.members):
            np.testing.assert_array_equal(a.ts, b.ts)
            np.testing.assert_array_equal(a.thetas, b.thetas)


def _mixed_members(kernel=None, potentials=None):
    """Realized members over the N=16 candidate set, one per topology."""
    from repro.runs.spec import MemberSpec

    members = []
    for i, topo in enumerate(TOPOLOGIES_N16):
        pot = (potentials[i % len(potentials)] if potentials
               else {"kind": "bottleneck", "sigma": 1.5})
        m = MemberSpec(index=i, model={
            "topology": dict(topo), "potential": dict(pot),
            "t_comp": 0.9, "t_comm": 0.1,
        }, seed=i, t_end=10.0, initial=None, params={})
        members.append(m.build_model().realize(10.0, rng=i))
    return members


class TestMixedBackendKernels:
    @pytest.mark.parametrize("kernel", ["numpy", "tiled"])
    def test_stacked_matches_per_member(self, kernel):
        members = _mixed_members()
        backend = HeteroBatchedBackend(members, kernel=kernel)
        assert backend.describe()["mixed_topologies"]
        rng = np.random.default_rng(3)
        theta = rng.normal(0.0, 0.5, size=(len(members), 16))
        out = backend.coupling(0.0, theta, None)
        for r, m in enumerate(members):
            single = HeteroBatchedBackend([m], kernel=kernel)
            ref = single.coupling(0.0, theta[r][None, :], None)[0]
            np.testing.assert_array_equal(out[r], ref,
                                          err_msg=f"{kernel} row {r}")

    def test_numpy_and_tiled_agree(self):
        members = _mixed_members()
        rng = np.random.default_rng(4)
        theta = rng.normal(0.0, 0.5, size=(len(members), 16))
        a = HeteroBatchedBackend(members, kernel="numpy").coupling(
            0.0, theta, None)
        b = HeteroBatchedBackend(members, kernel="tiled").coupling(
            0.0, theta, None)
        np.testing.assert_array_equal(a, b)

    @needs_cc
    def test_compiled_falls_back_per_group_with_warning(self, monkeypatch):
        from repro.backends import hetero

        monkeypatch.setattr(hetero, "_warned_mixed_compiled", False)
        members = _mixed_members() + _mixed_members()  # repeated groups
        with pytest.warns(RuntimeWarning, match="mixed-topology"):
            backend = HeteroBatchedBackend(members, kernel="cc")
        assert backend._subs is not None and len(backend._subs) == 4
        rng = np.random.default_rng(5)
        theta = rng.normal(0.0, 0.5, size=(len(members), 16))
        out = backend.coupling(0.0, theta, None)
        # Bit-identical to one compiled backend per topology group
        # (the group selector is a slice for contiguous planner order,
        # an index array otherwise — here the groups interleave).
        for sel, _ in backend._subs:
            idx = np.arange(len(members))[sel]
            group = HeteroBatchedBackend([members[i] for i in idx],
                                         kernel="cc")
            ref = group.coupling(0.0, theta[idx], None)
            np.testing.assert_array_equal(out[idx], ref)

    def test_subset_of_mixed_batch(self):
        members = _mixed_members()
        backend = HeteroBatchedBackend(members, kernel="numpy")
        sub = backend.subset([1, 3])
        rng = np.random.default_rng(6)
        theta = rng.normal(0.0, 0.5, size=(4, 16))
        full = backend.coupling(0.0, theta, None)
        part = sub.coupling(0.0, theta[[1, 3]], None)
        np.testing.assert_array_equal(full[[1, 3]], part)
