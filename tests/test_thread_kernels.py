"""Thread-parallel kernel suite: bit-equality with serial, knob plumbing.

The PR-5 contract: the in-kernel thread count (``threads=`` /
``POM_NUM_THREADS``) steers wall-clock only — every compiled kernel
(``cc`` and numba, single and batched, generic edge-list / ring / torus
paths) must produce *bit-identical* results for any thread count,
because each thread accumulates disjoint output rows in the serial
per-row order.  Also covers the 2-D torus halo detection feeding the
specialised compiled path and the one-time ``CustomPotential``
compiled-kernel fallback warning.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.backends import make_backend, make_batched_backend
from repro.core import (
    BottleneckPotential,
    CustomPotential,
    KuramotoPotential,
    LinearPotential,
    PhysicalOscillatorModel,
    TanhPotential,
    random_topology,
    ring,
    simulate,
    torus2d,
)
from repro.kernels import cc as cc_kernels

needs_cc = pytest.mark.skipif(not kernels.cc_available(),
                              reason="no working C compiler")
needs_numba = pytest.mark.skipif(not kernels.numba_available(),
                                 reason="numba not installed")

COMPILED = [
    pytest.param("cc", marks=needs_cc),
    pytest.param("numba", marks=needs_numba),
]

TOPOLOGIES = [
    pytest.param(lambda: ring(96, (1, -1)), id="ring"),
    pytest.param(lambda: ring(97, (1, -1, -2)), id="ring-asym"),
    pytest.param(lambda: torus2d(8, 7), id="torus"),
    pytest.param(lambda: random_topology(
        60, 0.08, rng=np.random.default_rng(5)), id="edges"),
]

POTENTIALS = [
    pytest.param(lambda: TanhPotential(1.3), id="tanh"),
    pytest.param(lambda: BottleneckPotential(0.8), id="bottleneck"),
    pytest.param(lambda: KuramotoPotential(), id="kuramoto"),
    pytest.param(lambda: LinearPotential(0.6), id="linear"),
]


def _model(topo, pot, **kw):
    return PhysicalOscillatorModel(topology=topo, potential=pot,
                                   t_comp=0.9, t_comm=0.1, **kw)


def _realize(topo, pot, seed=0, **kw):
    return _model(topo, pot).realize(10.0, rng=seed, **kw)


# ----------------------------------------------------------------------
# knob resolution
# ----------------------------------------------------------------------
class TestResolveThreads:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(kernels.THREADS_ENV_VAR, raising=False)
        assert kernels.resolve_threads() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(kernels.THREADS_ENV_VAR, "8")
        assert kernels.resolve_threads(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(kernels.THREADS_ENV_VAR, "5")
        assert kernels.resolve_threads() == 5

    @pytest.mark.parametrize("bad", ["0", "-2", "four", "2.5"])
    def test_invalid_env_raises(self, monkeypatch, bad):
        monkeypatch.setenv(kernels.THREADS_ENV_VAR, bad)
        with pytest.raises(ValueError, match=kernels.THREADS_ENV_VAR):
            kernels.resolve_threads()

    def test_invalid_explicit_raises(self):
        with pytest.raises(ValueError):
            kernels.resolve_threads(0)

    def test_read_at_call_time(self, monkeypatch):
        # The worker-initializer pinning contract: no import-time cache.
        monkeypatch.setenv(kernels.THREADS_ENV_VAR, "2")
        assert kernels.resolve_threads() == 2
        monkeypatch.setenv(kernels.THREADS_ENV_VAR, "6")
        assert kernels.resolve_threads() == 6


# ----------------------------------------------------------------------
# torus halo detection
# ----------------------------------------------------------------------
class TestTorusHalo:
    @pytest.mark.parametrize("rows,cols", [(8, 7), (5, 5), (2, 6), (6, 2),
                                           (16, 3), (3, 16)])
    def test_detects_torus(self, rows, cols):
        topo = torus2d(rows, cols)
        r, c = topo.edge_list()
        assert cc_kernels.ring_offsets(r, c, topo.n) is None
        halo = cc_kernels.torus_halo(r, c, topo.n)
        assert halo is not None
        w, col_offsets, row_dxs = halo
        # The detected lattice row width is torus2d's first extent.
        assert w == rows
        # Column passes are whole-lattice modular shifts; row passes
        # wrap within a row: together they cover 4 neighbours (2 for
        # width/height 2, where +1 and -1 coincide).
        assert len(col_offsets) + len(row_dxs) >= 2

    def test_ring_is_not_a_torus(self):
        topo = ring(24, (1, -1))
        r, c = topo.edge_list()
        # The ring specialisation owns this case.
        assert cc_kernels.ring_offsets(r, c, topo.n) is not None
        assert cc_kernels.torus_halo(r, c, topo.n) is None

    def test_random_topology_is_not_a_torus(self):
        topo = random_topology(40, 0.1, rng=np.random.default_rng(3))
        r, c = topo.edge_list()
        assert cc_kernels.torus_halo(r, c, topo.n) is None


# ----------------------------------------------------------------------
# bit-equality: threads=K vs serial
# ----------------------------------------------------------------------
class TestThreadInvariance:
    @pytest.mark.parametrize("kernel", COMPILED)
    @pytest.mark.parametrize("topo_f", TOPOLOGIES)
    @pytest.mark.parametrize("pot_f", POTENTIALS)
    def test_single_state_bits(self, kernel, topo_f, pot_f):
        topo, pot = topo_f(), pot_f()
        rng = np.random.default_rng(11)
        serial = make_backend(_realize(topo, pot), "sparse",
                              kernel=kernel, threads=1)
        parallel = make_backend(_realize(topo, pot), "sparse",
                                kernel=kernel, threads=4)
        for _ in range(5):
            theta = rng.uniform(-2 * np.pi, 2 * np.pi, topo.n)
            np.testing.assert_array_equal(
                serial.coupling(0.0, theta), parallel.coupling(0.0, theta))

    @pytest.mark.parametrize("kernel", COMPILED)
    @pytest.mark.parametrize("topo_f", TOPOLOGIES)
    def test_batched_bits(self, kernel, topo_f):
        topo = topo_f()
        # Mixed potential families: per-member coefficient dispatch.
        members = [_realize(topo, TanhPotential(1.0 + 0.1 * i), seed=i)
                   for i in range(3)]
        members += [_realize(topo, BottleneckPotential(0.9), seed=7)]
        serial = make_batched_backend(members, kernel=kernel, threads=1)
        parallel = make_batched_backend(members, kernel=kernel, threads=4)
        rng = np.random.default_rng(13)
        for _ in range(5):
            theta = rng.uniform(-2 * np.pi, 2 * np.pi, (4, topo.n))
            np.testing.assert_array_equal(
                serial.coupling(0.0, theta), parallel.coupling(0.0, theta))

    @pytest.mark.parametrize("kernel", COMPILED)
    def test_odd_thread_counts(self, kernel):
        topo = ring(101, (1, -1, 2))
        be = {t: make_backend(_realize(topo, TanhPotential()), "sparse",
                              kernel=kernel, threads=t)
              for t in (1, 3, 7, 16)}
        theta = np.random.default_rng(17).uniform(-np.pi, np.pi, topo.n)
        ref = be[1].coupling(0.0, theta)
        for t in (3, 7, 16):
            np.testing.assert_array_equal(ref, be[t].coupling(0.0, theta))

    @pytest.mark.parametrize("kernel", COMPILED)
    def test_torus_matches_numpy(self, kernel):
        # The specialised torus path against the reference segment sum.
        topo = torus2d(9, 6)
        pot = BottleneckPotential(0.7)
        compiled = make_backend(_realize(topo, pot), "sparse",
                                kernel=kernel, threads=2)
        reference = make_backend(_realize(topo, pot), "sparse",
                                 kernel="numpy")
        theta = np.random.default_rng(19).uniform(-np.pi, np.pi, topo.n)
        np.testing.assert_allclose(compiled.coupling(0.0, theta),
                                   reference.coupling(0.0, theta),
                                   rtol=1e-12, atol=1e-13)

    @needs_cc
    def test_simulate_end_to_end_bits(self):
        model = _model(ring(64, (1, -1)), TanhPotential())
        t1 = simulate(model, 5.0, seed=3, kernel="cc", threads=1)
        t4 = simulate(model, 5.0, seed=3, kernel="cc", threads=4)
        np.testing.assert_array_equal(t1.thetas, t4.thetas)

    @needs_cc
    def test_env_knob_reaches_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.THREADS_ENV_VAR, "3")
        be = make_backend(_realize(ring(32, (1, -1)), TanhPotential()),
                          "sparse", kernel="cc")
        assert be.threads == 3
        assert be.describe()["threads"] == 3


# ----------------------------------------------------------------------
# CustomPotential compiled-kernel fallback warning
# ----------------------------------------------------------------------
class TestCoefficientFallbackWarning:
    @pytest.fixture(autouse=True)
    def _reset_once_flag(self, monkeypatch):
        monkeypatch.setattr(kernels, "_warned_coefficient_fallback", False)

    @pytest.mark.skipif(kernels.compiled_kernel_name() is None,
                        reason="no compiled kernel available")
    def test_warns_once_per_process(self):
        pot = CustomPotential(np.sin, name="sin")
        with pytest.warns(RuntimeWarning, match="CustomPotential"):
            make_backend(_realize(ring(16, (1, -1)), pot), "sparse")
        # Second resolution stays silent (flag already tripped).
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            make_backend(_realize(ring(16, (1, -1)), pot), "sparse")

    def test_no_warning_with_coefficients(self):
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            make_backend(_realize(ring(16, (1, -1)), TanhPotential()),
                         "sparse")
