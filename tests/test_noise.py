"""Tests for the model's noise channels (zeta, one-off delays, tau)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CompositeNoise,
    ConstantInteractionNoise,
    DelaySchedule,
    GaussianJitter,
    LognormalJitter,
    NoInteractionNoise,
    NoNoise,
    OneOffDelay,
    RandomInteractionNoise,
    StaticLoadImbalance,
    TauField,
    UniformJitter,
    ZetaProcess,
)


class TestZetaProcess:
    def test_piecewise_constant_lookup(self):
        vals = np.array([[1.0, 2.0], [3.0, 4.0]])
        z = ZetaProcess(vals, dt=1.0)
        np.testing.assert_allclose(z(0.5), [1.0, 2.0])
        np.testing.assert_allclose(z(1.5), [3.0, 4.0])

    def test_clamps_out_of_range(self):
        vals = np.array([[1.0], [2.0]])
        z = ZetaProcess(vals, dt=1.0)
        np.testing.assert_allclose(z(-5.0), [1.0])
        np.testing.assert_allclose(z(99.0), [2.0])

    def test_max_abs_ignores_inf(self):
        vals = np.array([[1.0, np.inf]])
        assert ZetaProcess(vals, dt=1.0).max_abs() == 1.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ZetaProcess(np.zeros(3), dt=1.0)
        with pytest.raises(ValueError):
            ZetaProcess(np.zeros((2, 2)), dt=0.0)


class TestLocalNoiseChannels:
    def test_no_noise_is_zero(self, rng):
        z = NoNoise().realize(5, 10.0, rng)
        np.testing.assert_array_equal(z(3.0), np.zeros(5))

    def test_gaussian_statistics(self, rng):
        z = GaussianJitter(std=0.1, refresh=0.01).realize(4, 100.0, rng)
        assert z.values.std() == pytest.approx(0.1, rel=0.05)
        assert abs(z.values.mean()) < 0.01

    def test_gaussian_clipping(self, rng):
        z = GaussianJitter(std=0.1, refresh=0.01,
                           clip_sigmas=2.0).realize(4, 100.0, rng)
        assert np.abs(z.values).max() <= 0.2 + 1e-12

    def test_uniform_bounds(self, rng):
        z = UniformJitter(half_width=0.3, refresh=0.1).realize(3, 20.0, rng)
        assert np.all(np.abs(z.values) <= 0.3)

    def test_lognormal_one_sided(self, rng):
        z = LognormalJitter(median=0.05, refresh=0.1).realize(3, 20.0, rng)
        assert np.all(z.values >= 0.0)

    def test_lognormal_zero_median_silent(self, rng):
        z = LognormalJitter(median=0.0).realize(3, 5.0, rng)
        np.testing.assert_array_equal(z.values, 0.0)

    def test_static_imbalance_explicit_offsets(self, rng):
        z = StaticLoadImbalance(offsets=[0.1, -0.1, 0.0]).realize(3, 10.0, rng)
        np.testing.assert_allclose(z(0.0), [0.1, -0.1, 0.0])
        np.testing.assert_allclose(z(9.0), [0.1, -0.1, 0.0])  # static

    def test_static_imbalance_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="shape"):
            StaticLoadImbalance(offsets=[0.1]).realize(3, 10.0, rng)

    def test_static_imbalance_drawn(self, rng):
        z = StaticLoadImbalance(amplitude=0.2).realize(6, 10.0, rng)
        assert np.all(np.abs(z(0.0)) <= 0.2)

    def test_composite_sums_channels(self, rng):
        comp = CompositeNoise(parts=(
            StaticLoadImbalance(offsets=[0.1, 0.2]),
            StaticLoadImbalance(offsets=[0.01, 0.02]),
        ))
        z = comp.realize(2, 10.0, rng)
        np.testing.assert_allclose(z(1.0), [0.11, 0.22])

    def test_composite_empty_is_silent(self, rng):
        z = CompositeNoise(parts=()).realize(3, 5.0, rng)
        np.testing.assert_array_equal(z(0.0), np.zeros(3))

    def test_negative_params_rejected(self, rng):
        with pytest.raises(ValueError):
            GaussianJitter(std=-1.0).realize(2, 1.0, rng)
        with pytest.raises(ValueError):
            UniformJitter(half_width=-0.1).realize(2, 1.0, rng)


class TestOneOffDelay:
    def test_full_stall_is_infinite_zeta(self):
        d = OneOffDelay(rank=0, t_start=1.0, delay=2.0)
        assert d.effective_window == 2.0
        assert d.zeta_extra(period=1.0) == np.inf

    def test_spread_window_exact_deficit(self):
        # delay=1s spread over window=3s with T=1: zeta = 1*1/(3-1) = 0.5.
        d = OneOffDelay(rank=0, t_start=0.0, delay=1.0, window=3.0)
        assert d.zeta_extra(period=1.0) == pytest.approx(0.5)

    def test_deficit_integral_matches_omega_delay(self):
        # Integrate the slowed frequency over the window: the phase
        # deficit must equal omega * delay exactly.
        T, delay, window = 1.0, 0.7, 2.5
        d = OneOffDelay(rank=0, t_start=0.0, delay=delay, window=window)
        zeta = d.zeta_extra(period=T)
        omega = 2 * np.pi / T
        slowed = 2 * np.pi / (T + zeta)
        deficit = (omega - slowed) * window
        assert deficit == pytest.approx(omega * delay, rel=1e-12)

    def test_window_shorter_than_delay_rejected(self):
        with pytest.raises(ValueError, match="window"):
            OneOffDelay(rank=0, t_start=0.0, delay=2.0, window=1.0)

    def test_invalid_delay(self):
        with pytest.raises(ValueError):
            OneOffDelay(rank=0, t_start=0.0, delay=0.0)


class TestDelaySchedule:
    def test_active_only_inside_window(self):
        sched = DelaySchedule(
            [OneOffDelay(rank=1, t_start=5.0, delay=1.0, window=2.0)],
            period=1.0)
        assert sched(4.9, 3)[1] == 0.0
        assert sched(5.5, 3)[1] > 0.0
        assert sched(7.1, 3)[1] == 0.0

    def test_multiple_delays_accumulate(self):
        sched = DelaySchedule(
            [OneOffDelay(rank=0, t_start=0.0, delay=1.0, window=4.0),
             OneOffDelay(rank=0, t_start=0.0, delay=1.0, window=4.0)],
            period=1.0)
        single = OneOffDelay(rank=0, t_start=0.0, delay=1.0,
                             window=4.0).zeta_extra(1.0)
        assert sched(1.0, 2)[0] == pytest.approx(2 * single)

    def test_out_of_range_rank_ignored(self):
        sched = DelaySchedule([OneOffDelay(rank=9, t_start=0.0, delay=1.0)],
                              period=1.0)
        np.testing.assert_array_equal(sched(0.5, 3), np.zeros(3))

    def test_describe(self):
        sched = DelaySchedule([OneOffDelay(rank=2, t_start=1.0, delay=0.5)],
                              period=1.0)
        (d,) = sched.describe()
        assert d["rank"] == 2 and d["window"] == 0.5


class TestInteractionNoise:
    def test_no_interaction_noise_zero_field(self, rng):
        tau = NoInteractionNoise().realize(4, 10.0, rng)
        assert tau.is_zero
        assert tau.max_delay() == 0.0

    def test_constant_field(self, rng):
        tau = ConstantInteractionNoise(tau=0.05).realize(3, 10.0, rng)
        np.testing.assert_allclose(tau(2.0), np.full((3, 3), 0.05))
        assert not tau.is_zero

    def test_random_field_bounds(self, rng):
        tau = RandomInteractionNoise(lo=0.01, hi=0.1,
                                     refresh=1.0).realize(4, 10.0, rng)
        assert np.all(tau.values >= 0.01)
        assert np.all(tau.values <= 0.1)
        assert tau.max_delay() <= 0.1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            TauField(-np.ones((1, 2, 2)), dt=1.0)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            TauField(np.zeros((2, 3, 4)), dt=1.0)

    def test_random_field_invalid_range(self, rng):
        with pytest.raises(ValueError):
            RandomInteractionNoise(lo=0.5, hi=0.1).realize(3, 5.0, rng)


@settings(max_examples=40, deadline=None)
@given(period=st.floats(min_value=0.1, max_value=10.0),
       delay=st.floats(min_value=0.01, max_value=5.0),
       window_factor=st.floats(min_value=1.05, max_value=10.0))
def test_property_one_off_delay_phase_exact(period, delay, window_factor):
    """The zeta construction yields the exact omega*delay deficit for
    any (period, delay, window) combination."""
    window = delay * window_factor
    d = OneOffDelay(rank=0, t_start=0.0, delay=delay, window=window)
    zeta = d.zeta_extra(period)
    omega = 2 * np.pi / period
    deficit = (omega - 2 * np.pi / (period + zeta)) * window
    assert deficit == pytest.approx(omega * delay, rel=1e-9)
