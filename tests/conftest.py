"""Shared fixtures for the test suite.

Everything here is deliberately small (N <= 16, short horizons) so the
full suite stays fast; the paper-scale configurations are exercised by
the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BottleneckPotential,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
)
from repro.simulator import (
    MachineSpec,
    NetworkModel,
    PiSolverKernel,
    ProgramSpec,
    StreamTriadKernel,
)


@pytest.fixture
def rng():
    """Deterministic generator for tests that draw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_scalable_model():
    """8-oscillator tanh ring with boosted coupling (fast relaxation)."""
    return PhysicalOscillatorModel(
        topology=ring(8, (1, -1)),
        potential=TanhPotential(),
        t_comp=0.9,
        t_comm=0.1,
        v_p_override=8.0,   # strong coupling: sync within a few seconds
    )


@pytest.fixture
def small_bottleneck_model():
    """8-oscillator bottleneck ring with boosted coupling."""
    return PhysicalOscillatorModel(
        topology=ring(8, (1, -1)),
        potential=BottleneckPotential(sigma=1.0),
        t_comp=0.9,
        t_comm=0.1,
        v_p_override=8.0,
    )


@pytest.fixture
def tiny_machine():
    """4-core single-socket machine for fast DES tests."""
    return MachineSpec(nodes=1, sockets_per_node=1, cores_per_socket=4,
                       socket_bandwidth=40e9, core_bandwidth=14e9,
                       core_flops=30e9)


@pytest.fixture
def small_compute_spec(tiny_machine):
    """4-rank compute-bound program on the tiny machine."""
    return ProgramSpec(
        n_ranks=4,
        n_iterations=10,
        kernel=PiSolverKernel(1e5, machine=tiny_machine),
        machine=tiny_machine,
        distances=(1, -1),
        network=NetworkModel(),
    )


@pytest.fixture
def small_memory_spec(tiny_machine):
    """4-rank memory-bound program on the tiny machine."""
    return ProgramSpec(
        n_ranks=4,
        n_iterations=10,
        kernel=StreamTriadKernel(1e6),
        machine=tiny_machine,
        distances=(1, -1),
        network=NetworkModel(),
    )
