"""Tests for the markdown report builder and the `pom report` command."""

import pytest

from repro.cli import main
from repro.viz import ReportBuilder


class TestReportBuilder:
    def test_section_rendering(self):
        rb = ReportBuilder(title="T")
        rb.add_section("Heading", "body text")
        out = rb.render()
        assert out.startswith("# T")
        assert "## Heading" in out
        assert "body text" in out

    def test_table_rendering(self):
        rb = ReportBuilder()
        rb.add_table("Tab", {"a": [1, 2], "b": [0.5, float("inf")]},
                     note="a note")
        out = rb.render()
        assert "| a" in out
        assert "0.5" in out
        assert "inf" in out
        assert "a note" in out

    def test_table_alignment_consistent(self):
        rb = ReportBuilder()
        rb.add_table("Tab", {"col": ["x", "longer-value"]})
        lines = [ln for ln in rb.render().splitlines()
                 if ln.startswith("|")]
        widths = {len(ln) for ln in lines}
        assert len(widths) == 1          # all rows equally wide

    def test_write_creates_directories(self, tmp_path):
        rb = ReportBuilder()
        rb.add_section("s", "b")
        p = rb.write(tmp_path / "deep" / "r.md")
        assert p.exists()
        assert p.read_text().startswith("# POM reproduction report")


class TestReportCommand:
    def test_parser_accepts_report(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["report", "/tmp/x.md", "--full"])
        assert args.command == "report"
        assert args.full

    @pytest.mark.slow
    def test_end_to_end_quick_report(self, tmp_path):
        """Full quick report (~30 s) — marked slow; exercised anyway
        because the suite has no slow-marker filter by default."""
        out = tmp_path / "report.md"
        assert main(["report", str(out)]) == 0
        text = out.read_text()
        for heading in ("FIG1A", "FIG1B", "FIG2", "CLAIM-BK",
                        "CLAIM-SIGMA", "CLAIM-KM"):
            assert heading in text
