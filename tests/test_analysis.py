"""Tests for the trace-analysis layer (idle waves, desync, bandwidth)."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_desync,
    analytic_bandwidth_curve,
    iteration_skew,
    lag_matrix,
    measure_scaling,
    measure_trace_wave,
    saturation_point,
    trace_arrival_times,
)
from repro.simulator import (
    ClusterSimulator,
    Injection,
    MachineSpec,
    PiSolverKernel,
    ProgramSpec,
    RankTimeline,
    StreamTriadKernel,
    Trace,
)


def synthetic_trace(ends: np.ndarray) -> Trace:
    """Trace with given iteration-end matrix and empty timelines."""
    n = ends.shape[1]
    return Trace(timelines=[RankTimeline(rank=r) for r in range(n)],
                 iteration_ends=np.asarray(ends, dtype=float))


def wave_pair(n=10, n_iters=15, src=3, inject_at=4, delay=1.0,
              speed=1.0, iter_time=1.0):
    """Synthetic baseline/disturbed pair with a wave of known speed."""
    base = np.cumsum(np.full((n_iters, n), iter_time), axis=0)
    lag = np.zeros((n_iters, n))
    idx = np.arange(n)
    raw = np.abs(idx - src)
    dist = np.minimum(raw, n - raw)
    for k in range(n_iters):
        hit = dist <= (k - inject_at) * speed
        lag[k, hit] = delay
    return synthetic_trace(base), synthetic_trace(base + lag)


class TestLagAndArrival:
    def test_lag_matrix(self):
        b, d = wave_pair()
        lag = lag_matrix(b, d)
        assert lag.max() == pytest.approx(1.0)
        assert lag.min() == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        b, _ = wave_pair(n=4)
        _, d = wave_pair(n=5)
        with pytest.raises(ValueError, match="different shapes"):
            lag_matrix(b, d)

    def test_arrival_iterations_grow_with_distance(self):
        b, d = wave_pair(speed=1.0)
        _, arr_k = trace_arrival_times(b, d)
        idx = np.arange(10)
        dist = np.minimum(np.abs(idx - 3), 10 - np.abs(idx - 3))
        order = np.argsort(dist)
        assert np.all(np.diff(arr_k[order]) >= 0)

    def test_no_wave_returns_inf(self):
        b, _ = wave_pair()
        arr_t, arr_k = trace_arrival_times(b, b)
        assert np.all(np.isinf(arr_t))


class TestTraceWave:
    def test_speed_recovered(self):
        for speed in (0.5, 1.0, 2.0):
            b, d = wave_pair(speed=speed, n=16, n_iters=25)
            fit = measure_trace_wave(b, d, source=3)
            assert fit.speed_ranks_per_iteration == pytest.approx(speed,
                                                                  rel=0.25)

    def test_conserved_wave_has_no_decay(self):
        b, d = wave_pair()
        fit = measure_trace_wave(b, d, source=3)
        assert fit.decay_length_ranks == float("inf")

    def test_source_validated(self):
        b, d = wave_pair()
        with pytest.raises(ValueError, match="source"):
            measure_trace_wave(b, d, source=99)

    def test_on_real_des_traces(self):
        m = MachineSpec(nodes=2, sockets_per_node=2, cores_per_socket=4,
                        socket_bandwidth=40e9, core_bandwidth=10e9,
                        core_flops=30e9)
        spec = ProgramSpec(n_ranks=12, n_iterations=20,
                           kernel=PiSolverKernel(1e5, machine=m),
                           machine=m, distances=(1, -1))
        base = ClusterSimulator(spec, seed=0).run()
        extra = 4.0 * spec.kernel.single_core_time(m)
        dist = ClusterSimulator(spec, injections=[
            Injection(rank=2, iteration=3, extra_time=extra)], seed=0).run()
        fit = measure_trace_wave(base, dist, source=2)
        assert fit.speed_ranks_per_iteration == pytest.approx(1.0, rel=0.2)


class TestDesyncAnalysis:
    def test_lockstep_trace_not_desynchronized(self):
        ends = np.cumsum(np.ones((10, 6)), axis=0)
        rep = analyze_desync(synthetic_trace(ends))
        assert rep.final_skew == pytest.approx(0.0)
        assert not rep.is_desynchronized
        assert rep.desync_index == pytest.approx(0.0)

    def test_staggered_trace_detected(self):
        base = np.cumsum(np.ones((10, 6)), axis=0)
        stagger = 0.3 * np.arange(6)
        rep = analyze_desync(synthetic_trace(base + stagger))
        assert rep.is_desynchronized
        assert rep.slope_per_rank == pytest.approx(0.3, rel=0.05)

    def test_socket_wise_slope(self):
        base = np.cumsum(np.ones((10, 8)), axis=0)
        # Two sockets of 4 with internal stagger 0.2/rank.
        stagger = np.tile(0.2 * np.arange(4), 2)
        rep = analyze_desync(synthetic_trace(base + stagger), socket_size=4)
        assert rep.slope_per_rank == pytest.approx(0.2, rel=0.05)

    def test_iteration_skew_series(self):
        ends = np.cumsum(np.ones((5, 3)), axis=0)
        ends[:, 2] += 0.5
        np.testing.assert_allclose(iteration_skew(synthetic_trace(ends)),
                                   0.5)

    def test_invalid_tail_fraction(self):
        ends = np.ones((3, 2))
        with pytest.raises(ValueError):
            analyze_desync(synthetic_trace(ends), tail_fraction=0.0)


class TestBandwidthAnalysis:
    def test_analytic_curve_saturates_at_ceiling(self):
        m = MachineSpec.meggie()
        k = StreamTriadKernel(4e6)
        curve = analytic_bandwidth_curve(k, m, list(range(1, 11)))
        assert curve[-1] == pytest.approx(68.0, rel=0.05)
        assert curve[0] == pytest.approx(k.demanded_bandwidth(m) / 1e9,
                                         rel=1e-6)

    def test_analytic_curve_monotone(self):
        m = MachineSpec.meggie()
        k = StreamTriadKernel(4e6)
        curve = analytic_bandwidth_curve(k, m, list(range(1, 11)))
        assert np.all(np.diff(curve) >= -1e-9)

    def test_measured_matches_analytic(self):
        """The DES occupancy sweep must land on the closed-form curve
        (same arbiter physics, so agreement should be tight)."""
        m = MachineSpec.meggie()
        k = StreamTriadKernel(2e6)
        res = measure_scaling(k, m, n_iterations=5)
        for measured, analytic in zip(res.bandwidth_GBs, res.analytic_GBs):
            assert measured == pytest.approx(analytic, rel=0.05)

    def test_saturation_point_passthrough(self):
        m = MachineSpec.meggie()
        assert saturation_point(StreamTriadKernel(4e6), m) == pytest.approx(
            5.0, rel=0.15)

    def test_pisolver_curve_is_zero(self):
        m = MachineSpec.meggie()
        res = measure_scaling(PiSolverKernel(1e5), m, n_iterations=3)
        assert max(res.bandwidth_GBs) == 0.0
        assert not res.saturates
        # Constant per-sweep time = linear scaling.
        times = res.time_per_iteration
        assert max(times) <= min(times) * 1.05 + 1e-5
