"""Tests for the CI perf-regression gate (benchmarks/check_regression.py)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "benchmarks" / "check_regression.py"

spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_regression", check_regression)
spec.loader.exec_module(check_regression)


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


BASELINE = {
    "benchmark": "backends",
    "quick": True,
    "rhs_ring": {"dense_s": 1.0, "sparse_s": 0.01,
                 "speedup_sparse_vs_dense": 100.0},
    "kernel_ladder": [
        {"n": 4096,
         "batched": {"numpy": 1.0, "cc": 0.25,
                     "speedup_cc_vs_numpy": 4.0}},
    ],
}


class TestIterSpeedups:
    def test_finds_nested_and_listed_keys(self):
        found = dict(check_regression.iter_speedups(BASELINE))
        assert found == {
            "rhs_ring.speedup_sparse_vs_dense": 100.0,
            "kernel_ladder[0].batched.speedup_cc_vs_numpy": 4.0,
        }

    def test_ignores_non_numeric(self):
        found = dict(check_regression.iter_speedups(
            {"speedup_x": "fast", "a": {"speedup_y": 2.0}}))
        assert found == {"a.speedup_y": 2.0}


class TestGate:
    def test_identical_passes(self, tmp_path):
        base = _write(tmp_path, "base.json", BASELINE)
        cur = _write(tmp_path, "cur.json", BASELINE)
        assert check_regression.main(["--pair", base, cur]) == 0

    def test_improvement_passes(self, tmp_path):
        current = json.loads(json.dumps(BASELINE))
        current["rhs_ring"]["speedup_sparse_vs_dense"] = 500.0
        base = _write(tmp_path, "base.json", BASELINE)
        cur = _write(tmp_path, "cur.json", current)
        assert check_regression.main(["--pair", base, cur]) == 0

    def test_within_tolerance_passes(self, tmp_path):
        current = json.loads(json.dumps(BASELINE))
        current["rhs_ring"]["speedup_sparse_vs_dense"] = 51.0  # > 0.5 * 100
        base = _write(tmp_path, "base.json", BASELINE)
        cur = _write(tmp_path, "cur.json", current)
        assert check_regression.main(["--pair", base, cur]) == 0

    def test_degradation_fails(self, tmp_path, capsys):
        current = json.loads(json.dumps(BASELINE))
        current["rhs_ring"]["speedup_sparse_vs_dense"] = 49.0  # < 0.5 * 100
        base = _write(tmp_path, "base.json", BASELINE)
        cur = _write(tmp_path, "cur.json", current)
        assert check_regression.main(["--pair", base, cur]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_custom_tolerance(self, tmp_path):
        current = json.loads(json.dumps(BASELINE))
        current["rhs_ring"]["speedup_sparse_vs_dense"] = 49.0
        base = _write(tmp_path, "base.json", BASELINE)
        cur = _write(tmp_path, "cur.json", current)
        assert check_regression.main(
            ["--pair", base, cur, "--tolerance", "0.4"]) == 0

    def test_missing_key_fails(self, tmp_path):
        current = json.loads(json.dumps(BASELINE))
        del current["kernel_ladder"][0]["batched"]["speedup_cc_vs_numpy"]
        base = _write(tmp_path, "base.json", BASELINE)
        cur = _write(tmp_path, "cur.json", current)
        assert check_regression.main(["--pair", base, cur]) == 1

    def test_new_key_is_informational(self, tmp_path, capsys):
        current = json.loads(json.dumps(BASELINE))
        current["extra"] = {"speedup_new_vs_old": 2.0}
        base = _write(tmp_path, "base.json", BASELINE)
        cur = _write(tmp_path, "cur.json", current)
        assert check_regression.main(["--pair", base, cur]) == 0
        assert "new (no baseline)" in capsys.readouterr().out

    def test_multiple_pairs(self, tmp_path):
        other = {"benchmark": "sweeps", "quick": True,
                 "sweep": {"speedup_batched_vs_looped": 5.0}}
        bad = json.loads(json.dumps(other))
        bad["sweep"]["speedup_batched_vs_looped"] = 1.0
        b1 = _write(tmp_path, "b1.json", BASELINE)
        c1 = _write(tmp_path, "c1.json", BASELINE)
        b2 = _write(tmp_path, "b2.json", other)
        c2 = _write(tmp_path, "c2.json", bad)
        assert check_regression.main(
            ["--pair", b1, c1, "--pair", b2, c2]) == 1
        assert check_regression.main(
            ["--pair", b1, c1, "--pair", b2, c2, "--tolerance", "0.2"]) == 0

    def test_bad_tolerance_rejected(self, tmp_path):
        base = _write(tmp_path, "b.json", BASELINE)
        with pytest.raises(SystemExit):
            check_regression.main(
                ["--pair", base, base, "--tolerance", "1.5"])


FLOORED = {
    "benchmark": "runs",
    "quick": True,
    "platform": {"cpu_count": 8},
    "sharded_sweep": {"speedup_jobs4_vs_jobs1": 1.6},
}


class TestHardFloors:
    def test_parse_floor(self):
        assert check_regression.parse_floor("a.b:1.5") == ("a.b", 1.5, None)
        assert check_regression.parse_floor("a.b:1.5:4") == ("a.b", 1.5, 4)
        for bad in ("a.b", "a.b:x", "a.b:1:y", "a:1:2:3"):
            with pytest.raises(ValueError):
                check_regression.parse_floor(bad)

    def test_floor_met_passes(self, tmp_path):
        base = _write(tmp_path, "b.json", FLOORED)
        cur = _write(tmp_path, "c.json", FLOORED)
        assert check_regression.main(
            ["--pair", base, cur,
             "--floor", "sharded_sweep.speedup_jobs4_vs_jobs1:1.0:4"]) == 0

    def test_floor_violation_fails(self, tmp_path, capsys):
        current = json.loads(json.dumps(FLOORED))
        current["sharded_sweep"]["speedup_jobs4_vs_jobs1"] = 0.9
        base = _write(tmp_path, "b.json", current)
        cur = _write(tmp_path, "c.json", current)
        # tolerance gate passes (current == baseline); only the hard
        # floor trips.
        assert check_regression.main(
            ["--pair", base, cur,
             "--floor", "sharded_sweep.speedup_jobs4_vs_jobs1:1.0:4"]) == 1
        assert "below the hard floor" in capsys.readouterr().err

    def test_floor_skipped_below_min_cpus(self, tmp_path, capsys):
        current = json.loads(json.dumps(FLOORED))
        current["platform"]["cpu_count"] = 1
        current["sharded_sweep"]["speedup_jobs4_vs_jobs1"] = 0.8
        base = _write(tmp_path, "b.json", current)
        cur = _write(tmp_path, "c.json", current)
        assert check_regression.main(
            ["--pair", base, cur,
             "--floor", "sharded_sweep.speedup_jobs4_vs_jobs1:1.0:4"]) == 0
        assert "SKIPPED" in capsys.readouterr().out

    def test_floor_without_min_cpus_always_applies(self, tmp_path):
        current = json.loads(json.dumps(FLOORED))
        current["platform"]["cpu_count"] = 1
        current["sharded_sweep"]["speedup_jobs4_vs_jobs1"] = 0.8
        base = _write(tmp_path, "b.json", current)
        cur = _write(tmp_path, "c.json", current)
        assert check_regression.main(
            ["--pair", base, cur,
             "--floor", "sharded_sweep.speedup_jobs4_vs_jobs1:1.0"]) == 1

    def test_missing_floor_key_fails(self, tmp_path, capsys):
        base = _write(tmp_path, "b.json", FLOORED)
        cur = _write(tmp_path, "c.json", FLOORED)
        assert check_regression.main(
            ["--pair", base, cur, "--floor", "nope.key:1.0"]) == 1
        assert "missing from every current artefact" in \
            capsys.readouterr().err

    def test_bad_floor_arg_rejected(self, tmp_path):
        base = _write(tmp_path, "b.json", FLOORED)
        with pytest.raises(SystemExit):
            check_regression.main(
                ["--pair", base, base, "--floor", "no-minimum"])


class TestFailureDiagnostics:
    def test_failure_names_baseline_and_refresh_command(self, tmp_path,
                                                        capsys):
        current = json.loads(json.dumps(BASELINE))
        current["rhs_ring"]["speedup_sparse_vs_dense"] = 10.0
        base = _write(tmp_path, "base.json", BASELINE)
        cur = _write(tmp_path, "cur.json", current)
        assert check_regression.main(["--pair", base, cur]) == 1
        err = capsys.readouterr().err
        # the refresh hint does not inflate the regression count
        assert "1 perf regression(s)" in err
        assert f"committed baseline: {base}" in err
        assert (f"PYTHONPATH=src python benchmarks/bench_backends.py "
                f"--quick --out {base}") in err

    def test_passing_gate_prints_no_hint(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", BASELINE)
        assert check_regression.main(["--pair", base, base]) == 0
        assert "committed baseline" not in capsys.readouterr().err
