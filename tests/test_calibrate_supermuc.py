"""Tests for model calibration and the SuperMUC-NG cross-check."""

import numpy as np
import pytest

from repro.analysis import (
    calibrate_beta_kappa,
    estimate_cycle_from_trace,
    estimate_sigma_from_gaps,
    estimate_sigma_from_trace,
    fit_model_to_trace,
)
from repro.core import (
    BottleneckPotential,
    PhysicalOscillatorModel,
    ring,
    simulate,
)
from repro.experiments import run_supermuc
from repro.metrics import classify
from repro.simulator import (
    ClusterSimulator,
    Injection,
    MachineSpec,
    PiSolverKernel,
    ProgramSpec,
    StreamTriadKernel,
)


class TestSigmaFromGaps:
    def test_inverts_the_gap_law(self):
        sigma = 1.2
        gaps = np.full(10, 2 * sigma / 3)
        assert estimate_sigma_from_gaps(gaps) == pytest.approx(sigma)

    def test_mixed_signs_handled(self):
        sigma = 0.9
        gaps = np.array([1, -1, 1, -1]) * (2 * sigma / 3)
        assert estimate_sigma_from_gaps(gaps) == pytest.approx(sigma)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_sigma_from_gaps(np.array([]))

    def test_roundtrip_through_simulation(self):
        """Simulate a bottleneck model, estimate sigma back from the
        asymptotic gaps: the estimate recovers the true value."""
        true_sigma = 1.4
        m = PhysicalOscillatorModel(
            topology=ring(12, (1, -1)),
            potential=BottleneckPotential(sigma=true_sigma),
            t_comp=0.9, t_comm=0.1, v_p_override=6.0)
        rng = np.random.default_rng(4)
        traj = simulate(m, 100.0, theta0=rng.normal(0, 1e-3, 12), seed=0)
        v = classify(traj.ts, traj.thetas, m.omega)
        est = estimate_sigma_from_gaps(np.array([v.mean_abs_gap]))
        assert est == pytest.approx(true_sigma, rel=0.05)


class TestCycleFromTrace:
    def test_compute_bound_split(self):
        m = MachineSpec(nodes=1, sockets_per_node=2, cores_per_socket=4,
                        socket_bandwidth=40e9, core_bandwidth=10e9,
                        core_flops=30e9)
        spec = ProgramSpec(n_ranks=6, n_iterations=10,
                           kernel=PiSolverKernel(1e5, machine=m),
                           machine=m, distances=(1, -1))
        trace = ClusterSimulator(spec, seed=0).run()
        cyc = estimate_cycle_from_trace(trace)
        assert cyc.t_comp == pytest.approx(spec.kernel.core_time, rel=1e-6)
        assert cyc.t_comm < 0.05 * cyc.t_comp
        assert cyc.period == pytest.approx(cyc.t_comp + cyc.t_comm)
        assert cyc.omega == pytest.approx(2 * np.pi / cyc.period)


class TestSigmaFromTrace:
    def test_lockstep_trace_gives_zero(self):
        m = MachineSpec(nodes=1, sockets_per_node=2, cores_per_socket=4,
                        socket_bandwidth=40e9, core_bandwidth=10e9,
                        core_flops=30e9)
        spec = ProgramSpec(n_ranks=6, n_iterations=12,
                           kernel=PiSolverKernel(1e5, machine=m),
                           machine=m, distances=(1, -1))
        trace = ClusterSimulator(spec, seed=0).run()
        assert estimate_sigma_from_trace(trace) == pytest.approx(0.0,
                                                                 abs=1e-6)

    def test_desynchronized_trace_gives_positive_sigma(self):
        kernel = StreamTriadKernel(2e6)
        machine = MachineSpec.meggie()
        spec = ProgramSpec(n_ranks=20, n_iterations=30, kernel=kernel,
                           machine=machine, distances=(1, -1))
        extra = 3.0 * kernel.single_core_time(machine)
        inj = Injection(rank=4, iteration=3, extra_time=extra)
        trace = ClusterSimulator(spec, injections=[inj], seed=0).run()
        sigma = estimate_sigma_from_trace(trace, socket_size=10)
        assert sigma > 0.01

    def test_fit_model_to_trace_classifies(self):
        kernel = StreamTriadKernel(2e6)
        machine = MachineSpec.meggie()
        spec = ProgramSpec(n_ranks=20, n_iterations=30, kernel=kernel,
                           machine=machine, distances=(1, -1))
        extra = 3.0 * kernel.single_core_time(machine)
        inj = Injection(rank=4, iteration=3, extra_time=extra)
        trace = ClusterSimulator(spec, injections=[inj], seed=0).run()
        fit = fit_model_to_trace(trace, socket_size=10)
        assert not fit["scalable"]
        assert fit["period"] > 0
        assert fit["sigma"] > 0


class TestBetaKappaCalibration:
    def test_recovers_known_coupling(self):
        """Measure a wave speed at a known beta*kappa, then invert."""
        from repro.core import OneOffDelay, TanhPotential
        from repro.metrics import measure_wave_speed

        true_bk = 4.0
        m = PhysicalOscillatorModel(
            topology=ring(24, (1, -1)), potential=TanhPotential(),
            t_comp=0.9, t_comm=0.1, v_p_override=true_bk,
            delays=(OneOffDelay(rank=6, t_start=10.0, delay=1.0),))
        traj = simulate(m, 200.0, seed=0)
        speed = measure_wave_speed(traj.ts, traj.thetas, m.omega, 6,
                                   t_injection=10.0).speed

        result = calibrate_beta_kappa(speed, n_ranks=24, t_end=200.0)
        assert result["converged"]
        assert result["beta_kappa"] == pytest.approx(true_bk, rel=0.25)

    def test_rejects_unreachable_speed(self):
        with pytest.raises(ValueError, match="outside achievable"):
            calibrate_beta_kappa(1e6, n_ranks=12, t_end=60.0,
                                 bk_range=(0.1, 1.0))

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError, match="positive"):
            calibrate_beta_kappa(-1.0)


class TestSupermuc:
    @pytest.fixture(scope="class")
    def result(self):
        return run_supermuc(n_ranks=48, n_iterations=60,
                            array_elements=2e6)

    def test_stream_saturates_wider_socket_later(self, result):
        """24-core Skylake socket: saturation beyond Meggie's 5 cores."""
        assert result.stream_curve.saturates
        assert result.stream_curve.saturation_ranks > 6.0
        assert result.stream_curve.bandwidth_GBs[-1] == pytest.approx(
            105.0, rel=0.05)

    def test_same_phenomenology_as_meggie(self, result):
        assert result.stream_desync.is_desynchronized
        assert not result.pisolver_desync.is_desynchronized
        assert result.phenomenology_matches_meggie

    def test_wave_speed_machine_independent(self, result):
        """d=±1 eager wave speed is 1 rank/iteration on any machine
        (it is a dependency-structure property, not a hardware one)."""
        assert result.stream_wave.speed_ranks_per_iteration == \
            pytest.approx(1.0, rel=0.25)
