"""Tests for the OscillatorTrajectory views (paper Sec. 3.2)."""

import numpy as np
import pytest

from repro.core import (
    OscillatorTrajectory,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    simulate,
)


def make_model(n=4, v=0.0):
    return PhysicalOscillatorModel(topology=ring(n, (1, -1)),
                                   potential=TanhPotential(),
                                   t_comp=0.9, t_comm=0.1, v_p_override=v)


def synthetic_traj(n=4, n_t=50, slope=None):
    """Phases advancing at omega with a per-rank offset."""
    m = make_model(n)
    ts = np.linspace(0.0, 5.0, n_t)
    offsets = np.arange(n) * (slope if slope is not None else 0.0)
    thetas = m.omega * ts[:, None] + offsets[None, :]
    return OscillatorTrajectory(ts=ts, thetas=thetas, model=m)


class TestValidation:
    def test_shape_checks(self):
        m = make_model(4)
        with pytest.raises(ValueError, match="2-D"):
            OscillatorTrajectory(ts=np.zeros(3), thetas=np.zeros(3), model=m)
        with pytest.raises(ValueError, match="samples"):
            OscillatorTrajectory(ts=np.zeros(3), thetas=np.zeros((4, 4)),
                                 model=m)
        with pytest.raises(ValueError, match="oscillators"):
            OscillatorTrajectory(ts=np.zeros(3), thetas=np.zeros((3, 7)),
                                 model=m)


class TestViews:
    def test_comoving_removes_rotation(self):
        traj = synthetic_traj(slope=0.1)
        x = traj.comoving_phases()
        # Time-independent after removing omega*t.
        np.testing.assert_allclose(x[0], x[-1], atol=1e-10)

    def test_lagger_normalized_nonnegative_with_zero_min(self):
        traj = synthetic_traj(slope=0.2)
        lag = traj.lagger_normalized()
        assert np.all(lag >= -1e-12)
        np.testing.assert_allclose(lag.min(axis=1), 0.0, atol=1e-12)

    def test_lagger_is_slowest_process(self):
        traj = synthetic_traj(slope=0.3)
        lag = traj.lagger_normalized()
        # Rank 0 has the smallest offset: it is the lagger everywhere.
        np.testing.assert_allclose(lag[:, 0], 0.0, atol=1e-12)

    def test_phase_differences_default_ring_pairs(self):
        traj = synthetic_traj(slope=0.5)
        d = traj.phase_differences()
        assert d.shape == (traj.n_samples, traj.n)
        # Interior pairs all at +0.5; the wrap pair at -(n-1)*0.5.
        np.testing.assert_allclose(d[0, :-1], 0.5, atol=1e-12)
        np.testing.assert_allclose(d[0, -1], -1.5, atol=1e-12)

    def test_phase_differences_custom_pairs(self):
        traj = synthetic_traj(slope=1.0)
        d = traj.phase_differences([(0, 3)])
        np.testing.assert_allclose(d[:, 0], 3.0, atol=1e-12)

    def test_potential_timeline_zero_in_sync(self):
        traj = synthetic_traj(slope=0.0)
        v = traj.potential_timeline()
        np.testing.assert_allclose(v, 0.0, atol=1e-12)

    def test_potential_timeline_edge_count(self):
        traj = synthetic_traj(slope=0.1)
        v = traj.potential_timeline()
        assert v.shape[1] == traj.model.topology.n_edges

    def test_circle_state_fields(self):
        traj = synthetic_traj(slope=0.4)
        st = traj.circle_state(-1)
        assert set(st) == {"angles", "x", "y", "frequency"}
        np.testing.assert_allclose(st["x"] ** 2 + st["y"] ** 2, 1.0,
                                   atol=1e-12)
        # Frequencies ~ omega for the uniform rotation.
        np.testing.assert_allclose(st["frequency"], traj.model.omega,
                                   rtol=1e-6)


class TestAsymptotics:
    def test_tail_keeps_final_fraction(self):
        traj = synthetic_traj(n_t=100)
        tail = traj.tail(0.25)
        assert tail.n_samples == 25
        assert tail.ts[-1] == traj.ts[-1]

    def test_tail_validates_fraction(self):
        with pytest.raises(ValueError):
            synthetic_traj().tail(0.0)

    def test_asymptotic_gaps(self):
        traj = synthetic_traj(slope=0.7)
        gaps = traj.asymptotic_gaps()
        np.testing.assert_allclose(gaps[:-1], 0.7, atol=1e-12)

    def test_mean_frequency_uniform_rotation(self):
        traj = synthetic_traj()
        np.testing.assert_allclose(traj.mean_frequency(),
                                   traj.model.omega, rtol=1e-9)

    def test_resample_with_dense_output(self):
        m = make_model(4, v=1.0)
        traj = simulate(m, 2.0, seed=0)
        r = traj.resample(33)
        assert r.n_samples == 33
        # Resampled endpoints agree with original.
        np.testing.assert_allclose(r.thetas[-1], traj.thetas[-1], atol=1e-8)

    def test_resample_without_dense_output_falls_back(self):
        traj = synthetic_traj(n_t=40)
        r = traj.resample(10)
        assert r.n_samples == 10
        np.testing.assert_allclose(r.thetas[0], traj.thetas[0], atol=1e-12)
