"""Tests for the POM right-hand side (Eq. 2) and the Kuramoto baseline."""

import numpy as np
import pytest

from repro.core import (
    ConstantInteractionNoise,
    CouplingSpec,
    GaussianJitter,
    KuramotoModel,
    LinearPotential,
    OneOffDelay,
    PhysicalOscillatorModel,
    Protocol,
    TanhPotential,
    ring,
)
from repro.integrate import HistoryBuffer


def make_model(**kw):
    defaults = dict(topology=ring(6, (1, -1)), potential=TanhPotential(),
                    t_comp=0.9, t_comm=0.1)
    defaults.update(kw)
    return PhysicalOscillatorModel(**defaults)


class TestModelProperties:
    def test_period_and_omega(self):
        m = make_model()
        assert m.period == pytest.approx(1.0)
        assert m.omega == pytest.approx(2 * np.pi)

    def test_v_p_from_paper_formula(self):
        m = make_model()
        assert m.v_p == pytest.approx(2.0)      # beta=1, kappa=2, T=1

    def test_v_p_override(self):
        m = make_model(v_p_override=7.5)
        assert m.v_p == 7.5
        assert m.beta_kappa == pytest.approx(7.5 * m.period)

    def test_rendezvous_coupling(self):
        m = make_model(coupling=CouplingSpec(protocol=Protocol.RENDEZVOUS))
        assert m.v_p == pytest.approx(4.0)

    def test_invalid_cycle_times(self):
        with pytest.raises(ValueError):
            make_model(t_comp=-1.0)
        with pytest.raises(ValueError):
            make_model(t_comp=0.0, t_comm=0.0)

    def test_delay_rank_validated(self):
        with pytest.raises(ValueError, match="out of range"):
            make_model(delays=(OneOffDelay(rank=99, t_start=0.0, delay=1.0),))

    def test_describe_is_complete(self):
        d = make_model().describe()
        for key in ("n", "period", "omega", "v_p", "beta_kappa",
                    "potential", "topology", "coupling"):
            assert key in d


class TestRHS:
    def test_synchronized_state_rhs_is_omega(self):
        m = make_model()
        realized = m.realize(10.0, rng=0)
        theta = np.zeros(m.n)
        np.testing.assert_allclose(realized.rhs(0.0, theta),
                                   np.full(m.n, m.omega), atol=1e-12)

    def test_rhs_matches_hand_computation(self):
        # 3 oscillators on a ring, explicit Eq. 2 evaluation.
        m = PhysicalOscillatorModel(topology=ring(3, (1, -1)),
                                    potential=TanhPotential(),
                                    t_comp=0.5, t_comm=0.5)
        realized = m.realize(10.0, rng=0)
        theta = np.array([0.0, 0.3, -0.2])
        got = realized.rhs(0.0, theta)
        omega = 2 * np.pi
        vp_n = m.v_p / 3.0
        expected = np.empty(3)
        for i in range(3):
            s = 0.0
            for j in range(3):
                if i != j:
                    s += np.tanh(theta[j] - theta[i])
            expected[i] = omega + vp_n * s
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_coupling_term_zero_without_edges(self):
        m = make_model(v_p_override=0.0)
        realized = m.realize(5.0, rng=0)
        theta = np.linspace(0, 1, m.n)
        np.testing.assert_allclose(realized.coupling_term(0.0, theta),
                                   np.zeros(m.n))

    def test_action_reaction_symmetry(self):
        # Odd potential + symmetric topology: coupling terms sum to zero.
        m = make_model()
        realized = m.realize(5.0, rng=0)
        theta = np.random.default_rng(0).normal(0, 1, m.n)
        total = realized.coupling_term(0.0, theta).sum()
        assert total == pytest.approx(0.0, abs=1e-12)

    def test_stalled_process_has_zero_frequency(self):
        m = make_model(delays=(OneOffDelay(rank=2, t_start=1.0, delay=2.0),))
        realized = m.realize(10.0, rng=0)
        freq = realized.intrinsic_frequency(2.0)   # inside the stall window
        assert freq[2] == 0.0
        assert np.all(freq[np.arange(m.n) != 2] > 0)

    def test_jitter_perturbs_frequency(self):
        m = make_model(local_noise=GaussianJitter(std=0.05, refresh=0.5))
        realized = m.realize(10.0, rng=42)
        freq = realized.intrinsic_frequency(0.25)
        assert not np.allclose(freq, m.omega)

    def test_frozen_noise_is_deterministic(self):
        m = make_model(local_noise=GaussianJitter(std=0.05, refresh=0.5))
        realized = m.realize(10.0, rng=42)
        f1 = realized.intrinsic_frequency(3.3)
        f2 = realized.intrinsic_frequency(3.3)
        np.testing.assert_array_equal(f1, f2)

    def test_same_seed_same_realization(self):
        m = make_model(local_noise=GaussianJitter(std=0.05, refresh=0.5))
        a = m.realize(10.0, rng=7).intrinsic_frequency(1.0)
        b = m.realize(10.0, rng=7).intrinsic_frequency(1.0)
        np.testing.assert_array_equal(a, b)

    def test_ode_rhs_closure_rejects_delays(self):
        m = make_model(interaction_noise=ConstantInteractionNoise(tau=0.1))
        realized = m.realize(10.0, rng=0)
        with pytest.raises(ValueError, match="delays"):
            realized.make_ode_rhs()


class TestDelayedCoupling:
    def test_delayed_phase_is_used(self):
        m = make_model(interaction_noise=ConstantInteractionNoise(tau=0.5))
        realized = m.realize(10.0, rng=0)
        assert realized.has_delays
        assert realized.max_delay() == pytest.approx(0.5)

        # History: theta grew linearly from 0; at t=1 the delayed
        # partner phase is theta(0.5) = 0.5*omega_like slope 1.
        hist = HistoryBuffer(0.0, np.zeros(m.n))
        hist.append(1.0, np.full(m.n, 1.0), f=np.ones(m.n))
        theta_now = np.full(m.n, 1.0)
        term = realized.coupling_term(1.0, theta_now, hist)
        # Partner phases at t-0.5 are 0.5, own phase 1.0: every pair
        # difference is -0.5 => tanh(-0.5) * 2 partners * v_p/N.
        expected = (m.v_p / m.n) * 2.0 * np.tanh(-0.5)
        np.testing.assert_allclose(term, np.full(m.n, expected), atol=1e-12)

    def test_zero_tau_matches_undelayed(self):
        m = make_model(interaction_noise=ConstantInteractionNoise(tau=0.0))
        realized = m.realize(10.0, rng=0)
        theta = np.random.default_rng(1).normal(0, 0.5, m.n)
        hist = HistoryBuffer(0.0, theta)
        with_hist = realized.coupling_term(0.0, theta, hist)
        without = realized.coupling_term(0.0, theta, None)
        np.testing.assert_allclose(with_hist, without, atol=1e-14)


class TestLinearPotentialAnalytics:
    def test_relaxation_rate_is_spectral_gap(self):
        """With V(d) = d the dynamics are linear:
        dx/dt = -(v_p/N) L x; the slowest mode decays at
        (v_p/N) * lambda_2(L)."""
        from repro.core import simulate

        n = 8
        topo = ring(n, (1, -1))
        vp = 4.0
        m = PhysicalOscillatorModel(topology=topo,
                                    potential=LinearPotential(),
                                    t_comp=0.9, t_comm=0.1,
                                    v_p_override=vp)
        rate = (vp / n) * topo.spectral_gap()

        # Excite exactly the slowest Fourier mode.
        k = np.arange(n)
        x0 = 0.1 * np.cos(2 * np.pi * k / n)
        traj = simulate(m, 3.0, theta0=x0, seed=0)
        x = traj.comoving_phases()
        amp0 = np.abs(x[0] - x[0].mean()).max()
        amp1 = np.abs(x[-1] - x[-1].mean()).max()
        measured_rate = -np.log(amp1 / amp0) / traj.t_end
        assert measured_rate == pytest.approx(rate, rel=0.05)


class TestKuramotoModel:
    def test_rhs_matches_eq1(self):
        km = KuramotoModel(n=3, coupling_k=1.5, omega=[1.0, 2.0, 3.0])
        theta = np.array([0.1, 0.5, -0.3])
        got = km.rhs(0.0, theta)
        expected = np.empty(3)
        for i in range(3):
            s = sum(np.sin(theta[j] - theta[i]) for j in range(3))
            expected[i] = [1.0, 2.0, 3.0][i] + 1.5 / 3 * s
        np.testing.assert_allclose(got, expected, atol=1e-14)

    def test_scalar_omega_broadcast(self):
        km = KuramotoModel(n=5, coupling_k=1.0, omega=2.0)
        np.testing.assert_array_equal(km.omega_vec, np.full(5, 2.0))

    def test_omega_shape_validated(self):
        with pytest.raises(ValueError, match="omega"):
            KuramotoModel(n=4, coupling_k=1.0, omega=[1.0, 2.0])

    def test_phase_slip_invariance(self):
        """The paper's criticism: shifting one oscillator by 2*pi leaves
        the Kuramoto RHS unchanged — impossible for real MPI processes."""
        km = KuramotoModel(n=6, coupling_k=2.0, omega=1.0)
        theta = np.random.default_rng(3).uniform(0, 2 * np.pi, 6)
        shifted = theta.copy()
        shifted[2] += 2 * np.pi
        np.testing.assert_allclose(km.rhs(0.0, theta), km.rhs(0.0, shifted),
                                   atol=1e-12)

    def test_pom_breaks_phase_slip_invariance(self):
        m = make_model()
        realized = m.realize(5.0, rng=0)
        theta = np.random.default_rng(3).uniform(0, 2 * np.pi, m.n)
        shifted = theta.copy()
        shifted[2] += 2 * np.pi
        assert not np.allclose(realized.rhs(0.0, theta),
                               realized.rhs(0.0, shifted))

    def test_critical_coupling_lorentzian(self):
        km = KuramotoModel(n=10, coupling_k=1.0)
        assert km.critical_coupling(gamma=0.5) == pytest.approx(1.0)

    def test_describe(self):
        d = KuramotoModel(n=4, coupling_k=2.0, omega=1.0).describe()
        assert d["model"] == "kuramoto"
        assert d["K"] == 2.0
