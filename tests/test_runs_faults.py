"""Tests for the deterministic fault-injection harness (repro.runs.faults)."""

import os

import pytest

from repro.runs.faults import (
    ENV_VAR,
    STATE_ENV_VAR,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    ensure_shared_state_dir,
    injector_from_env,
    parse_faults,
)


class TestParse:
    def test_full_syntax(self):
        specs = parse_faults("kill:shard=1;stall:shard=2,secs=3.5;"
                             "corrupt-cache:times=2;raise:p=0.5,seed=7")
        assert [s.kind for s in specs] == ["kill", "stall",
                                           "corrupt-cache", "raise"]
        assert specs[0].shard == 1
        assert specs[1].secs == 3.5
        assert specs[2].times == 2 and specs[2].shard is None
        assert specs[3].p == 0.5 and specs[3].seed == 7

    def test_bare_kind(self):
        (spec,) = parse_faults("drop-shm")
        assert spec.kind == "drop-shm"
        assert spec.shard is None and spec.times == 1

    def test_empty_segments_ignored(self):
        assert len(parse_faults("kill; ;stall:shard=0;")) == 2

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_faults("meteor-strike")

    def test_unknown_argument(self):
        with pytest.raises(ValueError, match="unknown fault argument"):
            parse_faults("kill:severity=11")

    def test_bad_argument_shape(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_faults("kill:shard")


class TestFiring:
    def test_times_budget(self):
        inj = FaultInjector(parse_faults("stall:times=2"))
        assert len(inj.fire("shard-start", shard=0)) == 1
        assert len(inj.fire("shard-start", shard=1)) == 1
        assert inj.fire("shard-start", shard=2) == []

    def test_shard_filter(self):
        inj = FaultInjector(parse_faults("stall:shard=3"))
        assert inj.fire("shard-start", shard=1) == []
        assert len(inj.fire("shard-start", shard=3)) == 1

    def test_site_filter(self):
        inj = FaultInjector(parse_faults("corrupt-cache"))
        assert inj.fire("shard-start", shard=0) == []
        assert len(inj.fire("cache-saved", shard=0)) == 1

    def test_raise_kind(self):
        inj = FaultInjector(parse_faults("raise:shard=0"))
        with pytest.raises(InjectedFault, match="shard 0"):
            inj.fire("shard-start", shard=0)
        # budget consumed by the raise
        inj.fire("shard-start", shard=0)

    def test_disabled_injector(self):
        inj = FaultInjector.disabled()
        assert not inj
        assert inj.fire("shard-start", shard=0) == []

    def test_probability_is_deterministic(self):
        fires = []
        for _ in range(2):
            inj = FaultInjector(parse_faults("stall:p=0.5,seed=3,times=100"))
            fires.append([bool(inj.fire("shard-start", shard=i))
                          for i in range(20)])
        assert fires[0] == fires[1]
        assert 0 < sum(fires[0]) < 20  # neither always nor never

    def test_state_dir_shares_counts(self, tmp_path):
        a = FaultInjector(parse_faults("stall"), state_dir=tmp_path)
        b = FaultInjector(parse_faults("stall"), state_dir=tmp_path)
        assert len(a.fire("shard-start", shard=0)) == 1
        # the "other process" sees the spent budget
        assert b.fire("shard-start", shard=0) == []


class TestEnv:
    def test_from_env_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not injector_from_env()

    def test_from_env_parses_and_uses_state_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, "kill:shard=2")
        monkeypatch.setenv(STATE_ENV_VAR, str(tmp_path / "state"))
        inj = injector_from_env()
        assert inj and inj.specs[0].kind == "kill"
        assert inj.state_dir == tmp_path / "state"

    def test_ensure_shared_state_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, "stall")
        monkeypatch.delenv(STATE_ENV_VAR, raising=False)
        ensure_shared_state_dir(tmp_path / "shared")
        assert os.environ[STATE_ENV_VAR] == str(tmp_path / "shared")
        # second call keeps the first choice
        ensure_shared_state_dir(tmp_path / "other")
        assert os.environ[STATE_ENV_VAR] == str(tmp_path / "shared")

    def test_ensure_is_noop_without_faults(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_VAR, raising=False)
        monkeypatch.delenv(STATE_ENV_VAR, raising=False)
        ensure_shared_state_dir(tmp_path / "unused")
        assert STATE_ENV_VAR not in os.environ
        assert not (tmp_path / "unused").exists()


class TestSpec:
    def test_ident_stability(self):
        spec = FaultSpec(kind="stall", shard=2)
        assert spec.ident(0) == "0-stall-2"
        assert FaultSpec(kind="kill").ident(3) == "3-kill-any"

    def test_site_mapping(self):
        assert FaultSpec(kind="drop-shm").site == "shm-written"
        assert FaultSpec(kind="corrupt-cache").site == "cache-saved"
