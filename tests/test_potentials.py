"""Tests for the interaction potentials (paper Eqs. 1, 3, 4; Fig. 1a)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BottleneckPotential,
    CustomPotential,
    KuramotoPotential,
    LinearPotential,
    TanhPotential,
    potential_from_name,
)


class TestTanhPotential:
    def test_matches_eq3(self):
        pot = TanhPotential()
        d = np.linspace(-10, 10, 101)
        np.testing.assert_allclose(pot(d), np.tanh(d), atol=1e-15)

    def test_scalar_input_returns_float(self):
        assert isinstance(TanhPotential()(0.5), float)

    def test_odd(self):
        assert TanhPotential().is_odd()

    def test_attractive_everywhere(self):
        pot = TanhPotential()
        d = np.linspace(0.01, 20, 50)
        assert np.all(np.asarray(pot(d)) > 0)

    def test_saturates_at_one(self):
        assert TanhPotential()(50.0) == pytest.approx(1.0)
        assert TanhPotential()(-50.0) == pytest.approx(-1.0)

    def test_stable_gap_is_zero(self):
        assert TanhPotential().stable_gap() == 0.0

    def test_gain_changes_slope(self):
        steep = TanhPotential(gain=5.0)
        assert steep.derivative(0.0) == pytest.approx(5.0, rel=1e-4)

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            TanhPotential(gain=0.0)

    def test_describe(self):
        d = TanhPotential(gain=2.0).describe()
        assert d["name"] == "tanh"
        assert d["gain"] == 2.0


class TestBottleneckPotential:
    def test_matches_eq4_inside_horizon(self):
        s = 1.5
        pot = BottleneckPotential(sigma=s)
        d = np.linspace(-s + 1e-6, s - 1e-6, 101)
        expected = -np.sin(3 * np.pi / (2 * s) * d)
        np.testing.assert_allclose(pot(d), expected, atol=1e-12)

    def test_matches_eq4_outside_horizon(self):
        pot = BottleneckPotential(sigma=1.0)
        assert pot(3.0) == 1.0
        assert pot(-3.0) == -1.0

    def test_continuous_at_horizon(self):
        for s in (0.5, 1.0, 2.0, 4.0):
            pot = BottleneckPotential(sigma=s)
            inside = pot(s - 1e-10)
            outside = pot(s + 1e-10)
            assert inside == pytest.approx(outside, abs=1e-8)

    def test_first_zero_at_two_thirds_sigma(self):
        for s in (0.5, 1.0, 2.0, 4.0):
            pot = BottleneckPotential(sigma=s)
            gap = pot.stable_gap()
            assert gap == pytest.approx(2 * s / 3)
            assert pot(gap) == pytest.approx(0.0, abs=1e-12)

    def test_stable_zero_has_positive_slope(self):
        # dg/dt ~ -V(g): stability at g* needs V'(g*) > 0.
        pot = BottleneckPotential(sigma=1.0)
        assert pot.derivative(pot.stable_gap()) > 0

    def test_origin_is_unstable(self):
        # V'(0) < 0: the synchronised state repels (desync onset).
        pot = BottleneckPotential(sigma=1.0)
        assert pot.derivative(0.0) < 0

    def test_repulsive_short_range(self):
        pot = BottleneckPotential(sigma=1.0)
        d = np.linspace(0.01, pot.stable_gap() - 0.01, 25)
        assert np.all(np.asarray(pot(d)) < 0)

    def test_attractive_long_range(self):
        pot = BottleneckPotential(sigma=1.0)
        d = np.linspace(pot.stable_gap() + 0.01, 10, 25)
        assert np.all(np.asarray(pot(d)) > 0)

    def test_odd(self):
        assert BottleneckPotential(sigma=2.0).is_odd()

    def test_scalar_input_returns_float(self):
        assert isinstance(BottleneckPotential(sigma=1.0)(0.5), float)

    def test_matrix_input_preserves_shape(self):
        pot = BottleneckPotential(sigma=1.0)
        d = np.zeros((4, 4)) + 0.3
        assert np.asarray(pot(d)).shape == (4, 4)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            BottleneckPotential(sigma=0.0)
        with pytest.raises(ValueError):
            BottleneckPotential(sigma=-1.0)

    def test_repulsive_range_property(self):
        pot = BottleneckPotential(sigma=3.0)
        assert pot.repulsive_range == pytest.approx(2.0)


class TestKuramotoPotential:
    def test_is_sine(self):
        pot = KuramotoPotential()
        d = np.linspace(-7, 7, 41)
        np.testing.assert_allclose(pot(d), np.sin(d), atol=1e-15)

    def test_permits_phase_slips(self):
        # 2*pi-shifted arguments are indistinguishable.
        pot = KuramotoPotential()
        assert pot(0.3) == pytest.approx(pot(0.3 + 2 * np.pi))
        assert KuramotoPotential.permits_phase_slips()

    def test_pom_potentials_forbid_phase_slips(self):
        # The paper's criticism: tanh/bottleneck are NOT 2*pi periodic.
        assert TanhPotential()(0.3) != pytest.approx(
            TanhPotential()(0.3 + 2 * np.pi))
        b = BottleneckPotential(sigma=1.0)
        assert b(0.3) != pytest.approx(b(0.3 + 2 * np.pi))


class TestLinearAndCustom:
    def test_linear_slope(self):
        pot = LinearPotential(k=2.5)
        assert pot(2.0) == pytest.approx(5.0)
        assert pot.describe()["k"] == 2.5

    def test_custom_wraps_callable(self):
        pot = CustomPotential(lambda d: 0.5 * np.asarray(d), name="half",
                              stable_gap=0.7)
        assert pot(2.0) == pytest.approx(1.0)
        assert pot.stable_gap() == 0.7
        assert pot.name == "half"


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("tanh", TanhPotential),
        ("scalable", TanhPotential),
        ("bottleneck", BottleneckPotential),
        ("saturating", BottleneckPotential),
        ("kuramoto", KuramotoPotential),
        ("sin", KuramotoPotential),
        ("linear", LinearPotential),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(potential_from_name(name), cls)

    def test_kwargs_forwarded(self):
        pot = potential_from_name("bottleneck", sigma=2.5)
        assert pot.sigma == 2.5

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown potential"):
            potential_from_name("spring-mass")


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(sigma=st.floats(min_value=0.05, max_value=10.0),
       d=st.floats(min_value=-50.0, max_value=50.0))
def test_property_bottleneck_bounded_and_odd(sigma, d):
    pot = BottleneckPotential(sigma=sigma)
    v = pot(d)
    assert -1.0 - 1e-12 <= v <= 1.0 + 1e-12
    assert pot(-d) == pytest.approx(-v, abs=1e-12)


@settings(max_examples=50, deadline=None)
@given(sigma=st.floats(min_value=0.05, max_value=10.0))
def test_property_bottleneck_sign_structure(sigma):
    """Repulsive strictly inside 2*sigma/3, attractive strictly outside."""
    pot = BottleneckPotential(sigma=sigma)
    gap = pot.stable_gap()
    inside = 0.5 * gap
    outside = gap + 0.5 * (sigma - gap)
    assert pot(inside) < 0
    assert pot(outside) > 0
    assert pot(2 * sigma) > 0


@settings(max_examples=50, deadline=None)
@given(gain=st.floats(min_value=0.1, max_value=10.0),
       d=st.floats(min_value=-20.0, max_value=20.0))
def test_property_tanh_monotone(gain, d):
    pot = TanhPotential(gain=gain)
    eps = 1e-3
    assert pot(d + eps) >= pot(d)
