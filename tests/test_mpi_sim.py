"""Tests for the MPI cluster simulator (rank state machine + semantics)."""

import numpy as np
import pytest

from repro.core.coupling import Protocol
from repro.simulator import (
    ClusterSimulator,
    GaussianComputeNoise,
    Injection,
    MachineSpec,
    NetworkModel,
    PiSolverKernel,
    ProgramSpec,
    StreamTriadKernel,
)
from repro.simulator.trace import Activity


def compute_spec(n_ranks=6, n_iters=8, distances=(1, -1), machine=None,
                 **kw):
    m = machine or MachineSpec(nodes=1, sockets_per_node=2,
                               cores_per_socket=4, socket_bandwidth=40e9,
                               core_bandwidth=10e9, core_flops=30e9)
    return ProgramSpec(n_ranks=n_ranks, n_iterations=n_iters,
                       kernel=PiSolverKernel(1e5, machine=m), machine=m,
                       distances=distances, **kw)


class TestSpecValidation:
    def test_basic_constraints(self):
        with pytest.raises(ValueError):
            compute_spec(n_ranks=1)
        with pytest.raises(ValueError):
            compute_spec(n_iters=0)
        with pytest.raises(ValueError):
            compute_spec(distances=())
        with pytest.raises(ValueError):
            compute_spec(distances=(0,))
        with pytest.raises(ValueError):
            compute_spec(n_ranks=4, distances=(5,))

    def test_partner_lists_ring(self):
        spec = compute_spec(n_ranks=6, distances=(1, -1, -2))
        assert spec.send_partners(0) == [(1, 1), (5, -1), (4, -2)]
        assert spec.recv_partners(0) == [(5, 1), (1, -1), (2, -2)]

    def test_partner_lists_open_chain(self):
        spec = compute_spec(n_ranks=6, distances=(1, -1), periodic=False)
        assert spec.send_partners(0) == [(1, 1)]
        assert spec.recv_partners(0) == [(1, -1)]
        assert spec.send_partners(5) == [(4, -1)]


class TestLockStepExecution:
    def test_compute_bound_ring_stays_in_lockstep(self):
        """A silent, symmetric compute-bound program is perfectly
        translation-invariant: every rank finishes every iteration at
        the same instant."""
        spec = compute_spec()
        trace = ClusterSimulator(spec, seed=0).run()
        ends = trace.iteration_ends
        assert np.all(np.isfinite(ends))
        np.testing.assert_allclose(ends - ends[:, :1], 0.0, atol=1e-12)

    def test_iteration_time_matches_kernel_model(self):
        spec = compute_spec()
        trace = ClusterSimulator(spec, seed=0).run()
        sweep = spec.kernel.single_core_time(spec.machine)
        durations = np.diff(trace.iteration_ends[:, 0])
        # Iteration = compute + tiny comm overhead.
        assert np.all(durations >= sweep)
        assert np.all(durations <= sweep * 1.05 + 1e-5)

    def test_deterministic_for_fixed_seed(self):
        spec = compute_spec()
        a = ClusterSimulator(spec, seed=3).run()
        b = ClusterSimulator(spec, seed=3).run()
        np.testing.assert_array_equal(a.iteration_ends, b.iteration_ends)

    def test_all_iterations_complete(self):
        spec = compute_spec(n_ranks=5, n_iters=12, distances=(2, -2, 1))
        trace = ClusterSimulator(spec, seed=0).run()
        assert trace.n_iterations == 12
        assert np.all(np.isfinite(trace.iteration_ends))


class TestTraceStructure:
    def test_interval_kinds_per_iteration(self):
        spec = compute_spec(n_ranks=4, n_iters=3)
        trace = ClusterSimulator(spec, seed=0).run()
        for tl in trace.timelines:
            kinds = [iv.kind for iv in tl.intervals]
            # compute, send, wait per iteration, in order.
            assert kinds == [Activity.COMPUTE, Activity.SEND,
                             Activity.WAIT] * 3

    def test_intervals_are_chronological(self):
        spec = compute_spec()
        trace = ClusterSimulator(spec, seed=0).run()
        for tl in trace.timelines:
            for a, b in zip(tl.intervals, tl.intervals[1:]):
                assert b.t_start >= a.t_end - 1e-9

    def test_compute_time_accounting(self):
        spec = compute_spec(n_iters=5)
        trace = ClusterSimulator(spec, seed=0).run()
        sweep = spec.kernel.single_core_time(spec.machine)
        for tl in trace.timelines:
            assert tl.total(Activity.COMPUTE) == pytest.approx(5 * sweep,
                                                               rel=1e-9)

    def test_meta_records_configuration(self):
        spec = compute_spec()
        trace = ClusterSimulator(spec, seed=0).run()
        assert trace.meta["n_ranks"] == 6
        assert trace.meta["protocol"] == "eager"
        assert "memory" in trace.meta


class TestIdleWavePropagation:
    def run_pair(self, distances, delay_rank=2, machine=None, n_ranks=12,
                 n_iters=20):
        if machine is None:
            machine = MachineSpec(nodes=2, sockets_per_node=2,
                                  cores_per_socket=4,
                                  socket_bandwidth=40e9,
                                  core_bandwidth=10e9, core_flops=30e9)
        spec = compute_spec(n_ranks=n_ranks, n_iters=n_iters,
                            distances=distances, machine=machine)
        base = ClusterSimulator(spec, seed=0).run()
        extra = 4.0 * spec.kernel.single_core_time(spec.machine)
        inj = Injection(rank=delay_rank, iteration=3, extra_time=extra)
        disturbed = ClusterSimulator(spec, injections=[inj], seed=0).run()
        return base, disturbed

    def test_delay_extends_makespan(self):
        base, disturbed = self.run_pair((1, -1))
        assert disturbed.makespan > base.makespan

    def test_next_neighbor_wave_speed_one(self):
        """d = ±1: the analytic model [4] predicts exactly 1 rank per
        iteration in each direction.  The direct neighbours already wait
        inside the injection iteration (their Waitall blocks on the
        delayed rank's message), so the front reaches ring distance k at
        iteration 3 + (k - 1)."""
        base, disturbed = self.run_pair((1, -1))
        lag = disturbed.iteration_ends - base.iteration_ends
        for k in (1, 2, 3, 4):
            arrive = 3 + (k - 1)
            assert lag[arrive, 2 + k] > 1e-6         # wave arrived
            assert lag[arrive - 1, 2 + k] < 1e-9     # not before
            # Symmetric leftward propagation.
            assert lag[arrive, 2 - k] > 1e-6

    def test_longer_distance_faster_wave(self):
        """d = ±1,-2 propagates 2 ranks/iteration leftwards: the send of
        rank r with d = -2 targets r - 2, so rank r - 2 waits on r."""
        base, disturbed = self.run_pair((1, -1, -2))
        lag = disturbed.iteration_ends - base.iteration_ends
        # Leftward front: distance 2k at iteration 3 + (k - 1)
        # (ranks 0, 10, 8, ... on the 12-ring).
        assert lag[3, 0] > 1e-6           # direct -2 receiver
        assert lag[4, 10] > 1e-6          # two hops of -2
        assert lag[3, 10] < 1e-9          # but not already at 3
        assert lag[5, 8] > 1e-6
        assert lag[4, 8] < 1e-9
        # Rightward is still 1 rank/iteration (d = +1 only).
        assert lag[4, 4] > 1e-6
        assert lag[3, 4] < 1e-9

    def test_wave_conserved_without_noise(self):
        """On a silent system every rank eventually absorbs the full
        delay (the wave does not decay — refs [2,4])."""
        base, disturbed = self.run_pair((1, -1))
        lag = disturbed.iteration_ends - base.iteration_ends
        final = lag[-1]
        assert np.all(final > 0.9 * final.max())

    def test_wait_matrix_shows_wave(self):
        base, disturbed = self.run_pair((1, -1))
        waits = disturbed.wait_matrix()
        # Neighbours of the delayed rank wait during the delay iteration.
        assert waits[3, 1] > 0 or waits[3, 3] > 0


class TestRendezvousProtocol:
    def test_rendezvous_couples_sender_to_receiver(self):
        """With rendezvous, a slow *receiver* stalls its senders: the
        makespan impact of a delay is at least as large as eager."""
        m = MachineSpec(nodes=1, sockets_per_node=2, cores_per_socket=4,
                        socket_bandwidth=40e9, core_bandwidth=10e9,
                        core_flops=30e9)
        results = {}
        for proto in (Protocol.EAGER, Protocol.RENDEZVOUS):
            spec = ProgramSpec(
                n_ranks=6, n_iterations=12,
                kernel=PiSolverKernel(1e5, machine=m), machine=m,
                distances=(1, -1),
                network=NetworkModel(forced_protocol=proto))
            extra = 4.0 * spec.kernel.single_core_time(m)
            inj = Injection(rank=2, iteration=3, extra_time=extra)
            base = ClusterSimulator(spec, seed=0).run()
            dist = ClusterSimulator(spec, injections=[inj], seed=0).run()
            lag = dist.iteration_ends - base.iteration_ends
            # Count ranks already lagging two iterations after injection.
            results[proto] = int((lag[5] > 1e-6).sum())
        assert results[Protocol.RENDEZVOUS] >= results[Protocol.EAGER]

    def test_rendezvous_completes_without_deadlock(self):
        m = MachineSpec(nodes=1, sockets_per_node=2, cores_per_socket=4,
                        socket_bandwidth=40e9, core_bandwidth=10e9,
                        core_flops=30e9)
        spec = ProgramSpec(
            n_ranks=8, n_iterations=10,
            kernel=PiSolverKernel(1e5, machine=m), machine=m,
            distances=(1, -1, -2),
            network=NetworkModel(forced_protocol=Protocol.RENDEZVOUS))
        trace = ClusterSimulator(spec, seed=0).run()
        assert np.all(np.isfinite(trace.iteration_ends))

    def test_protocol_chosen_by_message_size(self):
        spec = compute_spec(message_bytes=1024.0)
        assert ClusterSimulator(spec)._protocol is Protocol.EAGER
        big = compute_spec(message_bytes=1e6)
        assert ClusterSimulator(big)._protocol is Protocol.RENDEZVOUS


class TestMemoryBoundExecution:
    def test_socket_contention_slows_iterations(self, tiny_machine):
        """4 STREAM ranks on a 40 GB/s socket run slower per sweep than
        a single uncontended rank would."""
        kernel = StreamTriadKernel(2e6)
        spec = ProgramSpec(n_ranks=4, n_iterations=6, kernel=kernel,
                           machine=tiny_machine, distances=(1, -1))
        trace = ClusterSimulator(spec, seed=0).run()
        solo = kernel.single_core_time(tiny_machine)
        contended = kernel.contended_time(tiny_machine, 4)
        mean_iter = trace.makespan / 6
        assert mean_iter > solo
        assert mean_iter == pytest.approx(contended, rel=0.1)

    def test_memory_stats_accumulated(self, small_memory_spec):
        sim = ClusterSimulator(small_memory_spec, seed=0)
        sim.run()
        total = sum(a.stats.bytes_transferred
                    for a in sim.memory_stats.values())
        expected = (small_memory_spec.kernel.traffic_bytes
                    * small_memory_spec.n_ranks
                    * small_memory_spec.n_iterations)
        assert total == pytest.approx(expected, rel=1e-6)

    def test_delay_produces_persistent_desync(self):
        """The residual computational wavefront (paper Sec. 5.1.2): on a
        multi-socket memory-bound run a one-off delay leaves persistent
        staggered execution, while the undisturbed run is lock-step."""
        kernel = StreamTriadKernel(2e6)
        m = MachineSpec.meggie()          # one node, two sockets
        spec = ProgramSpec(n_ranks=20, n_iterations=30, kernel=kernel,
                           machine=m, distances=(1, -1))
        extra = 3.0 * kernel.single_core_time(m)
        inj = Injection(rank=4, iteration=3, extra_time=extra)
        base = ClusterSimulator(spec, seed=0).run()
        dist = ClusterSimulator(spec, injections=[inj], seed=0).run()
        mean_iter = dist.makespan / 30
        skew_base = (base.iteration_ends[-1].max()
                     - base.iteration_ends[-1].min())
        skew_dist = (dist.iteration_ends[-1].max()
                     - dist.iteration_ends[-1].min())
        assert skew_base < 1e-9                      # lock-step baseline
        assert skew_dist > 0.05 * mean_iter          # persistent wavefront

    def test_delay_absorbed_within_oversubscribed_socket(self):
        """The extra idle-wave decay channel (Sec. 5.1.2): ranks sharing
        a saturated socket absorb most of an injected delay because the
        remaining ranks stream faster while the victim stalls (a
        compute-bound kernel instead propagates the full delay — see
        the idle-wave conservation test)."""
        kernel = StreamTriadKernel(2e6)
        m = MachineSpec.meggie()
        spec = ProgramSpec(n_ranks=20, n_iterations=30, kernel=kernel,
                           machine=m, distances=(1, -1))
        extra = 3.0 * kernel.single_core_time(m)
        inj = Injection(rank=4, iteration=3, extra_time=extra)
        base = ClusterSimulator(spec, seed=0).run()
        dist = ClusterSimulator(spec, injections=[inj], seed=0).run()
        growth = dist.makespan - base.makespan
        assert growth < 0.8 * extra


class TestNoiseAndBarriers:
    def test_compute_noise_breaks_lockstep(self):
        spec = compute_spec(n_iters=10)
        noise = GaussianComputeNoise(std=0.1 * spec.kernel.core_time)
        trace = ClusterSimulator(spec, compute_noise=noise, seed=1).run()
        ends = trace.iteration_ends
        skew = ends.max(axis=1) - ends.min(axis=1)
        assert skew[-1] > 0

    def test_noise_reproducible_by_seed(self):
        spec = compute_spec(n_iters=6)
        noise = GaussianComputeNoise(std=0.1 * spec.kernel.core_time)
        a = ClusterSimulator(spec, compute_noise=noise, seed=9).run()
        b = ClusterSimulator(spec, compute_noise=noise, seed=9).run()
        np.testing.assert_array_equal(a.iteration_ends, b.iteration_ends)

    def test_barrier_resynchronizes(self):
        """With a global barrier every iteration, a one-off delay cannot
        produce a travelling wave: all ranks stall together."""
        spec_free = compute_spec(n_ranks=8, n_iters=12)
        spec_barrier = compute_spec(n_ranks=8, n_iters=12,
                                    barrier_interval=1)
        extra = 4.0 * spec_free.kernel.single_core_time(spec_free.machine)
        inj = Injection(rank=2, iteration=3, extra_time=extra)
        free = ClusterSimulator(spec_free, injections=[inj], seed=0).run()
        barr = ClusterSimulator(spec_barrier, injections=[inj], seed=0).run()
        lag_free = free.iteration_ends[5] - free.iteration_ends[5].min()
        lag_barr = barr.iteration_ends[5] - barr.iteration_ends[5].min()
        # Barrier: everyone in lock-step again right after the delay.
        assert lag_barr.max() == pytest.approx(0.0, abs=1e-9)
        # Barrier-free: the wave is still travelling (some ranks ahead).
        assert lag_free.max() > 1e-6

    def test_barrier_intervals_recorded(self):
        spec = compute_spec(n_ranks=4, n_iters=6, barrier_interval=2)
        trace = ClusterSimulator(spec, seed=0).run()
        kinds = {iv.kind for tl in trace.timelines for iv in tl.intervals}
        assert Activity.BARRIER in kinds


class TestInjectionValidation:
    def test_out_of_range_injection(self):
        spec = compute_spec()
        with pytest.raises(ValueError, match="rank"):
            ClusterSimulator(spec, injections=[
                Injection(rank=99, iteration=0, extra_time=1.0)])
        with pytest.raises(ValueError, match="iteration"):
            ClusterSimulator(spec, injections=[
                Injection(rank=0, iteration=99, extra_time=1.0)])
