"""Tests for the declarative scenario specs (repro.runs.spec)."""

import numpy as np
import pytest

from repro.core import (
    BottleneckPotential,
    GaussianJitter,
    NoNoise,
    ring,
    torus2d,
)
from repro.runs import ScenarioSpec, model_from_spec, topology_from_spec
from repro.runs.spec import (
    initial_from_spec,
    interaction_noise_from_spec,
    local_noise_from_spec,
)


def base_spec(**overrides) -> ScenarioSpec:
    kwargs = dict(
        name="test",
        model={
            "topology": {"kind": "ring", "n": 8, "distances": [1, -1]},
            "potential": {"kind": "bottleneck", "sigma": 1.0},
            "t_comp": 0.9,
            "t_comm": 0.1,
        },
        t_end=10.0,
        axes=[("potential.sigma", [0.5, 1.0]), ("seed", [0, 1, 2])],
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestBuilders:
    def test_ring_matches_core_builder(self):
        topo = topology_from_spec({"kind": "ring", "n": 10,
                                   "distances": [1, -1, -2]})
        ref = ring(10, (1, -1, -2))
        np.testing.assert_array_equal(topo.matrix, ref.matrix)
        assert topo.name == ref.name

    def test_torus_and_edge_backed(self):
        t1 = topology_from_spec({"kind": "torus2d", "nx": 4, "ny": 3})
        np.testing.assert_array_equal(t1.matrix, torus2d(4, 3).matrix)
        t2 = topology_from_spec({"kind": "ring_edges", "n": 30})
        np.testing.assert_array_equal(t2.matrix, ring(30).matrix)

    def test_unknown_topology_kind(self):
        with pytest.raises(ValueError, match="unknown topology kind") as err:
            topology_from_spec({"kind": "moebius", "n": 8})
        # the redesigned error enumerates the registry with params
        assert "ring(n, distances=(1, -1), symmetrize=True)" in str(err.value)
        assert "dragonfly(" in str(err.value)

    def test_registered_kind_with_wrong_params_names_them(self):
        with pytest.raises(ValueError, match="missing required key"):
            topology_from_spec({"kind": "hypercube"})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            topology_from_spec({"kind": "ring", "n": 8, "distnaces": [1]})

    def test_noise_builders(self):
        assert isinstance(local_noise_from_spec(None), NoNoise)
        g = local_noise_from_spec({"kind": "gaussian", "std": 0.02})
        assert isinstance(g, GaussianJitter) and g.std == 0.02
        tau = interaction_noise_from_spec({"kind": "constant", "tau": 0.01})
        assert tau.tau == 0.01

    def test_model_from_spec_full(self):
        model = model_from_spec({
            "topology": {"kind": "ring", "n": 6},
            "potential": {"kind": "bottleneck", "sigma": 2.0},
            "t_comp": 0.8,
            "t_comm": 0.2,
            "coupling": {"protocol": "rendezvous", "wait_mode": "waitall"},
            "local_noise": {"kind": "gaussian", "std": 0.01},
            "delays": [{"rank": 2, "t_start": 5.0, "delay": 1.0}],
            "v_p_override": 3.0,
            "kernel": "numpy",
        })
        assert isinstance(model.potential, BottleneckPotential)
        assert model.potential.sigma == 2.0
        assert model.v_p == 3.0
        assert model.coupling.beta == 2.0
        assert model.delays[0].rank == 2
        assert model.kernel == "numpy"

    def test_model_unknown_key(self):
        with pytest.raises(ValueError, match="unknown model key"):
            model_from_spec({"topology": {"kind": "ring", "n": 6},
                             "t_comp": 1.0, "t_comm": 0.1,
                             "potental": {"kind": "tanh"}})

    def test_initial_kinds(self):
        assert np.all(initial_from_spec(None, 5) == 0.0)
        p = initial_from_spec({"kind": "perturbed", "rank": 2,
                               "offset": -0.5}, 5)
        assert p[2] == -0.5 and p[0] == 0.0
        s = initial_from_spec({"kind": "splayed", "gap": 0.4}, 4)
        np.testing.assert_allclose(s, [0.0, 0.4, 0.8, 1.2])
        # the normal kind reproduces the sweep_sigma convention exactly
        n = initial_from_spec({"kind": "normal", "std": 1e-3, "seed": 7}, 16)
        ref = np.random.default_rng(7).normal(0.0, 1e-3, size=16)
        np.testing.assert_array_equal(n, ref)

    def test_initial_is_deterministic(self):
        a = initial_from_spec({"kind": "random", "seed": 3}, 10)
        b = initial_from_spec({"kind": "random", "seed": 3}, 10)
        np.testing.assert_array_equal(a, b)


class TestExpansion:
    def test_member_count_and_order(self):
        spec = base_spec()
        members = spec.members()
        assert len(members) == spec.n_members == 6
        # row-major: last axis (seed) fastest
        assert [m.seed for m in members] == [0, 1, 2, 0, 1, 2]
        sigmas = [m.model["potential"]["sigma"] for m in members]
        assert sigmas == [0.5, 0.5, 0.5, 1.0, 1.0, 1.0]

    def test_axis_does_not_leak_into_base(self):
        spec = base_spec()
        spec.members()
        assert spec.model["potential"]["sigma"] == 1.0

    def test_no_axes_single_member(self):
        spec = base_spec(axes=[])
        members = spec.members()
        assert len(members) == 1
        assert members[0].seed == 0

    def test_t_end_axis(self):
        spec = base_spec(axes=[("t_end", [5.0, 10.0])])
        assert [m.t_end for m in spec.members()] == [5.0, 10.0]

    def test_dotted_path_creates_nested(self):
        spec = base_spec(axes=[("local_noise.std", [0.01, 0.02])])
        members = spec.members()
        assert members[1].model["local_noise"]["std"] == 0.02

    def test_member_builds_model(self):
        spec = base_spec()
        m = spec.members()[0]
        model = m.build_model()
        assert model.potential.sigma == 0.5
        assert m.build_theta0(model.n).shape == (model.n,)

    def test_member_roundtrip(self):
        from repro.runs import MemberSpec

        m = base_spec().members()[3]
        again = MemberSpec.from_dict(m.to_dict())
        assert again == m

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            base_spec(axes=[("potential.sigma", [])])

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError, match="unknown solver method"):
            base_spec(solver={"method": "leapfrog"})

    def test_solver_key_typo_rejected(self):
        with pytest.raises(ValueError, match="unknown solver key"):
            base_spec(solver={"method": "rk4", "rtol_": 1e-3})

    def test_numpy_axis_values_are_coerced(self):
        # sweeps hand in ndarrays; the spec must stay JSON-serialisable
        spec = base_spec(axes=[("potential.sigma", np.linspace(0.5, 2, 4)),
                               ("seed", np.arange(3))],
                         seed=np.int64(0), t_end=np.float64(10.0))
        assert len(spec.content_hash()) == 64
        assert all(type(v) is float for v in spec.axes[0][1])
        assert all(type(v) is int for v in spec.axes[1][1])

    def test_validate_catches_model_typos(self):
        spec = base_spec()
        spec.model["potential"] = {"kind": "bottelneck", "sigma": 1.0}
        with pytest.raises(ValueError):
            spec.validate()


class TestSerialisation:
    def test_json_roundtrip(self, tmp_path):
        spec = base_spec(initial={"kind": "normal", "std": 1e-3, "seed": 0},
                         solver={"method": "rk4", "dt": 0.002})
        path = tmp_path / "spec.json"
        spec.to_json(path)
        again = ScenarioSpec.from_json(path)
        assert again == spec
        assert again.content_hash() == spec.content_hash()

    def test_from_json_string(self):
        spec = base_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_hash_changes_with_content(self):
        assert base_spec().content_hash() != \
            base_spec(t_end=11.0).content_hash()
        assert base_spec().content_hash() != \
            base_spec(seed=1).content_hash()

    def test_hash_stable_across_processes(self):
        # sha256 of canonical JSON: no dict-order or repr dependence
        a = base_spec().content_hash()
        b = ScenarioSpec.from_dict(base_spec().to_dict()).content_hash()
        assert a == b and len(a) == 64

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown spec key"):
            ScenarioSpec.from_dict({"name": "x", "model": {}, "t_end": 1.0,
                                    "axis": []})
