"""End-to-end tests for the HTTP campaign service (`pom serve`).

Every test runs a real :class:`~repro.service.CampaignServer` on an
ephemeral port and talks to it over actual HTTP — the same stack CI's
service-smoke leg exercises against the installed CLI.
"""

import io
import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.runs import ScenarioSpec, WorkQueue, compile_plan, run_spec
from repro.runs.queue import default_queue_sibling
from repro.service import CampaignServer, ServiceClient, ServiceError
from repro.viz.export import csv_text, read_csv, write_csv

SPEC_DICT = {
    "name": "svc-grid",
    "model": {
        "topology": {"kind": "ring", "n": 8, "distances": [1, -1]},
        "potential": {"kind": "bottleneck", "sigma": 1.0},
        "t_comp": 0.9,
        "t_comm": 0.1,
    },
    "t_end": 5.0,
    "solver": {"method": "rk4"},
    "initial": {"kind": "normal", "std": 0.001, "seed": 0},
    "axes": [["potential.sigma", [0.5, 1.5]], ["seed", [0, 1]]],
}


@pytest.fixture
def spec():
    return ScenarioSpec.from_dict(SPEC_DICT)


@pytest.fixture
def server(tmp_path):
    """A serving instance with 2 drainer workers on an ephemeral port."""
    srv = CampaignServer(tmp_path / "q.db", workers=2,
                        worker_opts={"lease_ttl": 10.0}, poll=0.05)
    with srv:
        yield srv


@pytest.fixture
def idle_server(tmp_path):
    """A serving instance with NO workers: submissions stay enqueued."""
    srv = CampaignServer(tmp_path / "q.db", workers=0)
    with srv:
        yield srv


class TestEndpoints:
    def test_healthz(self, server):
        client = ServiceClient(server.url)
        health = client.healthz()
        assert health["ok"] is True
        assert health["queue"]["depth"] == 0
        assert health["workers"]["jobs"] == 2

    def test_registry_lists_spec_scenarios(self, server):
        scenarios = {s["name"]: s for s in
                     ServiceClient(server.url).registry()["scenarios"]}
        assert scenarios["sigma"]["has_spec"] is True
        assert scenarios["fig1a"]["has_spec"] is False

    def test_submit_status_result_roundtrip(self, server, spec):
        client = ServiceClient(server.url)
        out = client.submit(spec, shard_members=2)
        assert out["id"] == spec.content_hash()
        assert out["cached"] is False
        assert out["new_shards"] == out["shards"] == 2
        assert out["members"] == 4

        status = client.wait(out["id"], timeout=120)
        assert status["counts"]["done"] == 2
        assert status["quarantined"] == []

        # Served NPZ decodes to exactly the direct-execution arrays.
        direct = run_spec(spec, shard_members=2)
        with np.load(io.BytesIO(client.result_bytes(out["id"]))) as npz:
            for m in direct.members:
                np.testing.assert_array_equal(npz[f"ts_{m.index}"], m.ts)
                np.testing.assert_array_equal(
                    npz[f"thetas_{m.index}"], m.thetas)

    def test_resubmit_is_pure_cache_hit(self, server, spec):
        client = ServiceClient(server.url)
        first = client.submit(spec, shard_members=2)
        client.wait(first["id"], timeout=120)
        queue = WorkQueue(server.service.queue_path)
        rows_before = len(queue.rows())

        again = client.submit(spec, shard_members=2)
        assert again["cached"] is True
        assert again["status"] == "done"
        assert again["new_shards"] == 0
        assert len(queue.rows()) == rows_before

    def test_prewarmed_submit_never_touches_queue(self, server, spec):
        # Warm the shared cache out-of-band (a direct `pom run` against
        # the same cache dir), then submit: the campaign must complete
        # at submit time with zero queue rows ever created.
        run_spec(spec, shard_members=2, cache=server.service.cache)
        out = ServiceClient(server.url).submit(spec, shard_members=2)
        assert out["cached"] is True
        assert out["status"] == "done"
        assert out["new_shards"] == 0
        assert WorkQueue(server.service.queue_path).rows() == []

    def test_csv_result_matches_direct_summary(self, server, spec,
                                               tmp_path):
        client = ServiceClient(server.url)
        out = client.submit(spec, shard_members=2)
        client.wait(out["id"], timeout=120)
        served = client.result_bytes(out["id"], fmt="csv")

        direct = run_spec(spec, shard_members=2)
        path = tmp_path / "direct.csv"
        write_csv(path, direct.summary_table(),
                  meta={"spec": spec.content_hash(), "name": spec.name})
        (tmp_path / "served.csv").write_bytes(served)
        a, b = read_csv(tmp_path / "served.csv"), read_csv(path)
        assert set(a) == set(b)
        for col in a:
            if isinstance(a[col], list):
                assert a[col] == b[col]
            else:
                np.testing.assert_array_equal(a[col], b[col])

    def test_scenario_name_submit(self, idle_server):
        out = ServiceClient(idle_server.url).submit(
            scenario="sigma", quick=True)
        assert out["status"] == "running"
        assert out["members"] == 2
        assert out["new_shards"] >= 1


class TestErrors:
    def test_malformed_spec_400_with_json_body(self, server):
        req = urllib.request.Request(
            server.url + "/v1/campaigns",
            data=json.dumps({"spec": {"nope": 1}}).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "invalid scenario spec" in body["error"]

    def test_invalid_json_body_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/campaigns", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req)
        assert excinfo.value.code == 400
        assert "not valid JSON" in json.loads(excinfo.value.read())["error"]

    def test_spec_and_scenario_together_400(self, server):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url)._json(
                "POST", "/v1/campaigns",
                {"spec": SPEC_DICT, "scenario": "sigma"})
        assert excinfo.value.status == 400

    def test_unknown_scenario_name_400(self, server):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url).submit(scenario="fig77")
        assert excinfo.value.status == 400
        assert "unknown experiment" in str(excinfo.value)

    def test_unknown_campaign_404(self, server):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url).status("deadbeef" * 8)
        assert excinfo.value.status == 404

    def test_malformed_campaign_id_404(self, server):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url).status("not-a-hash")
        assert excinfo.value.status == 404

    def test_unknown_endpoint_404(self, server):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url)._json("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_result_before_done_409(self, idle_server, spec):
        client = ServiceClient(idle_server.url)
        out = client.submit(spec, shard_members=2)
        with pytest.raises(ServiceError) as excinfo:
            client.result_bytes(out["id"])
        assert excinfo.value.status == 409
        assert "outstanding" in str(excinfo.value)

    def test_unknown_result_format_400(self, server, spec):
        client = ServiceClient(server.url)
        out = client.submit(spec, shard_members=2)
        client.wait(out["id"], timeout=120)
        with pytest.raises(ServiceError) as excinfo:
            client.result_bytes(out["id"], fmt="parquet")
        assert excinfo.value.status == 400


class TestConcurrency:
    def test_concurrent_duplicate_submits_collapse(self, idle_server,
                                                   spec):
        client = ServiceClient(idle_server.url)
        results, errors = [], []

        def _submit():
            try:
                results.append(client.submit(spec, shard_members=2))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=_submit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 8
        # One campaign id, and the queue rows were created exactly once
        # across all racing submits.
        assert {r["id"] for r in results} == {spec.content_hash()}
        assert sum(r["new_shards"] for r in results) == 2
        assert len(WorkQueue(idle_server.service.queue_path).rows()) == 2


class TestFaultTolerance:
    def test_worker_kill_during_served_campaign_converges(
            self, tmp_path, spec, monkeypatch):
        # A drainer worker SIGKILLs at shard start; the reaper expires
        # its lease and the pool respawns — the served result must
        # still be bit-identical to a clean direct run.
        monkeypatch.setenv("POM_FAULTS", "kill:shard=0,times=1")
        monkeypatch.delenv("POM_FAULTS_STATE", raising=False)
        srv = CampaignServer(tmp_path / "q.db", workers=2,
                             worker_opts={"lease_ttl": 1.0,
                                          "backoff": 0.1}, poll=0.05)
        with srv:
            client = ServiceClient(srv.url)
            out = client.submit(spec, shard_members=2)
            status = client.wait(out["id"], timeout=120)
            assert status["counts"]["done"] == 2
            blob = client.result_bytes(out["id"])

        monkeypatch.delenv("POM_FAULTS")
        monkeypatch.delenv("POM_FAULTS_STATE", raising=False)
        direct = run_spec(spec, shard_members=2)
        with np.load(io.BytesIO(blob)) as npz:
            for m in direct.members:
                np.testing.assert_array_equal(
                    npz[f"thetas_{m.index}"], m.thetas)


class TestMetrics:
    def test_requests_logged_as_json_lines(self, server, spec):
        client = ServiceClient(server.url)
        client.healthz()
        out = client.submit(spec, shard_members=2)
        client.wait(out["id"], timeout=120)
        lines = [json.loads(ln) for ln in
                 server.metrics.path.read_text().splitlines()]
        assert len(lines) >= 3
        for entry in lines:
            assert {"t", "method", "path", "status", "ms",
                    "queue_depth"} <= set(entry)
        submits = [e for e in lines
                   if e["method"] == "POST" and e["status"] == 200]
        assert submits and submits[0]["hit"] is False

    def test_metrics_default_path_is_queue_sibling(self, server):
        expected = default_queue_sibling(server.service.queue_path,
                                         "metrics.jsonl")
        assert server.metrics.path == expected


class TestServiceRestart:
    def test_campaign_survives_server_restart(self, tmp_path, spec):
        # Manifests and results are on disk next to the queue, so a new
        # server instance answers for campaigns submitted before it.
        queue_path = tmp_path / "q.db"
        with CampaignServer(queue_path, workers=2,
                            worker_opts={"lease_ttl": 10.0},
                            poll=0.05) as srv:
            client = ServiceClient(srv.url)
            out = client.submit(spec, shard_members=2)
            client.wait(out["id"], timeout=120)

        with CampaignServer(queue_path, workers=0) as srv2:
            client2 = ServiceClient(srv2.url)
            status = client2.status(out["id"])
            assert status["status"] == "done"
            blob = client2.result_bytes(out["id"])
        with np.load(io.BytesIO(blob)) as npz:
            assert any(name.startswith("thetas_") for name in npz.files)


class TestCliVerbs:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(SPEC_DICT))
        return str(path)

    def test_submit_wait_status_fetch(self, capsys, tmp_path, spec_file,
                                      server, spec):
        assert main(["submit", spec_file, "--url", server.url,
                     "--shard-members", "2", "--wait"]) == 0
        out = capsys.readouterr().out
        assert f"campaign {spec.content_hash()}" in out
        assert "done" in out

        assert main(["status", spec.content_hash(), "--url",
                     server.url]) == 0
        assert "done=2" in capsys.readouterr().out

        # status accepts the spec file too (hashes it client-side)
        assert main(["status", spec_file, "--url", server.url]) == 0
        assert "done=2" in capsys.readouterr().out

        out_dir = tmp_path / "fetched"
        assert main(["fetch", spec_file, "--url", server.url,
                     "--out", str(out_dir) + "/"]) == 0
        fetched = list(out_dir.glob("*.npz"))
        assert len(fetched) == 1
        direct = run_spec(spec, shard_members=2)
        with np.load(fetched[0]) as npz:
            for m in direct.members:
                np.testing.assert_array_equal(
                    npz[f"thetas_{m.index}"], m.thetas)

    def test_submit_unreachable_url_fails_cleanly(self, spec_file):
        with pytest.raises(SystemExit, match="submit failed"):
            main(["submit", spec_file, "--url",
                  "http://127.0.0.1:1/"])

    def test_fetch_csv_format(self, capsys, tmp_path, spec_file, server):
        assert main(["submit", spec_file, "--url", server.url,
                     "--shard-members", "2", "--wait"]) == 0
        capsys.readouterr()
        out_file = tmp_path / "result.csv"
        assert main(["fetch", spec_file, "--url", server.url,
                     "--out", str(out_file), "--format", "csv"]) == 0
        cols = read_csv(out_file)
        assert "r_final" in cols


class TestReuseHooks:
    def test_npz_bytes_equals_save_npz_arrays(self, spec, tmp_path):
        result = run_spec(spec, shard_members=2)
        path = result.save_npz(tmp_path / "direct.npz")
        with np.load(path) as on_disk, \
                np.load(io.BytesIO(result.npz_bytes())) as in_mem:
            assert sorted(on_disk.files) == sorted(in_mem.files)
            for name in on_disk.files:
                np.testing.assert_array_equal(on_disk[name], in_mem[name])

    def test_csv_text_equals_write_csv_bytes(self, tmp_path):
        columns = {"a": [1.0, 2.5], "b": ["x", "y"]}
        meta = {"name": "t"}
        path = write_csv(tmp_path / "t.csv", columns, meta=meta)
        assert path.read_bytes() == csv_text(columns, meta=meta).encode()

    def test_collect_cached_none_until_all_shards_present(self, spec,
                                                          tmp_path):
        from repro.runs import ResultCache, collect_cached

        cache = ResultCache(tmp_path / "cache")
        plan = compile_plan(spec, shard_members=2)
        assert collect_cached(plan, cache) is None

        direct = run_spec(spec, shard_members=2, cache=cache)
        assembled = collect_cached(plan, cache)
        assert assembled is not None
        assert assembled.n_cached == plan.n_shards
        assert assembled.n_executed == 0
        for got, want in zip(assembled.members, direct.members):
            assert got.index == want.index
            np.testing.assert_array_equal(got.thetas, want.thetas)
