"""Kernel-equivalence suite: numpy vs tiled vs compiled coupling kernels.

Every selectable kernel must produce the same coupling term (to ~1e-12)
as the reference NumPy edge-list path, on ring/torus/random topologies,
for the single-state, homogeneous-batched, and heterogeneous-batched
backends — including the ``CustomPotential`` per-group fallback that the
coefficient-based compiled kernels cannot express.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.backends import (
    BatchedBackend,
    HeteroBatchedBackend,
    make_backend,
    make_batched_backend,
)
from repro.core import (
    BottleneckPotential,
    CustomPotential,
    KuramotoPotential,
    LinearPotential,
    PhysicalOscillatorModel,
    TanhPotential,
    chain,
    random_topology,
    ring,
    ring_edges,
    simulate,
    torus2d,
    torus2d_edges,
)
from repro.kernels import cc as cc_kernels
from repro.kernels.coeffs import eval_coefficients, family_coefficients

needs_cc = pytest.mark.skipif(not kernels.cc_available(),
                              reason="no working C compiler")
needs_numba = pytest.mark.skipif(not kernels.numba_available(),
                                 reason="numba not installed")

def _kernel_params():
    params = [pytest.param("numpy", id="numpy"), pytest.param("tiled", id="tiled")]
    params.append(pytest.param("cc", id="cc", marks=needs_cc))
    params.append(pytest.param("numba", id="numba", marks=needs_numba))
    return params


TOPOLOGIES = [
    pytest.param(lambda: ring(96, (1, -1)), id="ring"),
    pytest.param(lambda: ring(97, (1, -1, -2)), id="ring-asym"),
    pytest.param(lambda: torus2d(8, 7), id="torus"),
    pytest.param(lambda: random_topology(
        60, 0.08, rng=np.random.default_rng(5)), id="random"),
]

POTENTIALS = [
    pytest.param(lambda: TanhPotential(1.3), id="tanh"),
    pytest.param(lambda: BottleneckPotential(0.8), id="bottleneck"),
    pytest.param(lambda: KuramotoPotential(), id="kuramoto"),
    pytest.param(lambda: LinearPotential(0.6), id="linear"),
]


def _model(topo, pot, **kw):
    return PhysicalOscillatorModel(topology=topo, potential=pot,
                                   t_comp=0.9, t_comm=0.1, **kw)


# ----------------------------------------------------------------------
# registry / resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_available_names(self):
        assert kernels.available_kernels() == (
            "auto", "numpy", "tiled", "numba", "cc")

    def test_unknown_kernel_rejected_everywhere(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernels.normalize_kernel_name("fortran")
        with pytest.raises(ValueError, match="unknown kernel"):
            _model(ring(8), TanhPotential(), kernel="fortran")
        with pytest.raises(ValueError, match="unknown kernel"):
            simulate(_model(ring(8), TanhPotential()), 1.0, kernel="fortran")

    def test_auto_prefers_compiled_with_coefficients(self):
        resolved = kernels.resolve_kernel(
            "auto", has_coefficients=True, n_edges=16)
        if kernels.numba_available():
            assert resolved == "numba"
        elif kernels.cc_available():
            assert resolved == "cc"
        else:
            assert resolved == "numpy"

    def test_auto_custom_potential_falls_back(self):
        small = kernels.resolve_kernel(
            "auto", has_coefficients=False, n_edges=16)
        large = kernels.resolve_kernel(
            "auto", has_coefficients=False,
            n_edges=kernels.TILED_AUTO_MIN_EDGES)
        assert small == "numpy"
        assert large == "tiled"

    def test_explicit_compiled_without_coefficients_raises(self):
        for name in ("cc", "numba"):
            with pytest.raises((ValueError, RuntimeError)):
                kernels.resolve_kernel(name, has_coefficients=False,
                                       n_edges=16)

    def test_dense_backend_rejects_explicit_kernel(self):
        realized = _model(ring(16), TanhPotential()).realize(1.0, rng=0)
        with pytest.raises(ValueError, match="does not support"):
            make_backend(realized, "dense", kernel="tiled")
        # "auto" composes with every backend
        make_backend(realized, "dense", kernel="auto")

    def test_explicit_kernel_steers_auto_backend_to_sparse(self):
        # ring(6) is dense by the density rule; an explicit kernel is a
        # request for the edge-list path and must not crash on it.
        model = _model(ring(6), TanhPotential())
        realized = model.realize(1.0, rng=0, kernel="tiled")
        assert realized.backend.name == "sparse"
        assert realized.backend.kernel == "tiled"
        # without a kernel request, density still picks dense
        assert model.realize(1.0, rng=0).backend.name == "dense"

    def test_model_field_and_describe(self):
        model = _model(ring(16), TanhPotential(), kernel="tiled")
        assert model.describe()["kernel"] == "tiled"
        backend = model.realize(1.0, rng=0, backend="sparse").backend
        assert backend.kernel == "tiled"
        assert backend.describe()["kernel"] == "tiled"


# ----------------------------------------------------------------------
# coefficients
# ----------------------------------------------------------------------
class TestCoefficients:
    @pytest.mark.parametrize("make_pot", POTENTIALS)
    def test_eval_matches_potential(self, make_pot):
        pot = make_pot()
        kind, p0, p1 = pot.kernel_coefficients()
        d = np.linspace(-4.0, 4.0, 513)
        np.testing.assert_array_equal(
            eval_coefficients(kind, p0, p1, d.copy()),
            np.asarray(pot(d), dtype=float))

    def test_custom_potential_has_no_coefficients(self):
        pot = CustomPotential(lambda d: np.tanh(d), "wrapped-tanh")
        assert pot.kernel_coefficients() is None
        assert family_coefficients([TanhPotential(), pot]) is None

    def test_family_coefficients_mixes_families(self):
        pots = [TanhPotential(2.0), BottleneckPotential(1.5),
                KuramotoPotential(), LinearPotential(0.3)]
        kinds, p0, p1 = family_coefficients(pots)
        assert kinds.tolist() == [0, 1, 2, 3]
        assert p0[0] == 2.0 and p0[1] == 1.5 and p0[3] == 0.3


# ----------------------------------------------------------------------
# single-state equivalence
# ----------------------------------------------------------------------
class TestSingleEquivalence:
    @pytest.mark.parametrize("kernel", _kernel_params())
    @pytest.mark.parametrize("make_topo", TOPOLOGIES)
    @pytest.mark.parametrize("make_pot", POTENTIALS)
    def test_coupling_matches_numpy(self, make_topo, make_pot, kernel):
        topo = make_topo()
        model = _model(topo, make_pot())
        theta = np.random.default_rng(1).normal(0.0, 1.0, topo.n)
        ref = make_backend(model.realize(5.0, rng=0), "sparse",
                           kernel="numpy").coupling(0.0, theta)
        out = make_backend(model.realize(5.0, rng=0), "sparse",
                           kernel=kernel).coupling(0.0, theta)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-13)

    @pytest.mark.parametrize("kernel", _kernel_params())
    def test_custom_potential(self, kernel):
        pot = CustomPotential(lambda d: np.tanh(d) + 0.05 * d, "mix")
        model = _model(ring(64), pot)
        theta = np.random.default_rng(2).normal(0.0, 1.0, 64)
        ref = make_backend(model.realize(5.0, rng=0), "sparse",
                           kernel="numpy").coupling(0.0, theta)
        if kernel in ("cc", "numba"):
            with pytest.raises(ValueError, match="kernel coefficients"):
                make_backend(model.realize(5.0, rng=0), "sparse",
                             kernel=kernel)
            return
        out = make_backend(model.realize(5.0, rng=0), "sparse",
                           kernel=kernel).coupling(0.0, theta)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-13)


# ----------------------------------------------------------------------
# batched / hetero equivalence
# ----------------------------------------------------------------------
class TestBatchedEquivalence:
    @pytest.mark.parametrize("kernel", _kernel_params())
    @pytest.mark.parametrize("make_topo", TOPOLOGIES)
    def test_homogeneous_batch(self, make_topo, kernel):
        from repro.core import GaussianJitter

        topo = make_topo()
        model = _model(topo, TanhPotential(),
                       local_noise=GaussianJitter(std=0.02, refresh=0.5))
        members = [model.realize(5.0, rng=s, backend="sparse")
                   for s in range(5)]
        thetas = np.random.default_rng(3).normal(0.0, 1.0, (5, topo.n))
        ref = np.stack([m.coupling_term(0.0, thetas[i])
                        for i, m in enumerate(members)])
        out = BatchedBackend(members, kernel=kernel).coupling(0.0, thetas)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-13)

    @pytest.mark.parametrize("kernel", _kernel_params())
    def test_hetero_mixed_families(self, kernel):
        topo = ring(80, (1, -1))
        pots = [TanhPotential(0.5), BottleneckPotential(1.1),
                KuramotoPotential(), LinearPotential(0.8),
                BottleneckPotential(2.0)]
        models = [_model(topo, p, v_p_override=0.05 * (i + 1))
                  for i, p in enumerate(pots)]
        members = [m.realize(5.0, rng=7) for m in models]
        thetas = np.random.default_rng(4).normal(0.0, 1.0, (5, 80))
        ref = np.stack([m.coupling_term(0.0, thetas[i])
                        for i, m in enumerate(members)])
        backend = HeteroBatchedBackend(members, kernel=kernel)
        np.testing.assert_allclose(backend.coupling(0.0, thetas), ref,
                                   rtol=1e-12, atol=1e-13)

    @pytest.mark.parametrize("kernel", ["auto", "numpy", "tiled"])
    def test_hetero_custom_potential_fallback(self, kernel):
        """CustomPotential groups (no Potential.stack, no coefficients)."""
        topo = ring(48, (1, -1))
        pots = [TanhPotential(),
                CustomPotential(lambda d: 0.5 * np.sin(d), "half-sin"),
                CustomPotential(lambda d: np.arctan(d), "atan")]
        models = [_model(topo, p) for p in pots]
        members = [m.realize(5.0, rng=2) for m in models]
        thetas = np.random.default_rng(5).normal(0.0, 1.0, (3, 48))
        ref = np.stack([m.coupling_term(0.0, thetas[i])
                        for i, m in enumerate(members)])
        backend = HeteroBatchedBackend(members, kernel=kernel)
        assert backend.kernel in ("numpy", "tiled")
        np.testing.assert_allclose(backend.coupling(0.0, thetas), ref,
                                   rtol=1e-12, atol=1e-13)

    def test_hetero_custom_potential_compiled_raises(self):
        topo = ring(48, (1, -1))
        members = [_model(topo, CustomPotential(np.sin, "sin")).realize(
            5.0, rng=0)]
        for name in ("cc", "numba"):
            with pytest.raises((ValueError, RuntimeError)):
                HeteroBatchedBackend(members, kernel=name)

    def test_subset_propagates_kernel(self):
        topo = ring(48, (1, -1))
        members = [_model(topo, TanhPotential()).realize(5.0, rng=s)
                   for s in range(4)]
        backend = HeteroBatchedBackend(members, kernel="tiled")
        sub = backend.subset([1, 3])
        assert sub.kernel == "tiled"

    def test_make_batched_backend_kernel_knob(self):
        topo = ring(48, (1, -1))
        members = [_model(topo, TanhPotential()).realize(5.0, rng=s)
                   for s in range(3)]
        backend = make_batched_backend(members, kernel="tiled")
        assert backend.kernel == "tiled"


# ----------------------------------------------------------------------
# tile plan
# ----------------------------------------------------------------------
class TestTilePlan:
    @pytest.mark.parametrize("block_edges", [1, 3, 7, 64, 10_000])
    def test_blocks_cover_all_edges_row_aligned(self, block_edges):
        topo = random_topology(40, 0.15, rng=np.random.default_rng(9))
        indptr, _ = topo.csr()
        rows, _ = topo.edge_list()
        plan = kernels.TilePlan(indptr, rows, topo.n, block_edges)
        covered_edges = 0
        prev_r1 = 0
        for e0, e1, r0, r1, local in plan.blocks:
            assert r0 == prev_r1          # contiguous row coverage
            assert (e0, e1) == (int(indptr[r0]), int(indptr[r1]))
            assert local.min() >= 0 and local.max() < r1 - r0
            covered_edges += e1 - e0
            prev_r1 = r1
        assert covered_edges == topo.n_edges

    def test_invalid_block_size(self):
        topo = ring(16)
        indptr, _ = topo.csr()
        with pytest.raises(ValueError):
            kernels.TilePlan(indptr, topo.edge_list()[0], topo.n, 0)


# ----------------------------------------------------------------------
# ring specialisation (cc kernel)
# ----------------------------------------------------------------------
class TestRingOffsets:
    def test_detects_rings(self):
        for dists in ((1, -1), (1, -1, -2), (3, 5)):
            topo = ring(37, dists)
            rows, cols = topo.edge_list()
            offs = cc_kernels.ring_offsets(rows, cols, topo.n)
            assert offs is not None
            assert sorted(offs.tolist()) == sorted(
                {d % 37 for d in set(dists) | {-d for d in dists}})

    def test_rejects_non_rings(self):
        for topo in (chain(24, (1, -1)),
                     random_topology(24, 0.2,
                                     rng=np.random.default_rng(1))):
            rows, cols = topo.edge_list()
            assert cc_kernels.ring_offsets(rows, cols, topo.n) is None


# ----------------------------------------------------------------------
# edge-backed topologies at (moderately) large N
# ----------------------------------------------------------------------
class TestEdgeBackedTopology:
    def test_ring_edges_matches_ring(self):
        for dists in ((1, -1), (1, -1, -2)):
            dense, edged = ring(50, dists), ring_edges(50, dists)
            np.testing.assert_array_equal(dense.matrix, edged.matrix)
            assert dense.name == edged.name
            assert dense.distances == edged.distances
            assert edged.is_symmetric == dense.is_symmetric

    def test_torus_edges_matches_torus(self):
        dense, edged = torus2d(6, 5), torus2d_edges(6, 5)
        np.testing.assert_array_equal(dense.matrix, edged.matrix)
        assert dense.name == edged.name

    def test_large_n_never_densifies(self):
        topo = ring_edges(100_000, (1, -1))
        assert topo.n_edges == 200_000
        assert topo.degree()[0] == 2.0
        assert topo.is_symmetric
        with pytest.raises(MemoryError):
            _ = topo.matrix

    def test_batched_validation_never_densifies(self):
        """Equal edge-backed topologies (distinct objects) must batch."""
        models = [
            PhysicalOscillatorModel(
                topology=ring_edges(100_000, (1, -1)),
                potential=TanhPotential(),
                t_comp=0.9, t_comm=0.1, v_p_override=0.1 * (i + 1))
            for i in range(2)
        ]
        members = [m.realize(1.0, rng=0) for m in models]
        backend = HeteroBatchedBackend(members)   # must not raise MemoryError
        assert backend.n == 100_000
        small = ring_edges(50, (1, -1))
        other = ring_edges(50, (1, -1, -2))
        mixed = [
            PhysicalOscillatorModel(topology=t, potential=TanhPotential(),
                                    t_comp=0.9, t_comm=0.1).realize(1.0, rng=0)
            for t in (small, other)
        ]
        # Same-N mixed topologies now batch as a topology-axis group
        # (still comparing edge lists, never densifying).
        assert HeteroBatchedBackend(
            mixed, kernel="numpy").describe()["mixed_topologies"]

    def test_large_n_rhs_evaluates(self):
        topo = ring_edges(50_000, (1, -1))
        model = _model(topo, TanhPotential())
        realized = model.realize(1.0, rng=0, backend="sparse")
        theta = np.random.default_rng(0).normal(0.0, 1.0, topo.n)
        out = realized.rhs(0.0, theta)
        assert out.shape == (50_000,)
        assert np.all(np.isfinite(out))


# ----------------------------------------------------------------------
# end-to-end
# ----------------------------------------------------------------------
class TestEndToEnd:
    @pytest.mark.parametrize("kernel", _kernel_params())
    def test_simulate_kernel_knob(self, kernel):
        from repro.core import GaussianJitter

        model = _model(ring(32), BottleneckPotential(1.0),
                       local_noise=GaussianJitter(std=0.01, refresh=0.5))
        ref = simulate(model, 20.0, seed=0, kernel="numpy")
        traj = simulate(model, 20.0, seed=0, kernel=kernel)
        np.testing.assert_allclose(traj.thetas, ref.thetas,
                                   rtol=1e-8, atol=1e-8)

    def test_simulate_grid_honours_model_kernel_field(self, monkeypatch):
        from repro.core import simulate_grid
        from repro.core import simulation as sim_mod

        captured = {}
        orig = sim_mod.make_batched_backend

        def spy(members, name="auto", kernel="auto", threads=None):
            captured["kernel"] = kernel
            return orig(members, name, kernel=kernel, threads=threads)

        monkeypatch.setattr(sim_mod, "make_batched_backend", spy)
        topo = ring(24)
        models = [_model(topo, TanhPotential(), kernel="tiled")
                  for _ in range(3)]
        simulate_grid(models, 5.0, method="rk4")
        assert captured["kernel"] == "tiled"
        # disagreeing fields fall back to auto
        models[1] = _model(topo, TanhPotential(), kernel="numpy")
        simulate_grid(models, 5.0, method="rk4")
        assert captured["kernel"] == "auto"

    def test_cli_kernel_flag(self, capsys):
        from repro.cli import main

        assert main(["model", "--n", "16", "--t-end", "5",
                     "--kernel", "tiled", "--view", "summary"]) == 0
        out = capsys.readouterr().out
        assert "kernel=tiled" in out

    def test_cli_kernel_auto_reports_resolved(self, capsys):
        from repro.cli import main

        assert main(["model", "--n", "16", "--t-end", "5",
                     "--view", "summary"]) == 0
        out = capsys.readouterr().out
        assert "kernel=" in out


# ----------------------------------------------------------------------
# ring specialisation (numba kernel — port of the cc fast path)
# ----------------------------------------------------------------------
@needs_numba
class TestNumbaRing:
    def test_backend_dispatches_ring_path(self):
        from repro.backends.sparse import SparseBackend

        realized = _model(ring(48, (1, -1)), TanhPotential()).realize(
            5.0, rng=0)
        backend = make_backend(realized, "sparse", kernel="numba")
        assert isinstance(backend, SparseBackend)
        assert backend._ring_offsets is not None

        # non-ring topologies keep the generic fused path
        realized = _model(chain(48, (1, -1)), TanhPotential()).realize(
            5.0, rng=0)
        backend = make_backend(realized, "sparse", kernel="numba")
        assert backend._ring_offsets is None

    def test_hetero_dispatches_ring_path(self):
        topo = ring(48, (1, -1, -2))
        members = [_model(topo, BottleneckPotential(0.6 * (i + 1))).realize(
            5.0, rng=0) for i in range(3)]
        backend = HeteroBatchedBackend(members, kernel="numba")
        assert backend._ring_offsets is not None

    @pytest.mark.parametrize("make_pot", POTENTIALS)
    @pytest.mark.parametrize("dists", [(1, -1), (1, -1, -2), (3, 5)])
    def test_ring_single_matches_numpy(self, make_pot, dists):
        from repro.kernels import numba_kernels

        topo = ring(53, dists)
        pot = make_pot()
        rows, cols = topo.edge_list()
        offs = cc_kernels.ring_offsets(rows, cols, topo.n)
        assert offs is not None
        kind, p0, p1 = pot.kernel_coefficients()
        theta = np.random.default_rng(6).normal(0.0, 2.0, topo.n)
        v = np.asarray(pot(theta[cols] - theta[rows]), dtype=float)
        ref = 0.1 * np.bincount(rows, weights=v, minlength=topo.n)
        out = numba_kernels.ring_single(offs, theta, np.empty(topo.n),
                                        kind, p0, p1, 0.1)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-13)

    def test_ring_batched_matches_single(self):
        from repro.kernels import numba_kernels

        topo = ring(40, (1, -1))
        pots = [TanhPotential(0.7), BottleneckPotential(1.2),
                LinearPotential(0.4)]
        offs = cc_kernels.ring_offsets(*topo.edge_list(), topo.n)
        coeffs = np.array([p.kernel_coefficients() for p in pots])
        kinds = np.ascontiguousarray(coeffs[:, 0], dtype=np.int64)
        p0 = np.ascontiguousarray(coeffs[:, 1])
        p1 = np.ascontiguousarray(coeffs[:, 2])
        vps = np.array([0.1, 0.2, 0.3])
        thetas = np.random.default_rng(7).normal(0.0, 1.0, (3, 40))
        out = numba_kernels.ring_batched(offs, thetas, np.empty((3, 40)),
                                         kinds, p0, p1, vps)
        for r, pot in enumerate(pots):
            ref = numba_kernels.ring_single(
                offs, np.ascontiguousarray(thetas[r]), np.empty(40),
                int(kinds[r]), float(p0[r]), float(p1[r]), float(vps[r]))
            np.testing.assert_array_equal(out[r], ref)

    def test_simulate_end_to_end(self):
        model = _model(ring(32, (1, -1)), BottleneckPotential(1.0),
                       kernel="numba")
        ref = simulate(model, 10.0, seed=0, kernel="numpy",
                       backend="sparse")
        out = simulate(model, 10.0, seed=0, kernel="numba",
                       backend="sparse")
        np.testing.assert_allclose(out.thetas, ref.thetas,
                                   rtol=1e-9, atol=1e-10)
