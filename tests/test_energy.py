"""Tests for the energy (Lyapunov) diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BottleneckPotential,
    KuramotoPotential,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    simulate,
)
from repro.metrics import (
    energy_series,
    pair_energy_curve,
    sync_energy,
    system_energy,
    wavefront_energy,
)


def make(potential, n=12, v_p=6.0):
    return PhysicalOscillatorModel(topology=ring(n, (1, -1)),
                                   potential=potential,
                                   t_comp=0.9, t_comm=0.1,
                                   v_p_override=v_p)


class TestAntiderivatives:
    def test_tanh_closed_form(self):
        pot = TanhPotential(gain=2.0)
        d = np.linspace(-5, 5, 41)
        expected = np.log(np.cosh(2.0 * d)) / 2.0
        np.testing.assert_allclose(pot.antiderivative(d), expected,
                                   atol=1e-10)

    def test_tanh_overflow_safe(self):
        # log(cosh(500)) overflows naive evaluation.
        val = TanhPotential().antiderivative(500.0)
        assert val == pytest.approx(500.0 - np.log(2.0), rel=1e-9)

    def test_bottleneck_closed_form_vs_numeric(self):
        pot = BottleneckPotential(sigma=1.3)
        for d in (-3.0, -0.9, 0.0, 0.4, 1.2, 2.5):
            xs = np.linspace(0.0, d, 20001) if d != 0 else np.array([0.0])
            numeric = np.trapezoid(np.asarray(pot(xs)), xs) if d != 0 else 0.0
            assert pot.antiderivative(d) == pytest.approx(numeric,
                                                          abs=1e-6)

    def test_bottleneck_double_well(self):
        pot = BottleneckPotential(sigma=1.5)
        gap = pot.stable_gap()
        u_0 = pot.antiderivative(0.0)
        u_min = pot.antiderivative(gap)
        assert u_0 == 0.0
        assert u_min < u_0              # wavefront is energetically lower
        # The minimum is at the stable gap (check neighbours).
        assert pot.antiderivative(gap * 0.8) > u_min
        assert pot.antiderivative(gap * 1.2) > u_min

    def test_antiderivative_even_for_odd_potential(self):
        for pot in (TanhPotential(), BottleneckPotential(sigma=0.8)):
            d = np.linspace(0.1, 4.0, 17)
            np.testing.assert_allclose(pot.antiderivative(d),
                                       pot.antiderivative(-d), atol=1e-9)

    def test_numeric_fallback_for_kuramoto(self):
        pot = KuramotoPotential()
        # U(d) = 1 - cos(d).
        assert pot.antiderivative(np.pi / 2) == pytest.approx(1.0,
                                                              abs=1e-4)


class TestSystemEnergy:
    def test_sync_energy_is_zero(self):
        assert sync_energy(make(TanhPotential())) == 0.0
        assert sync_energy(make(BottleneckPotential(sigma=1.0))) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            system_energy(make(TanhPotential()), np.zeros(5))

    def test_tanh_energy_positive_away_from_sync(self):
        m = make(TanhPotential())
        theta = np.random.default_rng(0).normal(0, 0.5, 12)
        assert system_energy(m, theta) > 0.0

    def test_bottleneck_wavefront_energy_negative(self):
        """Bottleneck evasion as energy minimisation: the zigzag
        wavefront lies below the lock-step state."""
        m = make(BottleneckPotential(sigma=1.0))
        assert wavefront_energy(m) < sync_energy(m)

    def test_wavefront_is_local_minimum(self):
        m = make(BottleneckPotential(sigma=1.0))
        e_star = wavefront_energy(m)
        for gap in (0.5, 0.6, 0.75, 0.8):
            assert wavefront_energy(m, gap=gap) >= e_star - 1e-12


class TestLyapunovProperty:
    def test_energy_decreases_bottleneck(self):
        m = make(BottleneckPotential(sigma=1.0))
        rng = np.random.default_rng(0)
        traj = simulate(m, 40.0, theta0=rng.normal(0, 1e-2, 12), seed=0)
        e = energy_series(traj)
        assert np.all(np.diff(e) <= 1e-6)   # solver-tolerance slack
        # And the trajectory lands on the wavefront energy level.
        assert e[-1] == pytest.approx(wavefront_energy(m), rel=0.05)

    def test_energy_decreases_tanh(self):
        m = make(TanhPotential())
        rng = np.random.default_rng(1)
        traj = simulate(m, 20.0, theta0=rng.normal(0, 0.5, 12), seed=0)
        e = energy_series(traj)
        assert np.all(np.diff(e) <= 1e-6)
        assert e[-1] == pytest.approx(0.0, abs=1e-3)

    def test_energy_series_length(self):
        m = make(TanhPotential())
        traj = simulate(m, 5.0, seed=0)
        assert energy_series(traj).shape == (traj.n_samples,)


class TestPairEnergyCurve:
    def test_curve_fields(self):
        curve = pair_energy_curve(BottleneckPotential(sigma=1.0))
        assert set(curve) == {"d", "U", "V"}
        assert curve["U"].shape == curve["d"].shape

    def test_curve_derivative_consistency(self):
        """dU/dd must equal V (spot-check by finite differences)."""
        curve = pair_energy_curve(TanhPotential(), span=4.0, n_points=4001)
        dU = np.gradient(curve["U"], curve["d"])
        np.testing.assert_allclose(dU[100:-100], curve["V"][100:-100],
                                   atol=2e-3)


@settings(max_examples=25, deadline=None)
@given(sigma=st.floats(min_value=0.3, max_value=3.0),
       d=st.floats(min_value=-8.0, max_value=8.0))
def test_property_bottleneck_U_above_minimum(sigma, d):
    """The pair energy is bounded below by its wavefront minimum."""
    pot = BottleneckPotential(sigma=sigma)
    u_min = pot.antiderivative(pot.stable_gap())
    assert pot.antiderivative(d) >= u_min - 1e-12
