"""Tests for the coupling-strength rule v_p = beta*kappa/(t_comp+t_comm)."""

import pytest

from repro.core import CouplingSpec, Protocol, WaitMode, ring


class TestProtocol:
    def test_eager_beta(self):
        assert Protocol.EAGER.beta == 1.0

    def test_rendezvous_beta(self):
        assert Protocol.RENDEZVOUS.beta == 2.0


class TestCouplingSpec:
    def test_paper_formula_next_neighbor(self):
        # eager, d=+-1, T=1s: v_p = 1 * 2 / 1 = 2.
        spec = CouplingSpec()
        topo = ring(10, (1, -1))
        assert spec.v_p(topo, t_comp=0.9, t_comm=0.1) == pytest.approx(2.0)

    def test_rendezvous_doubles_v_p(self):
        topo = ring(10, (1, -1))
        eager = CouplingSpec(protocol=Protocol.EAGER)
        rdv = CouplingSpec(protocol=Protocol.RENDEZVOUS)
        assert rdv.v_p(topo, 0.9, 0.1) == pytest.approx(
            2.0 * eager.v_p(topo, 0.9, 0.1))

    def test_waitall_uses_max_distance(self):
        topo = ring(10, (1, -1, -2))
        sep = CouplingSpec(wait_mode=WaitMode.SEPARATE)
        grouped = CouplingSpec(wait_mode=WaitMode.WAITALL)
        assert sep.kappa(topo) == 4.0
        assert grouped.kappa(topo) == 2.0

    def test_beta_kappa_product(self):
        topo = ring(10, (1, -1, -2))
        spec = CouplingSpec(protocol=Protocol.RENDEZVOUS)
        assert spec.beta_kappa(topo) == pytest.approx(8.0)

    def test_longer_cycle_weakens_coupling(self):
        topo = ring(10, (1, -1))
        spec = CouplingSpec()
        assert spec.v_p(topo, 9.0, 1.0) == pytest.approx(0.2)

    def test_strength_scale_multiplies(self):
        topo = ring(10, (1, -1))
        spec = CouplingSpec(strength_scale=3.0)
        assert spec.v_p(topo, 0.9, 0.1) == pytest.approx(6.0)

    def test_zero_cycle_time_rejected(self):
        spec = CouplingSpec()
        with pytest.raises(ValueError, match="positive"):
            spec.v_p(ring(4, (1, -1)), 0.0, 0.0)

    def test_describe_includes_topology_info(self):
        topo = ring(10, (1, -1))
        d = CouplingSpec().describe(topo)
        assert d["beta"] == 1.0
        assert d["kappa"] == 2.0
        assert d["beta_kappa"] == 2.0

    def test_describe_without_topology(self):
        d = CouplingSpec().describe()
        assert "kappa" not in d
        assert d["protocol"] == "eager"
