"""Tests for the experiment modules (paper artefact reproduction at
test scale — the full-scale versions run in benchmarks/)."""

import numpy as np
import pytest

from repro.experiments import (
    REGISTRY,
    get_experiment,
    kuramoto_baseline,
    list_experiments,
    run_fig1a,
    run_fig1b,
    run_panel,
    sweep_beta_kappa,
    sweep_sigma,
)


class TestFig1a:
    def test_first_zeros_match_theory(self):
        res = run_fig1a(sigmas=(0.5, 1.0, 2.0))
        for s, zero in res.first_zeros.items():
            assert zero == pytest.approx(2 * s / 3, rel=1e-6)

    def test_potential_continuity(self):
        res = run_fig1a()
        assert res.continuity_gap < 1e-6

    def test_curves_cover_figure_domain(self):
        res = run_fig1a(span=10.0, n_points=201)
        assert res.dtheta[0] == -10.0
        assert res.dtheta[-1] == 10.0
        assert res.scalable.shape == (201,)

    def test_long_range_agreement(self):
        """Both potential families are attractive (+1) at large angles."""
        res = run_fig1a()
        assert res.scalable[-1] == pytest.approx(1.0, abs=1e-6)
        for curve in res.bottlenecked.values():
            assert curve[-1] == pytest.approx(1.0)

    def test_csv_output(self, tmp_path):
        run_fig1a(out_dir=tmp_path)
        assert (tmp_path / "fig1a_potentials.csv").exists()


class TestFig1b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1b(array_elements=2e6, n_iterations=4)

    def test_stream_saturates_at_five_cores(self, result):
        assert result.stream.saturates
        assert result.stream.saturation_ranks == pytest.approx(5.0,
                                                               rel=0.15)

    def test_schoenauer_saturates_later(self, result):
        assert (result.schoenauer.saturation_ranks
                > result.stream.saturation_ranks)

    def test_pisolver_never_saturates(self, result):
        assert not result.pisolver.saturates
        assert max(result.pisolver.bandwidth_GBs) == 0.0

    def test_triads_share_the_ceiling_order(self, result):
        """At full socket STREAM achieves more bandwidth than the slow
        triad (whose in-core work keeps it below the ceiling)."""
        assert (result.stream.bandwidth_GBs[-1]
                > result.schoenauer.bandwidth_GBs[-1])
        assert result.stream.bandwidth_GBs[-1] == pytest.approx(68.0,
                                                                rel=0.05)

    def test_single_core_ordering(self, result):
        """Fig. 1(b) leftmost points: STREAM > Schönauer > PISOLVER."""
        assert (result.stream.bandwidth_GBs[0]
                > result.schoenauer.bandwidth_GBs[0]
                > result.pisolver.bandwidth_GBs[0])

    def test_summary_rows(self, result):
        rows = result.summary_rows()
        assert len(rows) == 3 * 10
        assert {r["kernel"] for r in rows} == {
            "stream_triad", "schoenauer_triad", "pisolver"}

    def test_csv_output(self, tmp_path):
        run_fig1b(array_elements=1e6, n_iterations=2, out_dir=tmp_path)
        for name in ("stream_triad", "schoenauer_triad", "pisolver"):
            assert (tmp_path / f"fig1b_{name}.csv").exists()


class TestFig2Panels:
    """Single panels at reduced scale (full 4-panel in benchmarks)."""

    def test_scalable_panel_resynchronizes(self):
        p = run_panel("mini2a", scalable=True, distances=(1, -1),
                      n_ranks=16, n_iterations=30, t_end=1500.0, seed=0)
        assert p.model_verdict.is_synchronized
        assert not p.trace_desync.is_desynchronized
        assert p.agrees_with_paper

    def test_bottleneck_panel_desynchronizes(self):
        p = run_panel("mini2b", scalable=False, distances=(1, -1),
                      sigma=1.5, n_ranks=16, n_iterations=30,
                      t_end=800.0, seed=0, array_elements=2e6)
        assert p.model_verdict.is_desynchronized
        assert p.model_gap == pytest.approx(1.0, rel=0.1)  # 2*sigma/3
        assert p.trace_desync.is_desynchronized
        assert p.agrees_with_paper

    def test_bottleneck_panel_requires_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            run_panel("bad", scalable=False, distances=(1, -1))

    def test_wave_measured_on_both_sides(self):
        p = run_panel("mini2c", scalable=True, distances=(1, -1, -2),
                      n_ranks=16, n_iterations=30, t_end=1000.0, seed=0)
        assert np.isfinite(p.model_wave.speed)
        assert p.trace_wave.speed_ranks_per_iteration > 1.0  # faster than d=±1


class TestSweeps:
    def test_beta_kappa_monotonicity(self):
        """Sec. 5.1.1: wave speed grows with beta*kappa; resync
        accelerates."""
        res = sweep_beta_kappa(values=[0.5, 2.0, 8.0], n_ranks=12,
                               t_end=400.0)
        speeds = res.wave_speed
        assert np.all(np.isfinite(speeds))
        assert speeds[0] < speeds[1] < speeds[2]
        finite = np.isfinite(res.resync_time)
        assert np.all(np.diff(res.resync_time[finite]) <= 0)

    def test_beta_kappa_zero_means_free_processes(self):
        res = sweep_beta_kappa(values=[0.0], n_ranks=8, t_end=100.0)
        # No coupling: the wave never propagates, resync never happens.
        assert np.isnan(res.wave_speed[0]) or res.wave_speed[0] == 0.0
        assert np.isinf(res.resync_time[0])

    def test_sigma_gap_law(self):
        """Sec. 5.2.2: asymptotic |gap| = 2*sigma/3."""
        res = sweep_sigma(sigmas=[0.5, 1.0], n_ranks=12, t_end=300.0)
        np.testing.assert_allclose(res.mean_abs_gap, res.theory_gap,
                                   rtol=0.1)

    def test_sigma_spread_correlation(self):
        """Larger sigma => larger asymptotic phase spread."""
        res = sweep_sigma(sigmas=[0.5, 1.5], n_ranks=12, t_end=300.0)
        assert res.phase_spread[1] > res.phase_spread[0]


class TestKuramotoBaseline:
    @pytest.fixture(scope="class")
    def result(self):
        return kuramoto_baseline(n=12, t_end=150.0)

    def test_km_synchronizes_like_a_barrier(self, result):
        """All-to-all Kuramoto syncs much faster than the sparse POM."""
        assert result.km_sync_time < result.pom_sync_time

    def test_km_cannot_hold_desync(self, result):
        """From the zigzag wavefront the KM collapses towards synchrony
        while the bottleneck POM holds the 2*sigma/3 gaps."""
        assert result.pom_final_gap == pytest.approx(1.0, rel=0.15)
        assert result.km_final_gap < 0.5 * result.pom_final_gap

    def test_phase_slip_distinction(self, result):
        assert result.km_phase_slip_invariance == pytest.approx(0.0,
                                                                abs=1e-9)
        assert result.pom_phase_slip_invariance > 0.01


class TestRegistry:
    def test_all_experiments_listed(self):
        names = {name for name, _ in list_experiments()}
        assert names == {"fig1a", "fig1b", "fig2", "beta-kappa", "sigma",
                         "kuramoto", "supermuc"}

    def test_lookup_case_insensitive(self):
        assert get_experiment("FIG1A").id == "FIG1A"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_registry_ids_match_design_doc(self):
        ids = {e.id for e in REGISTRY.values()}
        assert ids == {"FIG1A", "FIG1B", "FIG2", "CLAIM-BK", "CLAIM-SIGMA",
                       "CLAIM-KM", "SUPERMUC"}
