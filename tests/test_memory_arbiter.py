"""Tests for the fair-share memory-bandwidth arbiter."""

import numpy as np
import pytest

from repro.simulator import EventEngine, MemoryArbiter


def make(socket_bw=40e9, core_bw=10e9):
    eng = EventEngine()
    arb = MemoryArbiter(eng, socket_bw, core_bw)
    return eng, arb


class TestSingleStream:
    def test_duration_at_core_bandwidth(self):
        eng, arb = make()
        done = []
        arb.start_stream(0, 10e9, lambda: done.append(eng.now))
        eng.run()
        # 10 GB at 10 GB/s core ceiling = 1 s.
        assert done == [pytest.approx(1.0)]

    def test_zero_byte_stream_completes_immediately(self):
        eng, arb = make()
        done = []
        arb.start_stream(0, 0.0, lambda: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(0.0)]

    def test_rate_reporting(self):
        eng, arb = make()
        arb.start_stream(0, 1e9, lambda: None)
        assert arb.current_rate() == pytest.approx(10e9)
        assert arb.n_active == 1

    def test_idle_rate_is_zero(self):
        _, arb = make()
        assert arb.current_rate() == 0.0


class TestFairSharing:
    def test_four_streams_share_ceiling(self):
        eng, arb = make()
        done = {}
        for r in range(4):
            arb.start_stream(r, 10e9, lambda r=r: done.setdefault(r, eng.now))
        eng.run()
        # 4 streams on 40 GB/s => 10 GB/s each => all finish at 1 s.
        for r in range(4):
            assert done[r] == pytest.approx(1.0)

    def test_eight_streams_take_twice_as_long(self):
        eng, arb = make()
        done = {}
        for r in range(8):
            arb.start_stream(r, 10e9, lambda r=r: done.setdefault(r, eng.now))
        eng.run()
        # 8 streams on 40 GB/s => 5 GB/s each => 2 s.
        for r in range(8):
            assert done[r] == pytest.approx(2.0)

    def test_two_streams_below_saturation_uncontended(self):
        eng, arb = make()
        done = {}
        for r in range(2):
            arb.start_stream(r, 10e9, lambda r=r: done.setdefault(r, eng.now))
        eng.run()
        # 2 x 10 GB/s = 20 < 40 GB/s ceiling: core bandwidth applies.
        for r in range(2):
            assert done[r] == pytest.approx(1.0)

    def test_late_joiner_slows_everyone(self):
        eng, arb = make()
        done = {}
        for r in range(4):
            arb.start_stream(r, 10e9, lambda r=r: done.setdefault(r, eng.now))
        # After 0.5 s a fifth stream joins.
        eng.schedule(0.5, lambda: arb.start_stream(
            9, 8e9, lambda: done.setdefault(9, eng.now)))
        eng.run()
        # First 0.5 s: 4 streams at 10 GB/s leave 5 GB each remaining.
        # Then 5 streams at 8 GB/s: 5 GB needs 0.625 s => finish 1.125 s.
        for r in range(4):
            assert done[r] == pytest.approx(1.125)
        # The joiner then finishes alone-ish: 8 GB total, 5 GB served by
        # 1.125 s (0.625 s at 8 GB/s), remaining 3 GB at core 10 GB/s.
        assert done[9] == pytest.approx(1.125 + 3.0 / 10.0)

    def test_early_finisher_speeds_up_rest(self):
        eng, arb = make()
        done = {}
        arb.start_stream(0, 2e9, lambda: done.setdefault(0, eng.now))
        for r in (1, 2, 3, 4):
            arb.start_stream(r, 8e9, lambda r=r: done.setdefault(r, eng.now))
        eng.run()
        # 5 streams at 8 GB/s each: stream 0 done at 0.25 s.
        assert done[0] == pytest.approx(0.25)
        # Remaining 4: 6 GB left each at 10 GB/s cap => done 0.85 s.
        for r in (1, 2, 3, 4):
            assert done[r] == pytest.approx(0.25 + 6.0 / 10.0)


class TestBookkeeping:
    def test_conservation_of_bytes(self):
        eng, arb = make()
        total = 0.0
        for r in range(5):
            nbytes = (r + 1) * 1e9
            total += nbytes
            arb.start_stream(r, nbytes, lambda: None)
        eng.run()
        assert arb.stats.bytes_transferred == pytest.approx(total, rel=1e-9)

    def test_busy_time_and_concurrency(self):
        eng, arb = make()
        for r in range(4):
            arb.start_stream(r, 10e9, lambda: None)
        eng.run()
        assert arb.stats.busy_time == pytest.approx(1.0)
        assert arb.stats.mean_concurrency() == pytest.approx(4.0)

    def test_average_bandwidth(self):
        eng, arb = make()
        for r in range(4):
            arb.start_stream(r, 10e9, lambda: None)
        eng.run()
        assert arb.stats.average_bandwidth(1.0) == pytest.approx(40e9)

    def test_duplicate_stream_rejected(self):
        eng, arb = make()
        arb.start_stream(0, 1e9, lambda: None)
        with pytest.raises(RuntimeError, match="already"):
            arb.start_stream(0, 1e9, lambda: None)

    def test_cancel_returns_unserved_bytes(self):
        eng, arb = make()
        arb.start_stream(0, 10e9, lambda: None)
        eng.schedule(0.5, lambda: None)
        eng.run(until=0.5)
        left = arb.cancel_stream(0)
        assert left == pytest.approx(5e9, rel=1e-9)
        assert arb.n_active == 0

    def test_cancel_unknown_stream_returns_zero(self):
        _, arb = make()
        assert arb.cancel_stream(7) == 0.0

    def test_negative_bytes_rejected(self):
        eng, arb = make()
        with pytest.raises(ValueError):
            arb.start_stream(0, -1.0, lambda: None)

    def test_invalid_bandwidths_rejected(self):
        eng = EventEngine()
        with pytest.raises(ValueError):
            MemoryArbiter(eng, 0.0, 1.0)


class TestChainedStreams:
    def test_callback_can_start_next_stream(self):
        """Completion callbacks starting new streams (the DES pattern:
        compute -> next iteration) must not corrupt accounting."""
        eng, arb = make()
        finish_times = []

        def start_round(r, rounds_left):
            def on_done():
                finish_times.append(eng.now)
                if rounds_left > 0:
                    start_round(r, rounds_left - 1)
            arb.start_stream(r, 10e9, on_done)

        start_round(0, 2)   # 3 streams of 1 s each, back to back
        eng.run()
        np.testing.assert_allclose(finish_times, [1.0, 2.0, 3.0], rtol=1e-9)
        assert arb.stats.bytes_transferred == pytest.approx(30e9, rel=1e-9)
