"""Tests for the fixed-step integrators (RK4, Euler, Euler-Maruyama)."""

import numpy as np
import pytest

from repro.integrate import solve_euler, solve_euler_maruyama, solve_rk4


def decay(t, y):
    return -y


class TestRK4:
    def test_exact_for_exponential(self):
        sol = solve_rk4(decay, (0.0, 2.0), [1.0], dt=0.01)
        np.testing.assert_allclose(sol.y_end[0], np.exp(-2.0), rtol=1e-8)

    def test_fourth_order_convergence(self):
        errors = []
        for dt in (0.2, 0.1, 0.05):
            sol = solve_rk4(decay, (0.0, 1.0), [1.0], dt=dt)
            errors.append(abs(sol.y_end[0] - np.exp(-1.0)))
        # Halving dt must reduce the error by ~2^4 = 16.
        assert errors[0] / errors[1] > 10.0
        assert errors[1] / errors[2] > 10.0

    def test_lands_exactly_on_t_end(self):
        sol = solve_rk4(decay, (0.0, 1.0), [1.0], dt=0.3)   # 1.0 % 0.3 != 0
        assert sol.ts[-1] == pytest.approx(1.0, abs=1e-12)

    def test_mesh_is_uniform_except_final(self):
        sol = solve_rk4(decay, (0.0, 1.0), [1.0], dt=0.25)
        np.testing.assert_allclose(np.diff(sol.ts), 0.25, atol=1e-12)

    def test_vector_state(self):
        sol = solve_rk4(lambda t, y: np.array([y[1], -y[0]]),
                        (0.0, np.pi), [1.0, 0.0], dt=0.001)
        np.testing.assert_allclose(sol.y_end, [-1.0, 0.0], atol=1e-8)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError, match="dt must be positive"):
            solve_rk4(decay, (0.0, 1.0), [1.0], dt=0.0)

    def test_rejects_reversed_span(self):
        with pytest.raises(ValueError, match="t_end > t0"):
            solve_rk4(decay, (1.0, 0.0), [1.0], dt=0.1)

    def test_callback_invoked_per_step(self):
        calls = []
        solve_rk4(decay, (0.0, 1.0), [1.0], dt=0.1,
                  step_callback=lambda t, y: calls.append(t))
        assert len(calls) == 10

    def test_stats_count_rhs_evaluations(self):
        sol = solve_rk4(decay, (0.0, 1.0), [1.0], dt=0.1)
        assert sol.stats.n_rhs == 4 * sol.stats.n_steps


class TestEuler:
    def test_first_order_convergence(self):
        errors = []
        for dt in (0.1, 0.05, 0.025):
            sol = solve_euler(decay, (0.0, 1.0), [1.0], dt=dt)
            errors.append(abs(sol.y_end[0] - np.exp(-1.0)))
        assert errors[0] / errors[1] == pytest.approx(2.0, rel=0.2)
        assert errors[1] / errors[2] == pytest.approx(2.0, rel=0.2)

    def test_matches_hand_computation(self):
        sol = solve_euler(decay, (0.0, 0.2), [1.0], dt=0.1)
        # y1 = 1 - 0.1 = 0.9; y2 = 0.9 - 0.09 = 0.81
        np.testing.assert_allclose(sol.ys[:, 0], [1.0, 0.9, 0.81],
                                   atol=1e-14)


class TestEulerMaruyama:
    def test_zero_noise_reduces_to_euler(self, rng):
        sol_em = solve_euler_maruyama(decay, lambda t, y: np.zeros(1),
                                      (0.0, 1.0), [1.0], dt=0.05, rng=rng)
        sol_e = solve_euler(decay, (0.0, 1.0), [1.0], dt=0.05)
        np.testing.assert_allclose(sol_em.ys, sol_e.ys, atol=1e-14)

    def test_reproducible_with_seed(self):
        kw = dict(dt=0.05)
        a = solve_euler_maruyama(decay, lambda t, y: np.full(1, 0.3),
                                 (0.0, 1.0), [1.0],
                                 rng=np.random.default_rng(5), **kw)
        b = solve_euler_maruyama(decay, lambda t, y: np.full(1, 0.3),
                                 (0.0, 1.0), [1.0],
                                 rng=np.random.default_rng(5), **kw)
        np.testing.assert_array_equal(a.ys, b.ys)

    def test_variance_growth_of_brownian_motion(self):
        # dy = 0 dt + 1 dW: Var[y(T)] = T.
        finals = []
        for seed in range(200):
            sol = solve_euler_maruyama(
                lambda t, y: np.zeros(1), lambda t, y: np.ones(1),
                (0.0, 1.0), [0.0], dt=0.05,
                rng=np.random.default_rng(seed))
            finals.append(sol.y_end[0])
        assert np.var(finals) == pytest.approx(1.0, rel=0.3)

    def test_mean_of_ou_process(self):
        # dy = -y dt + 0.5 dW has zero-mean stationary distribution.
        finals = []
        for seed in range(200):
            sol = solve_euler_maruyama(
                decay, lambda t, y: np.full(1, 0.5),
                (0.0, 5.0), [2.0], dt=0.05,
                rng=np.random.default_rng(seed))
            finals.append(sol.y_end[0])
        assert abs(np.mean(finals)) < 0.15
