"""Tests for the machine spec, rank placement, and kernel time models."""

import numpy as np
import pytest

from repro.simulator import (
    MachineSpec,
    PiSolverKernel,
    SchoenauerTriadKernel,
    StreamTriadKernel,
    kernel_from_name,
)
from repro.simulator.kernels import Kernel


class TestMachineSpec:
    def test_meggie_parameters(self):
        m = MachineSpec.meggie()
        assert m.cores_per_socket == 10
        assert m.socket_bandwidth == pytest.approx(68e9)
        assert m.sockets_per_node == 2

    def test_supermuc_parameters(self):
        m = MachineSpec.supermuc_ng()
        assert m.cores_per_socket == 24
        assert m.socket_bandwidth == pytest.approx(105e9)

    def test_totals(self):
        m = MachineSpec(nodes=3, sockets_per_node=2, cores_per_socket=10)
        assert m.total_sockets == 6
        assert m.total_cores == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(nodes=0)
        with pytest.raises(ValueError):
            MachineSpec(core_bandwidth=100e9, socket_bandwidth=50e9)
        with pytest.raises(ValueError):
            MachineSpec(network_bandwidth=-1.0)


class TestPlacement:
    def test_block_fills_sockets_in_order(self):
        m = MachineSpec(nodes=2)   # 4 Meggie-like sockets
        p = m.place_ranks(25, strategy="block")
        assert [x.socket for x in p[:10]] == [0] * 10
        assert [x.socket for x in p[10:20]] == [1] * 10
        assert [x.socket for x in p[20:]] == [2] * 5

    def test_block_node_assignment(self):
        m = MachineSpec(nodes=2)
        p = m.place_ranks(25, strategy="block")
        assert p[0].node == 0
        assert p[19].node == 0     # socket 1 is still node 0
        assert p[20].node == 1     # socket 2 is node 1

    def test_round_robin_scatters(self):
        m = MachineSpec(nodes=1, sockets_per_node=2, cores_per_socket=4)
        p = m.place_ranks(4, strategy="round_robin")
        assert [x.socket for x in p] == [0, 1, 0, 1]

    def test_ranks_per_socket_restriction(self):
        m = MachineSpec.meggie()
        p = m.place_ranks(6, ranks_per_socket=3)
        assert [x.socket for x in p] == [0, 0, 0, 1, 1, 1]

    def test_capacity_exceeded(self):
        m = MachineSpec(nodes=1, sockets_per_node=1, cores_per_socket=4)
        with pytest.raises(ValueError, match="exceed capacity"):
            m.place_ranks(5)

    def test_ranks_per_socket_above_cores_rejected(self):
        m = MachineSpec.meggie()
        with pytest.raises(ValueError, match="exceeds cores_per_socket"):
            m.place_ranks(4, ranks_per_socket=99)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            MachineSpec.meggie().place_ranks(4, strategy="random")


class TestKernelModels:
    def test_stream_traffic_is_32_bytes_per_element(self):
        k = StreamTriadKernel(array_elements=1e6)
        assert k.traffic_bytes == pytest.approx(32e6)

    def test_schoenauer_traffic_is_40_bytes_per_element(self):
        k = SchoenauerTriadKernel(array_elements=1e6)
        assert k.traffic_bytes == pytest.approx(40e6)

    def test_pisolver_has_no_traffic(self):
        k = PiSolverKernel()
        assert k.traffic_bytes == 0.0
        assert not k.is_memory_bound

    def test_stream_is_memory_bound(self):
        assert StreamTriadKernel(1e6).is_memory_bound

    def test_single_core_time_composition(self):
        m = MachineSpec.meggie()
        k = Kernel(name="x", core_time=1e-3, traffic_bytes=14e6)
        # 14 MB at 14 GB/s = 1 ms; total = 2 ms.
        assert k.single_core_time(m) == pytest.approx(2e-3)

    def test_contended_time_grows_with_occupancy(self):
        m = MachineSpec.meggie()
        k = StreamTriadKernel(1e6)
        t1 = k.contended_time(m, 1)
        t10 = k.contended_time(m, 10)
        assert t10 > t1
        # At 10 ranks each gets 6.8 GB/s.
        expected = k.core_time + k.traffic_bytes / 6.8e9
        assert t10 == pytest.approx(expected)

    def test_saturation_point_ordering(self):
        """The paper's Fig. 1(b): STREAM saturates earliest, the slow
        Schönauer triad later, PISOLVER never."""
        m = MachineSpec.meggie()
        s_stream = StreamTriadKernel(4e6).saturation_cores(m)
        s_schoen = SchoenauerTriadKernel(4e6).saturation_cores(m)
        s_pi = PiSolverKernel().saturation_cores(m)
        assert s_stream < s_schoen < s_pi
        assert s_stream == pytest.approx(5.0, rel=0.15)
        assert np.isinf(s_pi)

    def test_demanded_bandwidth(self):
        m = MachineSpec.meggie()
        k = StreamTriadKernel(1e6)
        demand = k.demanded_bandwidth(m)
        assert demand <= m.core_bandwidth + 1e-6
        assert demand > 0.9 * m.core_bandwidth  # stream is traffic-dominated

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            Kernel(name="bad", core_time=-1.0, traffic_bytes=0.0)
        with pytest.raises(ValueError):
            Kernel(name="empty", core_time=0.0, traffic_bytes=0.0)

    def test_contended_time_validation(self):
        with pytest.raises(ValueError):
            StreamTriadKernel(1e6).contended_time(MachineSpec.meggie(), 0)


class TestKernelFactory:
    @pytest.mark.parametrize("name,expected", [
        ("pisolver", "pisolver"),
        ("pi", "pisolver"),
        ("stream", "stream_triad"),
        ("triad", "stream_triad"),
        ("schoenauer", "schoenauer_triad"),
        ("slow", "schoenauer_triad"),
    ])
    def test_names(self, name, expected):
        assert kernel_from_name(name).name == expected

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernel_from_name("dgemm")
