"""Streaming in-solve metric reductions (PR 9).

The contract under test: a campaign that declares ``metrics=[...]``
folds the reductions *inside* the solve loop, per accepted step, and
the streamed arrays are **bit-identical** to the same reductions
computed post-hoc from full trajectories — for every solver, any shard
layout, any ``jobs=``, through the pool and through the durable queue
(with faults injected).  Metric-only campaigns (``trajectories="none"``)
cache kilobyte-scale arrays instead of ``(R, n_t, N)`` stacks.
"""

import io

import numpy as np
import pytest

from repro.metrics import (
    METRIC_NAMES,
    SERIES_METRICS,
    StreamingObserver,
    metrics_from_trajectories,
    parse_trajectories,
    validate_metrics,
)
from repro.runs import (
    NUMERICS_VERSION,
    ResultCache,
    ScenarioSpec,
    collect_cached,
    compile_plan,
    fingerprint_files,
    run_plan,
    run_spec,
    shard_key,
)

ALL_METRICS = ["order_parameter", "phase_spread", "energy", "wavefront",
               "phase_histogram"]


def metric_spec(method="rk4", t_end=5.0, metrics=ALL_METRICS,
                trajectories="full", n=8, name="stream-test", axes=None,
                **extra):
    model = {
        "topology": {"kind": "ring", "n": n, "distances": [1, -1]},
        "potential": {"kind": "bottleneck", "sigma": 1.0},
        "t_comp": 0.9,
        "t_comm": 0.1,
    }
    if method == "em":
        model["local_noise"] = {"kind": "gaussian", "std": 0.02}
    solver = {"method": method}
    if method in ("em", "euler"):
        solver["dt"] = 0.02
    solver.update(extra.pop("solver", {}))
    return ScenarioSpec(
        name=name,
        model=model,
        t_end=t_end,
        solver=solver,
        initial={"kind": "normal", "std": 0.3, "seed": 0},
        axes=axes or [("potential.sigma", [0.6, 1.4]), ("seed", [0, 1])],
        metrics=metrics,
        trajectories=trajectories,
        **extra,
    )


def with_overrides(spec, **kv):
    d = spec.to_dict()
    d.update(kv)
    return ScenarioSpec.from_dict(d)


class TestSpecValidation:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            metric_spec(metrics=["order_parameter", "banana"])

    def test_duplicate_metric_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            metric_spec(metrics=["energy", "energy"])

    def test_bare_string_metrics_rejected(self):
        # A plain string would silently iterate to letters.
        with pytest.raises(ValueError, match="sequence of names"):
            metric_spec(metrics="energy")

    def test_bad_trajectory_modes_rejected(self):
        for bad in ("sometimes", "stride", "stride:0", "stride:x"):
            with pytest.raises(ValueError):
                metric_spec(trajectories=bad)

    def test_parse_trajectories(self):
        assert parse_trajectories("full") == "full"
        assert parse_trajectories("none") == "none"
        assert parse_trajectories("stride:4") == 4

    def test_n_samples_requires_full_capture(self):
        with pytest.raises(ValueError, match="n_samples"):
            metric_spec(trajectories="none",
                        solver={"n_samples": 50})

    def test_validate_metrics_preserves_order(self):
        assert validate_metrics(["wavefront", "energy"]) == \
            ("wavefront", "energy")
        assert set(METRIC_NAMES) >= set(ALL_METRICS)

    def test_roundtrip_and_backcompat(self):
        spec = metric_spec(trajectories="stride:3")
        d = spec.to_dict()
        assert d["metrics"] == list(ALL_METRICS)
        assert d["trajectories"] == "stride:3"
        again = ScenarioSpec.from_dict(d)
        assert again.content_hash() == spec.content_hash()
        # Old spec dicts (pre-PR9, no keys) still load with defaults.
        d.pop("metrics")
        d.pop("trajectories")
        old = ScenarioSpec.from_dict(d)
        assert old.metrics == () and old.trajectories == "full"

    def test_metrics_change_spec_hash(self):
        a = metric_spec(metrics=["energy"])
        b = metric_spec(metrics=["order_parameter"])
        c = metric_spec(metrics=["energy"], trajectories="none")
        assert len({a.content_hash(), b.content_hash(),
                    c.content_hash()}) == 3


class TestBitIdentity:
    """Streamed == post-hoc == metric-only, for every solver."""

    @pytest.mark.parametrize("method", ["euler", "rk4", "dopri", "em"])
    def test_streamed_equals_posthoc_equals_metric_only(self, method):
        full = metric_spec(method=method, name=f"bits-{method}")
        rf = run_plan(compile_plan(full))
        ronly = run_plan(compile_plan(
            with_overrides(full, trajectories="none")))
        for a, b in zip(rf.members, ronly.members):
            post = metrics_from_trajectories(
                a.ts, a.thetas[None], [a.member.build_model()],
                full.metrics)
            np.testing.assert_array_equal(a.metrics_ts, a.ts)
            for name in full.metrics:
                streamed = a.metrics[name]
                np.testing.assert_array_equal(
                    streamed, post[f"metric_{name}"][0],
                    err_msg=f"{method}/{name}: streamed != post-hoc")
                np.testing.assert_array_equal(
                    streamed, b.metrics[name],
                    err_msg=f"{method}/{name}: capture mode changed bits")

    def test_batched_vs_looped_shards(self):
        spec = metric_spec(trajectories="none", name="bits-shards")
        fused = run_plan(compile_plan(spec))
        looped = run_plan(compile_plan(spec, shard_members=1))
        for a, b in zip(fused.members, looped.members):
            for name in spec.metrics:
                np.testing.assert_array_equal(a.metrics[name],
                                              b.metrics[name])

    def test_jobs_do_not_change_metric_bits(self):
        spec = metric_spec(trajectories="none", name="bits-jobs")
        r1 = run_spec(spec, jobs=1, shard_members=1)
        r2 = run_spec(spec, jobs=2, shard_members=1)
        assert r1.npz_bytes() == r2.npz_bytes()

    def test_queue_with_faults_matches_inline(self, tmp_path, monkeypatch):
        """PR-6 chaos path: a SIGKILLed and a stalled worker shard still
        produce the bit-exact streamed metrics of an inline run."""
        spec = metric_spec(trajectories="none", name="bits-chaos")
        monkeypatch.setenv("POM_FAULTS",
                           "kill:shard=1;stall:shard=2,secs=1.5")
        monkeypatch.setenv("POM_FAULTS_STATE", str(tmp_path / "faults"))
        res = run_spec(spec, jobs=2, shard_members=1,
                       queue=tmp_path / "q.db",
                       lease_ttl=1.0, backoff=0.05)
        monkeypatch.delenv("POM_FAULTS")
        monkeypatch.delenv("POM_FAULTS_STATE")
        ref = run_spec(spec, jobs=1, shard_members=1)
        assert res.queue["retried"].get(1, 0) >= 2
        for a, b in zip(ref.members, res.members):
            np.testing.assert_array_equal(a.metrics_ts, b.metrics_ts)
            for name in spec.metrics:
                np.testing.assert_array_equal(a.metrics[name],
                                              b.metrics[name])


class TestMetricOnlyResults:
    def test_no_trajectories_attached(self):
        res = run_plan(compile_plan(
            metric_spec(trajectories="none", name="mo-none")))
        for m in res.members:
            assert m.ts is None and m.thetas is None
            assert not m.has_trajectory
            with pytest.raises(ValueError, match="no trajectory"):
                m.trajectory()
        with pytest.raises(ValueError, match="no trajectory"):
            res.trajectories()

    def test_npz_has_metrics_but_no_thetas(self):
        res = run_plan(compile_plan(
            metric_spec(trajectories="none", name="mo-npz")))
        with np.load(io.BytesIO(res.npz_bytes())) as npz:
            names = set(npz.files)
            for m in res.members:
                assert f"metrics_ts_{m.index}" in names
                for metric in ALL_METRICS:
                    assert f"metric_{metric}_{m.index}" in names
            assert not any(k.startswith("thetas_") for k in names)

    def test_summary_table_shared_metric_columns(self):
        """Trajectory-mode and metric-only CSVs agree bit-for-bit on the
        metric columns — the CI stream-smoke invariant."""
        full = metric_spec(name="mo-csv")
        rf = run_plan(compile_plan(full))
        rm = run_plan(compile_plan(with_overrides(full,
                                                  trajectories="none")))
        tf, tm = rf.summary_table(), rm.summary_table()
        assert "state" in tf and "state" not in tm
        shared = ["potential.sigma", "seed"] + \
            [f"{n}_final" for n in SERIES_METRICS] + \
            ["wavefront_reached", "phase_histogram_peak"]
        for col in shared:
            assert tf[col] == tm[col], col

    def test_cache_replay_and_collect_cached(self, tmp_path):
        spec = metric_spec(trajectories="none", name="mo-cache")
        cache = ResultCache(tmp_path / "cache")
        plan = compile_plan(spec)
        first = run_plan(plan, cache=cache)
        assert first.n_executed == plan.n_shards
        replay = run_plan(plan, cache=cache)
        assert replay.n_executed == 0
        assert replay.n_cached == plan.n_shards
        collected = collect_cached(plan, cache)
        assert collected is not None
        assert collected.npz_bytes() == first.npz_bytes()

    def test_metric_only_cache_is_much_smaller(self, tmp_path):
        """The point of the PR: kilobyte metric shards vs (R, n_t, N)."""
        base = metric_spec(n=64, t_end=10.0, metrics=["order_parameter"],
                           name="mo-size",
                           axes=[("seed", [0, 1, 2, 3])])
        cf, cm = ResultCache(tmp_path / "full"), ResultCache(tmp_path / "m")
        run_plan(compile_plan(base), cache=cf)
        run_plan(compile_plan(with_overrides(base, trajectories="none")),
                 cache=cm)
        full_b = cf.describe()["size_bytes"]
        metric_b = cm.describe()["size_bytes"]
        assert full_b / metric_b >= 20.0


class TestStrideCapture:
    def test_stride_thins_trajectories_not_metrics(self):
        full = metric_spec(name="stride-t")
        thin = with_overrides(full, trajectories="stride:5")
        rf = run_plan(compile_plan(full))
        rt = run_plan(compile_plan(thin))
        for a, b in zip(rf.members, rt.members):
            assert b.has_trajectory
            assert len(b.ts) < len(a.ts)
            # endpoints survive thinning
            assert b.ts[0] == a.ts[0] and b.ts[-1] == a.ts[-1]
            np.testing.assert_array_equal(b.thetas[-1], a.thetas[-1])
            # retained rows are rows of the full solve (fixed step)
            idx = np.searchsorted(a.ts, b.ts)
            np.testing.assert_array_equal(a.ts[idx], b.ts)
            np.testing.assert_array_equal(a.thetas[idx], b.thetas)
            # metrics observe every accepted step regardless of capture
            np.testing.assert_array_equal(a.metrics_ts, b.metrics_ts)
            for name in full.metrics:
                np.testing.assert_array_equal(a.metrics[name],
                                              b.metrics[name])

    def test_dopri_stride_runs_and_streams_full_metrics(self):
        full = metric_spec(method="dopri", name="stride-d")
        thin = with_overrides(full, trajectories="stride:4")
        rf = run_plan(compile_plan(full))
        rt = run_plan(compile_plan(thin))
        for a, b in zip(rf.members, rt.members):
            assert len(b.ts) < len(a.ts)
            assert b.ts[-1] == a.ts[-1]
            for name in full.metrics:
                np.testing.assert_array_equal(a.metrics[name],
                                              b.metrics[name])


class TestObserverUnit:
    def test_observer_shapes_and_finalize(self):
        from repro.runs.spec import model_from_spec

        model = model_from_spec({
            "topology": {"kind": "ring", "n": 6},
            "potential": {"kind": "tanh"},
            "t_comp": 0.9, "t_comm": 0.1})
        obs = StreamingObserver([model, model], ALL_METRICS)
        rng = np.random.default_rng(0)
        y = rng.normal(size=(2, 6))
        for k in range(4):
            obs(0.1 * k, y + 0.01 * k)
        assert obs.n_observed == 4
        out = obs.finalize()
        assert out["metrics_ts"].shape == (4,)
        for name in SERIES_METRICS:
            assert out[f"metric_{name}"].shape == (2, 4)
        assert out["metric_wavefront"].shape == (2, 6)
        assert out["metric_phase_histogram"].shape == (2, 32)
        assert out["metric_phase_histogram"].dtype == np.int64
        # every observed sample lands in exactly one bin
        assert out["metric_phase_histogram"].sum() == 2 * 6 * 4

    def test_no_metrics_finalizes_empty(self):
        obs = StreamingObserver([], ())
        assert obs.finalize() == {}

    def test_posthoc_validates_shape(self):
        with pytest.raises(ValueError):
            metrics_from_trajectories(np.arange(3.0), np.zeros((3, 4)),
                                      [None], ["order_parameter"])


class TestFingerprint:
    def test_numerics_version_is_source_hash(self):
        assert len(NUMERICS_VERSION) == 64
        int(NUMERICS_VERSION, 16)  # hex digest, not a date-style bump

    def test_fingerprint_tracks_content(self, tmp_path):
        a = tmp_path / "kern.py"
        b = tmp_path / "sub" / "impl.c"
        b.parent.mkdir()
        a.write_text("def f(): return 1\n")
        b.write_text("int g() { return 2; }\n")
        fp1 = fingerprint_files([a, b], tmp_path)
        assert fp1 == fingerprint_files([b, a], tmp_path)  # order-free
        a.write_text("def f(): return 3\n")
        fp2 = fingerprint_files([a, b], tmp_path)
        assert fp2 != fp1                                   # content
        assert fingerprint_files([b], tmp_path) != fp2      # file set
        moved = tmp_path / "kern2.py"
        a.rename(moved)
        assert fingerprint_files([moved, b], tmp_path) != fp2  # rename

    def test_source_change_invalidates_shard_keys(self, monkeypatch):
        """The acceptance-criteria test: a numerics-source change (a new
        fingerprint) changes every shard key, so old cache entries
        become misses."""
        from repro.runs import cache as cache_mod

        payload = compile_plan(metric_spec(name="fp")).shards[0].payload
        before = shard_key(payload)
        monkeypatch.setattr(cache_mod, "NUMERICS_VERSION",
                            "0" * 64)
        assert shard_key(payload) != before

    def test_metric_set_is_part_of_the_key(self):
        plan_a = compile_plan(metric_spec(metrics=["energy"], name="k"))
        plan_b = compile_plan(metric_spec(metrics=["wavefront"], name="k"))
        plan_c = compile_plan(metric_spec(metrics=["energy"], name="k",
                                          trajectories="none"))
        keys = {plan_a.shards[0].key, plan_b.shards[0].key,
                plan_c.shards[0].key}
        assert len(keys) == 3


class TestFootprintWarning:
    def big_spec(self, trajectories="full"):
        return metric_spec(n=64, t_end=50.0, trajectories=trajectories,
                           name="big",
                           axes=[("seed", list(range(8)))])

    def test_full_capture_warns_once(self, monkeypatch):
        from repro.runs import plan as plan_mod

        monkeypatch.setenv(plan_mod.TRAJ_WARN_ENV_VAR, "1000")
        monkeypatch.setattr(plan_mod, "_footprint_warned", set())
        with pytest.warns(RuntimeWarning, match="metrics="):
            compile_plan(self.big_spec())
        import warnings as w
        with w.catch_warnings():
            w.simplefilter("error")
            compile_plan(self.big_spec())  # second compile stays silent

    def test_metric_only_never_warns(self, monkeypatch):
        from repro.runs import plan as plan_mod

        monkeypatch.setenv(plan_mod.TRAJ_WARN_ENV_VAR, "1000")
        monkeypatch.setattr(plan_mod, "_footprint_warned", set())
        import warnings as w
        with w.catch_warnings():
            w.simplefilter("error")
            compile_plan(self.big_spec(trajectories="none"))

    def test_disabled_by_nonpositive_threshold(self, monkeypatch):
        from repro.runs import plan as plan_mod

        monkeypatch.setenv(plan_mod.TRAJ_WARN_ENV_VAR, "0")
        monkeypatch.setattr(plan_mod, "_footprint_warned", set())
        import warnings as w
        with w.catch_warnings():
            w.simplefilter("error")
            compile_plan(self.big_spec())


class TestService:
    def test_metric_only_campaign_through_service(self, tmp_path):
        """Satellite bugfix: the result endpoint must assemble a
        metric-only campaign (no KeyError on missing trajectory arrays)
        and the status payload must surface the metric set."""
        from repro.service import CampaignServer, ServiceClient

        spec = metric_spec(trajectories="none", name="svc-metrics")
        with CampaignServer(tmp_path / "q.db", workers=2,
                            worker_opts={"lease_ttl": 10.0},
                            poll=0.05) as srv:
            client = ServiceClient(srv.url)
            out = client.submit(spec, shard_members=2)
            assert out["metrics"] == list(ALL_METRICS)
            assert out["trajectories"] == "none"
            status = client.wait(out["id"], timeout=120)
            assert status["metrics"] == list(ALL_METRICS)

            blob = client.result_bytes(out["id"])        # npz: no KeyError
            direct = run_spec(spec, shard_members=2)
            with np.load(io.BytesIO(blob)) as npz:
                assert not any(k.startswith("thetas_") for k in npz.files)
                for m in direct.members:
                    np.testing.assert_array_equal(
                        npz[f"metric_order_parameter_{m.index}"],
                        m.metrics["order_parameter"])

            from repro.viz.export import read_csv
            csv_path = tmp_path / "result.csv"
            csv_path.write_bytes(client.result_bytes(out["id"], fmt="csv"))
            table = read_csv(csv_path)
            ref = direct.summary_table()
            assert list(table["order_parameter_final"]) == \
                pytest.approx(ref["order_parameter_final"])
