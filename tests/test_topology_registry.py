"""Tests for the topology-builder registry and the interconnect builders.

The PR-10 API redesign routes every topology construction — dense or
edge-backed, from code or from a spec dict — through one registry
(:func:`repro.core.topology.make_topology`).  These tests pin:

* structural invariants of the new interconnect builders (fat-tree /
  dragonfly / hypercube);
* registry-wide properties for *every* registered kind (symmetry where
  promised, zero diagonal, degree bounds, kappa rules, and the
  edge-order == dense ``np.nonzero`` contract the batched backends
  rely on);
* the redesign's compatibility promise: spec dicts and content hashes
  for the pre-existing kinds are byte-identical to the pre-registry
  layout.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    dragonfly,
    fat_tree,
    hypercube,
    make_topology,
    ring,
    topology_kinds,
    torus2d,
)
from repro.core.topology import (
    TOPOLOGY_REGISTRY,
    ring_edges,
    topology_n_from_spec,
    torus2d_edges,
)
from repro.runs import ScenarioSpec
from repro.runs.spec import topology_from_spec


class TestHypercube:
    def test_structure(self):
        topo = hypercube(4)
        assert topo.n == 16
        assert topo.name == "hypercube[4]"
        # Rank 0's neighbours are the powers of two.
        assert set(topo.neighbors(0)) == {1, 2, 4, 8}
        assert np.all(topo.degree() == 4)
        assert topo.is_symmetric

    def test_kappa_rules(self):
        # distances (1, 2, ..., 2^(dim-1)): sum = N - 1, max = N / 2.
        topo = hypercube(5)
        assert topo.kappa() == 31.0
        assert topo.kappa(waitall_grouped=True) == 16.0

    def test_connected(self):
        assert hypercube(3).is_connected()

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError, match="dim"):
            hypercube(0)


class TestFatTree:
    def test_structure(self):
        # k = 4: 4 pods x (2 edge + 2 agg) + 4 cores = 20 switches.
        topo = fat_tree(4)
        assert topo.n == 20
        assert topo.name == "fattree[k=4]"
        assert topo.is_symmetric
        deg = topo.degree()
        # Edge switches see h=2 aggs; aggs see h edges + h cores; cores
        # see one agg per pod.
        assert deg.min() == 2.0 and deg.max() == 4.0

    def test_connected(self):
        assert fat_tree(4).is_connected()
        assert fat_tree(6).is_connected()

    def test_rejects_odd_or_tiny_k(self):
        with pytest.raises(ValueError, match="even"):
            fat_tree(3)
        with pytest.raises(ValueError):
            fat_tree(0)


class TestDragonfly:
    def test_structure(self):
        topo = dragonfly(groups=4, routers=4)
        assert topo.n == 16
        assert topo.name == "dragonfly[4x4]"
        assert topo.is_symmetric
        assert topo.is_connected()

    def test_terminals(self):
        topo = dragonfly(groups=4, routers=4, terminals=2)
        assert topo.n == 4 * 4 * 3
        assert topo.name == "dragonfly[4x4+2t]"
        # Terminals are degree-1 leaves on their router.
        assert topo.degree().min() == 1.0
        assert topo.is_connected()

    def test_global_link_count(self):
        # One global link per unordered group pair (h=1): g*(g-1)
        # directed global edges on top of the local cliques.
        g, a = 5, 4
        topo = dragonfly(groups=g, routers=a)
        local = g * a * (a - 1)
        assert topo.n_edges == local + g * (g - 1)

    def test_rejects_undersized_groups(self):
        # g-1 global links per group must fit a*h router slots.
        with pytest.raises(ValueError, match="global"):
            dragonfly(groups=10, routers=2, global_links=1)


#: one valid parameter set per registered kind, used by the
#: registry-wide property tests below
SAMPLE_PARAMS = {
    "ring": {"n": 9, "distances": (1, -1, -2)},
    "chain": {"n": 7, "distances": (1, -1)},
    "all_to_all": {"n": 6},
    "grid2d": {"nx": 3, "ny": 4},
    "torus2d": {"nx": 4, "ny": 3},
    "dependency": {"n": 8, "distances": (1, -1)},
    "hypercube": {"dim": 4},
    "fattree": {"k": 4},
    "dragonfly": {"groups": 4, "routers": 4, "terminals": 1},
}


class TestRegistryWideProperties:
    def test_samples_cover_registry(self):
        assert set(SAMPLE_PARAMS) == set(TOPOLOGY_REGISTRY)

    @pytest.mark.parametrize("kind", sorted(SAMPLE_PARAMS))
    def test_invariants(self, kind):
        topo = make_topology(kind, **SAMPLE_PARAMS[kind])
        m = topo.matrix
        assert np.all(np.diag(m) == 0)
        deg = topo.degree()
        assert deg.max() < topo.n
        assert deg.min() >= 1  # every sample is connected-ish: no orphans
        # Everything registered is symmetric for a symmetric distance
        # set (dependency included: eager with d = +-1 is symmetric).
        assert topo.is_symmetric

    @pytest.mark.parametrize("kind", sorted(SAMPLE_PARAMS))
    def test_edge_order_matches_dense_nonzero(self, kind):
        """The batched backends assume edge_list() enumerates edges in
        dense row-major ``np.nonzero`` order for every builder."""
        topo = make_topology(kind, **SAMPLE_PARAMS[kind])
        rows, cols = topo.edge_list()
        exp_r, exp_c = np.nonzero(topo.matrix)
        np.testing.assert_array_equal(rows, exp_r)
        np.testing.assert_array_equal(cols, exp_c)

    @pytest.mark.parametrize("kind", sorted(SAMPLE_PARAMS))
    def test_kappa_rules(self, kind):
        topo = make_topology(kind, **SAMPLE_PARAMS[kind])
        if not topo.distances:
            pytest.skip(f"{kind} carries no declared distance set")
        mags = [abs(d) for d in topo.distances]
        assert topo.kappa() == pytest.approx(sum(mags))
        assert topo.kappa(waitall_grouped=True) == pytest.approx(max(mags))

    @pytest.mark.parametrize("kind", sorted(SAMPLE_PARAMS))
    def test_topology_n_from_spec(self, kind):
        spec = {"kind": kind, **SAMPLE_PARAMS[kind]}
        built = make_topology(kind, **SAMPLE_PARAMS[kind])
        assert topology_n_from_spec(spec) == built.n

    def test_topology_kinds_introspection(self):
        info = topology_kinds()
        assert set(info) == set(TOPOLOGY_REGISTRY)
        for kind, row in info.items():
            # params is a list of names (not the signature string — that
            # lives under "signature"); consumers ', '.join() it.
            assert isinstance(row["params"], list) and row["params"], kind
            assert all(p.isidentifier() for p in row["params"]), kind
            assert row["signature"].startswith(f"{kind}("), kind
            assert row["n"] and row["kappa"], kind
            assert set(row["backings"]) <= {"dense", "edges"}


class TestMakeTopologyAPI:
    @pytest.mark.parametrize("kind, params", [
        ("ring", {"n": 10, "distances": (1, -1, -2)}),
        ("torus2d", {"nx": 4, "ny": 3}),
    ])
    def test_backings_agree(self, kind, params):
        dense = make_topology(kind, backing="dense", **params)
        edges = make_topology(kind, backing="edges", **params)
        assert edges._matrix is None  # genuinely edge-backed
        np.testing.assert_array_equal(dense.matrix, edges.matrix)
        assert dense.name == edges.name
        assert dense.kappa() == edges.kappa()

    def test_auto_backing_threshold(self):
        small = make_topology("ring", n=12, distances=(1, -1))
        large = make_topology("ring", n=1000, distances=(1, -1))
        assert small._matrix is not None
        assert large._matrix is None

    def test_alias_forces_edges(self):
        topo = make_topology("ring_edges", n=16, distances=(1, -1))
        assert topo._matrix is None
        with pytest.raises(ValueError, match="forces"):
            make_topology("ring_edges", n=16, distances=(1, -1),
                          backing="dense")

    def test_legacy_builders_still_callable(self):
        np.testing.assert_array_equal(
            ring_edges(12, (1, -1)).matrix, ring(12, (1, -1)).matrix)
        np.testing.assert_array_equal(
            torus2d_edges(3, 4).matrix, torus2d(3, 4).matrix)

    def test_unknown_kind_lists_registry(self):
        with pytest.raises(ValueError) as err:
            make_topology("moebius", n=8)
        msg = str(err.value)
        assert "unknown topology kind 'moebius'" in msg
        for kind in TOPOLOGY_REGISTRY:
            assert kind in msg
        # Introspected signatures ride along.
        assert "ring(n, distances=(1, -1), symmetrize=True)" in msg

    def test_unknown_param_named(self):
        with pytest.raises(ValueError, match="unknown key"):
            make_topology("ring", n=8, distnaces=(1, -1))

    def test_missing_param_named(self):
        with pytest.raises(ValueError, match="missing required key"):
            make_topology("fattree")

    def test_bad_backing_rejected(self):
        with pytest.raises(ValueError, match="backing"):
            make_topology("ring", n=8, backing="sparse")

    def test_unknown_n_from_spec_raises(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            topology_n_from_spec({"kind": "moebius", "n": 8})


class TestSpecDispatch:
    @pytest.mark.parametrize("spec, n", [
        ({"kind": "ring", "n": 10, "distances": [1, -1]}, 10),
        ({"kind": "torus2d", "nx": 4, "ny": 4}, 16),
        ({"kind": "hypercube", "dim": 3}, 8),
        ({"kind": "fattree", "k": 4}, 20),
        ({"kind": "dragonfly", "groups": 4, "routers": 4}, 16),
    ])
    def test_round_trip(self, spec, n):
        topo = topology_from_spec(spec)
        assert topo.n == n
        assert topo.n == topology_n_from_spec(spec)


#: content hashes recorded before the registry redesign — the API
#: collapse must never move a pre-existing spec's identity (cache keys,
#: queue manifests, and service campaign ids all hang off these)
_PINNED_HASHES = {
    "torus": "55007cf89524083701212d6cbe609d0c"
             "c003bebcf16ecb65092b3f5425904a75",
    "ring_edges": "afe6b3781dd025f1a9eec4577c18ae85"
                  "b9fa782ea729f2e3c989598ca79d0280",
    "dependency": "ca29efe643105fab7f66700f081658b9"
                  "0d316fd28949409770275c8a6f5f9d66",
}


def _pin_spec(topology: dict, name: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        model={"topology": topology, "potential": {"kind": "tanh"},
               "t_comp": 0.9, "t_comm": 0.1},
        t_end=50.0,
        solver={"method": "rk4", "dt": 0.05},
        axes=[("seed", [0, 1])],
    )


class TestSpecHashStability:
    def test_registry_campaign_hashes_unchanged(self):
        from repro.experiments.sweeps import beta_kappa_spec, sigma_spec

        assert beta_kappa_spec().content_hash() == (
            "13bbad698c9fb5fcb668fb8cd52afc91"
            "09ca7dce4613f02ee5770e540f57a3a2")
        assert sigma_spec().content_hash() == (
            "ffa913d21fac7d5dc3c4d61cc46cc0ff"
            "52198f1c6929ccd298cd6557caad52ff")

    def test_legacy_topology_kinds_unchanged(self):
        specs = {
            "torus": _pin_spec({"kind": "torus2d", "nx": 4, "ny": 3},
                               "pin-torus"),
            "ring_edges": _pin_spec({"kind": "ring_edges", "n": 64,
                                     "distances": [1, -1]},
                                    "pin-ring-edges"),
            "dependency": _pin_spec({"kind": "dependency", "n": 10,
                                     "distances": [1, -1, -2]},
                                    "pin-dependency"),
        }
        for key, spec in specs.items():
            assert spec.content_hash() == _PINNED_HASHES[key], key
            spec.validate()  # the dicts still build through the registry


class TestNewSpecFactories:
    @pytest.mark.parametrize("name, members", [("fig2", 6), ("supermuc", 4)])
    def test_registered_and_planable(self, name, members):
        from repro.experiments.registry import REGISTRY
        from repro.runs import compile_plan

        exp = REGISTRY[name]
        assert exp.spec_factory is not None
        spec = exp.spec_factory(**exp.quick_kwargs)
        spec.validate()
        assert len(spec.members()) == members
        assert compile_plan(spec).n_members == members


@settings(max_examples=25, deadline=None)
@given(dim=st.integers(min_value=1, max_value=7))
def test_property_hypercube(dim):
    topo = hypercube(dim)
    n = 2 ** dim
    assert topo.n == n
    assert topo.n_edges == n * dim
    assert topo.kappa() == float(n - 1)
    assert topo.kappa(waitall_grouped=True) == float(n // 2) or dim == 0


@settings(max_examples=15, deadline=None)
@given(k=st.sampled_from([2, 4, 6, 8]))
def test_property_fat_tree(k):
    topo = fat_tree(k)
    h = k // 2
    assert topo.n == k * k + h * h
    # Directed edge count: k pods x h*h edge-agg pairs plus h*h
    # agg-core pairs per pod, both directions: 4*k*h^2.
    assert topo.n_edges == 4 * k * h * h
    assert topo.is_symmetric


@settings(max_examples=15, deadline=None)
@given(g=st.integers(min_value=2, max_value=6),
       a=st.integers(min_value=2, max_value=6),
       t=st.integers(min_value=0, max_value=2))
def test_property_dragonfly(g, a, t):
    if g - 1 > a:  # single global link per router in these samples
        return
    topo = dragonfly(groups=g, routers=a, terminals=t)
    assert topo.n == g * a * (1 + t)
    assert topo.is_symmetric
    assert topo.is_connected()
