"""Tests for the linear-stability / dispersion analysis."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_stability,
    fastest_growing_mode,
    growth_rates,
    jacobian,
    potential_slope_at_origin,
    ring_dispersion,
)
from repro.core import (
    BottleneckPotential,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    simulate,
)
from repro.core.topology import dependency_topology


def make(potential, n=12, v_p=6.0, dists=(1, -1), topo=None):
    return PhysicalOscillatorModel(
        topology=topo or ring(n, dists), potential=potential,
        t_comp=0.9, t_comm=0.1, v_p_override=v_p)


class TestSlopes:
    def test_tanh_slope_is_gain(self):
        assert potential_slope_at_origin(TanhPotential(gain=2.5)) == \
            pytest.approx(2.5, rel=1e-5)

    def test_bottleneck_slope(self):
        sigma = 1.5
        expected = -3 * np.pi / (2 * sigma)
        assert potential_slope_at_origin(BottleneckPotential(sigma=sigma)) \
            == pytest.approx(expected, rel=1e-5)


class TestJacobianStructure:
    def test_rows_sum_to_zero(self):
        j = jacobian(make(TanhPotential()))
        np.testing.assert_allclose(j.sum(axis=1), 0.0, atol=1e-12)

    def test_translation_zero_mode(self):
        rates = growth_rates(make(TanhPotential()))
        assert np.min(np.abs(rates)) < 1e-12

    def test_sign_flips_with_potential(self):
        j_sync = jacobian(make(TanhPotential()))
        j_desync = jacobian(make(BottleneckPotential(sigma=1.0)))
        # Identical structure, opposite sign scaling.
        ratio = j_desync[0, 1] / j_sync[0, 1]
        assert ratio == pytest.approx(-3 * np.pi / 2, rel=1e-4)


class TestStabilityVerdicts:
    def test_tanh_ring_is_stable(self):
        rep = analyze_stability(make(TanhPotential()))
        assert rep.stable
        assert rep.max_growth_rate < 0

    def test_bottleneck_ring_is_unstable(self):
        rep = analyze_stability(make(BottleneckPotential(sigma=1.0)))
        assert not rep.stable
        assert rep.max_growth_rate > 0

    def test_decay_rate_is_spectral_gap_product(self):
        n, v_p = 12, 6.0
        topo = ring(n, (1, -1))
        m = make(TanhPotential(), n=n, v_p=v_p)
        rep = analyze_stability(m)
        expected = -(v_p / n) * topo.spectral_gap()
        assert rep.max_growth_rate == pytest.approx(expected, rel=1e-6)

    def test_growth_rate_measured_in_simulation(self):
        """The predicted instability rate matches the measured
        exponential growth of a small zigzag perturbation."""
        n, v_p, sigma = 12, 6.0, 1.0
        m = make(BottleneckPotential(sigma=sigma), n=n, v_p=v_p)
        mode = fastest_growing_mode(m)
        amp0 = 1e-6
        theta0 = amp0 * np.cos(mode["k"] * np.arange(n))
        traj = simulate(m, 1.0, theta0=theta0, seed=0)
        x = traj.comoving_phases()
        amp1 = np.abs(x[-1] - x[-1].mean()).max()
        measured = np.log(amp1 / amp0) / traj.t_end
        assert measured == pytest.approx(mode["rate"], rel=0.05)

    def test_decay_rate_measured_in_simulation(self):
        n, v_p = 12, 6.0
        m = make(TanhPotential(), n=n, v_p=v_p)
        rep = analyze_stability(m)
        k1 = 2 * np.pi / n
        theta0 = 0.01 * np.cos(k1 * np.arange(n))
        traj = simulate(m, 3.0, theta0=theta0, seed=0)
        x = traj.comoving_phases()
        amp0 = np.abs(x[0] - x[0].mean()).max()
        amp1 = np.abs(x[-1] - x[-1].mean()).max()
        measured = -np.log(amp1 / amp0) / traj.t_end
        assert measured == pytest.approx(-rep.max_growth_rate, rel=0.05)


class TestRingDispersion:
    def test_matches_jacobian_eigenvalues(self):
        n, v_p = 10, 4.0
        m = make(TanhPotential(), n=n, v_p=v_p, dists=(1, -1))
        disp = ring_dispersion((-1, 1), n, v_p,
                               potential_slope_at_origin(m.potential))
        eig = np.sort(growth_rates(m).real)
        analytic = np.sort(disp["growth"])
        np.testing.assert_allclose(analytic, eig, atol=1e-9)

    def test_zigzag_is_fastest_growing_for_next_neighbor(self):
        """d = ±1 bottleneck: k = pi maximises the growth — the zigzag
        pattern observed in every desynchronised ring simulation."""
        m = make(BottleneckPotential(sigma=1.0), n=12)
        mode = fastest_growing_mode(m)
        assert mode["k"] == pytest.approx(np.pi)
        # rate = (v_p/N)*|V'(0)| * max_k sum(1-cos(k o)) = ... * 4.
        expected = (6.0 / 12) * (3 * np.pi / 2) * 4.0
        assert mode["rate"] == pytest.approx(expected, rel=1e-4)

    def test_symmetric_offsets_have_no_drift(self):
        disp = ring_dispersion((-1, 1), 12, 4.0, 1.0)
        np.testing.assert_allclose(disp["velocity"], 0.0, atol=1e-12)

    def test_asymmetric_offsets_drift(self):
        """The directed eager-dependency topology of d = ±1,-2 has
        offsets (-1, +1, +2): perturbations drift — the linear picture
        of the leftward-faster idle wave seen in the DES."""
        disp = ring_dispersion((-1, 1, 2), 24, 4.0, 1.0)
        assert np.max(np.abs(disp["velocity"])) > 0.01

    def test_directed_topology_jacobian_complex_rates(self):
        topo = dependency_topology(12, (1, -1, -2))
        m = make(TanhPotential(), topo=topo, v_p=4.0)
        rates = growth_rates(m)
        assert np.max(np.abs(rates.imag)) > 1e-6

    def test_fastest_mode_requires_offsets(self):
        from repro.core import from_edges
        topo = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        m = make(TanhPotential(), topo=topo)
        # Works because the matrix has an extractable first row.
        mode = fastest_growing_mode(m)
        assert np.isfinite(mode["rate"])
