"""Property-based tests for the cluster simulator.

Hypothesis draws random small program configurations; each run must
satisfy the structural invariants of bulk-synchronous execution
regardless of the parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    ClusterSimulator,
    GaussianComputeNoise,
    Injection,
    MachineSpec,
    PiSolverKernel,
    ProgramSpec,
    StreamTriadKernel,
)
from repro.simulator.trace import Activity

_MACHINE = MachineSpec(nodes=2, sockets_per_node=2, cores_per_socket=4,
                       socket_bandwidth=40e9, core_bandwidth=14e9,
                       core_flops=30e9)

_DIST_SETS = [(1, -1), (1,), (-1,), (2, -2), (1, -1, -2), (1, -2),
              (3, -1), (1, -1, 2, -2)]


def _spec(n_ranks, n_iters, dist_idx, memory_bound):
    distances = tuple(d for d in _DIST_SETS[dist_idx]
                      if abs(d) < n_ranks)
    if not distances:
        distances = (1,)
    kernel = (StreamTriadKernel(5e5) if memory_bound
              else PiSolverKernel(1e5, machine=_MACHINE))
    return ProgramSpec(n_ranks=n_ranks, n_iterations=n_iters,
                       kernel=kernel, machine=_MACHINE,
                       distances=distances)


config = st.tuples(
    st.integers(min_value=2, max_value=12),       # ranks
    st.integers(min_value=1, max_value=8),        # iterations
    st.integers(min_value=0, max_value=len(_DIST_SETS) - 1),
    st.booleans(),                                # memory bound
)


@settings(max_examples=25, deadline=None)
@given(cfg=config)
def test_property_all_iterations_finish_in_order(cfg):
    """Every rank finishes all iterations, with strictly increasing
    end times."""
    spec = _spec(*cfg)
    trace = ClusterSimulator(spec, seed=0).run()
    ends = trace.iteration_ends
    assert np.all(np.isfinite(ends))
    assert np.all(np.diff(ends, axis=0) > 0)


@settings(max_examples=25, deadline=None)
@given(cfg=config)
def test_property_intervals_chronological_and_complete(cfg):
    """Per-rank intervals do not overlap and cover compute/send/wait
    exactly once per iteration."""
    spec = _spec(*cfg)
    trace = ClusterSimulator(spec, seed=0).run()
    for tl in trace.timelines:
        kinds = [iv.kind for iv in tl.intervals]
        assert kinds == [Activity.COMPUTE, Activity.SEND,
                         Activity.WAIT] * spec.n_iterations
        for a, b in zip(tl.intervals, tl.intervals[1:]):
            assert b.t_start >= a.t_end - 1e-9


@settings(max_examples=20, deadline=None)
@given(cfg=config, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_deterministic_under_seed(cfg, seed):
    """Identical seeds produce bit-identical traces, even with noise."""
    spec = _spec(*cfg)
    noise = GaussianComputeNoise(std=0.2 * spec.kernel.core_time
                                 if spec.kernel.core_time > 0 else 1e-5)
    a = ClusterSimulator(spec, compute_noise=noise, seed=seed).run()
    b = ClusterSimulator(spec, compute_noise=noise, seed=seed).run()
    np.testing.assert_array_equal(a.iteration_ends, b.iteration_ends)


@settings(max_examples=20, deadline=None)
@given(cfg=config,
       delay_rank=st.integers(min_value=0, max_value=11),
       delay_iter=st.integers(min_value=0, max_value=7))
def test_property_injection_never_speeds_up_compute_bound(cfg, delay_rank,
                                                          delay_iter):
    """Monotonicity of the max-plus regime: for *compute-bound* kernels
    adding work can only delay iteration ends, never advance them.

    (Memory-bound kernels genuinely violate this — see
    ``test_memory_bound_delay_can_speed_up_others`` below: while the
    victim stalls, its socket neighbours stream at a higher bandwidth
    share.  That relief is the microscopic origin of bottleneck
    evasion.)"""
    n_ranks, n_iters, dist_idx, _ = cfg
    spec = _spec(n_ranks, n_iters, dist_idx, memory_bound=False)
    if delay_rank >= spec.n_ranks or delay_iter >= spec.n_iterations:
        return
    base = ClusterSimulator(spec, seed=0).run()
    extra = 3.0 * max(spec.kernel.single_core_time(_MACHINE), 1e-6)
    inj = Injection(rank=delay_rank, iteration=delay_iter,
                    extra_time=extra)
    disturbed = ClusterSimulator(spec, injections=[inj], seed=0).run()
    lag = disturbed.iteration_ends - base.iteration_ends
    assert np.all(lag >= -1e-9)
    assert lag[delay_iter, delay_rank] > 0


def test_memory_bound_delay_can_speed_up_others():
    """Bandwidth relief: delaying one rank of a saturated socket lets
    co-located ranks finish *earlier* than the undisturbed baseline —
    discovered by the property test above when it was (wrongly) applied
    to memory-bound kernels, and kept as a documented physical effect."""
    spec = _spec(3, 1, 1, memory_bound=True)    # distances (1,)
    base = ClusterSimulator(spec, seed=0).run()
    extra = 3.0 * spec.kernel.single_core_time(_MACHINE)
    inj = Injection(rank=0, iteration=0, extra_time=extra)
    disturbed = ClusterSimulator(spec, injections=[inj], seed=0).run()
    lag = disturbed.iteration_ends - base.iteration_ends
    assert lag.min() < -1e-9        # someone got faster


@settings(max_examples=15, deadline=None)
@given(cfg=config)
def test_property_compute_time_conserved(cfg):
    """Total recorded compute time equals iterations x per-sweep work
    for compute-bound kernels (nothing lost or duplicated)."""
    n_ranks, n_iters, dist_idx, _ = cfg
    spec = _spec(n_ranks, n_iters, dist_idx, memory_bound=False)
    trace = ClusterSimulator(spec, seed=0).run()
    per_sweep = spec.kernel.single_core_time(_MACHINE)
    for tl in trace.timelines:
        assert tl.total(Activity.COMPUTE) == pytest.approx(
            n_iters * per_sweep, rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(cfg=config)
def test_property_makespan_lower_bound(cfg):
    """The makespan can never undercut the per-rank critical path
    (iterations x uncontended sweep time)."""
    spec = _spec(*cfg)
    trace = ClusterSimulator(spec, seed=0).run()
    lower = spec.n_iterations * spec.kernel.single_core_time(_MACHINE)
    assert trace.makespan >= lower - 1e-9


@settings(max_examples=15, deadline=None)
@given(cfg=config)
def test_property_memory_traffic_conserved(cfg):
    """Every byte of kernel traffic is served by exactly one socket."""
    n_ranks, n_iters, dist_idx, _ = cfg
    spec = _spec(n_ranks, n_iters, dist_idx, memory_bound=True)
    sim = ClusterSimulator(spec, seed=0)
    sim.run()
    total = sum(a.stats.bytes_transferred
                for a in sim.memory_stats.values())
    expected = spec.kernel.traffic_bytes * n_ranks * n_iters
    assert total == pytest.approx(expected, rel=1e-6)
