"""FIG1A bench — regenerate Fig. 1(a): the two interaction potentials.

Paper artefact: the potential curves for scalable (tanh, red) and
bottlenecked (sine/sgn, blue) programs on [-10, 10], with the first
zero of the bottleneck curve marking the stable desync state at
``2*sigma/3``.
"""

import numpy as np
import pytest

from repro.experiments import run_fig1a


@pytest.mark.benchmark(group="fig1a")
def test_fig1a_potential_curves(benchmark, reports):
    result = benchmark(run_fig1a)

    # --- the figure's structural facts --------------------------------
    for s, zero in result.first_zeros.items():
        assert zero == pytest.approx(2 * s / 3, rel=1e-6)
    assert result.continuity_gap < 1e-6
    assert result.scalable[-1] == pytest.approx(1.0, abs=1e-6)
    for curve in result.bottlenecked.values():
        assert np.max(np.abs(curve)) <= 1.0 + 1e-12

    rows = ", ".join(
        f"sigma={s:g}: zero={result.first_zeros[s]:.4f} "
        f"(theory {2 * s / 3:.4f})"
        for s in result.sigmas
    )
    reports.append(f"FIG1A  potentials: {rows}")


@pytest.mark.benchmark(group="fig1a")
def test_fig1a_potential_evaluation_throughput(benchmark):
    """Engineering: vectorised potential evaluation on a large grid
    (the inner loop of every model RHS)."""
    from repro.core import BottleneckPotential

    pot = BottleneckPotential(sigma=1.0)
    grid = np.linspace(-10, 10, 1_000_000)
    out = benchmark(pot, grid)
    assert out.shape == grid.shape
