"""Ablation benches for the design choices DESIGN.md calls out.

* kappa rule: separate waits (sum of distances) vs. one MPI_Waitall
  (max distance) — Sec. 3.1 after ref. [4];
* protocol: eager (beta=1) vs. rendezvous (beta=2);
* topology fidelity: the symmetric "connection" matrix of the paper vs.
  the directed eager-dependency matrix (receivers-only);
* barrier-free execution (the paper's scope) vs. a global barrier every
  iteration (the synchronising pattern Sec. 6 warns about).
"""

import numpy as np
import pytest

from repro.core import (
    CouplingSpec,
    OneOffDelay,
    PhysicalOscillatorModel,
    Protocol,
    TanhPotential,
    WaitMode,
    ring,
    simulate,
)
from repro.core.topology import dependency_topology
from repro.metrics import measure_wave_speed, settle_time
from repro.simulator import (
    ClusterSimulator,
    Injection,
    MachineSpec,
    PiSolverKernel,
    ProgramSpec,
)

_T_INJECT = 10.0


def _model(topology, coupling=None, v_p=None):
    return PhysicalOscillatorModel(
        topology=topology, potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1,
        coupling=coupling or CouplingSpec(),
        v_p_override=v_p,
        delays=(OneOffDelay(rank=4, t_start=_T_INJECT, delay=0.5),))


def _wave_speed(model, t_end=400.0):
    traj = simulate(model, t_end, seed=0)
    return measure_wave_speed(traj.ts, traj.thetas, model.omega, 4,
                              t_injection=_T_INJECT).speed


@pytest.mark.benchmark(group="ablation")
def test_ablation_waitall_kappa_rule(benchmark, reports):
    """kappa = sum vs. max: grouped waits weaken long-distance sets."""
    topo = ring(16, (1, -1, -2))
    sep = _model(topo, CouplingSpec(wait_mode=WaitMode.SEPARATE))
    grp = _model(topo, CouplingSpec(wait_mode=WaitMode.WAITALL))

    benchmark.pedantic(lambda: _wave_speed(sep), rounds=2, iterations=1)

    v_sep = _wave_speed(sep)
    v_grp = _wave_speed(grp)
    assert sep.beta_kappa == 4.0 and grp.beta_kappa == 2.0
    assert v_sep > v_grp
    reports.append(
        f"ABL    waitall rule: wave speed separate(k=4) {v_sep:.3f} vs "
        f"waitall(k=2) {v_grp:.3f} ranks/s")


@pytest.mark.benchmark(group="ablation")
def test_ablation_protocol_beta(benchmark, reports):
    """Rendezvous (beta=2) doubles the coupling over eager (beta=1)."""
    topo = ring(16, (1, -1))
    eager = _model(topo, CouplingSpec(protocol=Protocol.EAGER))
    rdv = _model(topo, CouplingSpec(protocol=Protocol.RENDEZVOUS))

    benchmark.pedantic(lambda: _wave_speed(eager), rounds=2, iterations=1)

    v_e = _wave_speed(eager)
    v_r = _wave_speed(rdv)
    assert v_r > v_e
    reports.append(
        f"ABL    protocol: wave speed eager {v_e:.3f} vs rendezvous "
        f"{v_r:.3f} ranks/s")


@pytest.mark.benchmark(group="ablation")
def test_ablation_directed_vs_symmetric_topology(benchmark, reports):
    """The paper's symmetric 'connection' matrix vs. the directed
    eager-dependency matrix for the asymmetric set d = ±1,-2: both
    resynchronise, the directed variant is (slightly) slower since it
    has fewer coupling edges."""
    sym = ring(16, (1, -1, -2))
    directed = dependency_topology(16, (1, -1, -2))
    m_sym = _model(sym, v_p=4.0)
    m_dir = _model(directed, v_p=4.0)

    benchmark.pedantic(
        lambda: simulate(m_dir, 200.0, seed=0), rounds=2, iterations=1)

    t_sym = settle_time(*_traj(m_sym), tol=0.05)
    t_dir = settle_time(*_traj(m_dir), tol=0.05)
    assert np.isfinite(t_sym) and np.isfinite(t_dir)
    reports.append(
        f"ABL    topology: resync symmetric {t_sym:.0f}s vs directed "
        f"eager-dependency {t_dir:.0f}s (both settle)")


def _traj(model, t_end=600.0):
    traj = simulate(model, t_end, seed=0)
    return traj.ts, traj.thetas, model.omega


@pytest.mark.benchmark(group="ablation")
def test_ablation_barrier_vs_barrier_free(benchmark, reports):
    """A global barrier suppresses idle-wave propagation entirely (the
    'synchronising barrier in each time step' the paper attributes to
    all-to-all coupling)."""
    machine = MachineSpec(nodes=2)
    kernel = PiSolverKernel(1e6)

    def run(barrier):
        spec = ProgramSpec(
            n_ranks=24, n_iterations=16, kernel=kernel, machine=machine,
            distances=(1, -1),
            barrier_interval=1 if barrier else None)
        extra = 4.0 * kernel.single_core_time(machine)
        inj = Injection(rank=4, iteration=3, extra_time=extra)
        base = ClusterSimulator(spec, seed=0).run()
        dist = ClusterSimulator(spec, injections=[inj], seed=0).run()
        lag = dist.iteration_ends - base.iteration_ends
        # Spread of the lag two iterations after injection: a wave has
        # structure; a barrier makes the lag globally uniform.
        row = lag[5]
        return float(row.max() - row.min()), base, dist

    benchmark.pedantic(lambda: run(False), rounds=2, iterations=1)

    wave_structure, _, _ = run(False)
    barrier_structure, _, _ = run(True)
    assert barrier_structure < 1e-9
    assert wave_structure > 1e-6
    reports.append(
        f"ABL    barrier: lag spread @+2 iters barrier-free "
        f"{wave_structure * 1e3:.2f} ms vs barrier {barrier_structure:.1e}")
