"""CLAIM-SIGMA bench — Sec. 5.2.2: the interaction horizon sigma.

Paper claims encoded:

* the asymptotic phase differences settle at the first zero of the
  bottleneck potential, ``2*sigma/3``;
* sigma correlates with the asymptotic phase spread (small sigma =
  stiff code = tight phases);
* sigma anti-correlates with idle-wave propagation speed.
"""

import numpy as np
import pytest

from repro.experiments import sweep_sigma


@pytest.fixture(scope="module")
def sweep():
    return sweep_sigma(sigmas=[0.25, 0.5, 1.0, 1.5, 2.0],
                       n_ranks=16, t_end=500.0, seed=0)


@pytest.mark.benchmark(group="claim-sigma")
def test_gap_settles_at_first_zero(benchmark, sweep, reports):
    benchmark.pedantic(
        lambda: sweep_sigma(sigmas=[1.0], n_ranks=16, t_end=300.0),
        rounds=3, iterations=1,
    )

    # 2*sigma/3 law.
    np.testing.assert_allclose(sweep.mean_abs_gap, sweep.theory_gap,
                               rtol=0.12)

    # Spread grows with sigma.
    assert np.all(np.diff(sweep.phase_spread) > -0.05)
    assert sweep.phase_spread[-1] > 2.0 * sweep.phase_spread[0]

    rows = "  ".join(
        f"s={s:g}:{g:.3f}/{t:.3f}"
        for s, g, t in zip(sweep.sigma, sweep.mean_abs_gap,
                           sweep.theory_gap))
    reports.append(f"CLAIM-SIGMA |gap| measured/theory (2s/3): {rows}")
    rows2 = "  ".join(
        f"s={s:g}:{sp:.2f}" for s, sp in zip(sweep.sigma,
                                             sweep.phase_spread))
    reports.append(f"CLAIM-SIGMA asymptotic spread [rad]: {rows2}")
