"""Dense vs. sparse vs. batched backend benchmark — JSON artefact writer.

Measures the three claims of the backend layer:

1. **RHS speedup** — one Eq. 2 evaluation on a nearest-neighbour ring at
   N = 4096: the O(E) edge-list kernel vs. the O(N^2) dense reference.
2. **Batched RHS throughput** — an 8-member super-state evaluation vs.
   8 separate sparse evaluations, at a large and a small ring.  The two
   sizes bracket the two regimes: at large N the edge kernel is
   memory-bound (one bincount over R*E moves the same bytes as R
   bincounts over E, so batching cannot beat the loop no matter how the
   buffers are managed — the stacked scratch is preallocated either
   way), while at small N the per-call *Python* overhead dominates and
   batching amortises it R-fold.  The paper's sweeps live at N = 24-128,
   i.e. squarely in the second regime.
3. **Ensemble wall-clock** — ``run_ensemble`` over 8 seeds, sequential
   vs. ``batched=True``.
4. **Kernel ladder** — the large-N regime (ring N = 1e4 / 1e5 and a
   ~1e5-rank torus, built edge-native so no dense matrix is ever
   materialised): one single-state and one 8-member batched RHS
   evaluation under each available coupling kernel (``numpy`` vs.
   ``tiled`` vs. the fused compiled ``cc``/``numba``), reported as
   speedups over the ``numpy`` kernel.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_backends.py --out BENCH_backends.json

``--quick`` shrinks the problem sizes for CI smoke jobs.  The JSON
artefact records the numbers so the perf trajectory is tracked from PR
to PR; ``benchmarks/check_regression.py`` gates CI on the committed
quick baselines.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from statistics import median

import numpy as np

from repro import kernels
from repro.backends import BatchedBackend, make_backend
from repro.core import (
    GaussianJitter,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    ring_edges,
    run_ensemble,
    torus2d_edges,
)


def _time(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(median(times))


def _time_best(fn, repeats: int) -> float:
    """Minimum wall-clock seconds of ``fn()`` over ``repeats`` runs.

    The kernel ladder compares pure compute kernels, where the minimum
    is the standard estimator: it filters scheduler/frequency noise that
    the median still admits on busy hosts, and the quantity of interest
    is the kernels' capability ratio, not a typical-load figure.
    """
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(min(times))


def bench_rhs(n: int, repeats: int) -> dict:
    """Single-state RHS: dense vs. sparse on a ring of size ``n``."""
    model = PhysicalOscillatorModel(
        topology=ring(n, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1)
    dense = model.realize(10.0, rng=0, backend="dense")
    sparse = model.realize(10.0, rng=0, backend="sparse")
    theta = np.random.default_rng(0).normal(0.0, 1.0, n)

    # Warm up + correctness guard.
    np.testing.assert_allclose(sparse.rhs(0.0, theta), dense.rhs(0.0, theta),
                               rtol=1e-12, atol=1e-12)
    t_dense = _time(lambda: dense.rhs(0.0, theta), repeats)
    t_sparse = _time(lambda: sparse.rhs(0.0, theta), repeats)
    return {
        "n": n,
        "n_edges": model.topology.n_edges,
        "dense_s": t_dense,
        "sparse_s": t_sparse,
        "speedup_sparse_vs_dense": t_dense / t_sparse,
    }


def bench_batched_rhs(n: int, r: int, repeats: int) -> dict:
    """Batched super-state RHS vs. R separate sparse evaluations."""
    model = PhysicalOscillatorModel(
        topology=ring(n, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1,
        local_noise=GaussianJitter(std=0.02, refresh=0.5))
    members = [model.realize(10.0, rng=s, backend="sparse")
               for s in range(r)]
    stacked = BatchedBackend(members)
    thetas = np.random.default_rng(1).normal(0.0, 1.0, (r, n))

    ref = np.stack([m.rhs(0.0, thetas[i]) for i, m in enumerate(members)])
    np.testing.assert_allclose(stacked.rhs(0.0, thetas), ref,
                               rtol=1e-12, atol=1e-12)
    t_loop = _time(
        lambda: [m.rhs(0.0, thetas[i]) for i, m in enumerate(members)],
        repeats)
    t_batched = _time(lambda: stacked.rhs(0.0, thetas), repeats)
    return {
        "n": n,
        "members": r,
        "member_loop_s": t_loop,
        "batched_s": t_batched,
        "speedup_batched_vs_loop": t_loop / t_batched,
    }


def bench_ensemble(n: int, r: int, t_end: float, repeats: int) -> dict:
    """Full ``run_ensemble`` wall-clock: sequential vs. batched."""
    model = PhysicalOscillatorModel(
        topology=ring(n, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1,
        local_noise=GaussianJitter(std=0.02, refresh=0.5))
    metrics = {"final_spread": lambda tr: float(np.ptp(tr.final_phases))}
    seeds = tuple(range(r))

    t_seq = _time(lambda: run_ensemble(model, t_end, metrics, seeds=seeds),
                  repeats)
    t_bat = _time(lambda: run_ensemble(model, t_end, metrics, seeds=seeds,
                                       batched=True), repeats)
    return {
        "n": n,
        "seeds": r,
        "t_end": t_end,
        "sequential_s": t_seq,
        "batched_s": t_bat,
        "speedup_batched_vs_sequential": t_seq / t_bat,
    }


def _ladder_kernels() -> list[str]:
    """Kernels to compare: numpy/tiled always, plus what's available."""
    names = ["numpy", "tiled"]
    if kernels.numba_available():
        names.append("numba")
    if kernels.cc_available():
        names.append("cc")
    return names


def bench_kernel_case(topology, r: int, repeats: int) -> dict:
    """Single and batched RHS under every available coupling kernel.

    The topology comes in edge-backed (no dense matrix), so this runs at
    N = 1e5 where the dense path would need an 80 GB matrix.  Noise-free
    model: the ladder isolates the coupling kernel, which is the part
    the ``kernel=`` knob swaps.
    """
    model = PhysicalOscillatorModel(
        topology=topology, potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1)
    n = topology.n
    theta = np.random.default_rng(0).normal(0.0, 1.0, n)
    thetas = np.random.default_rng(1).normal(0.0, 1.0, (r, n))
    members = [model.realize(10.0, rng=s, backend="sparse")
               for s in range(r)]

    case: dict = {
        "topology": topology.name,
        "n": n,
        "n_edges": topology.n_edges,
        "members": r,
        "metric": "coupling seconds per evaluation",
        "single": {},
        "batched": {},
    }
    ref_single = ref_batched = None
    backends = {}
    for name in _ladder_kernels():
        single = make_backend(model.realize(10.0, rng=0, backend="sparse"),
                              "sparse", kernel=name)
        stacked = BatchedBackend(members, kernel=name)
        # Warm up (first compiled call may JIT/load) + correctness guard.
        s_val = single.coupling(0.0, theta)
        b_val = stacked.coupling(0.0, thetas)
        if ref_single is None:
            ref_single, ref_batched = s_val, b_val
        else:
            np.testing.assert_allclose(s_val, ref_single,
                                       rtol=1e-10, atol=1e-12)
            np.testing.assert_allclose(b_val, ref_batched,
                                       rtol=1e-10, atol=1e-12)
        backends[name] = (single, stacked)
    # Interleave the kernels round-robin so host-load drift cannot land
    # on one kernel only; keep the per-kernel minimum across all rounds.
    for mode in ("single", "batched"):
        best = {name: np.inf for name in backends}
        for _ in range(2 * repeats + 1):
            for name, (single, stacked) in backends.items():
                if mode == "single":
                    t = _time_best(lambda: single.coupling(0.0, theta), 3)
                else:
                    t = _time_best(lambda: stacked.coupling(0.0, thetas), 3)
                best[name] = min(best[name], t)
        case[mode].update(best)
    for mode in ("single", "batched"):
        base = case[mode]["numpy"]
        for name, t in list(case[mode].items()):
            if name != "numpy":
                case[mode][f"speedup_{name}_vs_numpy"] = base / t
    return case


def bench_kernel_ladder(quick: bool, repeats: int) -> list[dict]:
    """The ring/torus large-N ladder (edge-backed topologies)."""
    if quick:
        cases = [ring_edges(4096, (1, -1))]
    else:
        cases = [
            ring_edges(10_000, (1, -1)),
            ring_edges(100_000, (1, -1)),
            torus2d_edges(316, 316),          # ~1e5 ranks, degree 4
        ]
    return [bench_kernel_case(t, 8, repeats) for t in cases]


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--out", default="BENCH_backends.json",
                   help="output JSON path")
    p.add_argument("--quick", action="store_true",
                   help="smaller sizes for CI smoke jobs")
    p.add_argument("--rhs-n", type=int, default=None,
                   help="override ring size for the RHS case")
    args = p.parse_args(argv)

    rhs_n = args.rhs_n or (1024 if args.quick else 4096)
    repeats = 5 if args.quick else 11
    ens_n = 64 if args.quick else 128
    ens_t = 10.0 if args.quick else 30.0

    result = {
        "benchmark": "backends",
        "quick": args.quick,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "rhs_ring": bench_rhs(rhs_n, repeats),
        "batched_rhs": bench_batched_rhs(rhs_n, 8, repeats),
        "batched_rhs_small": bench_batched_rhs(128, 8, repeats),
        "ensemble": bench_ensemble(ens_n, 8, ens_t, 3),
        "kernels_available": _ladder_kernels(),
        "kernel_ladder": bench_kernel_ladder(args.quick, repeats),
    }

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    rr = result["rhs_ring"]
    er = result["ensemble"]
    print(f"RHS ring N={rr['n']}: dense {rr['dense_s'] * 1e3:.2f} ms, "
          f"sparse {rr['sparse_s'] * 1e3:.3f} ms "
          f"=> {rr['speedup_sparse_vs_dense']:.1f}x")
    for key, note in (("batched_rhs", "memory-bound at this size"),
                      ("batched_rhs_small", "overhead-amortising regime")):
        br = result[key]
        print(f"batched RHS N={br['n']} R={br['members']}: "
              f"loop {br['member_loop_s'] * 1e3:.3f} ms, "
              f"batched {br['batched_s'] * 1e3:.3f} ms "
              f"=> {br['speedup_batched_vs_loop']:.1f}x ({note})")
    print(f"ensemble N={er['n']} seeds={er['seeds']} t_end={er['t_end']}: "
          f"sequential {er['sequential_s']:.2f} s, "
          f"batched {er['batched_s']:.2f} s "
          f"=> {er['speedup_batched_vs_sequential']:.1f}x")
    for case in result["kernel_ladder"]:
        for mode in ("single", "batched"):
            parts = [f"{k} {case[mode][k] * 1e3:.3f} ms"
                     for k in _ladder_kernels()]
            ratios = [f"{k} {case[mode][f'speedup_{k}_vs_numpy']:.1f}x"
                      for k in _ladder_kernels() if k != "numpy"]
            print(f"kernel ladder {case['topology']} N={case['n']} "
                  f"{mode}: " + ", ".join(parts)
                  + " | vs numpy: " + ", ".join(ratios))
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
