"""Looped vs. batched parameter-sweep benchmark — JSON artefact writer.

Measures the three claims of the heterogeneous batching layer:

1. **sweep_sigma wall-clock** — the Sec. 5.2.2 bottleneck-horizon grid
   (16 points at the paper's N = 24 ring), one stacked solve vs. the
   point-by-point loop.
2. **sweep_beta_kappa wall-clock** — the Sec. 5.1.1 coupling-strength
   grid, idem (members differ in ``v_p``; the stiffest member sub-steps
   on its own under the per-member step control).
3. **Batched Euler-Maruyama** — a stochastic seed ensemble integrated as
   one ``(R, N)`` super-state with per-member Wiener streams, including
   the seed-for-seed equivalence check against the sequential path.
4. **Topology-axis fusion** (PR 10) — a machine-design grid (same model,
   four same-N candidate interconnects) solved as one fused stacked
   shard vs. one shard per topology group, including the bit-identity
   check between the two layouts.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_sweeps.py --out BENCH_sweeps.json

``--quick`` shrinks the horizons/grids for CI smoke jobs.  The JSON
artefact records the numbers so the perf trajectory is tracked from PR
to PR.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from statistics import median

import numpy as np

from repro.core import (
    GaussianJitter,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    run_ensemble,
    simulate,
    simulate_batched,
)
from repro.experiments.sweeps import sweep_beta_kappa, sweep_sigma


def _time(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(median(times))


def bench_sweep_sigma(n_points: int, n_ranks: int, t_end: float,
                      repeats: int) -> dict:
    """CLAIM-SIGMA grid: one stacked solve vs. the per-point loop."""
    sigmas = np.linspace(0.25, 3.0, n_points)
    t_loop = _time(lambda: sweep_sigma(sigmas=sigmas, n_ranks=n_ranks,
                                       t_end=t_end, batched=False), repeats)
    t_bat = _time(lambda: sweep_sigma(sigmas=sigmas, n_ranks=n_ranks,
                                      t_end=t_end, batched=True), repeats)
    return {
        "n_points": n_points,
        "n_ranks": n_ranks,
        "t_end": t_end,
        "looped_s": t_loop,
        "batched_s": t_bat,
        "speedup_batched_vs_looped": t_loop / t_bat,
    }


def bench_sweep_beta_kappa(n_points: int, n_ranks: int, t_end: float,
                           repeats: int) -> dict:
    """CLAIM-BK grid: members differ in v_p (mixed stiffness)."""
    values = np.linspace(0.0, 16.0, n_points)
    t_loop = _time(lambda: sweep_beta_kappa(values=values, n_ranks=n_ranks,
                                            t_end=t_end, batched=False),
                   repeats)
    t_bat = _time(lambda: sweep_beta_kappa(values=values, n_ranks=n_ranks,
                                           t_end=t_end, batched=True),
                  repeats)
    return {
        "n_points": n_points,
        "n_ranks": n_ranks,
        "t_end": t_end,
        "looped_s": t_loop,
        "batched_s": t_bat,
        "speedup_batched_vs_looped": t_loop / t_bat,
    }


def bench_em_ensemble(n: int, r: int, t_end: float, dt: float,
                      repeats: int) -> dict:
    """Batched vs. sequential Euler-Maruyama, plus the bitwise check."""
    model = PhysicalOscillatorModel(
        topology=ring(n, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1,
        local_noise=GaussianJitter(std=0.02, refresh=0.5))
    seeds = tuple(range(r))
    metrics = {"final_spread": lambda tr: float(np.ptp(tr.final_phases))}

    # Seed-for-seed equivalence guard: the batched solve must reproduce
    # each sequential per-seed run bit for bit (identical Wiener draws).
    bat_trajs = simulate_batched(model, t_end, seeds=seeds, method="em",
                                 dt=dt)
    max_diff = 0.0
    for seed, traj in zip(seeds, bat_trajs):
        ref = simulate(model, t_end, seed=seed, method="em", dt=dt)
        max_diff = max(max_diff,
                       float(np.abs(traj.thetas - ref.thetas).max()))

    t_seq = _time(lambda: run_ensemble(model, t_end, metrics, seeds=seeds,
                                       method="em", dt=dt), repeats)
    t_bat = _time(lambda: run_ensemble(model, t_end, metrics, seeds=seeds,
                                       method="em", dt=dt, batched=True),
                  repeats)
    return {
        "n": n,
        "seeds": r,
        "t_end": t_end,
        "dt": dt,
        "sequential_s": t_seq,
        "batched_s": t_bat,
        "speedup_batched_vs_sequential": t_seq / t_bat,
        "max_abs_diff_vs_sequential": max_diff,
    }


def bench_topology_fused(n: int, seeds: int, t_end: float, dt: float,
                         repeats: int) -> dict:
    """Machine-design grid: one fused stacked solve vs. per-group shards.

    Four same-N candidate interconnects (ring / torus / hypercube /
    dragonfly) x ``seeds`` noise realisations under an explicit
    fixed-step dt, so the planner may fuse the whole grid into one
    shard.  The fused and per-group layouts must agree bit for bit.
    """
    from repro.runs import ScenarioSpec, run_spec

    spec = ScenarioSpec(
        name="bench-topology-fused",
        model={
            "topology": {"kind": "ring", "n": n, "distances": [1, -1]},
            "potential": {"kind": "bottleneck", "sigma": 1.5},
            "t_comp": 0.9,
            "t_comm": 0.1,
        },
        t_end=t_end,
        solver={"method": "rk4", "dt": dt},
        initial={"kind": "normal", "std": 1e-3, "seed": 7},
        axes=[
            ("topology", [
                {"kind": "ring", "n": n, "distances": [1, -1]},
                {"kind": "torus2d", "nx": 8, "ny": n // 8},
                {"kind": "hypercube",
                 "dim": int(np.log2(n))},
                {"kind": "dragonfly", "groups": 8, "routers": n // 8},
            ]),
            ("seed", list(range(seeds))),
        ],
        metrics=["order_parameter", "phase_spread"],
        trajectories="none",
    )
    # Doubles as the warm-up for the timed passes below.
    fused = run_spec(spec)
    grouped = run_spec(spec, fuse_topologies=False)
    identical = fused.npz_bytes() == grouped.npz_bytes()

    # The gated margin is small (~1.1-1.2x: the compiled kernels run
    # per-group either way; fusion saves the per-shard solver loops),
    # so take the median of >= 3 passes even in --quick mode.
    repeats = max(repeats, 3)
    t_fused = _time(lambda: run_spec(spec), repeats)
    t_grouped = _time(lambda: run_spec(spec, fuse_topologies=False),
                      repeats)
    return {
        "n": n,
        "topologies": 4,
        "seeds": seeds,
        "t_end": t_end,
        "dt": dt,
        "grouped_s": t_grouped,
        "fused_s": t_fused,
        "speedup_topo_fused_vs_grouped": t_grouped / t_fused,
        "fused_bit_identical_to_grouped": bool(identical),
    }


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--out", default="BENCH_sweeps.json",
                   help="output JSON path")
    p.add_argument("--quick", action="store_true",
                   help="smaller grids/horizons for CI smoke jobs")
    args = p.parse_args(argv)

    if args.quick:
        sigma_points, bk_points, t_end, repeats = 6, 6, 60.0, 1
        em_r, em_t = 4, 10.0
        topo_seeds, topo_t = 3, 20.0
    else:
        sigma_points, bk_points, t_end, repeats = 16, 12, 300.0, 3
        em_r, em_t = 16, 30.0
        topo_seeds, topo_t = 8, 60.0

    result = {
        "benchmark": "sweeps",
        "quick": args.quick,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "sweep_sigma": bench_sweep_sigma(sigma_points, 24, t_end, repeats),
        "sweep_beta_kappa": bench_sweep_beta_kappa(bk_points, 24, t_end,
                                                   repeats),
        "em_ensemble": bench_em_ensemble(64, em_r, em_t, 0.005, repeats),
        "topology_fused": bench_topology_fused(64, topo_seeds, topo_t,
                                               0.05, repeats),
    }

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    for key in ("sweep_sigma", "sweep_beta_kappa"):
        s = result[key]
        print(f"{key} {s['n_points']} points N={s['n_ranks']} "
              f"t_end={s['t_end']}: looped {s['looped_s']:.2f} s, "
              f"batched {s['batched_s']:.2f} s "
              f"=> {s['speedup_batched_vs_looped']:.1f}x")
    em = result["em_ensemble"]
    print(f"EM ensemble N={em['n']} seeds={em['seeds']} t_end={em['t_end']}: "
          f"sequential {em['sequential_s']:.2f} s, "
          f"batched {em['batched_s']:.2f} s "
          f"=> {em['speedup_batched_vs_sequential']:.1f}x "
          f"(max |diff| vs sequential: {em['max_abs_diff_vs_sequential']:.3g})")
    tf = result["topology_fused"]
    print(f"topology fusion N={tf['n']} {tf['topologies']} kinds x "
          f"{tf['seeds']} seeds t_end={tf['t_end']}: "
          f"grouped {tf['grouped_s']:.2f} s, fused {tf['fused_s']:.2f} s "
          f"=> {tf['speedup_topo_fused_vs_grouped']:.1f}x "
          f"(bit-identical: {tf['fused_bit_identical_to_grouped']})")
    if not tf["fused_bit_identical_to_grouped"]:
        raise SystemExit("topology fusion changed result bits")
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
