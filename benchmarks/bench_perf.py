"""Engineering benchmarks: solver and simulator throughput.

These document the paper's "simple and cheap experimentation" pitch
(Sec. 1 Motivation): solving the ODE system must be far cheaper than
running the parallel program it models.
"""

import numpy as np
import pytest

from repro.backends import BatchedBackend
from repro.core import (
    BottleneckPotential,
    GaussianJitter,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    run_ensemble,
    simulate,
)
from repro.integrate import solve_dopri45, solve_rk4
from repro.simulator import (
    ClusterSimulator,
    MachineSpec,
    PiSolverKernel,
    ProgramSpec,
    StreamTriadKernel,
)


@pytest.mark.benchmark(group="perf-rhs")
def test_rhs_evaluation_n40(benchmark):
    """One Eq. 2 RHS evaluation at the paper's N = 40."""
    model = PhysicalOscillatorModel(
        topology=ring(40, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1)
    realized = model.realize(10.0, rng=0)
    theta = np.random.default_rng(0).normal(0, 1, 40)
    out = benchmark(realized.rhs, 0.0, theta)
    assert out.shape == (40,)


@pytest.mark.benchmark(group="perf-rhs")
def test_rhs_evaluation_n400(benchmark):
    """RHS at 10x the paper scale (dense N^2 coupling)."""
    model = PhysicalOscillatorModel(
        topology=ring(400, (1, -1)), potential=BottleneckPotential(sigma=1.0),
        t_comp=0.9, t_comm=0.1)
    realized = model.realize(10.0, rng=0)
    theta = np.random.default_rng(0).normal(0, 1, 400)
    out = benchmark(realized.rhs, 0.0, theta)
    assert out.shape == (400,)


@pytest.mark.benchmark(group="perf-backends")
@pytest.mark.parametrize("backend", ["dense", "sparse"])
def test_rhs_backend_ring_n4096(benchmark, backend):
    """Eq. 2 RHS on a ring at N = 4096: O(N^2) dense vs. O(E) edge-list.

    The ring has only 2 edges per row, so the sparse kernel should win
    by orders of magnitude (the ISSUE target is >= 10x)."""
    model = PhysicalOscillatorModel(
        topology=ring(4096, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1)
    realized = model.realize(10.0, rng=0, backend=backend)
    theta = np.random.default_rng(0).normal(0, 1, 4096)
    out = benchmark.pedantic(realized.rhs, args=(0.0, theta),
                             rounds=5, iterations=1)
    assert out.shape == (4096,)


@pytest.mark.benchmark(group="perf-backends")
def test_rhs_batched_super_state(benchmark):
    """One batched (R=8, N=4096) super-state RHS evaluation."""
    model = PhysicalOscillatorModel(
        topology=ring(4096, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1)
    stacked = BatchedBackend([model.realize(10.0, rng=s) for s in range(8)])
    thetas = np.random.default_rng(0).normal(0, 1, (8, 4096))
    out = benchmark.pedantic(stacked.rhs, args=(0.0, thetas),
                             rounds=5, iterations=1)
    assert out.shape == (8, 4096)


@pytest.mark.benchmark(group="perf-backends")
@pytest.mark.parametrize("batched", [False, True], ids=["sequential", "batched"])
def test_ensemble_wall_clock(benchmark, batched):
    """8-seed ensemble wall-clock: one-seed-at-a-time vs. super-state."""
    model = PhysicalOscillatorModel(
        topology=ring(64, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1,
        local_noise=GaussianJitter(std=0.02, refresh=0.5))
    metrics = {"spread": lambda tr: float(np.ptp(tr.final_phases))}

    res = benchmark.pedantic(
        lambda: run_ensemble(model, 10.0, metrics, seeds=tuple(range(8)),
                             batched=batched),
        rounds=3, iterations=1)
    assert res.values["spread"].shape == (8,)


@pytest.mark.benchmark(group="perf-solver")
def test_dopri_oscillator_solve(benchmark):
    """Full model solve: 24 oscillators for 100 s of model time."""
    model = PhysicalOscillatorModel(
        topology=ring(24, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1)

    traj = benchmark.pedantic(
        lambda: simulate(model, 100.0, seed=0), rounds=3, iterations=1)
    assert traj.t_end == pytest.approx(100.0)


@pytest.mark.benchmark(group="perf-solver")
def test_dopri_vs_scipy_reference(benchmark):
    """Raw DOPRI throughput on a smooth 64-dimensional problem."""
    a = np.linspace(0.5, 2.0, 64)

    def f(t, y):
        return -a * y + np.sin(t)

    sol = benchmark(lambda: solve_dopri45(f, (0.0, 20.0), np.ones(64),
                                          rtol=1e-7, atol=1e-10))
    assert sol.success


@pytest.mark.benchmark(group="perf-solver")
def test_rk4_fixed_step_throughput(benchmark):
    a = np.linspace(0.5, 2.0, 64)

    def f(t, y):
        return -a * y

    sol = benchmark(lambda: solve_rk4(f, (0.0, 5.0), np.ones(64), dt=1e-3))
    assert sol.stats.n_steps == 5000


@pytest.mark.benchmark(group="perf-des")
def test_des_event_throughput_compute_bound(benchmark):
    """DES rate on the paper's configuration (40 ranks, PISOLVER)."""
    spec = ProgramSpec(
        n_ranks=40, n_iterations=30, kernel=PiSolverKernel(1e6),
        machine=MachineSpec(nodes=2), distances=(1, -1))

    def run():
        sim = ClusterSimulator(spec, seed=0)
        sim.run()
        return sim.engine.n_dispatched

    n_events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n_events > 0


@pytest.mark.benchmark(group="perf-des")
def test_des_event_throughput_memory_bound(benchmark):
    """Memory-bound DES: the arbiter reschedules on every transition."""
    spec = ProgramSpec(
        n_ranks=40, n_iterations=20, kernel=StreamTriadKernel(2e6),
        machine=MachineSpec(nodes=2), distances=(1, -1))

    def run():
        sim = ClusterSimulator(spec, seed=0)
        sim.run()
        return sim.engine.n_dispatched

    n_events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n_events > 0


@pytest.mark.benchmark(group="perf-cheapness")
def test_model_cheaper_than_simulated_program(benchmark, reports):
    """The pitch quantified: modelling 40 ranks for 60 cycles with the
    POM costs milliseconds of CPU; the program it describes would burn
    40 cores for a minute."""
    import time

    model = PhysicalOscillatorModel(
        topology=ring(40, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1)

    t0 = time.perf_counter()
    simulate(model, 60.0, seed=0)
    wall = time.perf_counter() - t0
    simulated_cpu_seconds = 40 * 60.0
    ratio = simulated_cpu_seconds / wall
    reports.append(
        f"PERF   POM solve of 40 ranks x 60 s costs {wall * 1e3:.0f} ms "
        f"=> {ratio:,.0f}x cheaper than the modelled program")

    benchmark.pedantic(lambda: simulate(model, 60.0, seed=0),
                       rounds=3, iterations=1)
    assert ratio > 100.0
