"""FIG2 bench — regenerate Fig. 2: the four-panel MPI-vs-model analogy.

Paper artefact: for {scalable, bottlenecked} x {d=±1, d=±1,-2}, the
oscillator model's asymptotic state must match the MPI (here: DES)
phenomenology — resynchronisation for the scalable panels, a residual
computational wavefront for the bottlenecked ones — and the stiffer
topology must propagate delays faster (paper: ~3x from (b) to (d))
with a smaller asymptotic phase spread.
"""

import pytest

from repro.experiments import run_fig2


@pytest.fixture(scope="module")
def fig2_result():
    # Reduced but fully-featured configuration (the defaults take ~20 s;
    # this one a few seconds, same qualitative content).
    return run_fig2(n_ranks=24, n_iterations=40, sigma_b=1.5,
                    t_end=None, seed=0)


@pytest.mark.benchmark(group="fig2")
def test_fig2_four_panels(benchmark, fig2_result, reports):
    # Benchmark one representative panel solve (model side dominates).
    from repro.experiments import run_panel

    benchmark.pedantic(
        lambda: run_panel("bench2b", scalable=False, distances=(1, -1),
                          sigma=1.5, n_ranks=24, n_iterations=30,
                          t_end=800.0, seed=0),
        rounds=3, iterations=1,
    )

    res = fig2_result
    # --- the figure's verdicts -----------------------------------------
    assert res.panels["fig2a"].model_verdict.is_synchronized
    assert res.panels["fig2c"].model_verdict.is_synchronized
    assert res.panels["fig2b"].model_verdict.is_desynchronized
    assert res.panels["fig2d"].model_verdict.is_desynchronized
    assert res.all_panels_agree()

    # Bottleneck gaps at the potential zero (2*sigma/3).
    assert res.panels["fig2b"].model_gap == pytest.approx(1.0, rel=0.1)

    # Stiffer topology: faster trace wave, proportionally smaller
    # asymptotic gaps (the spread itself is dominated by the domain
    # pattern the ring freezes into — see EXPERIMENTS.md).
    assert res.trace_speed_ratio_d_over_b > 1.4
    assert (res.panels["fig2b"].model_gap
            > 2.5 * res.panels["fig2d"].model_gap)

    for name, p in res.panels.items():
        reports.append(
            f"FIG2   {name}: model={p.model_verdict.state.value:<15} "
            f"spread={p.model_spread:5.2f}/{p.model_spread_clean:5.2f} "
            f"|gap|={p.model_gap:5.2f} "
            f"trace_wave={p.trace_wave.speed_ranks_per_iteration:4.2f} r/it "
            f"desync_idx={p.trace_desync.desync_index:5.2f} "
            f"agree={p.agrees_with_paper}")
    reports.append(
        f"FIG2   speed ratio (d)/(b): trace "
        f"{res.trace_speed_ratio_d_over_b:.2f}x (paper ~3x), model "
        f"{res.model_speed_ratio_d_over_b:.2f}x; spread ratio (b)/(d): "
        f"{res.model_spread_ratio_b_over_d:.2f}x")
