"""CLAIM-BK bench — Sec. 5.1.1: idle-wave speed vs. beta*kappa.

Paper claims encoded:

* ``beta*kappa ~ 0``: free processes — no wave, no resynchronisation;
* ``beta*kappa = 1``: next-neighbour coupling, minimum idle-wave speed,
  slow relaxation into the synchronised state;
* larger ``beta*kappa``: faster wave, "stiffer" system;
* very large ``beta*kappa``: strongly synchronising.
"""

import numpy as np
import pytest

from repro.experiments import sweep_beta_kappa


@pytest.fixture(scope="module")
def sweep():
    return sweep_beta_kappa(values=[0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
                            n_ranks=16, t_end=500.0, seed=0)


@pytest.mark.benchmark(group="claim-bk")
def test_wave_speed_grows_with_beta_kappa(benchmark, sweep, reports):
    benchmark.pedantic(
        lambda: sweep_beta_kappa(values=[2.0], n_ranks=16, t_end=300.0),
        rounds=3, iterations=1,
    )

    bk = sweep.beta_kappa
    speeds = sweep.wave_speed
    resync = sweep.resync_time

    # beta*kappa = 0: free processes.
    assert np.isnan(speeds[0]) or speeds[0] == 0.0
    assert np.isinf(resync[0])

    # Monotone speed growth over the coupled entries.
    coupled = speeds[1:]
    assert np.all(np.isfinite(coupled))
    assert np.all(np.diff(coupled) > 0)

    # Resynchronisation accelerates with coupling.
    finite = np.isfinite(resync)
    assert np.all(np.diff(resync[finite]) < 0)

    rows = "  ".join(f"bk={b:g}:{s:.3f}" for b, s in zip(bk[1:], coupled))
    reports.append(f"CLAIM-BK wave speed [ranks/s] vs beta*kappa: {rows}")
    rows2 = "  ".join(
        f"bk={b:g}:{r:.0f}s" for b, r in zip(bk, resync) if np.isfinite(r))
    reports.append(f"CLAIM-BK resync time after delay: {rows2} "
                   f"(bk=0: never)")
