"""CI perf-regression gate over the benchmark JSON artefacts.

Compares a freshly measured benchmark JSON (``bench_backends.py`` /
``bench_sweeps.py`` output) against a committed baseline and fails when
any *speedup ratio* degrades below ``tolerance * baseline``.  Gating on
speedup ratios rather than absolute seconds makes the check robust to
the (very different, very noisy) CI machines: a ratio like
"sparse kernel vs dense" or "fused kernel vs numpy" is a property of
the code, not of the host.

Usage (as wired into the ``bench-smoke`` CI job)::

    python benchmarks/check_regression.py \
        --pair benchmarks/baselines/BENCH_backends.quick.json BENCH_backends.json \
        --pair benchmarks/baselines/BENCH_sweeps.quick.json BENCH_sweeps.json \
        --tolerance 0.5

Exit status 0 when every speedup is at least ``tolerance`` times its
baseline value, 1 otherwise.  Speedup keys present only in the baseline
(a benchmark was removed) also fail; keys present only in the current
run (a benchmark was added) are reported informationally.  Only stdlib
is used, so the gate runs before any project dependency is installed.

**Hard floors** (``--floor KEY:MIN[:MINCPUS]``) gate a speedup key in
the *current* artefacts against an absolute minimum, independent of any
baseline — e.g. ``--floor sharded_sweep.speedup_jobs4_vs_jobs1:1.0:4``
demands that sharding actually pays on machines with at least 4 cores.
When the artefact's recorded ``platform.cpu_count`` (fallback: this
host's) is below ``MINCPUS``, the floor is skipped with a loud note
instead of failing — a 1-core runner cannot show a parallel speedup,
and pretending it did would be worse than not checking.  A floor whose
key is missing from every current artefact fails: a silently dropped
benchmark must not disable its gate.

On failure the report names, per offending key, the committed baseline
file and the exact command that refreshes it — so a PR that
*legitimately* shifts a ratio (a faster kernel changes the denominator,
say) can update ``benchmarks/baselines/*.quick.json`` without spelunking
through CI logs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterator

#: numeric fields treated as regression-gated speedup ratios
SPEEDUP_PREFIX = "speedup_"


def iter_speedups(obj, path: str = "") -> Iterator[tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every speedup field in ``obj``."""
    if isinstance(obj, dict):
        for key, value in sorted(obj.items()):
            sub = f"{path}.{key}" if path else str(key)
            if key.startswith(SPEEDUP_PREFIX) and isinstance(value, (int, float)):
                yield sub, float(value)
            else:
                yield from iter_speedups(value, sub)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from iter_speedups(value, f"{path}[{i}]")


def refresh_command(baseline: dict, baseline_path: str) -> str:
    """The exact command that re-measures and overwrites a baseline.

    The ``benchmark`` field of the artefact names the producing script
    (``bench_<name>.py`` — the convention every benchmark follows).
    """
    name = baseline.get("benchmark", "<name>")
    quick = " --quick" if baseline.get("quick") else ""
    return (
        f"PYTHONPATH=src python benchmarks/bench_{name}.py{quick} "
        f"--out {baseline_path}"
    )


def parse_floor(arg: str) -> tuple[str, float, int | None]:
    """Parse a ``KEY:MIN[:MINCPUS]`` hard-floor argument."""
    parts = arg.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"bad --floor {arg!r}; expected KEY:MIN[:MINCPUS]")
    key, min_s = parts[0], parts[1]
    try:
        minimum = float(min_s)
        min_cpus = int(parts[2]) if len(parts) == 3 else None
    except ValueError:
        raise ValueError(f"bad --floor {arg!r}; expected KEY:MIN[:MINCPUS]") from None
    return key, minimum, min_cpus


def check_floors(floors, currents) -> list[str]:
    """Apply hard floors to the current artefacts; return failures.

    ``currents`` is a list of ``(label, artefact_dict)``.  Floors with a
    ``MINCPUS`` bound are skipped (loudly) for artefacts measured on
    hosts with fewer cores.
    """
    failures = []
    for key, minimum, min_cpus in floors:
        found = False
        for label, current in currents:
            values = dict(iter_speedups(current))
            if key not in values:
                continue
            found = True
            cpus = current.get("platform", {}).get("cpu_count") or os.cpu_count() or 1
            if min_cpus is not None and cpus < min_cpus:
                print(
                    f"{label}: hard floor {key} >= {minimum:.2f}x SKIPPED "
                    f"(measured on {cpus} cpu(s); needs >= {min_cpus})"
                )
                continue
            value = values[key]
            status = "ok" if value >= minimum else "BELOW FLOOR"
            print(
                f"{label}: hard floor {key}: {value:.2f}x vs minimum "
                f"{minimum:.2f}x -> {status}"
            )
            if value < minimum:
                failures.append(
                    f"{label}: {key} = {value:.2f}x is below the hard "
                    f"floor {minimum:.2f}x"
                )
        if not found:
            failures.append(
                f"hard floor {key}: key missing from every current "
                "artefact"
            )
    return failures


def compare(baseline: dict, current: dict, tolerance: float, label: str) -> list[str]:
    """Return a list of failure messages (empty when the gate passes)."""
    base = dict(iter_speedups(baseline))
    cur = dict(iter_speedups(current))
    failures = []
    for key, base_val in base.items():
        cur_val = cur.get(key)
        if cur_val is None:
            failures.append(
                f"{label}: {key} missing from current run "
                f"(baseline {base_val:.2f}x)"
            )
            continue
        floor = tolerance * base_val
        status = "ok" if cur_val >= floor else "REGRESSION"
        print(
            f"{label}: {key}: baseline {base_val:.2f}x, "
            f"current {cur_val:.2f}x, floor {floor:.2f}x -> {status}"
        )
        if cur_val < floor:
            failures.append(
                f"{label}: {key} degraded to {cur_val:.2f}x "
                f"(baseline {base_val:.2f}x, floor {floor:.2f}x)"
            )
    for key in sorted(set(cur) - set(base)):
        print(f"{label}: {key}: new (no baseline), {cur[key]:.2f}x")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pair",
        nargs=2,
        action="append",
        metavar=("BASELINE", "CURRENT"),
        required=True,
        help="baseline JSON and freshly measured JSON to compare "
        "(repeatable)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="minimum allowed fraction of the baseline speedup "
        "(default 0.5)",
    )
    parser.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="KEY:MIN[:MINCPUS]",
        help="hard absolute floor for a speedup key in the current "
        "artefacts, skipped loudly when the artefact was measured on "
        "fewer than MINCPUS cores (repeatable)",
    )
    args = parser.parse_args(argv)
    if not (0.0 < args.tolerance <= 1.0):
        parser.error("tolerance must be in (0, 1]")
    try:
        floors = [parse_floor(f) for f in args.floor]
    except ValueError as exc:
        parser.error(str(exc))

    failures: list[str] = []
    hints: list[str] = []
    currents: list[tuple[str, dict]] = []
    for baseline_path, current_path in args.pair:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        with open(current_path) as fh:
            current = json.load(fh)
        label = current.get("benchmark", current_path)
        currents.append((label, current))
        if baseline.get("quick") != current.get("quick"):
            print(
                f"{label}: warning: comparing quick={current.get('quick')} "
                f"against baseline quick={baseline.get('quick')}"
            )
        pair_failures = compare(baseline, current, args.tolerance, label)
        if pair_failures:
            hints.append(
                f"{label}: committed baseline: {baseline_path}\n"
                f"    if this PR legitimately shifts the ratio, refresh "
                f"it with:\n"
                f"    {refresh_command(baseline, baseline_path)}"
            )
        failures.extend(pair_failures)

    failures.extend(check_floors(floors, currents))

    if failures:
        print(f"\n{len(failures)} perf regression(s):", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        for hint in hints:
            print(hint, file=sys.stderr)
        return 1
    print("\nperf-regression gate: all speedups within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
