"""Benchmark-suite configuration.

Every benchmark regenerates one paper artefact (figure or in-text
claim) and prints the series the paper reports, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
harness.  Timings measure the cost of the reproduction itself (the
model solve / DES run), which documents that the "simple and cheap
experimentation" promise of the paper (Sec. 1) holds.

The artefact lines are emitted through the ``pytest_terminal_summary``
hook so they survive output capture and appear after the benchmark
tables.
"""

import pytest

_REPORT_LINES: list[str] = []


@pytest.fixture(scope="session")
def reports():
    """Collector for artefact summary lines (shown in the terminal
    summary at the end of the run)."""
    return _REPORT_LINES


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_LINES:
        return
    terminalreporter.write_sep("=", "PAPER ARTEFACT REPRODUCTION SUMMARY")
    for line in _REPORT_LINES:
        terminalreporter.write_line(line)
