"""Theory benches: linear stability, dispersion, and the max-plus
closed form — the analytic extensions beyond the paper.

These quantify how well the from-first-principles predictions match the
simulations, which is the strongest internal-consistency check the
reproduction has:

* predicted sync/desync onset = sign of V'(0) — matched by simulation;
* desync instability growth rate from the dispersion relation — matched
  to ~5%;
* compute-bound DES = max-plus recurrence — matched to machine epsilon.
"""

import numpy as np
import pytest

from repro.analysis import (
    analyze_stability,
    fastest_growing_mode,
    maxplus_iteration_ends,
)
from repro.core import (
    BottleneckPotential,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    simulate,
)
from repro.simulator import (
    ClusterSimulator,
    Injection,
    MachineSpec,
    PiSolverKernel,
    ProgramSpec,
)


def _model(potential, n=24, v_p=6.0):
    return PhysicalOscillatorModel(
        topology=ring(n, (1, -1)), potential=potential,
        t_comp=0.9, t_comm=0.1, v_p_override=v_p)


@pytest.mark.benchmark(group="theory")
def test_stability_theory_vs_simulation(benchmark, reports):
    """The analytic growth rate of the desync instability matches the
    measured exponential growth of a zigzag seed."""
    n, v_p = 24, 6.0
    m = _model(BottleneckPotential(sigma=1.0), n=n, v_p=v_p)
    mode = fastest_growing_mode(m)

    def measure():
        amp0 = 1e-6
        theta0 = amp0 * np.cos(mode["k"] * np.arange(n))
        traj = simulate(m, 1.0, theta0=theta0, seed=0)
        x = traj.comoving_phases()
        amp1 = np.abs(x[-1] - x[-1].mean()).max()
        return float(np.log(amp1 / amp0) / traj.t_end)

    measured = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert measured == pytest.approx(mode["rate"], rel=0.05)

    rep_tanh = analyze_stability(_model(TanhPotential()))
    rep_bneck = analyze_stability(m)
    assert rep_tanh.stable and not rep_bneck.stable
    reports.append(
        f"THEORY stability: tanh stable (slowest decay "
        f"{-rep_tanh.max_growth_rate:.4f}/s), bottleneck unstable "
        f"(zigzag k=pi grows at {mode['rate']:.3f}/s predicted, "
        f"{measured:.3f}/s measured)")


@pytest.mark.benchmark(group="theory")
def test_maxplus_equals_des(benchmark, reports):
    """The closed-form recurrence reproduces the DES bit-exactly for
    compute-bound runs — and is ~an order of magnitude faster."""
    m = MachineSpec(nodes=2)
    spec = ProgramSpec(n_ranks=40, n_iterations=30,
                       kernel=PiSolverKernel(1e6), machine=m,
                       distances=(1, -1, -2))
    inj = [Injection(rank=4, iteration=5, extra_time=3e-3)]

    analytic = benchmark(lambda: maxplus_iteration_ends(spec,
                                                        injections=inj))
    des = ClusterSimulator(spec, injections=inj, seed=0).run()
    np.testing.assert_allclose(analytic, des.iteration_ends,
                               rtol=1e-12, atol=1e-15)
    reports.append(
        "THEORY max-plus recurrence == DES iteration ends "
        "(40 ranks x 30 iters, d=±1,-2, with injection): exact")
