"""FIG1B bench — regenerate Fig. 1(b): socket-level kernel scalability.

Paper artefact: memory bandwidth vs. processes per Meggie socket for
STREAM triad, "slow" Schönauer triad, and PISOLVER.  Shape to match:
STREAM saturates the 68 GB/s socket at ~5 cores, the slow triad
saturates later/lower, PISOLVER shows no bandwidth footprint (linear
scaling).
"""

import pytest

from repro.experiments import run_fig1b


@pytest.mark.benchmark(group="fig1b")
def test_fig1b_bandwidth_scaling(benchmark, reports):
    result = benchmark.pedantic(
        lambda: run_fig1b(array_elements=4e6, n_iterations=6),
        rounds=3, iterations=1,
    )

    stream, schoen, pisolver = (result.stream, result.schoenauer,
                                result.pisolver)

    # --- the figure's shape --------------------------------------------
    assert stream.saturates
    assert stream.saturation_ranks == pytest.approx(5.0, rel=0.15)
    assert schoen.saturation_ranks > stream.saturation_ranks
    assert not pisolver.saturates
    assert stream.bandwidth_GBs[-1] == pytest.approx(68.0, rel=0.05)
    assert stream.bandwidth_GBs[0] > schoen.bandwidth_GBs[0] > 0.0

    def fmt(curve):
        return " ".join(f"{b:5.1f}" for b in curve.bandwidth_GBs)

    reports.append("FIG1B  aggregate bandwidth [GB/s] vs ranks 1..10:")
    reports.append(f"       stream    : {fmt(stream)} "
                   f"(saturates @ {stream.saturation_ranks:.1f} cores)")
    reports.append(f"       schoenauer: {fmt(schoen)} "
                   f"(saturates @ {schoen.saturation_ranks:.1f} cores)")
    reports.append(f"       pisolver  : {fmt(pisolver)} (no traffic)")
