"""CLAIM-KM bench — Sec. 2.2.2: why plain Kuramoto cannot describe
parallel programs.

Three disqualifiers, each measured:

1. all-to-all coupling acts like a per-cycle barrier (synchronisation
   is orders of magnitude faster than any sparse topology allows);
2. no stable desynchronised state exists — the sinusoidal potential
   collapses a computational-wavefront configuration;
3. 2*pi phase slips leave the dynamics invariant, which is impossible
   for processes that must receive a message per iteration.
"""

import pytest

from repro.experiments import kuramoto_baseline


@pytest.fixture(scope="module")
def baseline():
    return kuramoto_baseline(n=24, t_end=300.0, seed=0)


@pytest.mark.benchmark(group="claim-km")
def test_kuramoto_is_unsuitable(benchmark, baseline, reports):
    benchmark.pedantic(
        lambda: kuramoto_baseline(n=24, t_end=100.0, seed=0),
        rounds=3, iterations=1,
    )

    b = baseline
    # 1. Barrier-like synchronisation.
    assert b.km_sync_time < 0.2 * b.pom_sync_time
    # 2. No desynchronised equilibrium.
    assert b.pom_final_gap == pytest.approx(1.0, rel=0.15)  # 2*sigma/3
    assert b.km_final_gap < 0.5 * b.pom_final_gap
    # 3. Phase slips.
    assert b.km_phase_slip_invariance < 1e-9
    assert b.pom_phase_slip_invariance > 1e-3

    reports.append(
        f"CLAIM-KM sync time: KM {b.km_sync_time:.2f}s vs POM "
        f"{b.pom_sync_time:.2f}s | wavefront hold: KM gap "
        f"{b.km_final_gap:.3f} vs POM {b.pom_final_gap:.3f} | phase-slip "
        f"RHS change: KM {b.km_phase_slip_invariance:.1e} vs POM "
        f"{b.pom_phase_slip_invariance:.1e}")
