"""Run-orchestration benchmark — JSON artefact writer.

Measures the two claims of the campaign layer (:mod:`repro.runs`):

1. **Sharded multiprocess execution** — a fixed-step sigma x seed
   campaign compiled into bounded shards and executed with ``jobs=1``
   vs ``jobs=4``.  Fixed-step members are arithmetically independent,
   so the two runs are *bit-for-bit identical* (asserted here) and the
   speedup is pure orchestration win.  (On single-core CI runners the
   ratio hovers around 1; the regression gate floors it well below
   that, so the gate catches orchestration overhead blow-ups, not
   missing cores.)
2. **Warm-cache replay** — the same campaign against a fresh
   content-addressed cache: the cold run solves and stores every
   shard, the warm run must be a pure cache hit (zero solves —
   asserted), replaying in milliseconds.
3. **In-kernel thread scaling** — the compiled ``cc`` ring and
   edge-list kernels at large N, ``threads=1`` vs ``threads=T``
   (bit-equality asserted).  Skipped with a note when the ``cc``
   toolchain or its OpenMP support is unavailable.
4. **Streaming metrics** — a metric-only campaign
   (``trajectories="none"``) vs the same campaign with full
   trajectory capture: cached bytes (gated ``speedup_cache_shrink``
   >= 20x), warm replay, and fully cached service fetch latency.

The artefact records ``platform.cpu_count`` so the regression gate's
hard floors (``check_regression.py --floor KEY:MIN[:MINCPUS]``) can
skip parallel-speedup floors for runs measured on hosts without
enough cores, instead of failing or silently passing.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_runs.py --out BENCH_runs.json

``--quick`` shrinks the campaign for CI smoke jobs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from statistics import median

import numpy as np

from repro.runs import (ScenarioSpec, ResultCache, compile_plan, run_plan,
                        run_plan_queue)


def _time(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(median(times))


def campaign(n_sigmas: int, n_seeds: int, n_ranks: int,
             t_end: float) -> ScenarioSpec:
    """The benchmark campaign: a bottleneck-horizon x seed grid (rk4)."""
    return ScenarioSpec(
        name="bench-runs",
        model={
            "topology": {"kind": "ring", "n": n_ranks,
                         "distances": [1, -1]},
            "potential": {"kind": "bottleneck", "sigma": 1.0},
            "t_comp": 0.9,
            "t_comm": 0.1,
            "local_noise": {"kind": "gaussian", "std": 0.01,
                            "refresh": 0.5},
        },
        t_end=t_end,
        solver={"method": "rk4"},
        initial={"kind": "normal", "std": 1e-3, "seed": 0},
        axes=[
            ("potential.sigma",
             np.linspace(0.5, 2.5, n_sigmas).tolist()),
            ("seed", list(range(n_seeds))),
        ],
    )


def bench_sharded_jobs(spec: ScenarioSpec, shard_members: int,
                       jobs: int, repeats: int) -> dict:
    """jobs=1 vs jobs=N wall-clock on the same shard decomposition.

    Wall-clock is decomposed into in-worker solve time and (for the
    shared-memory transport) measured result-transport time; the
    remainder is pool/orchestration overhead.  Workers are pinned to
    one in-kernel thread each (the executor default), recorded in the
    ``threads`` column.
    """
    plan = compile_plan(spec, shard_members=shard_members)

    r1 = run_plan(plan, jobs=1)
    rn = run_plan(plan, jobs=jobs)
    max_diff = max(
        float(np.abs(a.thetas - b.thetas).max())
        for a, b in zip(r1.members, rn.members)
    )
    if max_diff != 0.0:
        raise AssertionError(
            f"jobs=1 and jobs={jobs} disagree (max |diff| {max_diff:g})")

    t1 = _time(lambda: run_plan(plan, jobs=1), repeats)
    tn = _time(lambda: run_plan(plan, jobs=jobs), repeats)
    return {
        "members": plan.n_members,
        "shards": plan.n_shards,
        "shard_members": shard_members,
        "jobs": jobs,
        "threads": 1,
        "transport": rn.transport,
        "worker_omp": rn.worker_omp,
        "jobs1_s": t1,
        f"jobs{jobs}_s": tn,
        "jobs1_solve_s": r1.solve_s,
        f"jobs{jobs}_solve_s": rn.solve_s,
        f"jobs{jobs}_transport_s": rn.transport_s,
        f"speedup_jobs{jobs}_vs_jobs1": t1 / tn,
        "max_abs_diff_vs_jobs1": max_diff,
    }


def bench_kernel_threads(n: int, iters: int, repeats: int,
                         threads: int) -> dict:
    """Single-process ``cc`` kernel thread scaling at large N.

    Times the ring-specialised and generic edge-list fused kernels
    serial vs ``threads``-way parallel on a nearest-neighbour ring of
    ``n`` oscillators, asserting bit-equality.  Returns a skip record
    when the compiled kernel (or its OpenMP build) is unavailable.
    """
    from repro.kernels import cc as cc_kernels

    if not cc_kernels.cc_available():
        return {"skipped": "cc kernel unavailable (no working compiler)"}
    if not cc_kernels.openmp_available():
        return {"skipped": "cc kernel built without OpenMP"}

    rng = np.random.default_rng(42)
    theta = rng.uniform(-np.pi, np.pi, n)
    rows = np.repeat(np.arange(n, dtype=np.int64), 2)
    cols = np.empty_like(rows)
    cols[0::2] = (np.arange(n) + 1) % n
    cols[1::2] = (np.arange(n) - 1) % n
    order = np.lexsort((cols, rows))
    rows, cols = rows[order], cols[order]
    offsets = cc_kernels.ring_offsets(rows, cols, n)
    rows32 = rows.astype(np.int32)
    cols32 = cols.astype(np.int32)
    kind, p0, p1 = 1, 1.0, 0.0  # bottleneck, sigma=1
    vp = 0.5

    def ring(t):
        return cc_kernels.ring_single(offsets, theta, np.empty(n),
                                      kind, p0, p1, vp, threads=t)

    def edges(t):
        return cc_kernels.fused_single(rows32, cols32, theta, np.empty(n),
                                       kind, p0, p1, vp, threads=t)

    out = {"n": n, "iters": iters, "threads": threads}
    for name, fn in (("ring", ring), ("edges", edges)):
        if not np.array_equal(fn(1), fn(threads)):
            raise AssertionError(
                f"cc {name} kernel: threads={threads} disagrees with serial")
        t1 = _time(lambda: [fn(1) for _ in range(iters)], repeats)
        tt = _time(lambda: [fn(threads) for _ in range(iters)], repeats)
        out[name] = {
            "threads1_s": t1,
            f"threads{threads}_s": tt,
            f"speedup_threads{threads}_vs_threads1": t1 / tt,
        }
    return out


def bench_queue_overhead(spec: ScenarioSpec, shard_members: int,
                         jobs: int, repeats: int) -> dict:
    """Durable-queue execution vs the plain process pool.

    Times a cold campaign through :func:`run_plan_queue` (SQLite queue,
    leases, heartbeats, spawned workers, result verification) against
    the same campaign on the plain ``ProcessPoolExecutor`` path, after
    asserting the two are bit-identical.  The gated ratio is the
    queue's *relative* cost — its crash-safety tax — which must not
    silently blow up as the queue grows features.
    """
    plan = compile_plan(spec, shard_members=shard_members)

    with tempfile.TemporaryDirectory(prefix="pom-bench-queue-") as d:
        rq = run_plan_queue(plan, os.path.join(d, "check", "q.db"),
                            jobs=jobs)
    rp = run_plan(plan, jobs=jobs)
    max_diff = max(
        float(np.abs(a.thetas - b.thetas).max())
        for a, b in zip(rp.members, rq.members)
    )
    if max_diff != 0.0:
        raise AssertionError(
            f"queue and pool runs disagree (max |diff| {max_diff:g})")

    pool_s = _time(lambda: run_plan(plan, jobs=jobs), repeats)

    def cold_queue():
        # a fresh queue+cache per sample: cold coordination, no resume
        with tempfile.TemporaryDirectory(prefix="pom-bench-queue-") as d:
            run_plan_queue(plan, os.path.join(d, "q.db"), jobs=jobs)

    queue_s = _time(cold_queue, repeats)
    return {
        "members": plan.n_members,
        "shards": plan.n_shards,
        "jobs": jobs,
        "pool_s": pool_s,
        "queue_s": queue_s,
        "speedup_queue_vs_pool": pool_s / queue_s,
        "max_abs_diff_vs_pool": max_diff,
    }


def bench_cache_replay(spec: ScenarioSpec, shard_members: int,
                       repeats: int) -> dict:
    """Cold solve-and-store vs warm pure-cache-hit replay."""
    plan = compile_plan(spec, shard_members=shard_members)
    with tempfile.TemporaryDirectory(prefix="pom-bench-cache-") as d:
        cache = ResultCache(d)
        t0 = time.perf_counter()
        cold = run_plan(plan, jobs=1, cache=cache)
        cold_s = time.perf_counter() - t0
        if cold.n_executed != plan.n_shards:
            raise AssertionError("cold run was not fully executed")

        warm = run_plan(plan, jobs=1, cache=cache)
        if warm.n_executed != 0:
            raise AssertionError(
                f"warm replay executed {warm.n_executed} shard(s); "
                "expected a pure cache hit")
        # Replays are milliseconds — always take a few samples so one
        # cold-page hiccup cannot poison the gated ratio.
        warm_s = _time(lambda: run_plan(plan, jobs=1, cache=cache),
                       max(repeats, 3))
        size = cache.store.size_bytes()
    return {
        "members": plan.n_members,
        "shards": plan.n_shards,
        "cold_solve_s": cold_s,
        "warm_replay_s": warm_s,
        "speedup_warm_replay_vs_cold": cold_s / warm_s,
        "cache_bytes": size,
    }


def bench_service_overhead(spec, shard_members: int, repeats: int) -> dict:
    """HTTP submit+fetch of a fully cached campaign vs direct cache read.

    The service's promise is that repeat queries cost a network
    round-trip, not a solve: with every shard cached, a submit
    short-circuits to ``done`` and a fetch streams the stored artefact.
    This leg measures that whole HTTP round-trip against the in-process
    equivalent (assemble from cache, encode to NPZ) — the gated ratio
    is the service tax per fully cached query, which must not silently
    blow up as endpoints grow features.
    """
    from repro.runs import collect_cached
    from repro.service import CampaignServer, ServiceClient

    plan = compile_plan(spec, shard_members=shard_members)
    with tempfile.TemporaryDirectory(prefix="pom-bench-svc-") as d:
        with CampaignServer(os.path.join(d, "q.db"),
                            workers=0) as server:
            client = ServiceClient(server.url)
            cache = server.service.cache
            run_plan(plan, jobs=1, cache=cache)

            first = client.submit(spec, shard_members=shard_members)
            if not first["cached"]:
                raise AssertionError(
                    "warmed submit was not a full cache hit")
            # Build and store the campaign artefact once; timed fetches
            # below stream it, exactly like repeat user queries.
            client.result_bytes(first["id"])

            def service_roundtrip():
                out = client.submit(spec, shard_members=shard_members)
                client.result_bytes(out["id"])

            def direct_read():
                collect_cached(plan, cache).npz_bytes()

            # Round-trips are milliseconds; always take a few samples.
            service_s = _time(service_roundtrip, max(repeats, 3))
            direct_s = _time(direct_read, max(repeats, 3))
    return {
        "members": plan.n_members,
        "shards": plan.n_shards,
        "service_s": service_s,
        "direct_s": direct_s,
        "speedup_service_vs_direct": direct_s / service_s,
    }


def streaming_campaign(n_ranks: int, n_seeds: int,
                       t_end: float) -> ScenarioSpec:
    """The streaming-metrics campaign: one declared series reduction."""
    return ScenarioSpec(
        name="bench-streaming",
        model={
            "topology": {"kind": "ring", "n": n_ranks,
                         "distances": [1, -1]},
            "potential": {"kind": "bottleneck", "sigma": 1.0},
            "t_comp": 0.9,
            "t_comm": 0.1,
        },
        t_end=t_end,
        solver={"method": "rk4"},
        initial={"kind": "normal", "std": 1e-3, "seed": 0},
        axes=[("seed", list(range(n_seeds)))],
        metrics=["order_parameter"],
    )


def bench_streaming(n_ranks: int, n_seeds: int, t_end: float,
                    repeats: int) -> dict:
    """Metric-only campaigns vs full-trajectory campaigns.

    The tentpole claim of the streaming layer: declaring ``metrics=``
    with ``trajectories="none"`` caches kilobyte-scale reductions
    instead of ``(R, n_t, N)`` stacks, so **cache bytes shrink by the
    oscillator count** (gated: ``speedup_cache_shrink`` >= 20x), warm
    replays touch far fewer bytes, and a fully cached service fetch
    streams a small artefact.  Bit-identity of the streamed metric
    against the full-trajectory run is asserted before anything is
    timed.
    """
    from repro.service import CampaignServer, ServiceClient

    full_spec = streaming_campaign(n_ranks, n_seeds, t_end)
    d = full_spec.to_dict()
    d["trajectories"] = "none"
    metric_spec = ScenarioSpec.from_dict(d)
    full_plan = compile_plan(full_spec)
    metric_plan = compile_plan(metric_spec)

    out: dict = {"members": full_plan.n_members, "n_ranks": n_ranks,
                 "t_end": t_end}
    with tempfile.TemporaryDirectory(prefix="pom-bench-stream-") as dtmp:
        full_cache = ResultCache(os.path.join(dtmp, "full"))
        metric_cache = ResultCache(os.path.join(dtmp, "metric"))

        t0 = time.perf_counter()
        rf = run_plan(full_plan, jobs=1, cache=full_cache)
        out["cold_full_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        rm = run_plan(metric_plan, jobs=1, cache=metric_cache)
        out["cold_metric_s"] = time.perf_counter() - t0

        for a, b in zip(rf.members, rm.members):
            if not np.array_equal(a.metrics["order_parameter"],
                                  b.metrics["order_parameter"]):
                raise AssertionError(
                    "streamed metric differs between capture modes")

        full_bytes = full_cache.store.size_bytes()
        metric_bytes = metric_cache.store.size_bytes()
        out["cache_bytes_full"] = full_bytes
        out["cache_bytes_metric"] = metric_bytes
        # The gated ratio: gate-able (speedup_ prefix) although it is a
        # size shrink, not a time ratio.
        out["speedup_cache_shrink"] = full_bytes / metric_bytes

        out["warm_replay_full_s"] = _time(
            lambda: run_plan(full_plan, jobs=1, cache=full_cache),
            max(repeats, 3))
        out["warm_replay_metric_s"] = _time(
            lambda: run_plan(metric_plan, jobs=1, cache=metric_cache),
            max(repeats, 3))

        with CampaignServer(os.path.join(dtmp, "q.db"),
                            workers=0) as server:
            client = ServiceClient(server.url)
            cache = server.service.cache
            run_plan(full_plan, jobs=1, cache=cache)
            run_plan(metric_plan, jobs=1, cache=cache)
            fid = client.submit(full_spec)["id"]
            mid = client.submit(metric_spec)["id"]
            # store both artefacts once; timed fetches stream them
            client.result_bytes(fid)
            client.result_bytes(mid)
            out["fetch_full_s"] = _time(
                lambda: client.result_bytes(fid), max(repeats, 3))
            out["fetch_metric_s"] = _time(
                lambda: client.result_bytes(mid), max(repeats, 3))
    return out


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--out", default="BENCH_runs.json",
                   help="output JSON path")
    p.add_argument("--quick", action="store_true",
                   help="smaller campaign for CI smoke jobs")
    p.add_argument("--jobs", type=int, default=4,
                   help="worker count for the multiprocess leg")
    p.add_argument("--threads", type=int, default=4,
                   help="thread count for the in-kernel scaling leg")
    args = p.parse_args(argv)

    if args.quick:
        n_sigmas, n_seeds, n_ranks, t_end = 4, 2, 24, 40.0
        shard_members, repeats = 2, 1
        # Same N as the full run: the thread-scaling floor is gated on
        # the quick artefact, and at N ~ 4k the OpenMP fork/join cost
        # still rivals the row work.
        kernel_n, kernel_iters = 10_000, 50
        stream_n, stream_seeds, stream_t_end = 128, 4, 30.0
    else:
        n_sigmas, n_seeds, n_ranks, t_end = 8, 2, 32, 120.0
        shard_members, repeats = 2, 3
        kernel_n, kernel_iters = 10_000, 200
        stream_n, stream_seeds, stream_t_end = 256, 4, 60.0

    spec = campaign(n_sigmas, n_seeds, n_ranks, t_end)
    result = {
        "benchmark": "runs",
        "quick": args.quick,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "sharded_sweep": bench_sharded_jobs(spec, shard_members, args.jobs,
                                            repeats),
        "queue_overhead": bench_queue_overhead(spec, shard_members,
                                               args.jobs, repeats),
        "cache_replay": bench_cache_replay(spec, shard_members, repeats),
        "service_overhead": bench_service_overhead(spec, shard_members,
                                                   repeats),
        "kernel_threads": bench_kernel_threads(kernel_n, kernel_iters,
                                               max(repeats, 3),
                                               args.threads),
        "streaming": bench_streaming(stream_n, stream_seeds, stream_t_end,
                                     repeats),
    }

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    s = result["sharded_sweep"]
    jobs = s["jobs"]
    print(f"sharded sweep {s['members']} members / {s['shards']} shards: "
          f"jobs=1 {s['jobs1_s']:.2f} s, jobs={jobs} "
          f"{s[f'jobs{jobs}_s']:.2f} s "
          f"=> {s[f'speedup_jobs{jobs}_vs_jobs1']:.2f}x "
          f"(max |diff|: {s['max_abs_diff_vs_jobs1']:g}, "
          f"transport={s['transport']}, "
          f"solve {s[f'jobs{jobs}_solve_s']:.2f} s + transport "
          f"{s[f'jobs{jobs}_transport_s']:.3f} s)")
    k = result["kernel_threads"]
    if "skipped" in k:
        print(f"kernel threads: skipped ({k['skipped']})")
    else:
        t = k["threads"]
        for name in ("ring", "edges"):
            kk = k[name]
            print(f"kernel threads ({name}, N={k['n']}): "
                  f"threads=1 {kk['threads1_s']:.3f} s, threads={t} "
                  f"{kk[f'threads{t}_s']:.3f} s => "
                  f"{kk[f'speedup_threads{t}_vs_threads1']:.2f}x")
    q = result["queue_overhead"]
    print(f"queue overhead ({q['shards']} shards, jobs={q['jobs']}): "
          f"pool {q['pool_s']:.2f} s, queue {q['queue_s']:.2f} s "
          f"=> {q['speedup_queue_vs_pool']:.2f}x "
          f"(max |diff|: {q['max_abs_diff_vs_pool']:g})")
    c = result["cache_replay"]
    print(f"cache replay: cold {c['cold_solve_s']:.2f} s, warm "
          f"{c['warm_replay_s']:.4f} s "
          f"=> {c['speedup_warm_replay_vs_cold']:.0f}x "
          f"({c['cache_bytes'] / 1e6:.1f} MB stored)")
    v = result["service_overhead"]
    print(f"service overhead (fully cached, {v['shards']} shards): "
          f"HTTP submit+fetch {v['service_s']:.4f} s, direct cache read "
          f"{v['direct_s']:.4f} s "
          f"=> {v['speedup_service_vs_direct']:.2f}x")
    st = result["streaming"]
    print(f"streaming metrics (N={st['n_ranks']}, {st['members']} members): "
          f"cache {st['cache_bytes_full'] / 1e6:.1f} MB full vs "
          f"{st['cache_bytes_metric'] / 1e3:.1f} kB metric-only "
          f"=> {st['speedup_cache_shrink']:.0f}x shrink; warm replay "
          f"{st['warm_replay_full_s']:.4f} s vs "
          f"{st['warm_replay_metric_s']:.4f} s; service fetch "
          f"{st['fetch_full_s']:.4f} s vs {st['fetch_metric_s']:.4f} s")
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
