"""Run-orchestration benchmark — JSON artefact writer.

Measures the two claims of the campaign layer (:mod:`repro.runs`):

1. **Sharded multiprocess execution** — a fixed-step sigma x seed
   campaign compiled into bounded shards and executed with ``jobs=1``
   vs ``jobs=4``.  Fixed-step members are arithmetically independent,
   so the two runs are *bit-for-bit identical* (asserted here) and the
   speedup is pure orchestration win.  (On single-core CI runners the
   ratio hovers around 1; the regression gate floors it well below
   that, so the gate catches orchestration overhead blow-ups, not
   missing cores.)
2. **Warm-cache replay** — the same campaign against a fresh
   content-addressed cache: the cold run solves and stores every
   shard, the warm run must be a pure cache hit (zero solves —
   asserted), replaying in milliseconds.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_runs.py --out BENCH_runs.json

``--quick`` shrinks the campaign for CI smoke jobs.
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from statistics import median

import numpy as np

from repro.runs import ScenarioSpec, ResultCache, compile_plan, run_plan


def _time(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(median(times))


def campaign(n_sigmas: int, n_seeds: int, n_ranks: int,
             t_end: float) -> ScenarioSpec:
    """The benchmark campaign: a bottleneck-horizon x seed grid (rk4)."""
    return ScenarioSpec(
        name="bench-runs",
        model={
            "topology": {"kind": "ring", "n": n_ranks,
                         "distances": [1, -1]},
            "potential": {"kind": "bottleneck", "sigma": 1.0},
            "t_comp": 0.9,
            "t_comm": 0.1,
            "local_noise": {"kind": "gaussian", "std": 0.01,
                            "refresh": 0.5},
        },
        t_end=t_end,
        solver={"method": "rk4"},
        initial={"kind": "normal", "std": 1e-3, "seed": 0},
        axes=[
            ("potential.sigma",
             np.linspace(0.5, 2.5, n_sigmas).tolist()),
            ("seed", list(range(n_seeds))),
        ],
    )


def bench_sharded_jobs(spec: ScenarioSpec, shard_members: int,
                       jobs: int, repeats: int) -> dict:
    """jobs=1 vs jobs=N wall-clock on the same shard decomposition."""
    plan = compile_plan(spec, shard_members=shard_members)

    r1 = run_plan(plan, jobs=1)
    rn = run_plan(plan, jobs=jobs)
    max_diff = max(
        float(np.abs(a.thetas - b.thetas).max())
        for a, b in zip(r1.members, rn.members)
    )
    if max_diff != 0.0:
        raise AssertionError(
            f"jobs=1 and jobs={jobs} disagree (max |diff| {max_diff:g})")

    t1 = _time(lambda: run_plan(plan, jobs=1), repeats)
    tn = _time(lambda: run_plan(plan, jobs=jobs), repeats)
    return {
        "members": plan.n_members,
        "shards": plan.n_shards,
        "shard_members": shard_members,
        "jobs": jobs,
        "jobs1_s": t1,
        f"jobs{jobs}_s": tn,
        f"speedup_jobs{jobs}_vs_jobs1": t1 / tn,
        "max_abs_diff_vs_jobs1": max_diff,
    }


def bench_cache_replay(spec: ScenarioSpec, shard_members: int,
                       repeats: int) -> dict:
    """Cold solve-and-store vs warm pure-cache-hit replay."""
    plan = compile_plan(spec, shard_members=shard_members)
    with tempfile.TemporaryDirectory(prefix="pom-bench-cache-") as d:
        cache = ResultCache(d)
        t0 = time.perf_counter()
        cold = run_plan(plan, jobs=1, cache=cache)
        cold_s = time.perf_counter() - t0
        if cold.n_executed != plan.n_shards:
            raise AssertionError("cold run was not fully executed")

        warm = run_plan(plan, jobs=1, cache=cache)
        if warm.n_executed != 0:
            raise AssertionError(
                f"warm replay executed {warm.n_executed} shard(s); "
                "expected a pure cache hit")
        # Replays are milliseconds — always take a few samples so one
        # cold-page hiccup cannot poison the gated ratio.
        warm_s = _time(lambda: run_plan(plan, jobs=1, cache=cache),
                       max(repeats, 3))
        size = cache.store.size_bytes()
    return {
        "members": plan.n_members,
        "shards": plan.n_shards,
        "cold_solve_s": cold_s,
        "warm_replay_s": warm_s,
        "speedup_warm_replay_vs_cold": cold_s / warm_s,
        "cache_bytes": size,
    }


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--out", default="BENCH_runs.json",
                   help="output JSON path")
    p.add_argument("--quick", action="store_true",
                   help="smaller campaign for CI smoke jobs")
    p.add_argument("--jobs", type=int, default=4,
                   help="worker count for the multiprocess leg")
    args = p.parse_args(argv)

    if args.quick:
        n_sigmas, n_seeds, n_ranks, t_end = 4, 2, 24, 40.0
        shard_members, repeats = 2, 1
    else:
        n_sigmas, n_seeds, n_ranks, t_end = 8, 2, 32, 120.0
        shard_members, repeats = 2, 3

    spec = campaign(n_sigmas, n_seeds, n_ranks, t_end)
    result = {
        "benchmark": "runs",
        "quick": args.quick,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "sharded_sweep": bench_sharded_jobs(spec, shard_members, args.jobs,
                                            repeats),
        "cache_replay": bench_cache_replay(spec, shard_members, repeats),
    }

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    s = result["sharded_sweep"]
    jobs = s["jobs"]
    print(f"sharded sweep {s['members']} members / {s['shards']} shards: "
          f"jobs=1 {s['jobs1_s']:.2f} s, jobs={jobs} "
          f"{s[f'jobs{jobs}_s']:.2f} s "
          f"=> {s[f'speedup_jobs{jobs}_vs_jobs1']:.2f}x "
          f"(max |diff|: {s['max_abs_diff_vs_jobs1']:g})")
    c = result["cache_replay"]
    print(f"cache replay: cold {c['cold_solve_s']:.2f} s, warm "
          f"{c['warm_replay_s']:.4f} s "
          f"=> {c['speedup_warm_replay_vs_cold']:.0f}x "
          f"({c['cache_bytes'] / 1e6:.1f} MB stored)")
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
