"""repro — Physical Oscillator Model for Supercomputing (POM).

A complete, from-scratch Python reproduction of

    Ayesha Afzal, Georg Hager, Gerhard Wellein:
    "Physical Oscillator Model for Supercomputing", SC-W 2023
    (arXiv:2310.05701).

Packages
--------
:mod:`repro.core`
    The paper's contribution: the coupled-oscillator model (Eq. 2) with
    scalable/bottlenecked interaction potentials, sparse communication
    topologies, the beta*kappa coupling rule, and both noise channels.
:mod:`repro.backends`
    Pluggable RHS compute backends: dense-matrix reference, O(E)
    sparse edge-list kernels, and batched ensemble evaluation.
:mod:`repro.integrate`
    From-scratch ODE/SDE/DDE solvers (Dormand-Prince 5(4), RK4, Euler,
    Euler-Maruyama, delay-history buffers); shape-agnostic, so whole
    seed ensembles integrate as stacked ``(R, N)`` super-states.
:mod:`repro.runs`
    Run orchestration: declarative :class:`~repro.runs.ScenarioSpec`
    campaigns, a planner fusing grid points into batched solves, a
    sharded multiprocess executor, and a content-addressed result
    cache with resume.
:mod:`repro.simulator`
    A discrete-event MPI cluster simulator (the validation substrate
    replacing the paper's Meggie runs): Irecv/Send/Waitall semantics,
    eager/rendezvous protocols, per-socket memory-bandwidth arbitration,
    ITAC-like traces.
:mod:`repro.metrics`
    Order parameters, phase spreads, sync/desync classification,
    idle-wave speed fits.
:mod:`repro.analysis`
    Trace phenomenology and model-vs-simulator comparison.
:mod:`repro.experiments`
    One module per paper artefact (Fig. 1(a), Fig. 1(b), Fig. 2,
    parameter sweeps) — each regenerates the corresponding series.
:mod:`repro.viz`
    ASCII renderers and CSV/JSON exporters.

Quickstart
----------
>>> from repro.core import (PhysicalOscillatorModel, TanhPotential,
...                         ring, simulate, OneOffDelay)
>>> model = PhysicalOscillatorModel(
...     topology=ring(16, (1, -1)), potential=TanhPotential(),
...     t_comp=0.9, t_comm=0.1,
...     delays=(OneOffDelay(rank=4, t_start=5.0, delay=2.0),))
>>> traj = simulate(model, t_end=60.0, seed=0)
>>> traj.lagger_normalized().shape[1]
16
"""

from . import analysis, backends, core, integrate, metrics, runs, simulator

__version__ = "1.2.0"

__all__ = ["analysis", "backends", "core", "integrate", "metrics", "runs",
           "simulator", "__version__"]
