"""Pluggable RHS compute backends for the oscillator model.

A backend compiles a frozen :class:`~repro.core.model.RealizedModel`
into an evaluator of the Eq. 2 right-hand side.  Three implementations:

* :class:`DenseBackend` — the O(N^2) dense-matrix reference (the
  behaviour of the original implementation and of the paper's MATLAB
  artifact); optimal for genuinely dense topologies.
* :class:`SparseBackend` — O(E) edge-list kernel; evaluates the
  potential only on actual edges and accumulates with a segment sum.
  Orders of magnitude faster for the paper's nearest-neighbour
  topologies at scale.
* :class:`BatchedBackend` — evaluates R stacked realisations ``(R, N)``
  in one vectorised call so a whole seed ensemble integrates as a
  single super-state (used by ``run_ensemble(batched=True)``).
* :class:`HeteroBatchedBackend` — the heterogeneous generalisation:
  members may differ in ``v_p``, period, potential, and delay schedule
  (only the topology is shared), so a whole *parameter grid* integrates
  as one super-state (used by ``grid_sweep(..., batched=True)`` and
  :func:`repro.core.simulation.simulate_grid`).

Selection
---------
``make_backend(realized, "auto")`` picks by topology density: the
edge-list kernel wins whenever fewer than ``SPARSE_DENSITY_THRESHOLD``
of the matrix entries are edges.  ``"dense"`` / ``"sparse"`` force a
choice (the declarative knob is ``PhysicalOscillatorModel.backend``, and
``simulate(..., backend=...)`` / ``pom model --backend`` override it per
run).

Batched (multi-member) backends have their own registry:
``make_batched_backend(members, "auto")`` picks the strict homogeneous
:class:`BatchedBackend` when all members realise one declarative model
and falls back to :class:`HeteroBatchedBackend` otherwise.

Orthogonal to the backend choice, the ``kernel=`` knob selects the
implementation of the inner coupling loop for the edge-list backends
(``"auto"`` | ``"numpy"`` | ``"tiled"`` | ``"numba"`` | ``"cc"``, see
:mod:`repro.kernels`); it threads through ``make_backend`` /
``make_batched_backend``, the ``simulate*`` drivers, and the CLI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..kernels import available_kernels, normalize_kernel_name
from .base import RHSBackend, frequency_from_period
from .batched import BatchedBackend
from .dense import DenseBackend
from .hetero import HeteroBatchedBackend
from .sparse import SparseBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..core.model import RealizedModel

__all__ = [
    "RHSBackend",
    "DenseBackend",
    "SparseBackend",
    "BatchedBackend",
    "HeteroBatchedBackend",
    "frequency_from_period",
    "BACKENDS",
    "BATCHED_BACKENDS",
    "SPARSE_DENSITY_THRESHOLD",
    "available_backends",
    "available_kernels",
    "auto_backend_name",
    "normalize_backend_name",
    "normalize_kernel_name",
    "make_backend",
    "make_batched_backend",
]

#: registry of single-state backends selectable by name
BACKENDS: dict[str, type[RHSBackend]] = {
    DenseBackend.name: DenseBackend,
    SparseBackend.name: SparseBackend,
}

#: registry of multi-member (stacked super-state) backends
BATCHED_BACKENDS: dict[str, type[HeteroBatchedBackend]] = {
    BatchedBackend.name: BatchedBackend,
    HeteroBatchedBackend.name: HeteroBatchedBackend,
}

#: edge fraction below which "auto" prefers the edge-list kernel
SPARSE_DENSITY_THRESHOLD = 0.25


def available_backends() -> tuple[str, ...]:
    """Names accepted by the ``backend=`` knobs (plus ``"auto"``)."""
    return ("auto",) + tuple(sorted(BACKENDS))


def normalize_backend_name(name: str | None) -> str:
    """Validate a ``backend=`` knob value; returns the canonical key.

    The single source of the "unknown backend" error — used by the
    declarative model field, the realisation-time override, and the
    compile step, so they can never drift apart.
    """
    key = (name or "auto").strip().lower()
    if key != "auto" and key not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    return key


def auto_backend_name(topology) -> str:
    """Density-based choice: sparse topologies get the edge-list kernel."""
    return (SparseBackend.name
            if topology.density <= SPARSE_DENSITY_THRESHOLD
            else DenseBackend.name)


def make_backend(realized: "RealizedModel", name: str = "auto",
                 kernel: str | None = "auto",
                 threads: int | None = None) -> RHSBackend:
    """Compile ``realized`` with the named (or auto-selected) backend.

    ``kernel`` selects the coupling-loop implementation for backends
    that support it (see :mod:`repro.kernels`).  An explicit non-auto
    kernel is itself a request for the edge-list path, so backend
    ``"auto"`` then resolves to sparse regardless of density; only an
    *explicit* kernel-less backend (dense) combined with an explicit
    kernel is an error.  ``threads`` (default: the ``POM_NUM_THREADS``
    environment variable, else 1) sets the in-kernel thread count for
    the compiled kernels; like ``kernel``, an explicit count steers
    backend ``"auto"`` onto the edge-list path.
    """
    key = normalize_backend_name(name)
    if key == "auto":
        if normalize_kernel_name(kernel) != "auto" or threads is not None:
            key = SparseBackend.name
        else:
            key = auto_backend_name(realized.model.topology)
    cls = BACKENDS[key]
    if cls.supports_kernels:
        return cls(realized, kernel=kernel, threads=threads)
    if normalize_kernel_name(kernel) != "auto":
        raise ValueError(
            f"backend {key!r} does not support the kernel= knob "
            f"(got kernel={kernel!r}); use the sparse backend"
        )
    if threads is not None:
        raise ValueError(
            f"backend {key!r} does not support the threads= knob "
            f"(got threads={threads!r}); use the sparse backend"
        )
    return cls(realized)


def make_batched_backend(members: Sequence["RealizedModel"],
                         name: str = "auto",
                         kernel: str | None = "auto",
                         threads: int | None = None) -> HeteroBatchedBackend:
    """Compile a stack of realisations into one multi-member backend.

    ``"auto"`` prefers the strict homogeneous :class:`BatchedBackend`
    (its validation guarantees every member realises the same
    declarative model) and falls back to the general
    :class:`HeteroBatchedBackend` when the members form a parameter
    grid.  Explicit names force a choice.  ``kernel`` selects the
    coupling-loop implementation and ``threads`` the in-kernel thread
    count (both batched backends support them).
    """
    if name == "auto":
        try:
            return BatchedBackend(members, kernel=kernel, threads=threads)
        except ValueError:
            if len(members) == 0:
                raise
            return HeteroBatchedBackend(members, kernel=kernel,
                                        threads=threads)
    if name not in BATCHED_BACKENDS:
        raise ValueError(
            f"unknown batched backend {name!r}; available: "
            f"auto, {', '.join(sorted(BATCHED_BACKENDS))}"
        )
    return BATCHED_BACKENDS[name](members, kernel=kernel, threads=threads)
