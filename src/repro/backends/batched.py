"""Batched ensemble RHS backend: R stacked realisations in one call.

Seed-ensemble statistics (``run_ensemble``) integrate the *same*
declarative model under R different noise realisations.  Doing that one
seed at a time costs R full solver runs of Python-level overhead.  This
backend stacks the R member states into a single ``(R, N)`` super-state
and evaluates every member's RHS in one vectorised pass:

* the coupling term runs over the shared edge list with a flattened
  segment sum — one ``np.bincount`` over ``R*E`` contributions,
* the intrinsic frequencies read all R frozen zeta realisations from a
  single stacked ``(n_intervals, R, N)`` array when the members share a
  refresh grid (they always do when realised from one declarative model).

Because the accumulation order per member is identical to the sparse
backend's, each row of the batched result matches the corresponding
single-member evaluation to machine precision; a whole ensemble can thus
be integrated as one super-state by any shape-agnostic solver (see
:func:`repro.core.simulation.simulate_batched`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .base import frequency_from_period

if TYPE_CHECKING:  # pragma: no cover
    from ..core.model import RealizedModel
    from ..integrate.history import HistoryBuffer

__all__ = ["BatchedBackend"]


class BatchedBackend:
    """Vectorised RHS over a stack of realisations of one model.

    Parameters
    ----------
    members:
        Frozen realisations, all of the same declarative model (same
        topology, potential, and coupling strength — only the noise
        realisations differ).  States are ``(R, N)`` arrays with one row
        per member.
    """

    name = "batched"

    def __init__(self, members: Sequence["RealizedModel"]) -> None:
        if len(members) == 0:
            raise ValueError("need at least one ensemble member")
        first = members[0].model
        for m in members[1:]:
            mm = m.model
            if mm.n != first.n:
                raise ValueError("ensemble members disagree on N")
            if mm.v_p != first.v_p:
                raise ValueError("ensemble members disagree on v_p")
            if mm.period != first.period:
                raise ValueError("ensemble members disagree on the period")
            if mm.topology is not first.topology and not np.array_equal(
                    mm.topology.matrix, first.topology.matrix):
                raise ValueError("ensemble members disagree on the topology")
            if mm.potential is not first.potential and (
                    mm.potential.describe() != first.potential.describe()):
                raise ValueError("ensemble members disagree on the potential")
            # intrinsic_frequency broadcasts member 0's (deterministic)
            # one-off delay schedule, so all members must share it.
            if m.delay_schedule.delays != members[0].delay_schedule.delays:
                raise ValueError(
                    "ensemble members disagree on the one-off delay schedule")
        self.members = tuple(members)
        self.model = first
        self._n = first.n
        self._r = len(members)
        self._period = first.period
        self._vp_over_n = first.v_p / first.n
        self._rows, self._cols = first.topology.edge_list()
        # Flattened segment indices for the one-shot bincount: member r's
        # row i accumulates at r*N + i.
        offsets = np.arange(self._r, dtype=np.intp) * self._n
        self._flat_rows = (offsets[:, None] + self._rows[None, :]).ravel()
        self._zeta_stack = self._stack_zeta()
        self._has_delays = any(m.has_delays for m in self.members)
        self._sched = self.members[0].delay_schedule
        self._sched_empty = len(self._sched.delays) == 0

    def _stack_zeta(self) -> np.ndarray | None:
        """Stack member zeta realisations when they share a refresh grid."""
        procs = [m.zeta for m in self.members]
        z0 = procs[0]
        if all(z.dt == z0.dt and z.t0 == z0.t0
               and z.values.shape == z0.values.shape for z in procs):
            return np.stack([z.values for z in procs], axis=1)  # (m, R, N)
        return None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of oscillators per member."""
        return self._n

    @property
    def n_members(self) -> int:
        """Ensemble size R."""
        return self._r

    @property
    def has_delays(self) -> bool:
        """True if any member carries interaction delays (cached)."""
        return self._has_delays

    def max_delay(self) -> float:
        """History horizon needed by the DDE integrator."""
        return max(m.max_delay() for m in self.members)

    # ------------------------------------------------------------------
    def intrinsic_frequency(self, t: float) -> np.ndarray:
        """Stacked per-process frequencies, shape ``(R, N)``."""
        if self._zeta_stack is not None:
            k = int(np.floor((t - self.members[0].zeta.t0)
                             / self.members[0].zeta.dt))
            k = min(max(k, 0), self._zeta_stack.shape[0] - 1)
            zeta = self._zeta_stack[k]                       # (R, N)
        else:
            zeta = np.stack([m.zeta(t) for m in self.members])
        denom = self._period + zeta
        if not self._sched_empty:
            # The one-off delay schedule is deterministic and identical
            # across members (it derives from the declarative model
            # alone), so it is evaluated once and broadcast.
            denom = denom + self._sched(t, self._n)[None, :]
        return frequency_from_period(denom)

    def coupling(self, t: float, theta: np.ndarray,
                 history: "HistoryBuffer | None" = None) -> np.ndarray:
        """Stacked interaction terms for the super-state ``theta (R, N)``."""
        rows, cols = self._rows, self._cols
        if self._vp_over_n == 0.0 or rows.size == 0:
            return np.zeros((self._r, self._n))

        if not self.has_delays or history is None:
            d_edge = theta[:, cols] - theta[:, rows]         # (R, E)
            v_edge = np.asarray(self.model.potential(d_edge), dtype=float)
            acc = np.bincount(self._flat_rows, weights=v_edge.ravel(),
                              minlength=self._r * self._n)
            return self._vp_over_n * acc.reshape(self._r, self._n)

        # Delayed path: the history holds (R, N) super-states; each
        # member patches its own edge subset per distinct delay level.
        out = np.empty((self._r, self._n))
        for r, m in enumerate(self.members):
            th = theta[r]
            d_edge = th[cols] - th[rows]
            if m.has_delays:
                tau_edge = m.tau(t)[rows, cols]
                for v in np.unique(tau_edge):
                    if v == 0.0:
                        continue
                    delayed = history(t - float(v))[r]
                    sel = tau_edge == v
                    d_edge[sel] = delayed[cols[sel]] - th[rows[sel]]
            v_edge = np.asarray(self.model.potential(d_edge), dtype=float)
            out[r] = np.bincount(rows, weights=v_edge, minlength=self._n)
        return self._vp_over_n * out

    def rhs(self, t: float, theta: np.ndarray,
            history: "HistoryBuffer | None" = None) -> np.ndarray:
        """Full stacked right-hand side, shape ``(R, N)``."""
        return self.intrinsic_frequency(t) + self.coupling(t, theta, history)

    def make_ode_rhs(self):
        """Closure ``f(t, theta)`` for ODE solvers (requires no delays)."""
        if self.has_delays:
            raise ValueError(
                "ensemble has interaction delays; use make_dde_rhs with a history"
            )
        return lambda t, y: self.rhs(t, y, None)

    def make_dde_rhs(self, history: "HistoryBuffer"):
        """Closure ``f(t, theta)`` that reads delayed states from ``history``."""
        return lambda t, y: self.rhs(t, y, history)

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {"backend": self.name, "n": self._n, "members": self._r}
