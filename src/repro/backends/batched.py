"""Batched ensemble RHS backend: R stacked realisations in one call.

Seed-ensemble statistics (``run_ensemble``) integrate the *same*
declarative model under R different noise realisations.  Doing that one
seed at a time costs R full solver runs of Python-level overhead.  This
backend stacks the R member states into a single ``(R, N)`` super-state
and evaluates every member's RHS in one vectorised pass:

* the coupling term runs over the shared edge list with a flattened
  segment sum — one ``np.bincount`` over ``R*E`` contributions,
* the intrinsic frequencies read all R frozen zeta realisations from a
  single stacked ``(n_intervals, R, N)`` array when the members share a
  refresh grid (they always do when realised from one declarative model).

Because the accumulation order per member is identical to the sparse
backend's, each row of the batched result matches the corresponding
single-member evaluation to machine precision; a whole ensemble can thus
be integrated as one super-state by any shape-agnostic solver (see
:func:`repro.core.simulation.simulate_batched`).

The kernels live in :class:`~repro.backends.hetero.HeteroBatchedBackend`
(which additionally supports per-member parameters for grid sweeps);
this subclass pins down the *homogeneous* contract: all members must
realise one declarative model, and mismatches fail loudly instead of
batching silently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .hetero import HeteroBatchedBackend, same_topology

if TYPE_CHECKING:  # pragma: no cover
    from ..core.model import RealizedModel

__all__ = ["BatchedBackend"]


class BatchedBackend(HeteroBatchedBackend):
    """Vectorised RHS over a stack of realisations of one model.

    Parameters
    ----------
    members:
        Frozen realisations, all of the same declarative model (same
        topology, potential, coupling strength, and delay schedule —
        only the noise realisations differ).  States are ``(R, N)``
        arrays with one row per member.  Use
        :class:`~repro.backends.hetero.HeteroBatchedBackend` when the
        members are *different* models (a parameter grid).
    """

    name = "batched"

    def __init__(self, members: Sequence["RealizedModel"],
                 kernel: str | None = "auto",
                 threads: int | None = None) -> None:
        if len(members) == 0:
            raise ValueError("need at least one ensemble member")
        first = members[0].model
        for m in members[1:]:
            mm = m.model
            if mm.n != first.n:
                raise ValueError("ensemble members disagree on N")
            if mm.v_p != first.v_p:
                raise ValueError("ensemble members disagree on v_p")
            if mm.period != first.period:
                raise ValueError("ensemble members disagree on the period")
            # HeteroBatchedBackend accepts same-N mixed topologies (a
            # machine-design sweep); the homogeneous ensemble contract
            # does not — fail loudly instead of batching silently.
            if not same_topology(mm.topology, first.topology):
                raise ValueError("ensemble members disagree on the topology")
            if mm.potential is not first.potential and (
                    mm.potential.describe() != first.potential.describe()):
                raise ValueError("ensemble members disagree on the potential")
            if m.delay_schedule.delays != members[0].delay_schedule.delays:
                raise ValueError(
                    "ensemble members disagree on the one-off delay schedule")
        super().__init__(members, kernel=kernel, threads=threads)
