"""Sparse edge-list RHS backend — O(E) instead of O(N^2).

The paper's topologies are extremely sparse (the nearest-neighbour ring
has 2 edges per row), so materialising the full phase-difference matrix
wastes almost all the work.  This backend walks the cached edge list of
the topology: it evaluates ``V(theta_j - theta_i)`` only on actual edges
and accumulates the per-row sums with a segment sum (``np.bincount`` over
the row indices, which adds contributions in the same row-major order as
the dense row sum, so results agree to machine precision).

The delayed (DDE) path is also edge-native: the per-edge delay vector
``tau_e`` is gathered once, and each distinct delay level patches only
its own edge subset — no dense masks, no duplicated index computation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .base import RHSBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..core.model import RealizedModel
    from ..integrate.history import HistoryBuffer

__all__ = ["SparseBackend"]


class SparseBackend(RHSBackend):
    """Edge-list coupling kernel: O(E) time and memory per evaluation."""

    name = "sparse"

    def __init__(self, realized: "RealizedModel") -> None:
        super().__init__(realized)
        self._rows, self._cols = self.model.topology.edge_list()

    def coupling(self, t: float, theta: np.ndarray,
                 history: "HistoryBuffer | None" = None) -> np.ndarray:
        rows, cols = self._rows, self._cols
        if self._vp_over_n == 0.0 or rows.size == 0:
            return np.zeros(self._n)

        d_edge = theta[cols] - theta[rows]             # (E,)
        if self.realized.has_delays and history is not None:
            tau_edge = self.realized.tau(t)[rows, cols]
            for v in np.unique(tau_edge):
                if v == 0.0:
                    continue
                delayed = history(t - float(v))
                sel = tau_edge == v
                d_edge[sel] = delayed[cols[sel]] - theta[rows[sel]]

        v_edge = np.asarray(self.model.potential(d_edge), dtype=float)
        acc = np.bincount(rows, weights=v_edge, minlength=self._n)
        return self._vp_over_n * acc
