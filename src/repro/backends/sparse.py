"""Sparse edge-list RHS backend — O(E) instead of O(N^2).

The paper's topologies are extremely sparse (the nearest-neighbour ring
has 2 edges per row), so materialising the full phase-difference matrix
wastes almost all the work.  This backend walks the cached edge list of
the topology: it evaluates ``V(theta_j - theta_i)`` only on actual edges
and accumulates the per-row sums with a segment sum (``np.bincount`` over
the row indices, which adds contributions in the same row-major order as
the dense row sum, so results agree to machine precision).

The inner coupling loop is delegated to a selectable *kernel*
(:mod:`repro.kernels`): the plain NumPy segment sum (``"numpy"``), the
CSR-tiled cache-blocked variant (``"tiled"``), or a fused
gather-potential-scatter kernel compiled with numba (``"numba"``) or the
system C compiler (``"cc"``).  ``"auto"`` picks the fastest available.

The delayed (DDE) path is edge-native and always uses the NumPy kernel:
the per-edge delay vector ``tau_e`` is gathered once, and each distinct
delay level patches only its own edge subset — no dense masks, no
duplicated index computation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .. import kernels
from ..kernels import cc as cc_kernels
from ..kernels import numba_kernels
from .base import RHSBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..core.model import RealizedModel
    from ..integrate.history import HistoryBuffer

__all__ = ["SparseBackend"]


class SparseBackend(RHSBackend):
    """Edge-list coupling kernel: O(E) time and memory per evaluation."""

    name = "sparse"
    supports_kernels = True

    def __init__(self, realized: "RealizedModel",
                 kernel: str | None = "auto",
                 threads: int | None = None) -> None:
        super().__init__(realized)
        self._rows, self._cols = self.model.topology.edge_list()
        pot = self.model.potential
        coeffs = pot.kernel_coefficients()
        self.kernel = kernels.resolve_kernel(
            kernel, has_coefficients=coeffs is not None,
            n_edges=self._rows.size)
        self.threads = kernels.resolve_threads(threads)
        self._coeffs = coeffs
        self._tiled = None
        self._rows32 = self._cols32 = None
        if self.kernel == "tiled":
            self._tiled = kernels.TiledSingleCoupling(
                self.model.topology, pot, self._vp_over_n)
        elif self.kernel in ("cc", "numba"):
            self._rows32 = np.ascontiguousarray(self._rows, dtype=np.int32)
            self._cols32 = np.ascontiguousarray(self._cols, dtype=np.int32)
            # Distance rings (the paper's halo exchanges) additionally
            # drop the gathers/scatters for contiguous shifted passes —
            # both compiled kernels carry the specialisation; 2-D tori
            # get the column-ring + per-row halo decomposition.
            self._ring_offsets = cc_kernels.ring_offsets(
                self._rows, self._cols, self._n)
            self._torus_halo = None
            if self._ring_offsets is None:
                self._torus_halo = cc_kernels.torus_halo(
                    self._rows, self._cols, self._n)

    def _fused_coupling(self, theta: np.ndarray) -> np.ndarray:
        kind, p0, p1 = self._coeffs
        theta = np.ascontiguousarray(theta, dtype=float)
        mod = cc_kernels if self.kernel == "cc" else numba_kernels
        if self._ring_offsets is not None:
            return mod.ring_single(self._ring_offsets, theta,
                                   np.empty(self._n), kind, p0, p1,
                                   self._vp_over_n, threads=self.threads)
        if self._torus_halo is not None:
            return mod.torus_single(self._torus_halo, theta,
                                    np.empty(self._n), kind, p0, p1,
                                    self._vp_over_n, threads=self.threads)
        return mod.fused_single(self._rows32, self._cols32, theta,
                                np.empty(self._n), kind, p0, p1,
                                self._vp_over_n, threads=self.threads)

    def coupling(self, t: float, theta: np.ndarray,
                 history: "HistoryBuffer | None" = None) -> np.ndarray:
        rows, cols = self._rows, self._cols
        if self._vp_over_n == 0.0 or rows.size == 0:
            return np.zeros(self._n)

        delayed_path = self.realized.has_delays and history is not None
        if not delayed_path:
            if self._tiled is not None:
                return self._tiled(theta)
            if self._rows32 is not None:
                return self._fused_coupling(theta)

        d_edge = theta[cols] - theta[rows]             # (E,)
        if delayed_path:
            tau_edge = self.realized.tau(t)[rows, cols]
            for v in np.unique(tau_edge):
                if v == 0.0:
                    continue
                delayed = history(t - float(v))
                sel = tau_edge == v
                d_edge[sel] = delayed[cols[sel]] - theta[rows[sel]]

        v_edge = np.asarray(self.model.potential(d_edge), dtype=float)
        acc = np.bincount(rows, weights=v_edge, minlength=self._n)
        return self._vp_over_n * acc

    def describe(self) -> dict:
        d = super().describe()
        d["kernel"] = self.kernel
        d["threads"] = self.threads
        return d
