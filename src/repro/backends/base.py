"""Common machinery for the RHS compute backends.

A *backend* compiles a :class:`~repro.core.model.RealizedModel` into an
evaluator for the right-hand side of Eq. 2,

    dtheta_i/dt = 2*pi/(T + zeta_i(t) + ...)                (intrinsic)
                + (v_p/N) * sum_j T_ij V(theta_j^(del) - theta_i),

splitting the work into the *intrinsic frequency* (noise channels, shared
by every backend) and the *coupling term* (topology-dependent — this is
where the backends differ: dense matrix algebra vs. edge-list kernels vs.
batched super-states).

Backends are stateless with respect to the trajectory: they only read the
frozen noise realisation, so an adaptive solver may evaluate them at any
time, repeatedly, in any order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..core.model import RealizedModel
    from ..integrate.history import HistoryBuffer

__all__ = ["RHSBackend", "frequency_from_period"]


def frequency_from_period(denom: np.ndarray) -> np.ndarray:
    """``2*pi / denom`` with stalled processes mapped to frequency 0.

    A non-positive or infinite effective period means the process does
    not advance (the exact semantics of a full-stall injection).  Works
    on arrays of any shape — the batched backend feeds ``(R, N)``.
    """
    freq = np.zeros_like(denom, dtype=float)
    good = np.isfinite(denom) & (denom > 0.0)
    freq[good] = 2.0 * np.pi / denom[good]
    return freq


class RHSBackend(ABC):
    """Compiled RHS evaluator for one frozen model realisation.

    Subclasses implement :meth:`coupling`; the intrinsic-frequency part
    is identical for every single-state backend and lives here.

    Parameters
    ----------
    realized:
        The frozen model whose RHS this backend evaluates.
    """

    #: identifier used by the ``backend=`` knobs and reports
    name: str = "abstract"

    #: whether the constructor accepts the ``kernel=`` selection knob
    #: (see :mod:`repro.kernels`); backends without edge kernels reject
    #: explicit non-auto requests in :func:`repro.backends.make_backend`
    supports_kernels: bool = False

    def __init__(self, realized: "RealizedModel") -> None:
        model = realized.model
        self.realized = realized
        self.model = model
        self._n = model.n
        self._period = model.period
        self._vp_over_n = model.v_p / model.n

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of oscillators."""
        return self._n

    def intrinsic_frequency(self, t: float) -> np.ndarray:
        """Per-process frequency ``2*pi/(T + zeta_i(t) + delay terms)``."""
        realized = self.realized
        denom = (self._period + realized.zeta(t)
                 + realized.delay_schedule(t, self._n))
        return frequency_from_period(denom)

    @abstractmethod
    def coupling(self, t: float, theta: np.ndarray,
                 history: "HistoryBuffer | None" = None) -> np.ndarray:
        """Interaction term ``(v_p/N) sum_j T_ij V(theta_j^(del) - theta_i)``."""

    def rhs(self, t: float, theta: np.ndarray,
            history: "HistoryBuffer | None" = None) -> np.ndarray:
        """Full right-hand side of Eq. 2."""
        return self.intrinsic_frequency(t) + self.coupling(t, theta, history)

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {"backend": self.name, "n": self._n}
