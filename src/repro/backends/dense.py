"""Dense-matrix RHS backend — the reference implementation.

Materialises the full ``(N, N)`` phase-difference matrix on every call,
exactly like the paper's MATLAB artifact: O(N^2) time and memory per
evaluation regardless of how sparse the topology is.  Kept as the ground
truth the edge-list kernels are verified against, and as the fastest
option for genuinely dense topologies (all-to-all), where the matrix
formulation has no wasted work and BLAS-friendly layout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .base import RHSBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..core.model import RealizedModel
    from ..integrate.history import HistoryBuffer

__all__ = ["DenseBackend"]


class DenseBackend(RHSBackend):
    """Reference O(N^2) coupling kernel over the full topology matrix."""

    name = "dense"

    def __init__(self, realized: "RealizedModel") -> None:
        super().__init__(realized)
        self._T = self.model.topology.matrix          # (n, n)
        self._coupled = self._T != 0.0                # bool mask
        self._any_coupled = bool(self._coupled.any())

    def coupling(self, t: float, theta: np.ndarray,
                 history: "HistoryBuffer | None" = None) -> np.ndarray:
        if self._vp_over_n == 0.0:
            return np.zeros(self._n)

        if not self.realized.has_delays or history is None:
            dmat = theta[None, :] - theta[:, None]     # d[i, j] = th_j - th_i
            vmat = np.asarray(self.model.potential(dmat), dtype=float)
            return self._vp_over_n * (self._T * vmat).sum(axis=1)

        # Delayed partner phases: evaluate the history once per distinct
        # delay value (tau fields are piecewise constant with few levels).
        tau_now = self.realized.tau(t)
        dmat = np.empty((self._n, self._n))
        uniq = np.unique(tau_now[self._coupled]) if self._any_coupled else []
        dmat[:] = theta[None, :] - theta[:, None]
        for v in uniq:
            if v == 0.0:
                continue
            delayed = history(t - float(v))            # theta vector at t - v
            mask = self._coupled & (tau_now == v)
            rows, cols = np.nonzero(mask)
            dmat[mask] = delayed[cols] - theta[rows]
        vmat = np.asarray(self.model.potential(dmat), dtype=float)
        return self._vp_over_n * (self._T * vmat).sum(axis=1)
