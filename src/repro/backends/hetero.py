"""Heterogeneous batched RHS backend: R *different* models in one call.

:class:`~repro.backends.batched.BatchedBackend` (PR 1) stacks R
realisations of the *same* declarative model — a seed ensemble.  This
module lifts the same-``v_p`` / same-potential / same-delay-schedule
restrictions so that one stacked ``(R, N)`` solve can integrate an
entire **parameter grid**: members may disagree on

* the coupling strength ``v_p`` (broadcast as an ``(R, 1)`` column),
* the cycle period ``T = t_comp + t_comm`` (idem),
* the interaction potential (members are grouped by potential value and
  each group is evaluated in one vectorised ``(k, E)`` pass),
* the one-off delay schedule (evaluated per member, or broadcast when
  all members share one),
* the noise realisation (stacked when the refresh grids agree, as in
  the homogeneous backend).

Only the oscillator count ``N`` must be shared.  Members may even
disagree on the **topology** (a machine-design sweep over same-N
candidate networks): mixed batches run through a padded stacked
edge-list path — per-member edge lists concatenated with per-member
offsets, padded to the widest member, pads scattered into a discarded
overflow bin — whose per-row accumulation order is identical to
solving each topology group separately, so topology-axis fusion is
bit-for-bit identical to per-group shards.  Because the per-row
accumulation order is identical to the sparse edge-list backend's, each
row of the batched result matches the corresponding single-member
evaluation to machine precision; this is what lets
``grid_sweep(..., batched=True)`` and
:func:`repro.core.simulation.simulate_grid` integrate all grid points as
one super-state and fan exact per-point trajectories back out.

The inner coupling loop is delegated to a selectable *kernel*
(:mod:`repro.kernels`, ``kernel=`` knob):

* ``"numpy"`` — the PR-2 path: preallocated ``(R, E)`` scratch gathers,
  one family-vectorised potential call, one flattened ``np.bincount``.
  Memory-bound at N ≳ a few thousand (every evaluation streams several
  ``(R, E)`` arrays).
* ``"tiled"`` — the same arithmetic blocked over row-aligned edge
  ranges so the scratch stays cache-resident; works for any potential,
  including ``CustomPotential`` groups.
* ``"numba"`` / ``"cc"`` — fused compiled kernels that evaluate the
  potential family inline per edge block (per-member ``(kind, p0, p1)``
  coefficients, so members may even mix families), eliminating the
  ``(R, E)`` round-trips entirely.

``"auto"`` prefers a compiled kernel whenever every member's potential
exposes kernel coefficients; ``CustomPotential`` members fall back to
the NumPy/tiled per-group paths.

For mixed-topology batches the ``"numpy"`` kernel uses the padded
stacked path and ``"tiled"`` a block-diagonal
:class:`~repro.kernels.tiled.TiledStackedCoupling`; the compiled
kernels (``"cc"``/``"numba"``) have no mixed edge-list entry point and
fall back to one compiled sub-backend per topology group (one-time
:class:`RuntimeWarning`) — still bit-identical, one compiled call per
group instead of one per batch.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .. import kernels
from ..kernels import cc as cc_kernels
from ..kernels import numba_kernels
from .base import frequency_from_period

if TYPE_CHECKING:  # pragma: no cover
    from ..core.model import RealizedModel
    from ..integrate.history import HistoryBuffer

__all__ = ["HeteroBatchedBackend", "same_topology"]

#: one-time flag for the mixed-topology compiled-kernel fallback warning
_warned_mixed_compiled = False


def _warn_mixed_compiled(kernel: str) -> None:
    global _warned_mixed_compiled
    if _warned_mixed_compiled:
        return
    _warned_mixed_compiled = True
    warnings.warn(
        f"compiled kernel {kernel!r} has no mixed-topology entry point; "
        "evaluating this topology-axis batch as one compiled sub-backend "
        "per topology group (bit-identical, one kernel call per group). "
        'Use kernel="tiled" or kernel="numpy" for a single stacked pass.',
        RuntimeWarning, stacklevel=3)


def same_topology(a, b) -> bool:
    """Whether two topologies carry the identical directed edge set.

    Compared on the cached edge lists, never on the dense matrices —
    edge-backed large-N topologies (``ring_edges(1e5)``) must validate
    without densifying, and O(E) beats O(N^2) for every sparse case.
    """
    if a is b:
        return True
    if a.n != b.n:
        return False
    ra, ca = a.edge_list()
    rb, cb = b.edge_list()
    return np.array_equal(ra, rb) and np.array_equal(ca, cb)

#: potential classes whose behaviour is fully determined by describe()
_VALUE_KEYED_POTENTIALS = frozenset(
    {"TanhPotential", "BottleneckPotential", "KuramotoPotential",
     "LinearPotential"})


def _potential_key(potential) -> tuple:
    """Grouping key: members with equal keys share one vectorised call.

    The shipped potential classes are value types (their ``describe()``
    dict pins the behaviour), so separately-constructed-but-equal
    potentials merge into one group.  Unknown or custom potentials fall
    back to object identity — never merged unless literally shared.
    """
    cls = type(potential)
    if cls.__name__ in _VALUE_KEYED_POTENTIALS and \
            cls.__module__.endswith("core.potentials"):
        return (cls.__name__, tuple(sorted(potential.describe().items())))
    return ("id", id(potential))


class HeteroBatchedBackend:
    """Vectorised RHS over a stack of realisations of *different* models.

    Parameters
    ----------
    members:
        Frozen realisations sharing the topology and oscillator count;
        everything else (coupling strength, period, potential, noise,
        delay schedule) may vary per member.  States are ``(R, N)``
        arrays with one row per member.
    """

    name = "hetero"
    supports_kernels = True

    def __init__(self, members: Sequence["RealizedModel"],
                 kernel: str | None = "auto",
                 threads: int | None = None) -> None:
        if len(members) == 0:
            raise ValueError("need at least one batch member")
        first = members[0].model
        mixed = False
        for m in members[1:]:
            mm = m.model
            if mm.n != first.n:
                raise ValueError("batch members disagree on N")
            if not same_topology(mm.topology, first.topology):
                mixed = True
        self.members = tuple(members)
        self.model = first
        self._n = first.n
        self._r = len(members)
        self._mixed = mixed
        # Per-member parameter columns, broadcast against (R, N) states.
        self._periods = np.array(
            [m.model.period for m in members], dtype=float)[:, None]
        self._vps = np.array(
            [m.model.v_p / self._n for m in members], dtype=float)[:, None]
        # Per-member edge lists: identical (shared) arrays for a
        # homogeneous batch, one list per member for a topology-axis
        # batch.  The delayed path always iterates these.
        if mixed:
            per = [m.model.topology.edge_list() for m in self.members]
            self._rows = self._cols = None
            self._flat_rows = None
        else:
            per = [first.topology.edge_list()] * self._r
            self._rows, self._cols = first.topology.edge_list()
            # Flattened segment indices for the one-shot bincount: member
            # r's row i accumulates at r*N + i.
            offsets = np.arange(self._r, dtype=np.intp) * self._n
            self._flat_rows = (offsets[:, None] + self._rows[None, :]).ravel()
        self._per_rows = [rc[0] for rc in per]
        self._per_cols = [rc[1] for rc in per]
        self._edge_sizes = [int(r.size) for r in self._per_rows]
        self._total_edges = int(sum(self._edge_sizes))
        self._zeta_stack = self._stack_zeta()
        self._has_delays = any(m.has_delays for m in self.members)
        # Delay schedules: broadcast one evaluation when all members
        # share the same schedule, else evaluate per member.
        scheds = [m.delay_schedule for m in self.members]
        self._scheds = scheds
        self._sched_empty = all(len(s.delays) == 0 for s in scheds)
        self._sched_shared = all(
            s.delays == scheds[0].delays and s.period == scheds[0].period
            for s in scheds[1:])
        # Potential groups: (row-index array, potential) pairs.
        groups: dict[tuple, list[int]] = {}
        for i, m in enumerate(self.members):
            groups.setdefault(_potential_key(m.model.potential), []).append(i)
        self._pot_groups = [
            (np.asarray(ix, dtype=np.intp), self.members[ix[0]].model.potential)
            for ix in groups.values()
        ]
        self._pots = [m.model.potential for m in self.members]
        # Family vectorisation: a parameterised potential family (e.g. a
        # sigma grid of BottleneckPotentials) broadcasts its parameters
        # as an (R, 1) column — one vectorised call instead of R groups.
        self._pot_stacked = None
        if len(self._pot_groups) > 1:
            self._pot_stacked = type(self._pots[0]).stack(self._pots) \
                if hasattr(type(self._pots[0]), "stack") else None
        # Kernel selection (see repro.kernels): fused compiled kernels
        # need per-member potential coefficients; tiled/numpy go through
        # the Python potential callables above.
        self._kernel_request = kernels.normalize_kernel_name(kernel)
        self._coeffs = kernels.family_coefficients(self._pots)
        self.kernel = kernels.resolve_kernel(
            kernel, has_coefficients=self._coeffs is not None,
            n_edges=max(self._edge_sizes))
        self._threads_request = threads
        self.threads = kernels.resolve_threads(threads)
        self._tiled = None
        self._stacked = None
        self._subs = None
        self._rows32 = self._cols32 = None
        if mixed:
            self._setup_mixed()
        elif self.kernel == "tiled":
            self._tiled = kernels.TiledBatchedCoupling(
                first.topology, self._edge_potential, self._vps, self._r)
        elif self.kernel in ("cc", "numba"):
            self._rows32 = np.ascontiguousarray(self._rows, dtype=np.int32)
            self._cols32 = np.ascontiguousarray(self._cols, dtype=np.int32)
            self._vps_flat = np.ascontiguousarray(self._vps.ravel())
            # Distance rings (the paper's halo exchanges) additionally
            # drop the gathers/scatters for contiguous shifted passes —
            # both compiled kernels carry the specialisation; 2-D tori
            # get the column-ring + per-row halo decomposition.
            self._ring_offsets = cc_kernels.ring_offsets(
                self._rows, self._cols, self._n)
            self._torus_halo = None
            if self._ring_offsets is None:
                self._torus_halo = cc_kernels.torus_halo(
                    self._rows, self._cols, self._n)
        # Preallocated (R, E) scratch for the non-delayed numpy kernel.
        if self.kernel == "numpy" and not mixed:
            e = self._rows.size
            self._d_edge = np.empty((self._r, e))
            self._th_rows = np.empty((self._r, e))

    def _setup_mixed(self) -> None:
        """Dispatch setup for a topology-axis (mixed edge-list) batch.

        ``tiled`` gets the block-diagonal stacked kernel, the compiled
        kernels fall back to one sub-backend per topology group, and
        ``numpy`` builds the padded stacked gather/scatter: per-member
        edge lists padded to the widest member ``Emax``; pad slots
        gather the member's own element 0 twice (a guaranteed-finite
        ``d = 0``) and scatter into the discarded overflow bin ``R*N``,
        so padding never touches a real accumulator.
        """
        if self.kernel == "tiled":
            self._stacked = kernels.TiledStackedCoupling(
                self._n, self._per_rows, self._per_cols, self._pots,
                self._vps)
            return
        if self.kernel in ("cc", "numba"):
            _warn_mixed_compiled(self.kernel)
            groups: list[tuple[list[int], "RealizedModel"]] = []
            for i, m in enumerate(self.members):
                for idx, rep in groups:
                    if same_topology(m.model.topology, rep.model.topology):
                        idx.append(i)
                        break
                else:
                    groups.append(([i], m))
            self._subs = []
            for idx, _ in groups:
                # Topology-axis members arrive grouped (the planner
                # sorts by global index with topology as the outer
                # axis), so each group is usually a contiguous row
                # range — a slice keeps theta[sel] a view instead of a
                # fancy-index copy per RK4 stage.
                sel = (slice(idx[0], idx[-1] + 1)
                       if idx == list(range(idx[0], idx[-1] + 1))
                       else np.asarray(idx, dtype=np.intp))
                self._subs.append(
                    (sel,
                     HeteroBatchedBackend([self.members[i] for i in idx],
                                          kernel=self.kernel,
                                          threads=self._threads_request)))
            return
        emax = max(self._edge_sizes)
        offsets = np.arange(self._r, dtype=np.intp) * self._n
        grows = np.empty((self._r, emax), dtype=np.intp)
        gcols = np.empty((self._r, emax), dtype=np.intp)
        scat = np.full((self._r, emax), self._r * self._n, dtype=np.intp)
        for r in range(self._r):
            e = self._edge_sizes[r]
            grows[r, :e] = offsets[r] + self._per_rows[r]
            gcols[r, :e] = offsets[r] + self._per_cols[r]
            grows[r, e:] = offsets[r]
            gcols[r, e:] = offsets[r]
            scat[r, :e] = offsets[r] + self._per_rows[r]
        self._grows, self._gcols = grows, gcols
        self._scatter_pad = scat.ravel()
        self._d_edge = np.empty((self._r, emax))
        self._th_rows = np.empty((self._r, emax))

    def _stack_zeta(self) -> np.ndarray | None:
        """Stack member zeta realisations when they share a refresh grid."""
        procs = [m.zeta for m in self.members]
        z0 = procs[0]
        if all(z.dt == z0.dt and z.t0 == z0.t0
               and z.values.shape == z0.values.shape for z in procs):
            return np.stack([z.values for z in procs], axis=1)  # (m, R, N)
        return None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of oscillators per member."""
        return self._n

    @property
    def n_members(self) -> int:
        """Batch size R."""
        return self._r

    @property
    def has_delays(self) -> bool:
        """True if any member carries interaction delays (cached)."""
        return self._has_delays

    def max_delay(self) -> float:
        """History horizon needed by the DDE integrator."""
        return max(m.max_delay() for m in self.members)

    def subset(self, idx: Sequence[int]) -> "HeteroBatchedBackend":
        """A backend over the member rows ``idx`` (for per-member re-steps).

        Used by the adaptive per-member step control: when a few stiff
        members reject a step the whole batch accepted, only those rows
        are re-integrated through a small subset backend.
        """
        return HeteroBatchedBackend([self.members[int(i)] for i in idx],
                                    kernel=self._kernel_request,
                                    threads=self._threads_request)

    # ------------------------------------------------------------------
    def _delay_zeta(self, t: float) -> np.ndarray:
        """One-off-delay zeta contribution, shape ``(R, N)`` or ``(1, N)``."""
        if self._sched_shared:
            return self._scheds[0](t, self._n)[None, :]
        return np.stack([s(t, self._n) for s in self._scheds])

    def intrinsic_frequency(self, t: float) -> np.ndarray:
        """Stacked per-process frequencies, shape ``(R, N)``."""
        if self._zeta_stack is not None:
            k = int(np.floor((t - self.members[0].zeta.t0)
                             / self.members[0].zeta.dt))
            k = min(max(k, 0), self._zeta_stack.shape[0] - 1)
            zeta = self._zeta_stack[k]                       # (R, N)
        else:
            zeta = np.stack([m.zeta(t) for m in self.members])
        denom = self._periods + zeta
        if not self._sched_empty:
            denom = denom + self._delay_zeta(t)
        return frequency_from_period(denom)

    def _edge_potential(self, d_edge: np.ndarray) -> np.ndarray:
        """Evaluate each member's potential on its ``(E,)`` edge row.

        Members sharing a potential value are evaluated in one ``(k, E)``
        block; the elementwise arithmetic is identical to the per-row
        evaluation, so grouping never changes the result bits.
        """
        if len(self._pot_groups) == 1:
            return np.asarray(self._pot_groups[0][1](d_edge), dtype=float)
        if self._pot_stacked is not None:
            return np.asarray(self._pot_stacked(d_edge), dtype=float)
        out = np.empty_like(d_edge)
        for ix, pot in self._pot_groups:
            out[ix] = pot(d_edge[ix])
        return out

    def coupling(self, t: float, theta: np.ndarray,
                 history: "HistoryBuffer | None" = None) -> np.ndarray:
        """Stacked interaction terms for the super-state ``theta (R, N)``."""
        if self._total_edges == 0 or not np.any(self._vps):
            return np.zeros((self._r, self._n))

        if not self.has_delays or history is None:
            if self._subs is not None:
                # Mixed topologies under a compiled kernel: one compiled
                # sub-backend per topology group, rows scattered back.
                out = np.empty((self._r, self._n))
                for sel, sub in self._subs:
                    out[sel] = sub.coupling(t, theta[sel], None)
                return out
            if self._stacked is not None:
                return self._stacked(theta)
            if self._tiled is not None:
                return self._tiled(theta)
            if self._rows32 is not None:
                kinds, p0, p1 = self._coeffs
                theta = np.ascontiguousarray(theta, dtype=float)
                mod = cc_kernels if self.kernel == "cc" else numba_kernels
                if self._ring_offsets is not None:
                    return mod.ring_batched(
                        self._ring_offsets, theta,
                        np.empty((self._r, self._n)), kinds, p0, p1,
                        self._vps_flat, threads=self.threads)
                if self._torus_halo is not None:
                    return mod.torus_batched(
                        self._torus_halo, theta,
                        np.empty((self._r, self._n)), kinds, p0, p1,
                        self._vps_flat, threads=self.threads)
                return mod.fused_batched(self._rows32, self._cols32, theta,
                                         np.empty((self._r, self._n)),
                                         kinds, p0, p1, self._vps_flat,
                                         threads=self.threads)
            if self._mixed:
                # Padded stacked path: gather per-member edges from the
                # flattened (R*N,) super-state, one family-vectorised
                # potential pass over (R, Emax), one bincount whose
                # overflow bin swallows every pad slot.  Per-row
                # accumulation order equals the per-group path's.
                flat = np.ascontiguousarray(theta).reshape(-1)
                np.take(flat, self._gcols, out=self._d_edge)
                np.take(flat, self._grows, out=self._th_rows)
                np.subtract(self._d_edge, self._th_rows, out=self._d_edge)
                v_edge = self._edge_potential(self._d_edge)
                acc = np.bincount(self._scatter_pad, weights=v_edge.ravel(),
                                  minlength=self._r * self._n + 1)
                out = acc[:self._r * self._n].reshape(self._r, self._n)
                out *= self._vps
                return out
            # Gather into the preallocated scratch; d_edge = theta[:, cols]
            # - theta[:, rows] without per-call allocations.
            np.take(theta, self._cols, axis=1, out=self._d_edge)
            np.take(theta, self._rows, axis=1, out=self._th_rows)
            np.subtract(self._d_edge, self._th_rows, out=self._d_edge)
            v_edge = self._edge_potential(self._d_edge)
            acc = np.bincount(self._flat_rows, weights=v_edge.ravel(),
                              minlength=self._r * self._n)
            out = acc.reshape(self._r, self._n)
            out *= self._vps
            return out

        # Delayed path: the history holds (R, N) super-states; each
        # member patches its own edge subset per distinct delay level
        # (per-member edge lists, so mixed topologies work unchanged).
        out = np.empty((self._r, self._n))
        for r, m in enumerate(self.members):
            rows, cols = self._per_rows[r], self._per_cols[r]
            th = theta[r]
            d_edge = th[cols] - th[rows]
            if m.has_delays:
                tau_edge = m.tau(t)[rows, cols]
                for v in np.unique(tau_edge):
                    if v == 0.0:
                        continue
                    delayed = history(t - float(v))[r]
                    sel = tau_edge == v
                    d_edge[sel] = delayed[cols[sel]] - th[rows[sel]]
            v_edge = np.asarray(self._pots[r](d_edge), dtype=float)
            out[r] = np.bincount(rows, weights=v_edge, minlength=self._n)
        out *= self._vps
        return out

    def rhs(self, t: float, theta: np.ndarray,
            history: "HistoryBuffer | None" = None) -> np.ndarray:
        """Full stacked right-hand side, shape ``(R, N)``."""
        return self.intrinsic_frequency(t) + self.coupling(t, theta, history)

    def make_ode_rhs(self):
        """Closure ``f(t, theta)`` for ODE solvers (requires no delays)."""
        if self.has_delays:
            raise ValueError(
                "batch has interaction delays; use make_dde_rhs with a history"
            )
        return lambda t, y: self.rhs(t, y, None)

    def make_dde_rhs(self, history: "HistoryBuffer"):
        """Closure ``f(t, theta)`` that reads delayed states from ``history``."""
        return lambda t, y: self.rhs(t, y, history)

    def make_em_drift(self):
        """Euler-Maruyama drift closure: noise-free intrinsic + coupling.

        Mirrors the sequential EM path: the frozen zeta realisation is
        *excluded* from the drift (the Gaussian channel enters as true
        white noise through the diffusion term instead); one-off delay
        schedules stay in, per member.
        """
        if self.has_delays:
            raise ValueError("batch has interaction delays; EM is ODE-only")

        def drift(t: float, theta: np.ndarray) -> np.ndarray:
            if self._sched_empty:
                denom = self._periods
            else:
                denom = self._periods + self._delay_zeta(t)
            return frequency_from_period(denom) + self.coupling(t, theta, None)

        return drift

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {"backend": self.name, "n": self._n, "members": self._r,
                "potential_groups": len(self._pot_groups),
                "mixed_topologies": self._mixed,
                "kernel": self.kernel, "threads": self.threads}
