"""Idle-wave detection and speed measurement on DES traces.

An idle wave is the travelling front of delay launched by a one-off
disturbance (paper Sec. 5.1): the injected rank finishes its iteration
late, its communication partners wait on it one iteration later, their
partners after that, and so on.  The cleanest observable is the
*baseline-subtracted* iteration-end matrix: ``lag[k, i] =
end_disturbed[k, i] - end_baseline[k, i]`` is zero ahead of the wave
and jumps to (a fraction of) the injected delay when the wave arrives
at rank ``i``.

Speed is measured exactly like on the model side: a linear fit of rank
distance (ring metric) vs. arrival time, in ranks/second; an
iteration-based speed (ranks/iteration) is also reported because it is
what the analytic model of ref. [4] predicts: ``±max(d)`` ranks per
iteration for eager protocol in each direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.trace import Trace

__all__ = ["TraceWaveFit", "lag_matrix", "trace_arrival_times",
           "measure_trace_wave"]


@dataclass
class TraceWaveFit:
    """Idle-wave measurement on a trace pair.

    Attributes
    ----------
    speed_ranks_per_second:
        Slope of distance vs. arrival time (``nan`` if unmeasurable).
    speed_ranks_per_iteration:
        Slope of distance vs. arrival iteration index.
    arrivals_time:
        Per-rank arrival times (s), ``inf`` = never reached.
    arrivals_iteration:
        Per-rank arrival iteration indices (float; ``inf`` = never).
    distances:
        Ring distances from the source rank.
    max_lag:
        Per-rank maximum lag behind the baseline (s) — the wave
        amplitude, whose decay with distance measures damping.
    decay_length_ranks:
        e-folding distance of the amplitude (``inf`` = no decay).
    """

    speed_ranks_per_second: float
    speed_ranks_per_iteration: float
    arrivals_time: np.ndarray
    arrivals_iteration: np.ndarray
    distances: np.ndarray
    max_lag: np.ndarray
    decay_length_ranks: float


def lag_matrix(baseline: Trace, disturbed: Trace) -> np.ndarray:
    """Per-(iteration, rank) lag of the disturbed run behind the baseline."""
    if baseline.iteration_ends.shape != disturbed.iteration_ends.shape:
        raise ValueError("traces have different shapes")
    return disturbed.iteration_ends - baseline.iteration_ends


def _ring_distance(n: int, src: int) -> np.ndarray:
    idx = np.arange(n)
    raw = np.abs(idx - src)
    return np.minimum(raw, n - raw).astype(float)


def trace_arrival_times(
    baseline: Trace,
    disturbed: Trace,
    *,
    threshold_fraction: float = 0.25,
) -> tuple[np.ndarray, np.ndarray]:
    """First (time, iteration) at which each rank lags the baseline.

    The threshold is a fraction of the peak lag anywhere in the run
    (robust to kernels where the delay is partially absorbed).
    Returns ``(arrival_times, arrival_iterations)`` with ``inf`` for
    ranks never reached.
    """
    lag = lag_matrix(baseline, disturbed)
    peak = float(lag.max())
    if peak <= 0:
        n = lag.shape[1]
        return np.full(n, np.inf), np.full(n, np.inf)
    thr = threshold_fraction * peak

    n_iters, n = lag.shape
    arr_t = np.full(n, np.inf)
    arr_k = np.full(n, np.inf)
    hit = lag >= thr
    any_hit = hit.any(axis=0)
    first_k = np.argmax(hit, axis=0)
    for r in range(n):
        if any_hit[r]:
            k = int(first_k[r])
            arr_k[r] = k
            arr_t[r] = baseline.iteration_ends[k, r]
    return arr_t, arr_k


def measure_trace_wave(
    baseline: Trace,
    disturbed: Trace,
    source: int,
    *,
    threshold_fraction: float = 0.25,
    min_ranks: int = 3,
) -> TraceWaveFit:
    """Measure the idle wave launched at ``source`` from a trace pair."""
    lag = lag_matrix(baseline, disturbed)
    n = lag.shape[1]
    if not (0 <= source < n):
        raise ValueError(f"source rank {source} out of range")
    arr_t, arr_k = trace_arrival_times(baseline, disturbed,
                                       threshold_fraction=threshold_fraction)
    dist = _ring_distance(n, source)
    max_lag = lag.max(axis=0)

    reached = np.isfinite(arr_t) & (dist > 0)
    if reached.sum() >= min_ranks:
        d = dist[reached]
        slope_t = np.polyfit(d, arr_t[reached], 1)[0]
        slope_k = np.polyfit(d, arr_k[reached], 1)[0]
        speed_t = 1.0 / slope_t if slope_t > 0 else float("nan")
        speed_k = 1.0 / slope_k if slope_k > 0 else float("nan")
    else:
        speed_t = float("nan")
        speed_k = float("nan")

    # Amplitude decay with distance (exponential fit on positive lags).
    mask = (dist > 0) & (max_lag > 1e-12)
    if mask.sum() >= 3:
        coeffs = np.polyfit(dist[mask], np.log(max_lag[mask]), 1)
        decay = float(-1.0 / coeffs[0]) if coeffs[0] < 0 else float("inf")
    else:
        decay = float("nan")

    return TraceWaveFit(
        speed_ranks_per_second=float(speed_t),
        speed_ranks_per_iteration=float(speed_k),
        arrivals_time=arr_t,
        arrivals_iteration=arr_k,
        distances=dist,
        max_lag=max_lag,
        decay_length_ranks=decay,
    )
