"""Bandwidth-scaling analysis (reproduces Fig. 1(b) from the DES).

Thin wrappers over :func:`repro.simulator.program.bandwidth_scaling`
that add the analytic expectation and the saturation diagnosis used by
tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.kernels import Kernel
from ..simulator.machine import MachineSpec
from ..simulator.program import bandwidth_scaling

__all__ = ["ScalingCurve", "analytic_bandwidth_curve", "measure_scaling",
           "saturation_point"]


@dataclass
class ScalingCurve:
    """Aggregate-bandwidth curve for one kernel.

    Attributes
    ----------
    ranks:
        Socket occupancies (1..cores).
    bandwidth_GBs:
        Achieved aggregate bandwidth per occupancy.
    time_per_iteration:
        Per-sweep wall time per occupancy (s).
    analytic_GBs:
        Closed-form expectation ``min(n * demand, ceiling)``.
    kernel_name:
        Which kernel.
    saturates:
        Whether the curve flattens within the socket.
    saturation_ranks:
        Analytic fractional core count where the ceiling is reached.
    """

    ranks: list[int]
    bandwidth_GBs: list[float]
    time_per_iteration: list[float]
    analytic_GBs: list[float]
    kernel_name: str
    saturates: bool
    saturation_ranks: float


def analytic_bandwidth_curve(kernel: Kernel, machine: MachineSpec,
                             ranks: list[int]) -> list[float]:
    """Closed-form aggregate bandwidth: each of ``n`` ranks demands its
    uncontended bandwidth until the socket ceiling caps the sum.

    Under the fair-share arbiter the aggregate is exactly
    ``min(n * demand_single, socket_bandwidth)`` for a homogeneous
    kernel, because the in-core part stays constant while the memory
    part stretches once the ceiling binds.
    """
    out = []
    for n in ranks:
        # Fair share available to each of n concurrent streamers:
        rate = min(machine.core_bandwidth, machine.socket_bandwidth / n)
        t = kernel.core_time + (kernel.traffic_bytes / rate
                                if kernel.traffic_bytes > 0 else 0.0)
        agg = n * kernel.traffic_bytes / t if t > 0 else 0.0
        out.append(agg / 1e9)
    return out


def saturation_point(kernel: Kernel, machine: MachineSpec) -> float:
    """Fractional core count where aggregate demand hits the ceiling."""
    return kernel.saturation_cores(machine)


def measure_scaling(kernel: Kernel, machine: MachineSpec | None = None,
                    n_iterations: int = 10) -> ScalingCurve:
    """Run the occupancy sweep in the DES and attach the analytics."""
    m = machine or MachineSpec.meggie()
    res = bandwidth_scaling(kernel, machine=m, n_iterations=n_iterations)
    ranks = res["ranks"]
    analytic = analytic_bandwidth_curve(kernel, m, ranks)
    sat = saturation_point(kernel, m)
    return ScalingCurve(
        ranks=ranks,
        bandwidth_GBs=res["bandwidth_GBs"],
        time_per_iteration=res["time_per_iteration"],
        analytic_GBs=analytic,
        kernel_name=kernel.name,
        saturates=bool(np.isfinite(sat) and sat <= m.cores_per_socket),
        saturation_ranks=float(sat),
    )
