"""Analytic max-plus recurrence for compute-bound program execution.

For a **compute-bound** bulk-synchronous program with eager messaging,
the DES admits a closed-form description: iteration end times follow a
max-plus recurrence over the communication dependencies,

    start[k, i]    = end[k-1, i]
    cend[k, i]     = start[k, i] + w[k, i]                (compute)
    issue_m        = cend[k, i] + m * o_send              (m-th send)
    sends_done_i   = cend[k, i] + n_sends_i * o_send
    arrival(j->i)  = issue_m(j) + wire                    (eager)
    end[k, i]      = max(sends_done_i, max_j arrival(j->i))

This module evaluates the recurrence independently of the event engine;
tests assert **exact** agreement with the DES for compute-bound runs
(including one-off injections and compute noise).  It is the analytic
backbone behind the idle-wave speed rules of ref. [4]: on a silent
system the recurrence is a max-plus linear system whose delay
propagation cone advances ``max(|d|)`` ranks per iteration in each
dependency direction.

It deliberately does *not* cover memory-bound kernels (bandwidth
sharing couples ranks outside the max-plus algebra) or rendezvous
messaging (sender blocking adds reverse dependencies) — those are what
the DES exists for.
"""

from __future__ import annotations

import numpy as np

from ..simulator.mpi import ProgramSpec
from ..simulator.noise_injection import (
    ComputeNoise,
    Injection,
    NoComputeNoise,
    injection_matrix,
)

__all__ = ["maxplus_iteration_ends", "predicted_wave_cone"]


def maxplus_iteration_ends(
    spec: ProgramSpec,
    injections: tuple[Injection, ...] | list[Injection] = (),
    compute_noise: ComputeNoise | None = None,
    seed: int | None = 0,
) -> np.ndarray:
    """Evaluate the analytic recurrence; returns ``(n_iters, n_ranks)``.

    Raises for configurations outside the max-plus regime (memory
    traffic, rendezvous protocol, barriers).
    """
    if spec.kernel.traffic_bytes > 0:
        raise ValueError("max-plus recurrence requires a compute-bound "
                         "kernel (no memory traffic)")
    from ..core.coupling import Protocol
    if spec.network.protocol_for(spec.message_bytes) is not Protocol.EAGER:
        raise ValueError("max-plus recurrence covers eager messaging only")
    if spec.barrier_interval is not None:
        raise ValueError("max-plus recurrence does not model barriers")

    n, iters = spec.n_ranks, spec.n_iterations
    rng = np.random.default_rng(seed)
    noise = compute_noise or NoComputeNoise()
    w = spec.kernel.core_time + injection_matrix(tuple(injections), n, iters) \
        + noise.realize(n, iters, rng)

    o_send = spec.network.send_overhead
    wire = spec.network.transfer_time(spec.message_bytes)

    # Sender-side structure: for rank j, the (1-based) issue index of
    # the message with distance d.
    send_index: list[dict[int, int]] = []
    for j in range(n):
        idx = {}
        for m, (_, d) in enumerate(spec.send_partners(j), start=1):
            idx[d] = m
        send_index.append(idx)

    ends = np.zeros((iters, n))
    prev = np.zeros(n)
    for k in range(iters):
        cend = prev + w[k]
        sends_done = np.array(
            [cend[j] + len(send_index[j]) * o_send for j in range(n)])
        end_k = sends_done.copy()
        for i in range(n):
            for src, d in spec.recv_partners(i):
                m = send_index[src][d]
                arrival = cend[src] + m * o_send + wire
                if arrival > end_k[i]:
                    end_k[i] = arrival
        ends[k] = end_k
        prev = end_k
    return ends


def predicted_wave_cone(spec: ProgramSpec, source: int,
                        iteration: int) -> np.ndarray:
    """First iteration at which a delay at (source, iteration) reaches
    each rank, from the dependency structure alone.

    A rank's Waitall of iteration ``k`` blocks on the *same-iteration*
    messages of its senders, so the direct receivers of the delayed
    rank are already late in the injection iteration itself; every
    further dependency hop adds one iteration:

        arrival(rank at h dependency hops) = iteration + max(h - 1, 0).

    This is the analytic speed rule of ref. [4] (``max(|d|)`` ranks per
    iteration per direction).  Returns the arrival iteration per rank.
    """
    n = spec.n_ranks
    # Dependency hop distance by layer-wise BFS over "i receives from
    # i - d" edges.
    hops = np.full(n, -1, dtype=np.int64)
    hops[source] = 0
    layer = {source}
    h = 0
    while layer:
        h += 1
        nxt = set()
        for i in range(n):
            if hops[i] >= 0:
                continue
            for src, _ in spec.recv_partners(i):
                if hops[src] >= 0 and hops[src] == h - 1:
                    nxt.add(i)
                    break
        for i in nxt:
            hops[i] = h
        layer = nxt
    arrive = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    reached = hops >= 0
    arrive[reached] = iteration + np.maximum(hops[reached] - 1, 0)
    return arrive
