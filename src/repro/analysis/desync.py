"""Desynchronisation and computational-wavefront analysis of DES traces.

The paper's memory-bound runs settle into a *computational wavefront*
(Sec. 5.1.2, Fig. 2(b, d)): the ranks execute the same iteration at
systematically staggered times, visible in the trace as a sloped front
of iteration-end timestamps across ranks.  Scalable runs instead
stay/return to lock-step: iteration ends are flat across ranks.

The observables:

* **skew** — per-iteration spread of iteration-end times across ranks,
* **wavefront slope** — seconds of stagger per rank from a linear fit
  over the asymptotic iterations (the trace-side analogue of the
  oscillator phase gap ``2*sigma/3``),
* **desync index** — asymptotic skew normalised by the iteration
  duration (0 = lock-step, O(1) = fully staggered socket).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.trace import Trace

__all__ = ["DesyncReport", "iteration_skew", "wavefront_slope",
           "trace_phase_gaps", "analyze_desync"]


@dataclass
class DesyncReport:
    """Asymptotic desynchronisation metrics of one trace.

    Attributes
    ----------
    skew_series:
        Iteration-end spread (max-min over ranks) per iteration, (s).
    final_skew:
        Mean skew over the asymptotic window (s).
    slope_per_rank:
        Wavefront slope: mean |d end/d rank| over the window (s/rank).
    desync_index:
        ``final_skew / mean_iteration_duration`` — 0 for lock-step.
    is_desynchronized:
        True when the desync index exceeds the threshold (0.1).
    mean_iteration_duration:
        Average cycle time in the window (s).
    """

    skew_series: np.ndarray
    final_skew: float
    slope_per_rank: float
    desync_index: float
    is_desynchronized: bool
    mean_iteration_duration: float


def iteration_skew(trace: Trace) -> np.ndarray:
    """Spread of iteration-end times across ranks, per iteration."""
    ends = trace.iteration_ends
    return ends.max(axis=1) - ends.min(axis=1)


def wavefront_slope(trace: Trace, *, tail_fraction: float = 0.3,
                    socket_size: int | None = None) -> float:
    """Mean absolute stagger per rank in the asymptotic window (s/rank).

    When ``socket_size`` is given, the fit runs per socket and the
    slopes are averaged — the paper's wavefronts form *within* sockets
    (the bottleneck is per-socket memory bandwidth); across socket
    boundaries the front resets.
    """
    ends = trace.iteration_ends
    n_iters, n = ends.shape
    k0 = int(np.floor(n_iters * (1.0 - tail_fraction)))
    window = ends[k0:]
    if window.shape[0] < 1:
        raise ValueError("tail window is empty")

    def fit_block(block: np.ndarray) -> float:
        # block: (n_window, width) — fit end vs rank index per iteration.
        width = block.shape[1]
        if width < 2:
            return 0.0
        x = np.arange(width, dtype=float)
        slopes = [abs(np.polyfit(x, row - row.mean(), 1)[0]) for row in block]
        return float(np.mean(slopes))

    if socket_size is None:
        return fit_block(window)
    slopes = []
    for s0 in range(0, n, socket_size):
        block = window[:, s0:s0 + socket_size]
        if block.shape[1] >= 2:
            slopes.append(fit_block(block))
    return float(np.mean(slopes)) if slopes else 0.0


def trace_phase_gaps(trace: Trace, *, tail_fraction: float = 0.3,
                     socket_size: int | None = None) -> np.ndarray:
    """Mean |adjacent iteration-end gap| per rank pair over the tail (s).

    The trace-side analogue of the oscillator model's adjacent phase
    gaps: in a computational wavefront neighbouring ranks finish each
    iteration a fixed stagger apart.  ``socket_size`` excludes pairs
    that straddle a socket boundary (the wavefront lives per socket;
    boundary offsets reflect inter-socket level differences instead).
    """
    ends = trace.iteration_ends
    n_iters, n = ends.shape
    k0 = int(np.floor(n_iters * (1.0 - tail_fraction)))
    window = ends[k0:]
    gaps = np.abs(np.diff(window, axis=1)).mean(axis=0)   # (n-1,)
    if socket_size is not None:
        keep = [(i + 1) % socket_size != 0 for i in range(n - 1)]
        gaps = gaps[np.asarray(keep, dtype=bool)]
    return gaps


def analyze_desync(trace: Trace, *, tail_fraction: float = 0.3,
                   socket_size: int | None = None,
                   threshold: float = 0.1) -> DesyncReport:
    """Full desynchronisation report for one trace."""
    if not (0.0 < tail_fraction <= 1.0):
        raise ValueError("tail_fraction must be in (0, 1]")
    skew = iteration_skew(trace)
    n_iters = trace.n_iterations
    k0 = int(np.floor(n_iters * (1.0 - tail_fraction)))
    final_skew = float(skew[k0:].mean())

    durations = trace.iteration_durations()[k0:]
    mean_dur = float(durations.mean()) if durations.size else float("nan")

    slope = wavefront_slope(trace, tail_fraction=tail_fraction,
                            socket_size=socket_size)
    index = final_skew / mean_dur if mean_dur > 0 else 0.0
    return DesyncReport(
        skew_series=skew,
        final_skew=final_skew,
        slope_per_rank=slope,
        desync_index=float(index),
        is_desynchronized=bool(index > threshold),
        mean_iteration_duration=mean_dur,
    )
