"""Linear stability and dispersion analysis of the POM.

The paper observes the two regimes (resynchronisation vs. spontaneous
desynchronisation) numerically; here we derive them analytically by
linearising Eq. 2 around the uniform (lock-step) state and expose the
result as library functions.  This also gives the theory behind the
*zigzag* domain patterns the ring settles into.

Linearisation
-------------
Around ``theta_i = Omega*t + c`` write ``theta_i = Omega*t + x_i`` with
small ``x``.  Then

    dx_i/dt = (v_p/N) * V'(0) * sum_j T_ij (x_j - x_i)
            = -(v_p/N) * V'(0) * (L x)_i,        L = D - T.

* ``V'(0) > 0`` (tanh: V'(0) = gain): every non-uniform mode decays —
  the lock-step state is stable, the slowest mode decays at
  ``(v_p/N) * V'(0) * lambda_2(L)`` (spectral gap).
* ``V'(0) < 0`` (bottleneck: V'(0) = -3*pi/(2*sigma)): every connected
  mode *grows* — the translationally symmetric state is linearly
  unstable ("any slight disturbance blows up", Sec. 5.2.2), and the
  fastest-growing mode is the one maximising the Laplacian quadratic
  form: on a ``d = ±1`` ring that is ``k = pi`` — the zigzag — which
  then saturates nonlinearly at ``|gap| = 2*sigma/3``.

For translation-invariant topologies the modes are Fourier modes and
the growth rates have the closed form

    lambda(k) = (v_p/N) * V'(0) * sum_{o in O} (e^{i k o} - 1)

over the partner-offset set ``O``; a nonzero imaginary part (possible
only for *asymmetric* offset sets, e.g. the directed eager-dependency
topology of ``d = ±1,-2``) means perturbations drift across ranks with
phase velocity ``-Im lambda(k) / k`` — the linear precursor of idle-
wave motion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import PhysicalOscillatorModel

__all__ = [
    "StabilityReport",
    "potential_slope_at_origin",
    "jacobian",
    "growth_rates",
    "analyze_stability",
    "ring_dispersion",
    "fastest_growing_mode",
]


def potential_slope_at_origin(potential, h: float = 1e-7) -> float:
    """``V'(0)`` by central differences (exact formulas exist for the
    built-ins but the numeric slope works for any custom potential)."""
    return float((potential(h) - potential(-h)) / (2.0 * h))


def jacobian(model: PhysicalOscillatorModel) -> np.ndarray:
    """Jacobian of the linearised phase dynamics at the uniform state.

    ``J = (v_p/N) * V'(0) * (T - D)`` where ``D`` is the diagonal of
    row sums — i.e. ``-(v_p/N) V'(0) L`` with the (possibly asymmetric)
    Laplacian of the directed coupling graph.
    """
    t = model.topology.matrix
    deg = np.diag(t.sum(axis=1))
    slope = potential_slope_at_origin(model.potential)
    return (model.v_p / model.n) * slope * (t - deg)


def growth_rates(model: PhysicalOscillatorModel) -> np.ndarray:
    """Eigenvalues of the Jacobian, sorted by real part (descending).

    The uniform-translation mode (eigenvalue 0) is always present; the
    lock-step state is stable iff every other real part is negative.
    """
    eig = np.linalg.eigvals(jacobian(model))
    order = np.argsort(-eig.real)
    return eig[order]


@dataclass
class StabilityReport:
    """Linear-stability verdict for the lock-step state.

    Attributes
    ----------
    stable:
        True when all non-trivial modes decay (resynchronising system).
    slope:
        ``V'(0)`` of the potential.
    max_growth_rate:
        Largest non-trivial real part (negative = decay rate of the
        slowest mode; positive = growth rate of the desync instability).
    decay_time:
        ``1/|max_growth_rate|`` — resynchronisation (or blow-up) time
        scale in seconds.
    rates:
        All eigenvalues (complex), sorted by real part.
    """

    stable: bool
    slope: float
    max_growth_rate: float
    decay_time: float
    rates: np.ndarray


def analyze_stability(model: PhysicalOscillatorModel,
                      tol: float = 1e-12) -> StabilityReport:
    """Classify the lock-step state of a model analytically."""
    rates = growth_rates(model)
    # Drop the translation zero-mode (largest-real eigenvalue ~ 0 for
    # stable systems; for unstable ones the zero mode is not the max).
    real = np.sort(rates.real)[::-1]
    nontrivial = real[1] if abs(real[0]) <= tol else real[0]
    stable = bool(nontrivial < -tol)
    rate = float(nontrivial)
    decay = float(np.inf) if rate == 0.0 else 1.0 / abs(rate)
    return StabilityReport(stable=stable,
                           slope=potential_slope_at_origin(model.potential),
                           max_growth_rate=rate,
                           decay_time=decay,
                           rates=rates)


def ring_dispersion(
    offsets: tuple[int, ...] | list[int],
    n: int,
    v_p: float,
    slope: float,
    k_values: np.ndarray | None = None,
) -> dict:
    """Closed-form dispersion relation on a translation-invariant ring.

    Parameters
    ----------
    offsets:
        Partner offsets ``O`` (entries of the topology row), e.g.
        ``(-1, 1)`` for the symmetrised d=±1 ring or ``(-1, 1, 2)`` for
        the directed eager dependencies of ``d = ±1,-2``.
    n:
        Number of oscillators (sets the allowed Fourier wavenumbers).
    v_p:
        Coupling strength.
    slope:
        ``V'(0)``.
    k_values:
        Wavenumbers to evaluate; defaults to the ``n`` ring modes
        ``2*pi*m/n``.

    Returns
    -------
    dict with ``k``, complex ``lambda``, ``growth`` (real part) and
    ``velocity`` (ranks/s drift, ``-Im/k``, 0 at k=0).
    """
    if k_values is None:
        k_values = 2.0 * np.pi * np.arange(n) / n
    k = np.asarray(k_values, dtype=float)
    lam = np.zeros_like(k, dtype=complex)
    for o in offsets:
        lam += np.exp(1j * k * o) - 1.0
    lam *= (v_p / n) * slope
    velocity = np.zeros_like(k)
    nz = k != 0.0
    velocity[nz] = -lam.imag[nz] / k[nz]
    return {"k": k, "lambda": lam, "growth": lam.real, "velocity": velocity}


def fastest_growing_mode(model: PhysicalOscillatorModel) -> dict:
    """Wavenumber and rate of the dominant desync mode (ring models).

    For the ``d = ±1`` bottleneck ring the analytic answer is the
    zigzag ``k = pi`` with rate ``(v_p/N)*|V'(0)|*4`` — matching the
    alternating-sign gap patterns the simulations settle into.
    Requires a topology with a known offset set.
    """
    offsets = model.topology.distance_multiset()
    if not offsets:
        raise ValueError("topology has no offset structure")
    # Effective offsets = union of +-|d| for the symmetrised builders.
    row = np.flatnonzero(model.topology.matrix[0])
    n = model.n
    eff = []
    for j in row:
        o = int(j)
        if o > n // 2:
            o -= n
        eff.append(o)
    slope = potential_slope_at_origin(model.potential)
    disp = ring_dispersion(tuple(eff), n, model.v_p, slope)
    idx = int(np.argmax(disp["growth"]))
    return {
        "k": float(disp["k"][idx]),
        "rate": float(disp["growth"][idx]),
        "velocity": float(disp["velocity"][idx]),
        "mode_index": idx,
    }
