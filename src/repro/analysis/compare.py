"""Model-vs-simulator qualitative comparison (the paper's Fig. 2 logic).

The paper validates the oscillator model *qualitatively*: the same
scenario (topology x scalability class x one-off delay) must produce
the same phenomenology on both sides — idle wave propagation and decay,
then either resynchronisation (scalable) or a residual computational
wavefront (bottlenecked).  :func:`compare_scenario` runs both sides and
reports the verdicts next to each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import (
    OneOffDelay,
    PhysicalOscillatorModel,
    Potential,
    ring,
    simulate,
)
from ..core.coupling import CouplingSpec
from ..metrics.sync import SyncState, classify
from ..metrics.wave import measure_wave_speed
from ..simulator.kernels import Kernel
from ..simulator.program import paper_program, run_with_one_off_delay
from .desync import analyze_desync
from .idle_wave import measure_trace_wave

__all__ = ["ScenarioResult", "compare_scenario"]


@dataclass
class ScenarioResult:
    """Side-by-side phenomenology of one scenario.

    Attributes
    ----------
    name:
        Scenario label (e.g. ``"fig2a"``).
    model_state:
        Asymptotic verdict of the oscillator model.
    model_wave_speed:
        Idle-wave speed in the model (ranks/s; ``nan`` if unmeasurable).
    model_final_spread:
        Asymptotic co-moving phase spread (rad).
    trace_desynchronized:
        Whether the DES trace shows a residual wavefront.
    trace_wave_speed:
        Idle-wave speed in the trace (ranks/s).
    trace_wave_speed_iters:
        Idle-wave speed in ranks/iteration.
    agree:
        True when the sync/desync verdicts match.
    """

    name: str
    model_state: SyncState
    model_wave_speed: float
    model_final_spread: float
    trace_desynchronized: bool
    trace_wave_speed: float
    trace_wave_speed_iters: float
    agree: bool


def compare_scenario(
    name: str,
    *,
    kernel: Kernel,
    potential: Potential,
    distances: tuple[int, ...],
    n_ranks: int = 40,
    n_iterations: int = 60,
    t_comp: float = 0.9,
    t_comm: float = 0.1,
    delay_rank: int = 4,
    model_t_end: float = 1600.0,
    seed: int = 0,
) -> ScenarioResult:
    """Run one paper scenario on both the DES and the POM.

    The model side injects a one-off delay (same rank) and classifies
    the asymptotic state; the DES side runs the kernel with the same
    topology and measures wave speed + residual desynchronisation.
    """
    # ------------------------------------------------------------ model
    topo = ring(n_ranks, distances)
    model = PhysicalOscillatorModel(
        topology=topo,
        potential=potential,
        t_comp=t_comp,
        t_comm=t_comm,
        coupling=CouplingSpec(),
        delays=(OneOffDelay(rank=delay_rank, t_start=10.0,
                            delay=0.5 * (t_comp + t_comm)),),
    )
    traj = simulate(model, model_t_end, seed=seed)
    verdict = classify(traj.ts, traj.thetas, model.omega)
    wave = measure_wave_speed(traj.ts, traj.thetas, model.omega, delay_rank,
                              t_injection=10.0)

    # -------------------------------------------------------------- DES
    spec = paper_program(kernel, n_ranks=n_ranks, n_iterations=n_iterations,
                         distances=distances)
    base, disturbed = run_with_one_off_delay(spec, delay_rank=delay_rank,
                                             delay_iteration=5, seed=seed)
    trace_wave = measure_trace_wave(base, disturbed, delay_rank)
    socket = spec.machine.cores_per_socket
    desync = analyze_desync(disturbed, socket_size=socket)

    model_desync = verdict.state is SyncState.DESYNCHRONIZED
    agree = model_desync == desync.is_desynchronized
    return ScenarioResult(
        name=name,
        model_state=verdict.state,
        model_wave_speed=wave.speed,
        model_final_spread=verdict.final_spread,
        trace_desynchronized=desync.is_desynchronized,
        trace_wave_speed=trace_wave.speed_ranks_per_second,
        trace_wave_speed_iters=trace_wave.speed_ranks_per_iteration,
        agree=agree,
    )
