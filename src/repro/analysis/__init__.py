"""Trace phenomenology: idle waves, desynchronisation, bandwidth curves,
and model-vs-simulator comparison."""

from .bandwidth import (
    ScalingCurve,
    analytic_bandwidth_curve,
    measure_scaling,
    saturation_point,
)
from .calibrate import (
    CycleEstimate,
    calibrate_beta_kappa,
    estimate_cycle_from_trace,
    estimate_sigma_from_gaps,
    estimate_sigma_from_trace,
    fit_model_to_trace,
)
from .compare import ScenarioResult, compare_scenario
from .desync import (
    DesyncReport,
    analyze_desync,
    iteration_skew,
    trace_phase_gaps,
    wavefront_slope,
)
from .dispersion import (
    StabilityReport,
    analyze_stability,
    fastest_growing_mode,
    growth_rates,
    jacobian,
    potential_slope_at_origin,
    ring_dispersion,
)
from .idle_wave import (
    TraceWaveFit,
    lag_matrix,
    measure_trace_wave,
    trace_arrival_times,
)
from .recurrence import maxplus_iteration_ends, predicted_wave_cone

__all__ = [
    "ScalingCurve", "analytic_bandwidth_curve", "measure_scaling",
    "saturation_point",
    "CycleEstimate", "calibrate_beta_kappa", "estimate_cycle_from_trace",
    "estimate_sigma_from_gaps", "estimate_sigma_from_trace",
    "fit_model_to_trace",
    "ScenarioResult", "compare_scenario",
    "DesyncReport", "analyze_desync", "iteration_skew", "trace_phase_gaps",
    "wavefront_slope",
    "StabilityReport", "analyze_stability", "fastest_growing_mode",
    "growth_rates", "jacobian", "potential_slope_at_origin",
    "ring_dispersion",
    "maxplus_iteration_ends", "predicted_wave_cone",
    "TraceWaveFit", "lag_matrix", "measure_trace_wave", "trace_arrival_times",
]
