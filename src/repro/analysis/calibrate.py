"""Model calibration: estimate POM parameters from observations.

The paper's closing argument (Sec. 6) is that "the number of model
parameters is very small", making the POM a cheap characterisation of a
system.  This module closes the loop: given measurements — either an
oscillator trajectory or a cluster trace — recover the model
parameters that describe them.

* ``sigma`` from the desynchronised state: the asymptotic |gap| is the
  potential's first zero, so ``sigma = 3/2 * |gap|``; on the trace side
  the wavefront slope (seconds/rank) maps to a phase gap via
  ``gap = slope * omega``.
* ``beta*kappa`` from an observed idle-wave speed: the model's wave
  speed is monotone in the coupling (Sec. 5.1.1), so a bracketing
  bisection over ``v_p_override`` inverts it.
* cycle time from a trace: median iteration duration, split into
  compute/communicate from the recorded activity totals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import PhysicalOscillatorModel
from ..core.noise import OneOffDelay
from ..core.potentials import TanhPotential
from ..core.simulation import simulate
from ..core.topology import ring
from ..metrics.wave import measure_wave_speed
from ..simulator.trace import Activity, Trace

__all__ = [
    "CycleEstimate",
    "estimate_sigma_from_gaps",
    "estimate_sigma_from_trace",
    "estimate_cycle_from_trace",
    "calibrate_beta_kappa",
    "fit_model_to_trace",
]


def estimate_sigma_from_gaps(gaps: np.ndarray) -> float:
    """Invert the 2*sigma/3 law: ``sigma = 3/2 * mean |gap|``.

    ``gaps`` are asymptotic adjacent phase differences (radians), signed
    or not; ring states have mixed signs, so magnitudes are used.
    """
    gaps = np.asarray(gaps, dtype=float)
    if gaps.size == 0:
        raise ValueError("need at least one gap")
    return 1.5 * float(np.abs(gaps).mean())


@dataclass
class CycleEstimate:
    """Compute/communicate split recovered from a trace.

    Attributes
    ----------
    t_comp:
        Median per-iteration computation time (s).
    t_comm:
        Median per-iteration non-compute time (send + wait) (s).
    period:
        ``t_comp + t_comm`` — the oscillator period.
    omega:
        ``2*pi/period``.
    """

    t_comp: float
    t_comm: float

    @property
    def period(self) -> float:
        return self.t_comp + self.t_comm

    @property
    def omega(self) -> float:
        return 2.0 * np.pi / self.period


def estimate_cycle_from_trace(trace: Trace) -> CycleEstimate:
    """Recover the compute-communicate cycle from a trace.

    Uses per-rank activity totals divided by the iteration count;
    medians across ranks reject the ranks disturbed by injections.
    """
    iters = trace.n_iterations
    if iters < 1:
        raise ValueError("empty trace")
    comp = np.array([tl.total(Activity.COMPUTE) / iters
                     for tl in trace.timelines])
    comm = np.array([(tl.total(Activity.SEND) + tl.total(Activity.WAIT))
                     / iters for tl in trace.timelines])
    return CycleEstimate(t_comp=float(np.median(comp)),
                         t_comm=float(np.median(comm)))


def estimate_sigma_from_trace(trace: Trace, *, tail_fraction: float = 0.3,
                              socket_size: int | None = None) -> float:
    """Estimate sigma from a desynchronised cluster trace.

    The computational wavefront's per-pair stagger (seconds) is a phase
    gap of ``gap_seconds * omega`` radians; the 2*sigma/3 law then
    gives sigma.  Returns ~0 for a lock-step trace (no bottleneck
    evasion = scalable code: the tanh potential, which has no sigma).
    """
    from .desync import trace_phase_gaps

    cycle = estimate_cycle_from_trace(trace)
    gaps_seconds = trace_phase_gaps(trace, tail_fraction=tail_fraction,
                                    socket_size=socket_size)
    gap = float(np.mean(gaps_seconds)) * cycle.omega
    return 1.5 * gap


def calibrate_beta_kappa(
    target_speed: float,
    *,
    n_ranks: int = 24,
    t_comp: float = 0.9,
    t_comm: float = 0.1,
    bk_range: tuple[float, float] = (0.05, 64.0),
    tol: float = 0.02,
    max_iters: int = 24,
    t_end: float = 200.0,
    seed: int = 0,
) -> dict:
    """Find the ``beta*kappa`` whose model idle-wave speed matches a
    measured one (ranks/s), by bisection on the monotone speed curve.

    Returns ``{"beta_kappa": ..., "speed": ..., "iterations": ...,
    "converged": ...}``.  Raises if the target lies outside the speeds
    achievable within ``bk_range``.
    """
    if target_speed <= 0:
        raise ValueError("target speed must be positive")
    period = t_comp + t_comm

    def speed_of(bk: float) -> float:
        model = PhysicalOscillatorModel(
            topology=ring(n_ranks, (1, -1)),
            potential=TanhPotential(),
            t_comp=t_comp, t_comm=t_comm,
            v_p_override=bk / period,
            delays=(OneOffDelay(rank=n_ranks // 4, t_start=10.0,
                                delay=period),),
        )
        traj = simulate(model, t_end, seed=seed)
        fit = measure_wave_speed(traj.ts, traj.thetas, model.omega,
                                 n_ranks // 4, t_injection=10.0)
        return fit.speed if np.isfinite(fit.speed) else 0.0

    lo, hi = bk_range
    s_lo, s_hi = speed_of(lo), speed_of(hi)
    if not (s_lo <= target_speed <= s_hi):
        raise ValueError(
            f"target speed {target_speed:.4f} outside achievable range "
            f"[{s_lo:.4f}, {s_hi:.4f}] for beta*kappa in {bk_range}"
        )

    speed_mid = s_lo
    mid = lo
    for it in range(1, max_iters + 1):
        mid = np.sqrt(lo * hi)          # geometric bisection (decades)
        speed_mid = speed_of(mid)
        if abs(speed_mid - target_speed) <= tol * target_speed:
            return {"beta_kappa": float(mid), "speed": float(speed_mid),
                    "iterations": it, "converged": True}
        if speed_mid < target_speed:
            lo = mid
        else:
            hi = mid
    return {"beta_kappa": float(mid), "speed": float(speed_mid),
            "iterations": max_iters, "converged": False}


def fit_model_to_trace(trace: Trace, *, socket_size: int | None = None
                       ) -> dict:
    """One-call characterisation of a cluster trace as POM parameters.

    Returns the recovered cycle split, the sigma estimate (0 = scalable)
    and a ready-to-use parameter dictionary.
    """
    cycle = estimate_cycle_from_trace(trace)
    sigma = estimate_sigma_from_trace(trace, socket_size=socket_size)
    return {
        "t_comp": cycle.t_comp,
        "t_comm": cycle.t_comm,
        "period": cycle.period,
        "omega": cycle.omega,
        "sigma": sigma,
        "scalable": sigma < 1e-3,
    }
