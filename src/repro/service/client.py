"""Stdlib HTTP client for the campaign service.

A thin :mod:`urllib.request` wrapper speaking the ``pom serve`` API —
used by the ``pom submit`` / ``pom status`` / ``pom fetch`` CLI verbs,
the test suite, and the service-overhead benchmark.  Non-2xx responses
raise :class:`ServiceError` carrying the status code and the server's
JSON error message, so callers never parse error bodies themselves.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from pathlib import Path

from ..runs import ScenarioSpec

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx service response (carries the HTTP status code)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


class ServiceClient:
    """Talk to one ``pom serve`` instance.

    Parameters
    ----------
    url:
        Service base URL, e.g. ``http://127.0.0.1:8765``.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, url: str, *, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: dict | None = None) -> tuple[int, bytes, str]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.url + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return (resp.status, resp.read(),
                        resp.headers.get("Content-Type", ""))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw)["error"]
            except Exception:
                message = raw.decode(errors="replace") or str(exc)
            raise ServiceError(exc.code, message) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.url}: "
                                  f"{exc.reason}") from exc

    def _json(self, method: str, path: str, body: dict | None = None):
        _, data, _ = self._request(method, path, body)
        return json.loads(data)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /v1/healthz``."""
        return self._json("GET", "/v1/healthz")

    def registry(self) -> dict:
        """``GET /v1/registry``."""
        return self._json("GET", "/v1/registry")

    def submit(self, spec: ScenarioSpec | dict | None = None, *,
               scenario: str | None = None, quick: bool = False,
               kwargs: dict | None = None,
               shard_members: int | None = None) -> dict:
        """``POST /v1/campaigns`` — a spec (object/dict) or registry name.

        Returns the campaign status dict; ``id`` is the spec content
        hash, ``cached`` reports a submit-time full cache hit, and
        ``new_shards`` counts the queue rows this submit created (0 for
        a duplicate or fully cached campaign).
        """
        if (spec is None) == (scenario is None):
            raise ValueError("provide exactly one of spec or scenario")
        body: dict = {}
        if spec is not None:
            body["spec"] = (spec.to_dict()
                            if isinstance(spec, ScenarioSpec) else spec)
        else:
            body["scenario"] = scenario
            if quick:
                body["quick"] = True
            if kwargs:
                body["kwargs"] = kwargs
        if shard_members is not None:
            body["shard_members"] = shard_members
        return self._json("POST", "/v1/campaigns", body)

    def status(self, campaign_id: str) -> dict:
        """``GET /v1/campaigns/{id}``."""
        return self._json("GET", f"/v1/campaigns/{campaign_id}")

    def result_bytes(self, campaign_id: str, fmt: str = "npz") -> bytes:
        """``GET /v1/campaigns/{id}/result`` — raw artefact bytes."""
        _, data, _ = self._request(
            "GET", f"/v1/campaigns/{campaign_id}/result?format={fmt}")
        return data

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def wait(self, campaign_id: str, *, timeout: float = 120.0,
             poll: float = 0.2) -> dict:
        """Poll status until ``done``; raise on ``failed`` or timeout."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(campaign_id)
            if status["status"] == "done":
                return status
            if status["status"] == "failed":
                raise ServiceError(
                    500, f"campaign {campaign_id[:16]} failed: "
                         f"{status['quarantined']}")
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, f"campaign {campaign_id[:16]} still "
                       f"{status['status']} after {timeout}s "
                       f"(counts: {status['counts']})")
            time.sleep(poll)

    def fetch(self, campaign_id: str, out: str | Path, *,
              fmt: str = "npz") -> Path:
        """Download the result artefact to ``out``.

        ``out`` is treated as a directory (file named
        ``<id16>.<fmt>`` inside it) when it already is one or the
        argument ends with a path separator; otherwise as the target
        file path.
        """
        as_dir = str(out).endswith(("/", os.sep))
        path = Path(out)
        if path.is_dir() or as_dir:
            path.mkdir(parents=True, exist_ok=True)
            path = path / f"{campaign_id[:16]}.{fmt}"
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.result_bytes(campaign_id, fmt))
        return path
