"""HTTP campaign service: submit/status/result over the queue + cache.

The thin service face on the campaign machinery (`ROADMAP` item 1):
a stdlib-only HTTP server (:mod:`repro.service.server`) that accepts
declarative :class:`~repro.runs.ScenarioSpec` campaigns, content-hashes
them into campaign ids, absorbs cache misses through the durable
:class:`~repro.runs.WorkQueue`, and answers repeat queries straight
from the content-addressed result store — plus a matching stdlib client
(:mod:`repro.service.client`) used by the ``pom submit``/``status``/
``fetch`` CLI verbs and the test suite.

Quickstart::

    pom serve --queue svc/q.db --cache svc/cache --port 8765 --workers 2
    pom submit sweep.json --url http://127.0.0.1:8765 --wait
    pom fetch sweep.json --url http://127.0.0.1:8765 --out results/

Every request is logged as one JSON line (latency, cache hit/miss,
queue depth) to the metrics file for scraping.
"""

from .client import ServiceClient, ServiceError
from .server import (
    ApiError,
    CampaignServer,
    CampaignService,
    MetricsLog,
    WorkerPool,
)

__all__ = [
    "ApiError",
    "CampaignServer",
    "CampaignService",
    "MetricsLog",
    "ServiceClient",
    "ServiceError",
    "WorkerPool",
]
