"""HTTP face on the campaign machinery: queue-backed, cache-first.

The service turns the PR-4/PR-6 campaign layers into a network API —
"what-if" queries against the oscillator model become a ``POST`` instead
of a checkout-and-run:

``POST /v1/campaigns``
    Body: ``{"spec": {...}}`` (a :class:`~repro.runs.ScenarioSpec`
    dict) or ``{"scenario": "<registry name>", "quick": true,
    "kwargs": {...}}``, optionally with ``"shard_members": N``.  The
    spec is validated, content-hashed (the hash *is* the campaign id),
    compiled, and its shards probed against the shared result cache:
    a **fully cached campaign completes at submit time without touching
    the queue**; anything else is enqueued into the durable
    :class:`~repro.runs.WorkQueue` (idempotent per shard key, so
    concurrent duplicate submits collapse onto one set of rows).
``GET /v1/campaigns/{id}``
    The ``pom queue``-style report restricted to the campaign:
    pending/leased/done/quarantined counts, retry attempts, quarantine
    tracebacks, and an overall ``status`` of ``running`` / ``done`` /
    ``failed``.
``GET /v1/campaigns/{id}/result?format=npz|csv``
    The assembled campaign artefact.  Built once from the cached shard
    solves (bit-identical to ``pom run`` of the same spec, by the same
    assembly path), then persisted in the content-addressed artifact
    store — repeat fetches stream the stored bytes without touching the
    cache or the queue.
``GET /v1/healthz`` / ``GET /v1/registry``
    Liveness + queue/cache/worker stats; the experiment registry.

Errors are always JSON bodies (``{"error": ...}``) with proper status
codes: 400 for malformed specs/bodies, 404 for unknown campaigns, 409
for results requested before the campaign finished.

State is three on-disk siblings of the queue file — the queue database
itself, the shard result cache, and the campaign artifact store — so
any number of service instances (and external ``pom worker`` drainers,
on any host sharing the filesystem) serve one coherent campaign tier,
and a restarted server still answers for campaigns submitted before it
died.

Execution comes from :class:`WorkerPool`, the service-side version of
the PR-6 respawn loop: up to ``workers`` drainer processes are kept
alive while the queue has work (dead workers are respawned, expired
leases reaped), and they exit on their own when the queue drains.

Every request is recorded as one JSON line (latency ms, hit/miss,
queue depth) through :class:`MetricsLog` for scraping.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from ..experiments.registry import REGISTRY, get_experiment
from ..runs import ResultCache, ScenarioSpec, WorkQueue, compile_plan
from ..runs.executor import _queue_worker_entry, collect_cached
from ..runs.faults import ensure_shared_state_dir
from ..runs.plan import Plan
from ..runs.queue import default_queue_sibling
from ..runs.store import ArtifactStore
from ..viz.export import csv_text

__all__ = ["ApiError", "CampaignServer", "CampaignService", "MetricsLog",
           "WorkerPool"]

#: result artefact formats served by ``GET .../result``
RESULT_FORMATS = ("npz", "csv")

_CONTENT_TYPES = {"npz": "application/octet-stream", "csv": "text/csv"}


class ApiError(Exception):
    """A request-level failure carrying its HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


class MetricsLog:
    """Append-only JSON-lines request log (one object per request).

    Lines carry ``t`` (epoch seconds), ``method``, ``path``, ``status``,
    ``ms`` (handler latency), ``hit`` (cache hit/miss where meaningful,
    else ``null``), and ``queue_depth`` — the scrape-friendly shape the
    CI service-smoke leg uploads for post-mortems.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def record(self, **fields) -> None:
        line = json.dumps(fields, sort_keys=True)
        with self._lock:
            with self.path.open("a") as fh:
                fh.write(line + "\n")


class WorkerPool:
    """Keep up to ``jobs`` queue-drainer processes alive while work exists.

    The PR-6 respawn loop, detached from any single campaign: a monitor
    thread reaps expired leases and compares the queue's unfinished
    count against the live worker set, spawning replacements for dead
    (or never-started) drainers.  Workers are plain
    :func:`~repro.runs.executor._queue_worker_entry` processes — the
    same body as ``pom worker`` — so they exit on their own when the
    queue drains, and quarantine (``max_attempts``) bounds how long a
    poisoned shard can keep the pool busy.
    """

    def __init__(self, queue_path: str | Path, cache_root: str | Path,
                 jobs: int, *, worker_opts: dict | None = None,
                 poll: float = 0.2) -> None:
        if jobs < 0:
            raise ValueError("jobs must be non-negative")
        self.queue_path = Path(queue_path)
        self.cache_root = Path(cache_root)
        self.jobs = int(jobs)
        self.worker_opts = dict(worker_opts or {})
        self.poll = float(poll)
        self.spawned = 0
        self._procs: list = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "WorkerPool":
        if self.jobs > 0 and not self._thread.is_alive():
            self._thread.start()
        return self

    def _spawn(self):
        import multiprocessing as mp

        opts = dict(self.worker_opts,
                    worker=f"{os.uname().nodename}-svc{self.spawned}")
        proc = mp.Process(target=_queue_worker_entry,
                          args=(str(self.queue_path), str(self.cache_root),
                                opts),
                          daemon=True)
        proc.start()
        self.spawned += 1
        return proc

    def _run(self) -> None:
        queue = WorkQueue(self.queue_path,
                          backoff=self.worker_opts.get("backoff", 0.5))
        while not self._stop.wait(self.poll):
            queue.reap()
            self._procs = [p for p in self._procs if p.is_alive()]
            unfinished = queue.unfinished()
            if unfinished == 0:
                continue
            deficit = min(self.jobs, unfinished) - len(self._procs)
            for _ in range(max(deficit, 0)):
                self._procs.append(self._spawn())

    def stop(self) -> None:
        """Stop the monitor and terminate any live workers."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
        for p in self._procs:
            p.join(timeout=5.0)
        self._procs = []

    @property
    def alive(self) -> int:
        """Currently live worker processes."""
        return sum(1 for p in self._procs if p.is_alive())


class CampaignService:
    """Application logic behind the HTTP endpoints (transport-free).

    Owns the durable queue, the shard result cache, and the campaign
    artifact store (manifests + assembled results).  All methods raise
    :class:`ApiError` for request-level failures; the HTTP handler and
    the tests call them directly.
    """

    def __init__(self, queue_path: str | Path,
                 cache: ResultCache | str | Path | None = None, *,
                 shard_members: int | None = None,
                 max_attempts: int = 3,
                 worker_opts: dict | None = None) -> None:
        self.queue_path = Path(queue_path)
        worker_opts = dict(worker_opts or {})
        # Chaos runs (POM_FAULTS) need one shared fire budget across the
        # server and every spawned/external worker.
        ensure_shared_state_dir(default_queue_sibling(self.queue_path,
                                                      "faults"))
        self.queue = WorkQueue(self.queue_path,
                               backoff=worker_opts.get("backoff", 0.5))
        if cache is None:
            cache = default_queue_sibling(self.queue_path, "cache")
        self.cache = (cache if isinstance(cache, ResultCache)
                      else ResultCache(cache))
        self.artifacts = ArtifactStore(
            default_queue_sibling(self.queue_path, "artifacts"))
        self.default_shard_members = shard_members
        self.max_attempts = int(max_attempts)
        self.worker_opts = worker_opts
        self.pool: WorkerPool | None = None  # attached by CampaignServer
        self.started = time.time()
        self.requests = 0
        self._count_lock = threading.Lock()

    # ------------------------------------------------------------------
    # request bodies -> campaigns
    # ------------------------------------------------------------------
    def _spec_from_body(self, body) -> tuple[ScenarioSpec, int | None]:
        if not isinstance(body, dict):
            raise ApiError(400, "request body must be a JSON object")
        known = {"spec", "scenario", "quick", "kwargs", "shard_members"}
        extra = set(body) - known
        if extra:
            raise ApiError(400, f"unknown field(s) {sorted(extra)}; "
                                f"accepted: {sorted(known)}")
        if ("spec" in body) == ("scenario" in body):
            raise ApiError(400, "provide exactly one of 'spec' (a scenario "
                                "dict) or 'scenario' (a registry name)")
        try:
            if "spec" in body:
                spec = ScenarioSpec.from_dict(body["spec"])
            else:
                try:
                    exp = get_experiment(str(body["scenario"]))
                except KeyError as exc:
                    raise ApiError(400, str(exc.args[0])) from exc
                if exp.spec_factory is None:
                    raise ApiError(
                        400, f"scenario {body['scenario']!r} has no "
                             "declarative spec; submit a spec dict instead")
                kwargs = dict(exp.quick_kwargs) if body.get("quick") else {}
                kwargs.update(body.get("kwargs") or {})
                spec = exp.spec_factory(**kwargs)
            spec.validate()
        except ApiError:
            raise
        except Exception as exc:
            raise ApiError(400, f"invalid scenario spec: {exc}") from exc
        shard_members = body.get("shard_members", self.default_shard_members)
        if shard_members is not None:
            shard_members = int(shard_members)
            if shard_members < 1:
                raise ApiError(400, "shard_members must be positive")
        return spec, shard_members

    def _put_manifest(self, cid: str, spec: ScenarioSpec,
                      shard_members: int | None) -> None:
        # Deterministic bytes for a given (spec, shard_members), so
        # concurrent duplicate submits racing the sidecar+blob write
        # converge on identical content instead of a checksum mismatch.
        manifest = {"spec": spec.to_dict(), "shard_members": shard_members}
        data = (json.dumps(manifest, sort_keys=True, indent=2)
                + "\n").encode()
        if self.artifacts.get_bytes(cid, ext=".spec.json") != data:
            self.artifacts.put_bytes(cid, data, ext=".spec.json")

    def _load_campaign(self, cid: str) -> tuple[ScenarioSpec, Plan]:
        try:
            blob = self.artifacts.get_bytes(cid, ext=".spec.json")
        except ValueError as exc:  # malformed id (not a hex hash)
            raise ApiError(404, f"unknown campaign {cid!r}") from exc
        if blob is None:
            raise ApiError(404, f"unknown campaign {cid!r}")
        manifest = json.loads(blob)
        spec = ScenarioSpec.from_dict(manifest["spec"])
        plan = compile_plan(spec,
                            shard_members=manifest.get("shard_members"))
        return spec, plan

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def submit(self, body) -> dict:
        """``POST /v1/campaigns`` — validate, hash, short-circuit or enqueue.

        A campaign whose every shard is already in the result cache is
        answered entirely from the store: no queue rows are created (the
        acceptance property the CI service-smoke leg asserts on
        re-submit).  Otherwise the plan is enqueued — idempotently, so
        duplicate submits of one spec collapse onto one campaign.
        """
        spec, shard_members = self._spec_from_body(body)
        plan = compile_plan(spec, shard_members=shard_members)
        cid = spec.content_hash()
        self._put_manifest(cid, spec, shard_members)
        hit = all(self.cache.has(s.key) for s in plan.shards)
        new = 0
        if not hit:
            new = self.queue.enqueue_plan(plan,
                                          max_attempts=self.max_attempts)
        out = self._status_dict(cid, spec, plan)
        out["cached"] = hit
        out["new_shards"] = new
        return out

    def status(self, cid: str) -> dict:
        """``GET /v1/campaigns/{id}`` — the campaign's queue-style report."""
        spec, plan = self._load_campaign(cid)
        return self._status_dict(cid, spec, plan)

    def _status_dict(self, cid: str, spec: ScenarioSpec,
                     plan: Plan) -> dict:
        rows = {r.key: r for r in self.queue.rows()}
        counts = {"pending": 0, "leased": 0, "done": 0, "quarantined": 0}
        retried: dict[int, int] = {}
        quarantined: list[dict] = []
        for s in plan.shards:
            row = rows.get(s.key)
            if row is None:
                # Never enqueued: a cache short-circuit (done) or a
                # queue file that was deleted under a live campaign.
                counts["done" if self.cache.has(s.key) else "pending"] += 1
                continue
            counts[row.state] += 1
            if row.state == "done" and row.attempts > 1:
                retried[s.index] = row.attempts
            elif row.state == "quarantined":
                quarantined.append({"shard": s.index,
                                    "attempts": row.attempts,
                                    "error": row.error})
        if quarantined:
            state = "failed"
        elif counts["done"] == plan.n_shards:
            state = "done"
        else:
            state = "running"
        return {
            "id": cid,
            "name": spec.name,
            "members": plan.n_members,
            "shards": plan.n_shards,
            "metrics": list(spec.metrics),
            "trajectories": spec.trajectories,
            "status": state,
            "counts": counts,
            "retried": retried,
            "quarantined": quarantined,
            "queue": {"path": str(self.queue_path)},
        }

    def result(self, cid: str, fmt: str = "npz") -> tuple[bytes, bool]:
        """``GET /v1/campaigns/{id}/result`` — assembled campaign artefact.

        Returns ``(bytes, from_store)``.  The artefact is assembled from
        the cached shard solves exactly once (the same member-ordered
        assembly ``pom run`` uses, so the bytes decode to bit-identical
        arrays), stored content-addressed, and streamed straight from
        the store on every later fetch.  A ``done``-looking campaign
        whose cached shards fail verification is requeued (409) instead
        of served wrong.
        """
        if fmt not in RESULT_FORMATS:
            raise ApiError(400, f"unknown result format {fmt!r}; "
                                f"available: {', '.join(RESULT_FORMATS)}")
        spec, plan = self._load_campaign(cid)
        blob = self.artifacts.get_bytes(cid, ext="." + fmt)
        if blob is not None:
            return blob, True
        missing = sum(1 for s in plan.shards if not self.cache.has(s.key))
        if missing:
            raise ApiError(409, f"campaign {cid[:16]} is not complete "
                                f"({missing} shard(s) outstanding)")
        run = collect_cached(plan, self.cache)
        if run is None:
            # Entries exist but will not load (torn write, bit rot):
            # put the bad shards back through the queue rather than
            # serving a wrong or partial artefact.
            bad = [s.key for s in plan.shards
                   if self.cache.load(s.key) is None]
            self.queue.enqueue_plan(plan, max_attempts=self.max_attempts)
            self.queue.requeue(bad)
            raise ApiError(409, f"{len(bad)} cached shard(s) failed "
                                "verification; requeued for recompute")
        if fmt == "npz":
            data = run.npz_bytes()
        else:
            data = csv_text(run.summary_table(),
                            meta={"spec": cid, "name": spec.name}).encode()
        self.artifacts.put_bytes(cid, data, ext="." + fmt)
        return data, False

    def healthz(self) -> dict:
        """``GET /v1/healthz`` — liveness plus queue/cache/worker stats."""
        counts = self.queue.counts()
        out = {
            "ok": True,
            "uptime_s": time.time() - self.started,
            "requests": self.requests,
            "queue": {"path": str(self.queue_path), "counts": counts,
                      "depth": counts["pending"] + counts["leased"]},
            "cache": self.cache.describe(),
        }
        if self.pool is not None:
            out["workers"] = {"jobs": self.pool.jobs,
                             "alive": self.pool.alive,
                             "spawned": self.pool.spawned}
        return out

    def registry_info(self) -> dict:
        """``GET /v1/registry`` — submittable scenarios + topology kinds."""
        from ..core.topology import topology_kinds

        return {"scenarios": [
            {"name": name, "id": exp.id, "description": exp.description,
             "has_spec": exp.spec_factory is not None}
            for name, exp in sorted(REGISTRY.items())
        ], "topologies": topology_kinds()}

    def count_request(self) -> None:
        with self._count_lock:
            self.requests += 1


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto a :class:`CampaignService`."""

    service: CampaignService  # injected per-server subclass
    metrics: MetricsLog | None = None
    server_version = "pom-serve"

    def log_message(self, fmt, *args):  # noqa: D102 - silence stderr
        pass

    # ------------------------------------------------------------------
    def _send(self, status: int, data: bytes, ctype: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self):
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            raise ApiError(400, "missing JSON request body")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"request body is not valid JSON: "
                                f"{exc}") from exc

    def _route(self, method: str) -> tuple[int, bytes, str, bool | None]:
        service = self.service
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if method == "GET" and parts == ["v1", "healthz"]:
            return 200, _json_bytes(service.healthz()), \
                "application/json", None
        if method == "GET" and parts == ["v1", "registry"]:
            return 200, _json_bytes(service.registry_info()), \
                "application/json", None
        if method == "POST" and parts == ["v1", "campaigns"]:
            out = service.submit(self._read_json())
            return 200, _json_bytes(out), "application/json", out["cached"]
        if method == "GET" and len(parts) == 3 \
                and parts[:2] == ["v1", "campaigns"]:
            return 200, _json_bytes(service.status(parts[2])), \
                "application/json", None
        if method == "GET" and len(parts) == 4 \
                and parts[:2] == ["v1", "campaigns"] \
                and parts[3] == "result":
            query = parse_qs(url.query)
            fmt = (query.get("format") or ["npz"])[0]
            data, from_store = service.result(parts[2], fmt)
            return 200, data, _CONTENT_TYPES[fmt], from_store
        raise ApiError(404, f"no such endpoint: {method} {url.path}")

    def _handle(self, method: str) -> None:
        t0 = time.perf_counter()
        status, hit = 500, None
        try:
            status, data, ctype, hit = self._route(method)
        except ApiError as exc:
            status = exc.status
            data, ctype = _json_bytes({"error": str(exc)}), \
                "application/json"
        except Exception as exc:  # pragma: no cover - defensive
            status = 500
            data, ctype = _json_bytes({"error": f"internal error: {exc}"}), \
                "application/json"
        try:
            self._send(status, data, ctype)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass
        self.service.count_request()
        if self.metrics is not None:
            self.metrics.record(
                t=time.time(), method=method, path=self.path, status=status,
                ms=round((time.perf_counter() - t0) * 1e3, 3), hit=hit,
                queue_depth=self.service.queue.unfinished())

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")


def _json_bytes(obj) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode()


class CampaignServer:
    """A :class:`ThreadingHTTPServer` bound to one campaign tier.

    Composes the service logic, the request-metrics log, and the worker
    respawn pool.  ``port=0`` binds an ephemeral port (tests); ``.url``
    reports the resolved address.  Use :meth:`serve_forever` for the
    CLI foreground mode or :meth:`start` to serve from a daemon thread
    (tests, benchmarks), and :meth:`close` to stop everything.
    """

    def __init__(self, queue: str | Path,
                 cache: ResultCache | str | Path | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 workers: int = 0,
                 metrics: str | Path | None = None,
                 shard_members: int | None = None,
                 max_attempts: int = 3,
                 worker_opts: dict | None = None,
                 poll: float = 0.2) -> None:
        self.service = CampaignService(queue, cache,
                                       shard_members=shard_members,
                                       max_attempts=max_attempts,
                                       worker_opts=worker_opts)
        if metrics is None:
            metrics = default_queue_sibling(self.service.queue_path,
                                            "metrics.jsonl")
        self.metrics = MetricsLog(metrics)
        self.pool = WorkerPool(self.service.queue_path,
                               self.service.cache.root, workers,
                               worker_opts=worker_opts, poll=poll)
        self.service.pool = self.pool
        handler = type("_BoundHandler", (_Handler,),
                       {"service": self.service, "metrics": self.metrics})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._serving = False

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Serve in the calling thread (the ``pom serve`` foreground)."""
        self.pool.start()
        self._serving = True
        self.httpd.serve_forever(poll_interval=0.2)

    def start(self) -> "CampaignServer":
        """Serve from a background daemon thread (tests/benchmarks)."""
        self.pool.start()
        self._serving = True
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        kwargs={"poll_interval": 0.05},
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving, stop the worker pool, release the socket."""
        self.pool.stop()
        if self._serving:
            self._serving = False
            self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.httpd.server_close()

    def __enter__(self) -> "CampaignServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
