"""Experiment registry: artefact id -> callable.

The CLI and the benchmark harness resolve experiments through this
table, so the per-experiment index in DESIGN.md has a single source of
truth in code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .fig1a import run_fig1a
from .supermuc import run_supermuc
from .fig1b import run_fig1b
from .fig2 import run_fig2
from .sweeps import kuramoto_baseline, sweep_beta_kappa, sweep_sigma

__all__ = ["Experiment", "REGISTRY", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class Experiment:
    """A runnable paper artefact.

    Attributes
    ----------
    id:
        Artefact id (matches DESIGN.md / EXPERIMENTS.md).
    description:
        One-line summary.
    runner:
        Callable accepting ``out_dir=`` and returning a result object.
    """

    id: str
    description: str
    runner: Callable


REGISTRY: dict[str, Experiment] = {
    "fig1a": Experiment(
        id="FIG1A",
        description="Fig. 1(a): scalable vs bottlenecked interaction "
                    "potentials, first zero at 2*sigma/3",
        runner=run_fig1a,
    ),
    "fig1b": Experiment(
        id="FIG1B",
        description="Fig. 1(b): socket bandwidth scaling of STREAM / "
                    "slow Schönauer / PISOLVER on simulated Meggie",
        runner=run_fig1b,
    ),
    "fig2": Experiment(
        id="FIG2",
        description="Fig. 2: four-panel MPI-trace vs oscillator-model "
                    "analogy (idle waves, resync, wavefronts)",
        runner=run_fig2,
    ),
    "beta-kappa": Experiment(
        id="CLAIM-BK",
        description="Sec. 5.1.1: idle-wave speed and stiffness vs "
                    "beta*kappa",
        runner=sweep_beta_kappa,
    ),
    "sigma": Experiment(
        id="CLAIM-SIGMA",
        description="Sec. 5.2.2: asymptotic gap = 2*sigma/3, spread and "
                    "wave speed vs sigma",
        runner=sweep_sigma,
    ),
    "kuramoto": Experiment(
        id="CLAIM-KM",
        description="Sec. 2.2.2: plain Kuramoto baseline is unsuitable "
                    "(barrier-like sync, no desync, phase slips)",
        runner=kuramoto_baseline,
    ),
    "supermuc": Experiment(
        id="SUPERMUC",
        description="Artifact appendix: the same phenomenology on the "
                    "SuperMUC-NG machine spec (24-core Skylake sockets)",
        runner=run_supermuc,
    ),
}


def get_experiment(name: str) -> Experiment:
    """Look up an experiment by CLI name (case-insensitive)."""
    key = name.strip().lower()
    if key not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    return REGISTRY[key]


def list_experiments() -> list[tuple[str, str]]:
    """(cli-name, description) pairs, sorted."""
    return [(name, exp.description) for name, exp in sorted(REGISTRY.items())]
