"""Experiment registry: artefact id -> callable.

The CLI and the benchmark harness resolve experiments through this
table, so the per-experiment index in DESIGN.md has a single source of
truth in code.

Since PR 4 the entries also carry:

* ``spec_factory`` — for campaign-shaped artefacts (the Sec. 5 claim
  sweeps), a builder returning the experiment's declarative
  :class:`~repro.runs.ScenarioSpec`; ``pom plan <name>`` compiles it
  and ``pom run <name> --jobs/--cache`` executes it through the run
  orchestration layer.
* ``quick_kwargs`` — reduced-size runner arguments used by
  ``pom run <name> --quick`` and the CLI smoke tests, so every
  registry entry stays end-to-end runnable in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .fig1a import run_fig1a
from .supermuc import run_supermuc, supermuc_spec
from .fig1b import run_fig1b
from .fig2 import fig2_spec, run_fig2
from .sweeps import (
    beta_kappa_spec,
    kuramoto_baseline,
    sigma_spec,
    sweep_beta_kappa,
    sweep_sigma,
)

__all__ = ["Experiment", "REGISTRY", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class Experiment:
    """A runnable paper artefact.

    Attributes
    ----------
    id:
        Artefact id (matches DESIGN.md / EXPERIMENTS.md).
    description:
        One-line summary.
    runner:
        Callable accepting ``out_dir=`` and returning a result object.
    spec_factory:
        Optional builder returning the experiment's declarative
        :class:`~repro.runs.ScenarioSpec` (campaign-shaped artefacts
        only); accepts the same sizing kwargs as the runner.
    quick_kwargs:
        Reduced-size runner arguments for smoke runs (CI, ``--quick``).
    """

    id: str
    description: str
    runner: Callable
    spec_factory: Callable | None = None
    quick_kwargs: dict = field(default_factory=dict)


REGISTRY: dict[str, Experiment] = {
    "fig1a": Experiment(
        id="FIG1A",
        description="Fig. 1(a): scalable vs bottlenecked interaction "
                    "potentials, first zero at 2*sigma/3",
        runner=run_fig1a,
    ),
    "fig1b": Experiment(
        id="FIG1B",
        description="Fig. 1(b): socket bandwidth scaling of STREAM / "
                    "slow Schönauer / PISOLVER on simulated Meggie",
        runner=run_fig1b,
        quick_kwargs={"array_elements": 4e6, "n_iterations": 6},
    ),
    "fig2": Experiment(
        id="FIG2",
        description="Fig. 2: four-panel MPI-trace vs oscillator-model "
                    "analogy (idle waves, resync, wavefronts)",
        runner=run_fig2,
        spec_factory=fig2_spec,
        quick_kwargs={"n_ranks": 12, "n_iterations": 12},
    ),
    "beta-kappa": Experiment(
        id="CLAIM-BK",
        description="Sec. 5.1.1: idle-wave speed and stiffness vs "
                    "beta*kappa",
        runner=sweep_beta_kappa,
        spec_factory=beta_kappa_spec,
        quick_kwargs={"values": [0.0, 1.0, 4.0], "n_ranks": 8,
                      "t_end": 60.0},
    ),
    "sigma": Experiment(
        id="CLAIM-SIGMA",
        description="Sec. 5.2.2: asymptotic gap = 2*sigma/3, spread and "
                    "wave speed vs sigma",
        runner=sweep_sigma,
        spec_factory=sigma_spec,
        quick_kwargs={"sigmas": [0.5, 1.5], "n_ranks": 8, "t_end": 80.0},
    ),
    "kuramoto": Experiment(
        id="CLAIM-KM",
        description="Sec. 2.2.2: plain Kuramoto baseline is unsuitable "
                    "(barrier-like sync, no desync, phase slips)",
        runner=kuramoto_baseline,
        quick_kwargs={"n": 8, "t_end": 60.0},
    ),
    "supermuc": Experiment(
        id="SUPERMUC",
        description="Artifact appendix: the same phenomenology on the "
                    "SuperMUC-NG machine spec (24-core Skylake sockets)",
        runner=run_supermuc,
        spec_factory=supermuc_spec,
        quick_kwargs={"n_iterations": 30},
    ),
}


def get_experiment(name: str) -> Experiment:
    """Look up an experiment by CLI name (case-insensitive)."""
    key = name.strip().lower()
    if key not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    return REGISTRY[key]


def list_experiments() -> list[tuple[str, str]]:
    """(cli-name, description) pairs, sorted."""
    return [(name, exp.description) for name, exp in sorted(REGISTRY.items())]
