"""FIG2 — Fig. 2: the four-panel MPI-vs-model analogy.

The paper's central evaluation: four scenarios spanning
{scalable, bottlenecked} x {d = ±1, d = ±1,-2}, each shown as an MPI
trace (inset) plus the oscillator model's asymptotic phase state
(circle).  The phenomenology to reproduce:

* (a) scalable, d=±1 — a one-off delay launches an idle wave that
  ripples at the minimum speed (1 rank/iteration) and the system
  resynchronises;
* (b) bottlenecked, d=±1 — the idle wave has an extra decay channel and
  leaves behind a *computational wavefront* (persistent desync with
  |adjacent gap| = 2*sigma/3);
* (c) scalable, d=±1,-2 — same resynchronisation, faster wave;
* (d) bottlenecked, d=±1,-2 — stiffer communication: the delay
  propagates ~3x faster than (b) and the asymptotic phase spread is
  correspondingly smaller.

The sigma of the bottleneck potential encodes communication stiffness
(Sec. 5.2.2); following the paper's observation that the (b) -> (d)
topology change tripled the propagation speed, the defaults use
``sigma_d = sigma_b / 3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..analysis.desync import DesyncReport, analyze_desync
from ..analysis.idle_wave import TraceWaveFit, measure_trace_wave
from ..core import (
    BottleneckPotential,
    OneOffDelay,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    simulate,
)
from ..metrics.sync import SyncVerdict, classify
from ..metrics.wave import WaveFit, measure_wave_speed
from ..simulator.kernels import PiSolverKernel, StreamTriadKernel
from ..simulator.program import paper_program, run_with_one_off_delay
from ..viz.export import write_csv, write_matrix

__all__ = ["PanelResult", "Fig2Result", "fig2_spec", "run_panel",
           "run_fig2"]

#: time of the model-side one-off delay injection (seconds)
_T_INJECT = 20.0


def fig2_spec(
    *,
    n_ranks: int = 40,
    n_iterations: int = 50,
    sigma_b: float = 1.5,
    sigma_d: float | None = None,
    t_comp: float = 0.9,
    t_comm: float = 0.1,
    t_end: float = 1600.0,
    delay_rank: int = 4,
    seed: int = 0,
) -> "ScenarioSpec":
    """The model side of FIG2 as a declarative campaign.

    The distances x potential grid covers all four panels (plus the two
    off-panel combinations the paper does not show), so ``pom run fig2
    --queue/--cache`` exercises the panel phenomenology through the run
    orchestration layer.  The DES half of the figure (the MPI-trace
    insets) stays bound to the imperative :func:`run_fig2` runner —
    discrete-event traces have no declarative spec.

    ``n_iterations`` sizes only that DES half and is accepted (and
    ignored) here so the registry's ``quick_kwargs`` apply to both
    paths.
    """
    del n_iterations  # DES-side knob; the model campaign has no use for it
    from ..runs import ScenarioSpec

    if sigma_d is None:
        sigma_d = sigma_b / 3.0
    return ScenarioSpec(
        name="fig2-model",
        model={
            "topology": {"kind": "ring", "n": n_ranks, "distances": [1, -1]},
            "potential": {"kind": "tanh"},
            "t_comp": t_comp,
            "t_comm": t_comm,
            "delays": [{"rank": delay_rank, "t_start": _T_INJECT,
                        "delay": 0.5 * (t_comp + t_comm)}],
        },
        t_end=t_end,
        seed=seed,
        initial={"kind": "normal", "std": 1e-3, "seed": seed},
        axes=[
            ("topology.distances", [[1, -1], [1, -1, -2]]),
            ("potential", [{"kind": "tanh"},
                           {"kind": "bottleneck", "sigma": sigma_b},
                           {"kind": "bottleneck", "sigma": sigma_d}]),
        ],
        metrics=["order_parameter", "phase_spread", "wavefront"],
        trajectories="none",
    )


@dataclass
class PanelResult:
    """One Fig. 2 panel: model + trace phenomenology side by side.

    Attributes
    ----------
    name:
        Panel id ("fig2a".."fig2d").
    scalable:
        True for the PISOLVER/tanh panels.
    distances:
        The communication distance set.
    model_verdict:
        Asymptotic sync/desync classification of the POM run.
    model_wave:
        Idle-wave fit on the model phases.
    model_spread:
        Asymptotic co-moving phase spread (radians) of the run *with*
        the one-off delay (the injected deficit freezes extra domain
        walls into bottlenecked states, widening this value).
    model_spread_clean:
        Asymptotic spread of a companion run without the delay — the
        intrinsic spread of the scenario, the quantity behind the
        paper's "corresponding decrease in phase spread" comparison.
    model_gap:
        Asymptotic |adjacent gap| (radians; ~2*sigma/3 for bottleneck).
    trace_wave:
        Idle-wave fit on the DES trace pair.
    trace_desync:
        Wavefront report on the disturbed DES trace.
    sigma:
        Bottleneck sigma used (None for scalable panels).
    """

    name: str
    scalable: bool
    distances: tuple[int, ...]
    model_verdict: SyncVerdict
    model_wave: WaveFit
    model_spread: float
    model_spread_clean: float
    model_gap: float
    trace_wave: TraceWaveFit
    trace_desync: DesyncReport
    sigma: float | None

    @property
    def agrees_with_paper(self) -> bool:
        """Sync/desync verdicts on both sides match the paper's panel."""
        want_desync = not self.scalable
        model_ok = self.model_verdict.is_desynchronized == want_desync
        trace_ok = self.trace_desync.is_desynchronized == want_desync
        return model_ok and trace_ok


@dataclass
class Fig2Result:
    """All four panels plus the cross-panel ratios the paper quotes."""

    panels: dict[str, PanelResult]
    trace_speed_ratio_d_over_b: float
    model_speed_ratio_d_over_b: float
    model_spread_ratio_b_over_d: float

    def all_panels_agree(self) -> bool:
        """Every panel reproduces the paper's qualitative verdicts."""
        return all(p.agrees_with_paper for p in self.panels.values())


def run_panel(
    name: str,
    *,
    scalable: bool,
    distances: tuple[int, ...],
    sigma: float | None = None,
    n_ranks: int = 40,
    n_iterations: int = 50,
    t_comp: float = 0.9,
    t_comm: float = 0.1,
    t_end: float | None = None,
    delay_rank: int = 4,
    seed: int = 0,
    array_elements: float = 4e6,
    out_dir: str | Path | None = None,
) -> PanelResult:
    """Run one Fig. 2 panel on both the model and the simulator.

    ``t_end`` defaults per panel class: scalable panels need the long
    spectral-gap-limited resynchronisation horizon (4000 s at the
    default coupling), bottlenecked panels settle within 1600 s.
    """
    if t_end is None:
        t_end = 4000.0 if scalable else 1600.0
    # ----------------------------------------------------------- model
    topo = ring(n_ranks, distances)
    if scalable:
        potential = TanhPotential()
    else:
        if sigma is None:
            raise ValueError("bottlenecked panels need sigma")
        potential = BottleneckPotential(sigma=sigma)
    model = PhysicalOscillatorModel(
        topology=topo,
        potential=potential,
        t_comp=t_comp,
        t_comm=t_comm,
            delays=(OneOffDelay(rank=delay_rank, t_start=_T_INJECT,
                            delay=0.5 * (t_comp + t_comm)),),
    )
    # A tiny symmetric-breaking perturbation seeds desynchronisation in
    # the bottlenecked panels (the paper: "any slight disturbance blows
    # up"); it is irrelevant for the scalable ones.
    rng = np.random.default_rng(seed)
    theta0 = rng.normal(0.0, 1e-3, size=n_ranks)
    traj = simulate(model, t_end, theta0=theta0, seed=seed)

    verdict = classify(traj.ts, traj.thetas, model.omega)
    model_wave = measure_wave_speed(traj.ts, traj.thetas, model.omega,
                                    delay_rank, t_injection=_T_INJECT)

    # Companion run without the delay: the scenario's intrinsic
    # asymptotic spread (the delay scar otherwise widens it).
    model_clean = PhysicalOscillatorModel(
        topology=topo, potential=potential, t_comp=t_comp, t_comm=t_comm)
    traj_clean = simulate(model_clean, t_end, theta0=theta0, seed=seed)
    verdict_clean = classify(traj_clean.ts, traj_clean.thetas,
                             model_clean.omega)

    # ------------------------------------------------------------- DES
    kernel = (PiSolverKernel(1e6) if scalable
              else StreamTriadKernel(array_elements))
    spec = paper_program(kernel, n_ranks=n_ranks, n_iterations=n_iterations,
                         distances=distances)
    base, disturbed = run_with_one_off_delay(spec, delay_rank=delay_rank,
                                             delay_iteration=5, seed=seed)
    trace_wave = measure_trace_wave(base, disturbed, delay_rank)
    trace_desync = analyze_desync(disturbed,
                                  socket_size=spec.machine.cores_per_socket)

    panel = PanelResult(
        name=name,
        scalable=scalable,
        distances=distances,
        model_verdict=verdict,
        model_wave=model_wave,
        model_spread=verdict.final_spread,
        model_spread_clean=verdict_clean.final_spread,
        model_gap=verdict.mean_abs_gap,
        trace_wave=trace_wave,
        trace_desync=trace_desync,
        sigma=sigma,
    )

    if out_dir is not None:
        out = Path(out_dir)
        # Model phase view (lagger-normalised) and circle state.
        lag = traj.lagger_normalized()
        step = max(1, lag.shape[0] // 400)
        write_matrix(out / f"{name}_model_phases.csv", lag[::step],
                     meta={"experiment": name.upper(), "view":
                           "lagger-normalized phases (rows=time)"})
        final = np.mod(traj.final_phases, 2.0 * np.pi)
        write_csv(out / f"{name}_model_circle.csv",
                  {"rank": np.arange(n_ranks), "angle": final,
                   "x": np.cos(final), "y": np.sin(final)},
                  meta={"experiment": name.upper(), "view": "circle"})
        # Trace wait matrix (the ITAC-inset analogue).
        write_matrix(out / f"{name}_trace_wait.csv", disturbed.wait_matrix(),
                     meta={"experiment": name.upper(),
                           "view": "wait seconds (rows=iterations)"})
    return panel


def run_fig2(
    *,
    n_ranks: int = 40,
    n_iterations: int = 50,
    sigma_b: float = 1.5,
    sigma_d: float | None = None,
    t_end: float | None = None,
    seed: int = 0,
    out_dir: str | Path | None = None,
) -> Fig2Result:
    """Run all four panels and compute the cross-panel ratios."""
    if sigma_d is None:
        sigma_d = sigma_b / 3.0

    panels = {
        "fig2a": run_panel("fig2a", scalable=True, distances=(1, -1),
                           n_ranks=n_ranks, n_iterations=n_iterations,
                           t_end=t_end, seed=seed, out_dir=out_dir),
        "fig2b": run_panel("fig2b", scalable=False, distances=(1, -1),
                           sigma=sigma_b, n_ranks=n_ranks,
                           n_iterations=n_iterations, t_end=t_end, seed=seed,
                           out_dir=out_dir),
        "fig2c": run_panel("fig2c", scalable=True, distances=(1, -1, -2),
                           n_ranks=n_ranks, n_iterations=n_iterations,
                           t_end=t_end, seed=seed, out_dir=out_dir),
        "fig2d": run_panel("fig2d", scalable=False, distances=(1, -1, -2),
                           sigma=sigma_d, n_ranks=n_ranks,
                           n_iterations=n_iterations, t_end=t_end, seed=seed,
                           out_dir=out_dir),
    }

    b, d = panels["fig2b"], panels["fig2d"]
    trace_ratio = (d.trace_wave.speed_ranks_per_iteration
                   / b.trace_wave.speed_ranks_per_iteration)
    model_ratio = d.model_wave.speed / b.model_wave.speed \
        if (b.model_wave.speed and np.isfinite(b.model_wave.speed)) else float("nan")
    spread_ratio = b.model_spread_clean / d.model_spread_clean \
        if d.model_spread_clean > 0 else float("nan")

    result = Fig2Result(
        panels=panels,
        trace_speed_ratio_d_over_b=float(trace_ratio),
        model_speed_ratio_d_over_b=float(model_ratio),
        model_spread_ratio_b_over_d=float(spread_ratio),
    )

    if out_dir is not None:
        rows = []
        for p in result.panels.values():
            rows.append({
                "panel": p.name,
                "scalable": int(p.scalable),
                "model_state": p.model_verdict.state.value,
                "model_wave_speed": p.model_wave.speed,
                "model_spread": p.model_spread,
                "model_spread_clean": p.model_spread_clean,
                "model_abs_gap": p.model_gap,
                "trace_wave_ranks_per_iter": p.trace_wave.speed_ranks_per_iteration,
                "trace_desync_index": p.trace_desync.desync_index,
            })
        write_csv(Path(out_dir) / "fig2_summary.csv",
                  {k: [r[k] for r in rows] for k in rows[0]},
                  meta={
                      "experiment": "FIG2",
                      "trace_speed_ratio_d_over_b": result.trace_speed_ratio_d_over_b,
                      "model_speed_ratio_d_over_b": result.model_speed_ratio_d_over_b,
                      "model_spread_ratio_b_over_d": result.model_spread_ratio_b_over_d,
                  })
    return result
