"""FIG1A — Fig. 1(a): the two characteristic interaction potentials.

Regenerates the potential curves ``V(theta_j - theta_i)`` on
``[-10, 10]`` for the scalable (tanh, red in the paper) and the
bottlenecked (sine/sgn with horizon sigma, blue) potentials, and
verifies the structural facts the figure annotates: the bottleneck
curve's first zero (the stable desync state) sits at ``2*sigma/3``, the
curve is continuous at ``|d| = sigma``, and both potentials agree in
the long-range (attractive) limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.potentials import BottleneckPotential, TanhPotential
from ..viz.export import write_csv

__all__ = ["Fig1aResult", "run_fig1a"]


@dataclass
class Fig1aResult:
    """Curves and structural checks for Fig. 1(a).

    Attributes
    ----------
    dtheta:
        Phase-difference grid.
    scalable:
        tanh potential values.
    bottlenecked:
        Bottleneck potential values (one array per sigma).
    sigmas:
        The sigma values plotted.
    first_zeros:
        Numerically located first positive zero per sigma (should equal
        ``2*sigma/3``).
    continuity_gap:
        Max jump of the bottleneck curve at ``|d| = sigma`` (should be
        ~0: the paper's piecewise definition is continuous).
    """

    dtheta: np.ndarray
    scalable: np.ndarray
    bottlenecked: dict[float, np.ndarray] = field(default_factory=dict)
    sigmas: tuple[float, ...] = ()
    first_zeros: dict[float, float] = field(default_factory=dict)
    continuity_gap: float = 0.0


def _first_positive_zero(pot: BottleneckPotential, hi: float) -> float:
    """Bisection for the first positive zero of the potential."""
    # V(0+) < 0 (repulsive), V(sigma) = 1 > 0: bracket inside (0, sigma).
    lo, hi_ = 1e-9, pot.sigma - 1e-12
    flo = pot(lo)
    if flo >= 0:
        raise RuntimeError("potential not repulsive at the origin")
    for _ in range(200):
        mid = 0.5 * (lo + hi_)
        if pot(mid) < 0:
            lo = mid
        else:
            hi_ = mid
    return 0.5 * (lo + hi_)


def run_fig1a(
    sigmas: tuple[float, ...] = (1.0, 2.0, 4.0),
    *,
    n_points: int = 801,
    span: float = 10.0,
    out_dir: str | Path | None = None,
) -> Fig1aResult:
    """Generate the Fig. 1(a) curves (and optionally write CSV)."""
    dtheta = np.linspace(-span, span, n_points)
    tanh_pot = TanhPotential()
    scalable = np.asarray(tanh_pot(dtheta))

    bottlenecked: dict[float, np.ndarray] = {}
    first_zeros: dict[float, float] = {}
    cont_gap = 0.0
    for s in sigmas:
        pot = BottleneckPotential(sigma=s)
        bottlenecked[s] = np.asarray(pot(dtheta))
        first_zeros[s] = _first_positive_zero(pot, span)
        # Continuity at the horizon.
        eps = 1e-9
        gap = abs(float(pot(s - eps)) - float(pot(s + eps)))
        cont_gap = max(cont_gap, gap)

    result = Fig1aResult(
        dtheta=dtheta,
        scalable=scalable,
        bottlenecked=bottlenecked,
        sigmas=tuple(sigmas),
        first_zeros=first_zeros,
        continuity_gap=cont_gap,
    )

    if out_dir is not None:
        cols = {"dtheta": dtheta, "V_scalable_tanh": scalable}
        for s in sigmas:
            cols[f"V_bottleneck_sigma{s:g}"] = bottlenecked[s]
        write_csv(
            Path(out_dir) / "fig1a_potentials.csv",
            cols,
            meta={
                "experiment": "FIG1A",
                "first_zeros": {f"{s:g}": first_zeros[s] for s in sigmas},
                "theory_first_zero": {f"{s:g}": 2 * s / 3 for s in sigmas},
            },
        )
    return result
