"""SUPERMUC — the artifact appendix's second system (SuperMUC-NG).

The paper presents Meggie results in the main text and refers to the
artifact appendix for SuperMUC-NG (dual 24-core Skylake, ~105 GB/s per
socket).  This experiment reruns the Fig. 2(b)-style scenario on the
SuperMUC machine spec and checks that the phenomenology is machine-
independent (the paper's implicit claim in validating on two systems):

* STREAM saturates the wider socket at a *higher* core count but the
  same bandwidth-ceiling mechanism applies;
* the memory-bound run desynchronises after a one-off delay while the
  compute-bound run resynchronises, exactly as on Meggie.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..analysis.bandwidth import ScalingCurve, measure_scaling
from ..analysis.desync import DesyncReport, analyze_desync
from ..analysis.idle_wave import TraceWaveFit, measure_trace_wave
from ..simulator.kernels import PiSolverKernel, StreamTriadKernel
from ..simulator.machine import MachineSpec
from ..simulator.program import paper_program, run_with_one_off_delay
from ..viz.export import write_csv

__all__ = ["SupermucResult", "run_supermuc", "supermuc_spec"]


def supermuc_spec(
    *,
    n_ranks: int = 48,
    n_iterations: int = 70,
    sigma: float = 1.5,
    t_comp: float = 0.9,
    t_comm: float = 0.1,
    t_end: float = 1600.0,
    delay_rank: int = 4,
    seed: int = 0,
    n_seeds: int = 2,
) -> "ScenarioSpec":
    """The model-side SUPERMUC campaign as a declarative spec.

    A 48-rank ring (one dual-socket SuperMUC-NG node, rank-per-core)
    swept over {scalable, bottlenecked} potentials x noise seeds — the
    machine-independence claim expressed as a campaign: the memory-bound
    member desynchronises after the one-off delay for every seed while
    the compute-bound member resynchronises.  The DES half (bandwidth
    scaling on the 24-core socket) stays with :func:`run_supermuc`;
    ``n_iterations`` sizes only that half and is accepted (and ignored)
    here so the registry's ``quick_kwargs`` apply to both paths.
    """
    del n_iterations
    from ..runs import ScenarioSpec

    return ScenarioSpec(
        name="supermuc-model",
        model={
            "topology": {"kind": "ring", "n": n_ranks, "distances": [1, -1]},
            "potential": {"kind": "tanh"},
            "t_comp": t_comp,
            "t_comm": t_comm,
            "delays": [{"rank": delay_rank, "t_start": 20.0,
                        "delay": 0.5 * (t_comp + t_comm)}],
        },
        t_end=t_end,
        seed=seed,
        initial={"kind": "normal", "std": 1e-3, "seed": seed},
        axes=[
            ("potential", [{"kind": "tanh"},
                           {"kind": "bottleneck", "sigma": sigma}]),
            ("seed", [seed + k for k in range(n_seeds)]),
        ],
        metrics=["order_parameter", "phase_spread", "wavefront"],
        trajectories="none",
    )


@dataclass
class SupermucResult:
    """Cross-machine validation summary.

    Attributes
    ----------
    stream_curve:
        STREAM bandwidth scaling on one SuperMUC-NG socket.
    stream_wave:
        Idle-wave fit for the memory-bound run.
    stream_desync:
        Wavefront report for the memory-bound run.
    pisolver_desync:
        Wavefront report for the compute-bound run (should be ~0).
    machine:
        The machine metadata.
    """

    stream_curve: ScalingCurve
    stream_wave: TraceWaveFit
    stream_desync: DesyncReport
    pisolver_desync: DesyncReport
    machine: dict

    @property
    def phenomenology_matches_meggie(self) -> bool:
        """Same verdicts as the Meggie runs of FIG2 (a)/(b)."""
        return (self.stream_desync.is_desynchronized
                and not self.pisolver_desync.is_desynchronized)


def run_supermuc(
    *,
    n_ranks: int = 48,
    n_iterations: int = 70,
    array_elements: float = 4e6,
    seed: int = 0,
    out_dir: str | Path | None = None,
) -> SupermucResult:
    """Rerun the headline scenario on the SuperMUC-NG machine spec.

    ``n_iterations`` defaults high enough that the idle wave of the
    compute-bound control run finishes wrapping the 48-rank ring
    (~24 + 5 iterations) well before the asymptotic tail window.
    """
    machine = MachineSpec.supermuc_ng()

    # Socket scalability of STREAM on the 24-core socket.
    stream_curve = measure_scaling(StreamTriadKernel(array_elements),
                                   machine, n_iterations=6)

    # Memory-bound delay scenario (one node, both sockets).
    spec_mem = paper_program(StreamTriadKernel(array_elements),
                             n_ranks=n_ranks, n_iterations=n_iterations,
                             distances=(1, -1), machine=machine)
    base_m, dist_m = run_with_one_off_delay(spec_mem, delay_rank=4,
                                            delay_iteration=5, seed=seed)
    stream_wave = measure_trace_wave(base_m, dist_m, 4)
    stream_desync = analyze_desync(dist_m,
                                   socket_size=machine.cores_per_socket)

    # Compute-bound control.
    spec_cpu = paper_program(PiSolverKernel(1e6), n_ranks=n_ranks,
                             n_iterations=n_iterations, distances=(1, -1),
                             machine=machine)
    base_c, dist_c = run_with_one_off_delay(spec_cpu, delay_rank=4,
                                            delay_iteration=5, seed=seed)
    pisolver_desync = analyze_desync(dist_c,
                                     socket_size=machine.cores_per_socket)

    result = SupermucResult(
        stream_curve=stream_curve,
        stream_wave=stream_wave,
        stream_desync=stream_desync,
        pisolver_desync=pisolver_desync,
        machine=machine.describe(),
    )

    if out_dir is not None:
        write_csv(
            Path(out_dir) / "supermuc_stream_scaling.csv",
            {"ranks_per_socket": stream_curve.ranks,
             "bandwidth_GBs": stream_curve.bandwidth_GBs,
             "analytic_GBs": stream_curve.analytic_GBs},
            meta={"experiment": "SUPERMUC", "machine": result.machine,
                  "saturation_ranks": stream_curve.saturation_ranks},
        )
    return result
