"""FIG1B — Fig. 1(b): socket-level scalability of the microbenchmarks.

Reproduces the memory-bandwidth-vs-cores curves on a (simulated) Meggie
socket for the paper's three kernels:

* STREAM triad — saturates the 68 GB/s socket at ~5 cores,
* "slow" Schönauer triad — lower per-core demand (cosine + division),
  saturates near the full socket,
* PISOLVER — no memory traffic, scales linearly (plotted here as
  per-sweep runtime constancy and zero bandwidth footprint).

The paper's claims checked downstream: the *ordering* of single-core
bandwidths (STREAM > Schönauer > PISOLVER~0), the saturation of both
triads at the same ceiling, and STREAM saturating at fewer cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..analysis.bandwidth import ScalingCurve, measure_scaling
from ..simulator.kernels import (
    PiSolverKernel,
    SchoenauerTriadKernel,
    StreamTriadKernel,
)
from ..simulator.machine import MachineSpec
from ..viz.export import write_csv

__all__ = ["Fig1bResult", "run_fig1b"]


@dataclass
class Fig1bResult:
    """The three scaling curves of Fig. 1(b).

    Attributes
    ----------
    stream, schoenauer, pisolver:
        Per-kernel curves (ranks, achieved aggregate bandwidth, sweep
        time, analytic expectation).
    machine:
        The machine metadata.
    """

    stream: ScalingCurve
    schoenauer: ScalingCurve
    pisolver: ScalingCurve
    machine: dict

    def summary_rows(self) -> list[dict]:
        """Flat rows (one per kernel x occupancy) for reports."""
        rows = []
        for curve in (self.stream, self.schoenauer, self.pisolver):
            for n, bw, t in zip(curve.ranks, curve.bandwidth_GBs,
                                curve.time_per_iteration):
                rows.append({
                    "kernel": curve.kernel_name,
                    "ranks_per_socket": n,
                    "bandwidth_GBs": bw,
                    "time_per_iteration": t,
                })
        return rows


def run_fig1b(
    *,
    machine: MachineSpec | None = None,
    array_elements: float = 4e6,
    n_iterations: int = 8,
    out_dir: str | Path | None = None,
) -> Fig1bResult:
    """Run the occupancy sweep for all three kernels.

    ``array_elements`` scales the triad working sets; the default keeps
    the DES fast while staying far above any cache (the kernel model has
    no cache anyway — the >=10x LLC rule of the paper is honoured by
    construction).
    """
    m = machine or MachineSpec.meggie()
    stream = measure_scaling(StreamTriadKernel(array_elements), m,
                             n_iterations=n_iterations)
    schoen = measure_scaling(SchoenauerTriadKernel(array_elements), m,
                             n_iterations=n_iterations)
    pisolver = measure_scaling(PiSolverKernel(1e6), m,
                               n_iterations=n_iterations)
    result = Fig1bResult(stream=stream, schoenauer=schoen, pisolver=pisolver,
                         machine=m.describe())

    if out_dir is not None:
        for curve in (stream, schoen, pisolver):
            write_csv(
                Path(out_dir) / f"fig1b_{curve.kernel_name}.csv",
                {
                    "ranks_per_socket": curve.ranks,
                    "bandwidth_GBs": curve.bandwidth_GBs,
                    "analytic_GBs": curve.analytic_GBs,
                    "time_per_iteration_s": curve.time_per_iteration,
                },
                meta={
                    "experiment": "FIG1B",
                    "kernel": curve.kernel_name,
                    "saturation_ranks": curve.saturation_ranks,
                    "machine": result.machine,
                },
            )
    return result
