"""Paper-artefact reproductions: one module per figure/claim.

* :mod:`fig1a` — the two interaction potentials (Fig. 1(a));
* :mod:`fig1b` — socket bandwidth scaling (Fig. 1(b));
* :mod:`fig2` — the four-panel MPI-vs-model analogy (Fig. 2);
* :mod:`sweeps` — beta*kappa sweep (Sec. 5.1.1), sigma sweep
  (Sec. 5.2.2), and the plain-Kuramoto baseline (Sec. 2.2.2);
* :mod:`registry` — id -> runner table used by the CLI and benches.
"""

from .fig1a import Fig1aResult, run_fig1a
from .fig1b import Fig1bResult, run_fig1b
from .fig2 import Fig2Result, PanelResult, run_fig2, run_panel
from .registry import REGISTRY, Experiment, get_experiment, list_experiments
from .supermuc import SupermucResult, run_supermuc
from .sweeps import (
    BetaKappaSweep,
    KuramotoBaseline,
    SigmaSweep,
    kuramoto_baseline,
    sweep_beta_kappa,
    sweep_sigma,
)

__all__ = [
    "Fig1aResult", "run_fig1a",
    "Fig1bResult", "run_fig1b",
    "Fig2Result", "PanelResult", "run_fig2", "run_panel",
    "REGISTRY", "Experiment", "get_experiment", "list_experiments",
    "SupermucResult", "run_supermuc",
    "BetaKappaSweep", "KuramotoBaseline", "SigmaSweep",
    "kuramoto_baseline", "sweep_beta_kappa", "sweep_sigma",
]
