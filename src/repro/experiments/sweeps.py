"""Parameter sweeps for the in-text claims (Sec. 5.1 / 5.2).

CLAIM-BK  — idle-wave speed grows monotonically with the coupling knob
            ``beta*kappa``; ``beta*kappa ~ 0`` means free-running
            processes (no wave), large values a stiff, strongly
            synchronising system.
CLAIM-SIGMA — the bottleneck horizon ``sigma`` sets both the asymptotic
            phase gap (``2*sigma/3``) and (inversely) the idle-wave
            speed: small sigma = stiff code, fast waves, small spread.
CLAIM-KM  — the plain Kuramoto model cannot reproduce the parallel-
            program phenomenology: all-to-all coupling synchronises in
            O(1) cycles (a per-cycle barrier), and no stable
            desynchronised state exists for any K > 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core import (
    BottleneckPotential,
    KuramotoModel,
    OneOffDelay,
    PhysicalOscillatorModel,
    TanhPotential,
    ring,
    simulate,
    simulate_kuramoto,
)
from ..metrics.order_parameter import order_parameter_series
from ..metrics.sync import classify, settle_time
from ..metrics.wave import measure_wave_speed
from ..runs import ScenarioSpec, run_spec
from ..viz.export import write_csv

__all__ = [
    "BetaKappaSweep",
    "SigmaSweep",
    "KuramotoBaseline",
    "beta_kappa_spec",
    "sigma_spec",
    "sweep_beta_kappa",
    "sweep_sigma",
    "kuramoto_baseline",
]

_T_INJECT = 20.0


def beta_kappa_spec(
    values: np.ndarray | list[float] | None = None,
    *,
    n_ranks: int = 24,
    t_comp: float = 0.9,
    t_comm: float = 0.1,
    t_end: float = 300.0,
    delay_rank: int = 4,
    seed: int = 0,
) -> ScenarioSpec:
    """The CLAIM-BK campaign as a declarative :class:`ScenarioSpec`.

    The ``v_p_override`` axis carries ``beta*kappa / T`` per grid point;
    everything else (ring, tanh potential, the one-off delay) is the
    shared base model.
    """
    if values is None:
        values = np.array([0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0])
    period = t_comp + t_comm
    return ScenarioSpec(
        name="sweep-beta-kappa",
        model={
            "topology": {"kind": "ring", "n": n_ranks, "distances": [1, -1]},
            "potential": {"kind": "tanh"},
            "t_comp": t_comp,
            "t_comm": t_comm,
            "delays": [{"rank": delay_rank, "t_start": _T_INJECT,
                        "delay": 2.0 * period}],
        },
        t_end=t_end,
        seed=seed,
        axes=[("v_p_override", [float(bk) / period for bk in values])],
    )


def sigma_spec(
    sigmas: np.ndarray | list[float] | None = None,
    *,
    n_ranks: int = 24,
    t_comp: float = 0.9,
    t_comm: float = 0.1,
    t_end: float = 500.0,
    delay_rank: int = 4,
    seed: int = 0,
) -> ScenarioSpec:
    """The CLAIM-SIGMA campaign as a declarative :class:`ScenarioSpec`."""
    if sigmas is None:
        sigmas = np.array([0.25, 0.5, 1.0, 1.5, 2.0, 3.0])
    return ScenarioSpec(
        name="sweep-sigma",
        model={
            "topology": {"kind": "ring", "n": n_ranks, "distances": [1, -1]},
            "potential": {"kind": "bottleneck"},
            "t_comp": t_comp,
            "t_comm": t_comm,
            "delays": [{"rank": delay_rank, "t_start": _T_INJECT,
                        "delay": 2.0 * (t_comp + t_comm)}],
        },
        t_end=t_end,
        seed=seed,
        initial={"kind": "normal", "std": 1e-3, "seed": seed},
        axes=[("potential.sigma", [float(s) for s in sigmas])],
    )


@dataclass
class BetaKappaSweep:
    """CLAIM-BK result: wave speed and settle time vs beta*kappa.

    Attributes
    ----------
    beta_kappa:
        The swept coupling values.
    wave_speed:
        Idle-wave speed (ranks/s) per value (nan = no wave detected).
    resync_time:
        Settle time back to synchrony after the one-off delay (s).
    spread_peak:
        Maximum co-moving spread during the transient (rad).
    """

    beta_kappa: np.ndarray
    wave_speed: np.ndarray
    resync_time: np.ndarray
    spread_peak: np.ndarray


def sweep_beta_kappa(
    values: np.ndarray | list[float] | None = None,
    *,
    n_ranks: int = 24,
    t_comp: float = 0.9,
    t_comm: float = 0.1,
    t_end: float = 300.0,
    delay_rank: int = 4,
    seed: int = 0,
    out_dir: str | Path | None = None,
    batched: bool = True,
    jobs: int = 1,
    shard_members: int | None = None,
    cache=None,
    resume: bool = True,
) -> BetaKappaSweep:
    """Sweep the coupling strength (via ``v_p_override = beta*kappa/T``).

    Uses a fixed next-neighbour ring and the scalable potential so only
    the coupling knob varies (the paper's Sec. 5.1.1 story).  With
    ``batched=True`` (default) the campaign routes through the run
    orchestration layer (:mod:`repro.runs`): the grid compiles to
    batched shards, executes on ``jobs`` processes, and — with
    ``cache=`` — replays/resumes from the content-addressed result
    store.  The default ``shard_members=None`` fuses the whole grid
    into one stacked solve, reproducing the PR-2 batched path bit for
    bit; bounded shards trade that mesh identity (dopri results then
    agree within solver tolerances) for multiprocess scaling.  The
    looped path remains available for cross-checking.
    """
    if values is None:
        values = np.array([0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0])
    values = np.asarray(values, dtype=float)
    period = t_comp + t_comm

    if batched:
        run = run_spec(
            beta_kappa_spec(values, n_ranks=n_ranks, t_comp=t_comp,
                            t_comm=t_comm, t_end=t_end,
                            delay_rank=delay_rank, seed=seed),
            jobs=jobs, shard_members=shard_members, cache=cache,
            resume=resume)
        trajs = run.trajectories()
    else:
        topology = ring(n_ranks, (1, -1))
        models = [
            PhysicalOscillatorModel(
                topology=topology,
                potential=TanhPotential(),
                t_comp=t_comp,
                t_comm=t_comm,
                v_p_override=bk / period,
                delays=(OneOffDelay(rank=delay_rank, t_start=_T_INJECT,
                                    delay=2.0 * period),),
            )
            for bk in values
        ]
        trajs = [simulate(model, t_end, seed=seed) for model in models]

    speeds, resync, peaks = [], [], []
    for traj in trajs:
        model = traj.model
        wave = measure_wave_speed(traj.ts, traj.thetas, model.omega,
                                  delay_rank, t_injection=_T_INJECT)
        speeds.append(wave.speed)
        st = settle_time(traj.ts, traj.thetas, model.omega, tol=0.1)
        # Time from the injection, not from t=0.
        resync.append(st - _T_INJECT if np.isfinite(st) else np.inf)
        x = traj.comoving_phases()
        peaks.append(float((x.max(axis=1) - x.min(axis=1)).max()))

    result = BetaKappaSweep(
        beta_kappa=values,
        wave_speed=np.asarray(speeds),
        resync_time=np.asarray(resync),
        spread_peak=np.asarray(peaks),
    )
    if out_dir is not None:
        write_csv(Path(out_dir) / "sweep_beta_kappa.csv",
                  {"beta_kappa": values, "wave_speed_ranks_per_s": speeds,
                   "resync_time_s": resync, "spread_peak_rad": peaks},
                  meta={"experiment": "CLAIM-BK", "n_ranks": n_ranks})
    return result


@dataclass
class SigmaSweep:
    """CLAIM-SIGMA result: asymptotics vs the interaction horizon.

    Attributes
    ----------
    sigma:
        Swept horizon values.
    mean_abs_gap:
        Asymptotic |adjacent gap| (theory: ``2*sigma/3``).
    theory_gap:
        ``2*sigma/3``.
    phase_spread:
        Asymptotic co-moving spread (grows with sigma).
    wave_speed:
        Idle-wave speed from a one-off delay on the desynchronised
        background (decreases with sigma).
    """

    sigma: np.ndarray
    mean_abs_gap: np.ndarray
    theory_gap: np.ndarray
    phase_spread: np.ndarray
    wave_speed: np.ndarray


def sweep_sigma(
    sigmas: np.ndarray | list[float] | None = None,
    *,
    n_ranks: int = 24,
    t_comp: float = 0.9,
    t_comm: float = 0.1,
    t_end: float = 500.0,
    delay_rank: int = 4,
    seed: int = 0,
    out_dir: str | Path | None = None,
    batched: bool = True,
    jobs: int = 1,
    shard_members: int | None = None,
    cache=None,
    resume: bool = True,
) -> SigmaSweep:
    """Sweep the bottleneck horizon sigma on a next-neighbour ring.

    With ``batched=True`` (default) the campaign routes through the run
    orchestration layer (:mod:`repro.runs`) — one stacked super-state
    by default (the potentials differ per member; the heterogeneous
    backend groups them), sharded across ``jobs`` processes when
    ``shard_members`` bounds the shard size, cached/resumable with
    ``cache=``.  ``batched=False`` runs the original point-by-point
    loop.
    """
    if sigmas is None:
        sigmas = np.array([0.25, 0.5, 1.0, 1.5, 2.0, 3.0])
    sigmas = np.asarray(sigmas, dtype=float)

    if batched:
        run = run_spec(
            sigma_spec(sigmas, n_ranks=n_ranks, t_comp=t_comp,
                       t_comm=t_comm, t_end=t_end, delay_rank=delay_rank,
                       seed=seed),
            jobs=jobs, shard_members=shard_members, cache=cache,
            resume=resume)
        trajs = run.trajectories()
    else:
        topology = ring(n_ranks, (1, -1))
        rng = np.random.default_rng(seed)
        theta0 = rng.normal(0.0, 1e-3, size=n_ranks)
        models = [
            PhysicalOscillatorModel(
                topology=topology,
                potential=BottleneckPotential(sigma=float(s)),
                t_comp=t_comp,
                t_comm=t_comm,
                delays=(OneOffDelay(rank=delay_rank, t_start=_T_INJECT,
                                    delay=2.0 * (t_comp + t_comm)),),
            )
            for s in sigmas
        ]
        trajs = [simulate(model, t_end, theta0=theta0, seed=seed)
                 for model in models]

    gaps, spreads, speeds = [], [], []
    for traj in trajs:
        model = traj.model
        verdict = classify(traj.ts, traj.thetas, model.omega)
        gaps.append(verdict.mean_abs_gap)
        spreads.append(verdict.final_spread)
        wave = measure_wave_speed(traj.ts, traj.thetas, model.omega,
                                  delay_rank, t_injection=_T_INJECT)
        speeds.append(wave.speed)

    result = SigmaSweep(
        sigma=sigmas,
        mean_abs_gap=np.asarray(gaps),
        theory_gap=2.0 * sigmas / 3.0,
        phase_spread=np.asarray(spreads),
        wave_speed=np.asarray(speeds),
    )
    if out_dir is not None:
        write_csv(Path(out_dir) / "sweep_sigma.csv",
                  {"sigma": sigmas, "mean_abs_gap": gaps,
                   "theory_gap": result.theory_gap,
                   "phase_spread": spreads, "wave_speed": speeds},
                  meta={"experiment": "CLAIM-SIGMA", "n_ranks": n_ranks})
    return result


@dataclass
class KuramotoBaseline:
    """CLAIM-KM result: why the plain Kuramoto model is unsuitable.

    Attributes
    ----------
    km_sync_time:
        Time for the all-to-all Kuramoto model to reach r > 0.99 from a
        perturbed state — effectively immediate (the "barrier").
    pom_sync_time:
        Same threshold for the sparse-ring POM — finite, topology-
        limited relaxation.
    km_final_gap:
        Asymptotic |gap| of the Kuramoto model started from the
        ring-compatible zigzag wavefront (gaps alternating ±2*sigma/3):
        the sinusoidal coupling collapses it towards synchrony — the KM
        has no stable desynchronised state for K > 0.
    pom_final_gap:
        Asymptotic |gap| of the bottleneck POM from the same start
        (holds the 2*sigma/3 wavefront: it is a stable equilibrium).
    km_phase_slip_invariance:
        Max RHS difference when shifting one oscillator by 2*pi —
        exactly 0 for Kuramoto (phase slips allowed), > 0 for the POM.
    pom_phase_slip_invariance:
        Same probe for the POM potentials (tanh): non-zero.
    """

    km_sync_time: float
    pom_sync_time: float
    km_final_gap: float
    pom_final_gap: float
    km_phase_slip_invariance: float
    pom_phase_slip_invariance: float


def kuramoto_baseline(
    *,
    n: int = 24,
    coupling_k: float = 2.0,
    sigma: float = 1.5,
    t_end: float = 300.0,
    seed: int = 0,
    out_dir: str | Path | None = None,
) -> KuramotoBaseline:
    """Run the three CLAIM-KM probes."""
    rng = np.random.default_rng(seed)
    theta0 = rng.uniform(-0.5, 0.5, size=n)

    # 1. Sync speed: all-to-all KM vs sparse-ring POM (same frequency).
    km = KuramotoModel(n=n, coupling_k=coupling_k, omega=2.0 * np.pi)
    sol = simulate_kuramoto(km, t_end, theta0=theta0)
    r = order_parameter_series(sol.ys)
    km_sync = _first_crossing(sol.ts, r, 0.99)

    pom = PhysicalOscillatorModel(
        topology=ring(n, (1, -1)), potential=TanhPotential(),
        t_comp=0.9, t_comm=0.1,
    )
    traj = simulate(pom, t_end, theta0=theta0, seed=seed)
    rp = order_parameter_series(traj.thetas)
    pom_sync = _first_crossing(traj.ts, rp, 0.99)

    # 2. Desync capability: start in the ring-compatible zigzag
    # wavefront (gaps alternating +-2*sigma/3) and watch the gap.
    gap0 = 2.0 * sigma / 3.0
    zigzag = np.tile([0.0, gap0], n // 2 + 1)[:n]
    sol2 = simulate_kuramoto(KuramotoModel(n=n, coupling_k=coupling_k,
                                           omega=2.0 * np.pi),
                             t_end, theta0=zigzag)
    km_gap = float(np.abs(np.diff(sol2.ys[-1])).mean())
    pom2 = PhysicalOscillatorModel(
        topology=ring(n, (1, -1)), potential=BottleneckPotential(sigma=sigma),
        t_comp=0.9, t_comm=0.1,
    )
    traj2 = simulate(pom2, t_end, theta0=zigzag, seed=seed)
    v2 = classify(traj2.ts, traj2.thetas, pom2.omega)
    pom_gap = v2.mean_abs_gap

    # 3. Phase slips: shift one oscillator by 2*pi and compare the RHS.
    theta = rng.uniform(0, 2 * np.pi, size=n)
    shifted = theta.copy()
    shifted[0] += 2.0 * np.pi
    km_slip = float(np.abs(km.rhs(0.0, theta) - km.rhs(0.0, shifted)).max())
    realized = pom.realize(1.0, rng=0)
    pom_slip = float(np.abs(realized.rhs(0.0, theta)
                            - realized.rhs(0.0, shifted)).max())

    result = KuramotoBaseline(
        km_sync_time=km_sync,
        pom_sync_time=pom_sync,
        km_final_gap=km_gap,
        pom_final_gap=pom_gap,
        km_phase_slip_invariance=km_slip,
        pom_phase_slip_invariance=pom_slip,
    )
    if out_dir is not None:
        write_csv(Path(out_dir) / "kuramoto_baseline.csv",
                  {"metric": ["sync_time_s", "final_gap_rad",
                              "phase_slip_rhs_change"],
                   "kuramoto": [km_sync, km_gap, km_slip],
                   "pom": [pom_sync, pom_gap, pom_slip]},
                  meta={"experiment": "CLAIM-KM", "n": n, "K": coupling_k,
                        "sigma": sigma})
    return result


def _first_crossing(ts: np.ndarray, series: np.ndarray,
                    threshold: float) -> float:
    """First time the series exceeds the threshold and stays there."""
    above = series >= threshold
    if not above[-1]:
        return float("inf")
    idx = len(above) - 1
    while idx > 0 and above[idx - 1]:
        idx -= 1
    return float(ts[idx])
