"""Cluster hardware description.

A :class:`MachineSpec` captures the handful of hardware parameters the
paper's phenomenology depends on: the socket core count, the per-socket
saturated memory bandwidth, the single-core achievable bandwidth, and
network latency/bandwidth.  :meth:`MachineSpec.meggie` reproduces the
paper's primary testbed (Sec. 4):

    "Meggie" — dual-socket nodes with ten-core Intel Xeon Broadwell
    E5-2630v4 (2.2 GHz), 68 GB/s per-socket memory bandwidth, 100 Gbit/s
    Omni-Path fat-tree interconnect.

Rank placement is block ("compact") by default — ranks fill socket 0's
cores, then socket 1, etc. — matching how the paper pins 40 ranks onto
4 sockets (10 per socket).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "Placement"]


@dataclass(frozen=True)
class Placement:
    """Where one rank lives."""

    rank: int
    node: int
    socket: int       # global socket index (node * sockets_per_node + local)
    core: int         # core index within the socket


@dataclass(frozen=True)
class MachineSpec:
    """Hardware parameters of the simulated cluster.

    Attributes
    ----------
    nodes:
        Number of nodes.
    sockets_per_node:
        CPU sockets per node.
    cores_per_socket:
        Physical cores per socket (SMT is ignored; the paper does not
        use it).
    socket_bandwidth:
        Saturated per-socket memory bandwidth in bytes/s.
    core_bandwidth:
        Single-core achievable memory bandwidth in bytes/s (one core
        cannot saturate the socket on modern server CPUs — this is why
        STREAM scales up to a few cores before the socket ceiling bites).
    core_flops:
        Per-core peak double-precision flops/s (used by compute-bound
        kernel time models).
    network_latency:
        Point-to-point message latency in seconds.
    network_bandwidth:
        Point-to-point bandwidth in bytes/s.
    """

    nodes: int = 1
    sockets_per_node: int = 2
    cores_per_socket: int = 10
    socket_bandwidth: float = 68.0e9
    core_bandwidth: float = 14.0e9
    core_flops: float = 35.2e9
    network_latency: float = 1.5e-6
    network_bandwidth: float = 12.5e9   # 100 Gbit/s

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.sockets_per_node < 1 or self.cores_per_socket < 1:
            raise ValueError("machine must have at least one node/socket/core")
        if self.socket_bandwidth <= 0 or self.core_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.core_bandwidth > self.socket_bandwidth:
            raise ValueError("core bandwidth cannot exceed socket bandwidth")
        if self.core_flops <= 0:
            raise ValueError("core_flops must be positive")
        if self.network_latency < 0 or self.network_bandwidth <= 0:
            raise ValueError("invalid network parameters")

    # ------------------------------------------------------------------
    @classmethod
    def meggie(cls) -> "MachineSpec":
        """The paper's Meggie cluster (Sec. 4).

        Ten-core Broadwell E5-2630v4 @ 2.2 GHz, 68 GB/s per socket,
        100 Gbit/s Omni-Path.  Single-core STREAM bandwidth on this CPU
        is ~14 GB/s, so a socket saturates at ~5 cores — consistent with
        the paper's Fig. 1(b).
        """
        return cls()

    @classmethod
    def supermuc_ng(cls) -> "MachineSpec":
        """SuperMUC-NG node (the paper's second system, artifact appendix):
        dual 24-core Skylake Platinum 8174, ~105 GB/s per socket,
        OmniPath 100 Gbit/s."""
        return cls(
            nodes=1,
            sockets_per_node=2,
            cores_per_socket=24,
            socket_bandwidth=105.0e9,
            core_bandwidth=13.0e9,
            core_flops=70.4e9,  # AVX-512
            network_latency=1.5e-6,
            network_bandwidth=12.5e9,
        )

    # ------------------------------------------------------------------
    @property
    def total_sockets(self) -> int:
        """All sockets in the machine."""
        return self.nodes * self.sockets_per_node

    @property
    def total_cores(self) -> int:
        """All cores in the machine."""
        return self.total_sockets * self.cores_per_socket

    def place_ranks(self, n_ranks: int, *, strategy: str = "block",
                    ranks_per_socket: int | None = None) -> list[Placement]:
        """Map ranks onto cores.

        ``strategy="block"`` (default): fill each socket before moving to
        the next — the paper's pinning.  ``strategy="round_robin"``:
        scatter ranks across sockets.  ``ranks_per_socket`` restricts
        occupancy (e.g. 9 ranks on a 10-core socket for the Fig. 1(b)
        sweep).
        """
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        per_socket = ranks_per_socket or self.cores_per_socket
        if per_socket > self.cores_per_socket:
            raise ValueError(
                f"ranks_per_socket={per_socket} exceeds cores_per_socket="
                f"{self.cores_per_socket}"
            )
        capacity = self.total_sockets * per_socket
        if n_ranks > capacity:
            raise ValueError(
                f"{n_ranks} ranks exceed capacity {capacity} "
                f"({self.total_sockets} sockets x {per_socket})"
            )

        placements: list[Placement] = []
        if strategy == "block":
            for r in range(n_ranks):
                sock = r // per_socket
                core = r % per_socket
                node = sock // self.sockets_per_node
                placements.append(Placement(rank=r, node=node, socket=sock,
                                            core=core))
        elif strategy == "round_robin":
            counts = [0] * self.total_sockets
            for r in range(n_ranks):
                sock = r % self.total_sockets
                core = counts[sock]
                counts[sock] += 1
                node = sock // self.sockets_per_node
                placements.append(Placement(rank=r, node=node, socket=sock,
                                            core=core))
        else:
            raise ValueError(f"unknown placement strategy {strategy!r}")
        return placements

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {
            "nodes": self.nodes,
            "sockets_per_node": self.sockets_per_node,
            "cores_per_socket": self.cores_per_socket,
            "socket_bandwidth_GBs": self.socket_bandwidth / 1e9,
            "core_bandwidth_GBs": self.core_bandwidth / 1e9,
            "core_flops_G": self.core_flops / 1e9,
            "network_latency_us": self.network_latency * 1e6,
            "network_bandwidth_GBs": self.network_bandwidth / 1e9,
        }
