"""ITAC-like execution traces for the simulated MPI programs.

The paper's evidence is trace phenomenology (Fig. 2 insets show Intel
Trace Analyzer timelines with computation in white and communication/
waiting in red).  The DES produces the same information: per-rank lists
of :class:`Interval` records plus a dense matrix of iteration-end
timestamps that the analysis layer consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["Activity", "Interval", "RankTimeline", "Trace"]


class Activity:
    """Interval kinds (string constants, not an enum, for cheap JSON)."""

    COMPUTE = "compute"
    SEND = "send"
    WAIT = "wait"
    BARRIER = "barrier"

    ALL = (COMPUTE, SEND, WAIT, BARRIER)


@dataclass(frozen=True)
class Interval:
    """One activity span on one rank.

    ``t_end`` may equal ``t_start`` (zero-length waits are recorded so
    the per-iteration structure stays uniform).
    """

    kind: str
    t_start: float
    t_end: float
    iteration: int

    def __post_init__(self) -> None:
        if self.kind not in Activity.ALL:
            raise ValueError(f"unknown activity kind {self.kind!r}")
        if self.t_end < self.t_start - 1e-12:
            raise ValueError(
                f"interval ends before it starts: [{self.t_start}, {self.t_end}]"
            )
        if self.iteration < 0:
            raise ValueError("iteration must be non-negative")

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return max(self.t_end - self.t_start, 0.0)


@dataclass
class RankTimeline:
    """All intervals of one rank, in chronological order."""

    rank: int
    intervals: list[Interval] = field(default_factory=list)

    def add(self, kind: str, t_start: float, t_end: float, iteration: int) -> None:
        """Append an interval (must not precede the previous one)."""
        if self.intervals and t_start < self.intervals[-1].t_end - 1e-9:
            raise ValueError(
                f"rank {self.rank}: interval at {t_start} overlaps previous "
                f"ending {self.intervals[-1].t_end}"
            )
        self.intervals.append(Interval(kind, t_start, t_end, iteration))

    def total(self, kind: str) -> float:
        """Total seconds spent in one activity kind."""
        return sum(iv.duration for iv in self.intervals if iv.kind == kind)

    def busy_fraction(self) -> float:
        """Compute time / wall time (idle-wave damage indicator)."""
        if not self.intervals:
            return 0.0
        span = self.intervals[-1].t_end - self.intervals[0].t_start
        return self.total(Activity.COMPUTE) / span if span > 0 else 0.0


@dataclass
class Trace:
    """Full program trace: timelines + iteration-end matrix + metadata.

    Attributes
    ----------
    timelines:
        One :class:`RankTimeline` per rank.
    iteration_ends:
        ``(n_iters, n_ranks)`` matrix: when each rank finished each
        iteration (including its waits) — the discrete analogue of the
        oscillator phases.
    meta:
        Free-form description of the run (kernel, topology, machine...).
    """

    timelines: list[RankTimeline]
    iteration_ends: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.iteration_ends = np.asarray(self.iteration_ends, dtype=float)
        if self.iteration_ends.ndim != 2:
            raise ValueError("iteration_ends must be 2-D (n_iters, n_ranks)")
        if self.iteration_ends.shape[1] != len(self.timelines):
            raise ValueError("iteration_ends and timelines disagree on ranks")

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of ranks."""
        return len(self.timelines)

    @property
    def n_iterations(self) -> int:
        """Number of bulk-synchronous iterations."""
        return int(self.iteration_ends.shape[0])

    @property
    def makespan(self) -> float:
        """Total wall time (last iteration end anywhere)."""
        return float(self.iteration_ends[-1].max()) if self.iteration_ends.size else 0.0

    def wait_matrix(self) -> np.ndarray:
        """Per-(iteration, rank) waiting time, shape ``(n_iters, n_ranks)``.

        This is what an idle wave looks like in a trace: a ridge of
        waiting travelling across ranks.
        """
        out = np.zeros((self.n_iterations, self.n_ranks))
        for r, tl in enumerate(self.timelines):
            for iv in tl.intervals:
                if iv.kind == Activity.WAIT and iv.iteration < self.n_iterations:
                    out[iv.iteration, r] += iv.duration
        return out

    def compute_matrix(self) -> np.ndarray:
        """Per-(iteration, rank) compute time."""
        out = np.zeros((self.n_iterations, self.n_ranks))
        for r, tl in enumerate(self.timelines):
            for iv in tl.intervals:
                if iv.kind == Activity.COMPUTE and iv.iteration < self.n_iterations:
                    out[iv.iteration, r] += iv.duration
        return out

    def iteration_durations(self) -> np.ndarray:
        """Per-(iteration, rank) cycle times (diff of the end matrix)."""
        ends = self.iteration_ends
        starts = np.vstack([np.zeros((1, self.n_ranks)), ends[:-1]])
        return ends - starts

    def total_wait(self) -> float:
        """Seconds of waiting summed over all ranks."""
        return float(sum(tl.total(Activity.WAIT) for tl in self.timelines))

    def aggregate_bandwidth(self, traffic_per_iteration: float) -> float:
        """Achieved aggregate bandwidth (bytes/s) given per-rank traffic."""
        if self.makespan <= 0:
            return 0.0
        total = traffic_per_iteration * self.n_ranks * self.n_iterations
        return total / self.makespan

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise (timelines + meta) for archival."""
        payload = {
            "meta": self.meta,
            "iteration_ends": self.iteration_ends.tolist(),
            "timelines": [
                {
                    "rank": tl.rank,
                    "intervals": [
                        {"kind": iv.kind, "t0": iv.t_start, "t1": iv.t_end,
                         "it": iv.iteration}
                        for iv in tl.intervals
                    ],
                }
                for tl in self.timelines
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, payload: str) -> "Trace":
        """Inverse of :meth:`to_json`."""
        data = json.loads(payload)
        timelines = []
        for tl in data["timelines"]:
            rt = RankTimeline(rank=tl["rank"])
            for iv in tl["intervals"]:
                rt.intervals.append(
                    Interval(iv["kind"], iv["t0"], iv["t1"], iv["it"])
                )
            timelines.append(rt)
        return cls(timelines=timelines,
                   iteration_ends=np.asarray(data["iteration_ends"]),
                   meta=data.get("meta", {}))


def merge_time_ordered(intervals: Iterable[Interval]) -> list[Interval]:
    """Sort intervals chronologically (utility for renderers)."""
    return sorted(intervals, key=lambda iv: (iv.t_start, iv.t_end))
