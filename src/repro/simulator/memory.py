"""Per-socket memory-bandwidth arbitration (processor sharing).

The mechanism behind every bottleneck effect in the paper: ranks on one
socket share the saturated socket bandwidth.  While ``k`` ranks stream
concurrently, each progresses at

    rate(k) = min(core_bandwidth, socket_bandwidth / k)

so a single rank cannot exceed its core's achievable bandwidth, and a
full socket divides the ceiling fairly.  The arbiter is event-driven:
whenever a stream starts or finishes, the progress of every active
stream is advanced at the old rate and the next completion event is
rescheduled at the new rate.

This fair-share model is what makes *desynchronisation pay off* for
memory-bound programs: interleaved compute phases see fewer concurrent
streamers, hence more bandwidth each — the DES analogue of the
bottleneck-evasion feedback described in the paper (Sec. 1.2, refs
[3, 6]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .engine import EventEngine, EventHandle

__all__ = ["MemoryArbiter", "SocketStats"]

# One byte of slack absorbs float rounding on multi-hundred-MB streams.
_COMPLETION_SLACK_BYTES = 1.0


@dataclass
class SocketStats:
    """Aggregate accounting for one socket's memory traffic.

    Attributes
    ----------
    bytes_transferred:
        Total traffic served (bytes).
    busy_time:
        Wall time with at least one active stream (seconds).
    weighted_occupancy:
        Time-integral of the number of active streams; divided by
        ``busy_time`` it gives the mean concurrency.
    """

    bytes_transferred: float = 0.0
    busy_time: float = 0.0
    weighted_occupancy: float = 0.0

    def mean_concurrency(self) -> float:
        """Average number of concurrent streamers while busy."""
        return self.weighted_occupancy / self.busy_time if self.busy_time > 0 else 0.0

    def average_bandwidth(self, elapsed: float) -> float:
        """Mean achieved socket bandwidth over ``elapsed`` seconds."""
        return self.bytes_transferred / elapsed if elapsed > 0 else 0.0


@dataclass
class _Stream:
    rank: int
    remaining: float
    callback: Callable[[], None]


class MemoryArbiter:
    """Fair-share bandwidth scheduler for one socket.

    Parameters
    ----------
    engine:
        The event engine (provides the clock and calendar).
    socket_bandwidth:
        Saturated socket bandwidth, bytes/s.
    core_bandwidth:
        Per-stream ceiling, bytes/s.
    """

    def __init__(self, engine: EventEngine, socket_bandwidth: float,
                 core_bandwidth: float) -> None:
        if socket_bandwidth <= 0 or core_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        self._engine = engine
        self._socket_bw = socket_bandwidth
        self._core_bw = core_bandwidth
        self._streams: dict[int, _Stream] = {}
        self._last_sync = engine.now
        self._event: EventHandle | None = None
        self.stats = SocketStats()

    # ------------------------------------------------------------------
    @property
    def n_active(self) -> int:
        """Streams currently in flight."""
        return len(self._streams)

    def current_rate(self) -> float:
        """Per-stream bandwidth right now (0 when idle)."""
        k = len(self._streams)
        if k == 0:
            return 0.0
        return min(self._core_bw, self._socket_bw / k)

    # ------------------------------------------------------------------
    def start_stream(self, rank: int, nbytes: float,
                     callback: Callable[[], None]) -> None:
        """Begin streaming ``nbytes`` for ``rank``; ``callback`` fires on
        completion.  A rank may have only one stream at a time."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if rank in self._streams:
            raise RuntimeError(f"rank {rank} already has an active stream")
        self._sync()
        if nbytes <= _COMPLETION_SLACK_BYTES:
            # Degenerate stream: complete immediately (still via the
            # calendar to preserve event ordering).
            self._engine.schedule_after(0.0, callback)
            return
        self._streams[rank] = _Stream(rank=rank, remaining=float(nbytes),
                                      callback=callback)
        self._reschedule()

    def cancel_stream(self, rank: int) -> float:
        """Abort a stream; returns the unserved bytes (for fault tests)."""
        self._sync()
        stream = self._streams.pop(rank, None)
        self._reschedule()
        return stream.remaining if stream is not None else 0.0

    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Advance all stream progress to the current time."""
        now = self._engine.now
        elapsed = now - self._last_sync
        if elapsed < 0:
            raise RuntimeError("engine clock moved backwards")
        if elapsed > 0 and self._streams:
            rate = self.current_rate()
            k = len(self._streams)
            served = rate * elapsed
            for s in self._streams.values():
                s.remaining -= served
            self.stats.bytes_transferred += served * k
            self.stats.busy_time += elapsed
            self.stats.weighted_occupancy += elapsed * k
        self._last_sync = now

    def _reschedule(self) -> None:
        """Re-arm the next completion event after any membership change."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if not self._streams:
            return
        rate = self.current_rate()
        min_remaining = min(s.remaining for s in self._streams.values())
        dt = max(min_remaining, 0.0) / rate
        self._event = self._engine.schedule_after(dt, self._on_completion)

    def _on_completion(self) -> None:
        self._event = None
        self._sync()
        done = [s for s in self._streams.values()
                if s.remaining <= _COMPLETION_SLACK_BYTES]
        for s in done:
            del self._streams[s.rank]
        # Callbacks may start new streams (which re-syncs/reschedules);
        # run them after the membership change is fully applied.
        for s in done:
            s.callback()
        self._reschedule()
