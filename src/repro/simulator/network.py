"""Point-to-point message-transfer model.

A deliberately simple latency/bandwidth network: transferring ``s``
bytes takes ``latency + s / bandwidth`` seconds, independent of load
(the paper's experiments use short messages on a fat-tree where
contention is negligible; modelling link contention is orthogonal to
the oscillator analogy and left out).

Protocol selection follows real MPI libraries: messages up to the
*eager limit* ship immediately and are buffered at the receiver; larger
messages use the rendezvous handshake (the transfer cannot start before
the matching receive is posted, coupling sender and receiver — the
paper's ``beta = 2``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.coupling import Protocol

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Transfer-time model plus protocol selection.

    Attributes
    ----------
    latency:
        Per-message latency (s).
    bandwidth:
        Link bandwidth (bytes/s).
    eager_limit:
        Messages <= this size use the eager protocol (bytes).  Typical
        MPI defaults are 8-64 KiB; 16 KiB here.
    send_overhead:
        CPU time the sender spends issuing one send (s); also the time
        a receiver spends posting one receive.
    forced_protocol:
        If set, overrides size-based selection (the paper's experiments
        switch the protocol explicitly to change beta).
    """

    latency: float = 1.5e-6
    bandwidth: float = 12.5e9
    eager_limit: float = 16384.0
    send_overhead: float = 0.2e-6
    forced_protocol: Protocol | None = None

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("invalid latency/bandwidth")
        if self.eager_limit < 0 or self.send_overhead < 0:
            raise ValueError("invalid eager_limit/send_overhead")

    def transfer_time(self, nbytes: float) -> float:
        """Wire time for one message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        return self.latency + nbytes / self.bandwidth

    def protocol_for(self, nbytes: float) -> Protocol:
        """Eager or rendezvous for a message of this size."""
        if self.forced_protocol is not None:
            return self.forced_protocol
        return Protocol.EAGER if nbytes <= self.eager_limit else Protocol.RENDEZVOUS

    def with_protocol(self, protocol: Protocol) -> "NetworkModel":
        """Copy of this model with the protocol pinned."""
        return NetworkModel(latency=self.latency, bandwidth=self.bandwidth,
                            eager_limit=self.eager_limit,
                            send_overhead=self.send_overhead,
                            forced_protocol=protocol)

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {
            "latency_us": self.latency * 1e6,
            "bandwidth_GBs": self.bandwidth / 1e9,
            "eager_limit_B": self.eager_limit,
            "send_overhead_us": self.send_overhead * 1e6,
            "forced_protocol": (self.forced_protocol.value
                                if self.forced_protocol else None),
        }
