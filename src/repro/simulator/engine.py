"""Discrete-event simulation core.

A tiny but strict event engine: a binary-heap calendar of
``(time, sequence, callback)`` entries with

* deterministic FIFO tie-breaking for simultaneous events (the sequence
  number), so DES runs are bit-reproducible,
* O(log n) cancellation via invalidation tokens (needed by the memory
  arbiter, which reschedules completion events whenever the concurrency
  level on a socket changes),
* a monotonicity guard — scheduling into the past is a bug, not a
  rounding issue, and raises immediately.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["EventHandle", "EventEngine"]


class EventHandle:
    """Token returned by :meth:`EventEngine.schedule`; supports cancel."""

    __slots__ = ("time", "active")

    def __init__(self, time: float) -> None:
        self.time = time
        self.active = True

    def cancel(self) -> None:
        """Invalidate the event; it will be skipped when popped."""
        self.active = False


class EventEngine:
    """Minimal deterministic event calendar.

    Usage::

        eng = EventEngine()
        eng.schedule(1.5, lambda: ...)
        eng.run()          # or eng.run(until=10.0)
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._n_dispatched = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def n_dispatched(self) -> int:
        """Number of events executed so far (engine throughput metric)."""
        return self._n_dispatched

    @property
    def n_pending(self) -> int:
        """Events still in the calendar (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    def schedule(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Add an event at absolute simulation time ``time``."""
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        handle = EventHandle(max(time, self._now))
        heapq.heappush(self._heap, (handle.time, next(self._seq), handle, callback))
        return handle

    def schedule_after(self, delay: float,
                       callback: Callable[[], None]) -> EventHandle:
        """Add an event ``delay`` seconds from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, callback)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the earliest active event.  False when calendar empty."""
        while self._heap:
            time, _seq, handle, callback = heapq.heappop(self._heap)
            if not handle.active:
                continue
            self._now = time
            self._n_dispatched += 1
            callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Dispatch events until the calendar drains (or limits hit).

        Parameters
        ----------
        until:
            Stop *before* dispatching any event later than this time
            (the clock is left at the last dispatched event).
        max_events:
            Safety cap on dispatched events; exceeding it raises —
            an unbounded DES almost always indicates a livelock bug.
        """
        budget = max_events if max_events is not None else float("inf")
        count = 0
        while self._heap:
            if until is not None:
                # Peek at the earliest active event.
                self._drop_cancelled()
                if not self._heap or self._heap[0][0] > until:
                    return
            if count >= budget:
                raise RuntimeError(
                    f"event budget exceeded ({max_events} events) at t={self._now}"
                )
            if not self.step():
                return
            count += 1

    def _drop_cancelled(self) -> None:
        while self._heap and not self._heap[0][2].active:
            heapq.heappop(self._heap)
