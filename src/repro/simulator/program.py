"""High-level entry points for running simulated MPI programs.

These wrap :class:`~repro.simulator.mpi.ClusterSimulator` into one-call
experiments: the paper's scalable/bottlenecked runs with an optional
one-off delay, and the Fig. 1(b) socket-occupancy bandwidth sweep.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from ..core.coupling import Protocol
from .kernels import Kernel
from .machine import MachineSpec
from .mpi import ClusterSimulator, ProgramSpec
from .network import NetworkModel
from .noise_injection import ComputeNoise, Injection
from .trace import Trace

__all__ = [
    "run_program",
    "run_with_one_off_delay",
    "bandwidth_scaling",
    "paper_program",
]


def run_program(
    spec: ProgramSpec,
    *,
    injections: Sequence[Injection] = (),
    compute_noise: ComputeNoise | None = None,
    seed: int | None = 0,
) -> Trace:
    """Simulate one program run and return its trace."""
    sim = ClusterSimulator(spec, injections=injections,
                           compute_noise=compute_noise, seed=seed)
    return sim.run()


def paper_program(
    kernel: Kernel,
    *,
    n_ranks: int = 40,
    n_iterations: int = 60,
    distances: tuple[int, ...] = (1, -1),
    machine: MachineSpec | None = None,
    protocol: Protocol | None = None,
    message_bytes: float = 1024.0,
) -> ProgramSpec:
    """The paper's standard configuration (Sec. 4): 40 ranks block-pinned
    onto 4 Meggie sockets, short messages after each sweep, ring
    communication with the given distance set."""
    m = machine or MachineSpec.meggie()
    needed_sockets = int(np.ceil(n_ranks / m.cores_per_socket))
    nodes = max(1, int(np.ceil(needed_sockets / m.sockets_per_node)))
    if nodes > m.nodes:
        m = replace(m, nodes=nodes)
    net = NetworkModel(latency=m.network_latency,
                       bandwidth=m.network_bandwidth)
    if protocol is not None:
        net = net.with_protocol(protocol)
    return ProgramSpec(
        n_ranks=n_ranks,
        n_iterations=n_iterations,
        kernel=kernel,
        machine=m,
        distances=distances,
        periodic=True,
        message_bytes=message_bytes,
        network=net,
    )


def run_with_one_off_delay(
    spec: ProgramSpec,
    *,
    delay_rank: int = 4,
    delay_iteration: int = 5,
    delay_multiple: float = 3.0,
    compute_noise: ComputeNoise | None = None,
    seed: int | None = 0,
) -> tuple[Trace, Trace]:
    """Run the same program twice: undisturbed baseline + one-off delay.

    The delay is ``delay_multiple`` times the kernel's single-core sweep
    time, injected on ``delay_rank`` ("the 5th MPI process" of the paper
    is rank index 4) at ``delay_iteration``.  Returns
    ``(baseline, disturbed)``; the baseline subtraction isolates the
    idle wave in the analysis layer.
    """
    base = run_program(spec, compute_noise=compute_noise, seed=seed)
    extra = delay_multiple * spec.kernel.single_core_time(spec.machine)
    inj = Injection(rank=delay_rank, iteration=delay_iteration,
                    extra_time=extra)
    disturbed = run_program(spec, injections=(inj,),
                            compute_noise=compute_noise, seed=seed)
    return base, disturbed


def bandwidth_scaling(
    kernel: Kernel,
    *,
    machine: MachineSpec | None = None,
    max_ranks: int | None = None,
    n_iterations: int = 10,
    distances: tuple[int, ...] = (1, -1),
) -> dict:
    """Fig. 1(b) sweep: aggregate memory bandwidth vs. ranks per socket.

    Runs the kernel with 1..cores_per_socket ranks pinned to one socket
    and measures the achieved aggregate bandwidth from the socket
    arbiter statistics.  For traffic-free kernels (PISOLVER) the
    reported bandwidth is 0 and the sweep instead demonstrates constant
    per-rank runtime (linear scaling).

    Returns ``{"ranks": [...], "bandwidth_GBs": [...],
    "time_per_iteration": [...], "kernel": ...}``.
    """
    m = machine or MachineSpec.meggie()
    top = max_ranks or m.cores_per_socket
    ranks_list: list[int] = list(range(1, top + 1))
    bandwidths: list[float] = []
    iter_times: list[float] = []

    for n in ranks_list:
        if n == 1:
            # Single rank: no communication partner; model analytically
            # (the DES needs >= 2 ranks).  Alone on the socket the rank
            # streams at the core bandwidth.
            t = kernel.single_core_time(m)
            iter_times.append(t)
            bandwidths.append(kernel.traffic_bytes / t / 1e9 if t > 0 else 0.0)
            continue
        spec = ProgramSpec(
            n_ranks=n,
            n_iterations=n_iterations,
            kernel=kernel,
            machine=m,
            distances=tuple(d for d in distances if abs(d) < n),
            periodic=True,
            message_bytes=1024.0,
            network=NetworkModel(latency=m.network_latency,
                                 bandwidth=m.network_bandwidth),
            ranks_per_socket=m.cores_per_socket,
        )
        sim = ClusterSimulator(spec, seed=0)
        trace = sim.run()
        makespan = trace.makespan
        total_traffic = kernel.traffic_bytes * n * n_iterations
        bandwidths.append(total_traffic / makespan / 1e9 if makespan > 0 else 0.0)
        iter_times.append(makespan / n_iterations)

    return {
        "ranks": ranks_list,
        "bandwidth_GBs": bandwidths,
        "time_per_iteration": iter_times,
        "kernel": kernel.describe(),
        "machine": m.describe(),
    }
