"""MPI rank state machine and the cluster simulator.

Each rank executes the paper's bulk-synchronous toy-code structure
(Sec. 4): per iteration,

1. post ``MPI_Irecv`` for every inbound partner (non-blocking, free),
2. compute one sweep (in-core part + memory part through the socket's
   bandwidth arbiter, plus any injected one-off workload or noise),
3. ``MPI_Send`` to every outbound partner — eager sends cost only the
   issue overhead; rendezvous sends block until the receiver has posted
   the matching receive (i.e. reached the same iteration), then occupy
   the sender for the wire time,
4. ``MPI_Waitall`` — block until every inbound message of this
   iteration has arrived.

Messages are matched by ``(source, destination, iteration)``.  The
communication distance set ``d`` works exactly as in the paper: rank
``i`` sends to ``i + d`` for every ``d`` in the set (modulo N on a
ring), and therefore receives from ``i - d``.

The simulator is deterministic for a fixed seed: noise matrices are
realised up front, and the event engine breaks ties FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.coupling import Protocol
from .engine import EventEngine
from .kernels import Kernel
from .machine import MachineSpec, Placement
from .memory import MemoryArbiter
from .network import NetworkModel
from .noise_injection import (
    ComputeNoise,
    Injection,
    NoComputeNoise,
    injection_matrix,
)
from .trace import Activity, RankTimeline, Trace

__all__ = ["ProgramSpec", "ClusterSimulator"]


@dataclass(frozen=True)
class ProgramSpec:
    """Everything that defines one simulated program run.

    Attributes
    ----------
    n_ranks:
        Number of MPI processes.
    n_iterations:
        Bulk-synchronous sweeps to execute.
    kernel:
        Per-iteration workload model.
    machine:
        Hardware description.
    distances:
        Send-offset set ``d`` (e.g. ``(1, -1)`` for the paper's
        ``d = ±1``; ``(1, -1, -2)`` for ``d = ±1, -2``).
    periodic:
        Ring (True) vs. open chain (False).
    message_bytes:
        Payload per point-to-point message ("short messages" in the
        paper: default 1 KiB, comfortably eager).
    network:
        Latency/bandwidth/protocol model.
    placement:
        ``"block"`` or ``"round_robin"`` rank-to-core mapping.
    ranks_per_socket:
        Occupancy restriction (None = fill sockets).
    barrier_interval:
        If set, a global barrier every this many iterations (an
        extension: the paper's codes are barrier-free).
    """

    n_ranks: int
    n_iterations: int
    kernel: Kernel
    machine: MachineSpec = field(default_factory=MachineSpec.meggie)
    distances: tuple[int, ...] = (1, -1)
    periodic: bool = True
    message_bytes: float = 1024.0
    network: NetworkModel = field(default_factory=NetworkModel)
    placement: str = "block"
    ranks_per_socket: int | None = None
    barrier_interval: int | None = None

    def __post_init__(self) -> None:
        if self.n_ranks < 2:
            raise ValueError("need at least two ranks")
        if self.n_iterations < 1:
            raise ValueError("need at least one iteration")
        if not self.distances:
            raise ValueError("distance set must not be empty")
        if any(d == 0 for d in self.distances):
            raise ValueError("distance 0 is not allowed")
        if any(abs(d) >= self.n_ranks for d in self.distances):
            raise ValueError("distances must be smaller than the rank count")
        if self.message_bytes < 0:
            raise ValueError("message_bytes must be non-negative")
        if self.barrier_interval is not None and self.barrier_interval < 1:
            raise ValueError("barrier_interval must be positive")

    # ------------------------------------------------------------------
    def send_partners(self, rank: int) -> list[tuple[int, int]]:
        """Outbound ``(partner, distance)`` pairs, ordered as the distance
        set.  The distance doubles as the MPI tag: it disambiguates
        multiple messages between the same pair of ranks (e.g. ``d = ±1``
        on a two-rank ring)."""
        out = []
        for d in self.distances:
            j = rank + d
            if self.periodic:
                out.append((j % self.n_ranks, d))
            elif 0 <= j < self.n_ranks:
                out.append((j, d))
        return out

    def recv_partners(self, rank: int) -> list[tuple[int, int]]:
        """Inbound ``(partner, distance)`` pairs (those whose send set
        contains ``rank``): the message sent with distance ``d`` arrives
        from rank ``rank - d``."""
        out = []
        for d in self.distances:
            j = rank - d
            if self.periodic:
                out.append((j % self.n_ranks, d))
            elif 0 <= j < self.n_ranks:
                out.append((j, d))
        return out

    def describe(self) -> dict:
        """Metadata dictionary stored in the trace."""
        return {
            "n_ranks": self.n_ranks,
            "n_iterations": self.n_iterations,
            "kernel": self.kernel.describe(),
            "machine": self.machine.describe(),
            "distances": list(self.distances),
            "periodic": self.periodic,
            "message_bytes": self.message_bytes,
            "network": self.network.describe(),
            "placement": self.placement,
            "ranks_per_socket": self.ranks_per_socket,
            "barrier_interval": self.barrier_interval,
        }


# Internal per-rank execution state.
@dataclass
class _RankState:
    rank: int
    placement: Placement
    send_partners: list[tuple[int, int]]
    recv_partners: list[tuple[int, int]]
    iteration: int = -1
    compute_start: float = 0.0
    send_start: float = 0.0
    wait_start: float = 0.0
    arrived: int = 0            # inbound messages arrived for current iteration
    waiting: bool = False       # blocked in Waitall
    pending_send_idx: int = 0   # next outbound partner (rendezvous sequencing)
    done: bool = False


class ClusterSimulator:
    """Discrete-event simulation of one :class:`ProgramSpec` run.

    Parameters
    ----------
    spec:
        The program/machine description.
    injections:
        One-off extra workloads (idle-wave triggers).
    compute_noise:
        Random per-iteration compute perturbation.
    seed:
        Seed for the noise realisation.
    """

    def __init__(
        self,
        spec: ProgramSpec,
        injections: Sequence[Injection] = (),
        compute_noise: ComputeNoise | None = None,
        seed: int | None = 0,
    ) -> None:
        self.spec = spec
        self.engine = EventEngine()
        self._placements = spec.machine.place_ranks(
            spec.n_ranks, strategy=spec.placement,
            ranks_per_socket=spec.ranks_per_socket,
        )
        self._arbiters: dict[int, MemoryArbiter] = {}
        for p in self._placements:
            if p.socket not in self._arbiters:
                self._arbiters[p.socket] = MemoryArbiter(
                    self.engine,
                    spec.machine.socket_bandwidth,
                    spec.machine.core_bandwidth,
                )

        rng = np.random.default_rng(seed)
        noise = compute_noise or NoComputeNoise()
        self._extra = injection_matrix(tuple(injections), spec.n_ranks,
                                       spec.n_iterations)
        self._extra = self._extra + noise.realize(spec.n_ranks,
                                                  spec.n_iterations, rng)

        self._states = [
            _RankState(
                rank=r,
                placement=self._placements[r],
                send_partners=spec.send_partners(r),
                recv_partners=spec.recv_partners(r),
            )
            for r in range(spec.n_ranks)
        ]
        self._timelines = [RankTimeline(rank=r) for r in range(spec.n_ranks)]
        self._iter_ends = np.full((spec.n_iterations, spec.n_ranks), np.nan)

        # (src, dst, iteration, distance-tag) arrived flags;
        # arrivals may precede the Waitall (eager buffering).
        self._mailbox: set[tuple[int, int, int, int]] = set()
        # rendezvous senders blocked on (dst, iteration)
        self._rendezvous_waiters: dict[tuple[int, int], list] = {}
        # barrier bookkeeping
        self._barrier_count: dict[int, int] = {}
        self._barrier_blocked: dict[int, list[tuple[int, float]]] = {}

        self._protocol = spec.network.protocol_for(spec.message_bytes)
        self._n_finished = 0

    # ------------------------------------------------------------------
    def run(self, max_events: int | None = None) -> Trace:
        """Execute the program; returns the trace.

        ``max_events`` defaults to a generous budget proportional to the
        work; exceeding it raises (deadlock/livelock guard).
        """
        if max_events is None:
            max_events = 200 * self.spec.n_ranks * self.spec.n_iterations + 10_000
        for state in self._states:
            self._start_iteration(state, 0)
        self.engine.run(max_events=max_events)
        if self._n_finished != self.spec.n_ranks:
            raise RuntimeError(
                f"simulation stalled: only {self._n_finished}/"
                f"{self.spec.n_ranks} ranks finished (deadlock?)"
            )
        meta = self.spec.describe()
        meta["protocol"] = self._protocol.value
        meta["memory"] = {
            str(sock): {
                "bytes": arb.stats.bytes_transferred,
                "busy_time": arb.stats.busy_time,
                "mean_concurrency": arb.stats.mean_concurrency(),
            }
            for sock, arb in self._arbiters.items()
        }
        return Trace(timelines=self._timelines, iteration_ends=self._iter_ends,
                     meta=meta)

    # ------------------------------------------------------------------
    # Phase 1: iteration start (post recvs, begin compute)
    # ------------------------------------------------------------------
    def _start_iteration(self, state: _RankState, iteration: int) -> None:
        now = self.engine.now
        state.iteration = iteration
        state.arrived = sum(
            1 for src, d in state.recv_partners
            if (src, state.rank, iteration, d) in self._mailbox
        )
        state.waiting = False
        state.pending_send_idx = 0
        # Posting the Irecvs unblocks any rendezvous sender targeting us.
        key = (state.rank, iteration)
        for resume in self._rendezvous_waiters.pop(key, []):
            resume()

        state.compute_start = now
        core = self.spec.kernel.core_time + self._extra[iteration, state.rank]
        self.engine.schedule_after(core, lambda s=state: self._core_done(s))

    # ------------------------------------------------------------------
    # Phase 2: compute (in-core, then memory through the arbiter)
    # ------------------------------------------------------------------
    def _core_done(self, state: _RankState) -> None:
        traffic = self.spec.kernel.traffic_bytes
        if traffic > 0:
            arb = self._arbiters[state.placement.socket]
            arb.start_stream(state.rank, traffic,
                             lambda s=state: self._compute_done(s))
        else:
            self._compute_done(state)

    def _compute_done(self, state: _RankState) -> None:
        now = self.engine.now
        self._timelines[state.rank].add(Activity.COMPUTE, state.compute_start,
                                        now, state.iteration)
        state.send_start = now
        self._issue_sends(state)

    # ------------------------------------------------------------------
    # Phase 3: sends
    # ------------------------------------------------------------------
    def _issue_sends(self, state: _RankState) -> None:
        if self._protocol is Protocol.EAGER:
            self._issue_eager_sends(state)
        else:
            self._next_rendezvous_send(state)

    def _issue_eager_sends(self, state: _RankState) -> None:
        now = self.engine.now
        net = self.spec.network
        wire = net.transfer_time(self.spec.message_bytes)
        t_issue = now
        for dst, dist in state.send_partners:
            t_issue += net.send_overhead
            arrival = t_issue + wire
            self.engine.schedule(
                arrival,
                lambda s=state.rank, dd=dst, k=state.iteration, tg=dist:
                    self._deliver(s, dd, k, tg),
            )
        sends_end = t_issue
        if sends_end > now:
            self.engine.schedule(sends_end,
                                 lambda s=state: self._sends_done(s))
        else:
            self._sends_done(state)

    def _next_rendezvous_send(self, state: _RankState) -> None:
        """Advance the sequential blocking-send chain of one rank."""
        if state.pending_send_idx >= len(state.send_partners):
            self._sends_done(state)
            return
        dst, dist = state.send_partners[state.pending_send_idx]
        dst_state = self._states[dst]
        k = state.iteration
        # The receiver has posted its Irecv for iteration k iff it has
        # started iteration k (a finished rank has passed every k).
        if dst_state.iteration >= k:
            wire = self.spec.network.transfer_time(self.spec.message_bytes)
            done_t = self.engine.now + self.spec.network.send_overhead + wire
            state.pending_send_idx += 1
            self.engine.schedule(done_t, lambda s=state: self._next_rendezvous_send(s))
            self.engine.schedule(
                done_t,
                lambda s=state.rank, dd=dst, kk=k, tg=dist:
                    self._deliver(s, dd, kk, tg),
            )
        else:
            self._rendezvous_waiters.setdefault((dst, k), []).append(
                lambda s=state: self._next_rendezvous_send(s)
            )

    def _sends_done(self, state: _RankState) -> None:
        now = self.engine.now
        self._timelines[state.rank].add(Activity.SEND, state.send_start, now,
                                        state.iteration)
        state.wait_start = now
        self._check_waitall(state)

    # ------------------------------------------------------------------
    # Phase 4: waitall
    # ------------------------------------------------------------------
    def _deliver(self, src: int, dst: int, iteration: int, tag: int) -> None:
        self._mailbox.add((src, dst, iteration, tag))
        dst_state = self._states[dst]
        if (dst_state.waiting and dst_state.iteration == iteration
                and not dst_state.done):
            dst_state.arrived += 1
            needed = len(dst_state.recv_partners)
            if dst_state.arrived >= needed:
                self._finish_iteration(dst_state)

    def _check_waitall(self, state: _RankState) -> None:
        needed = len(state.recv_partners)
        arrived = sum(
            1 for src, d in state.recv_partners
            if (src, state.rank, state.iteration, d) in self._mailbox
        )
        state.arrived = arrived
        if arrived >= needed:
            self._finish_iteration(state)
        else:
            state.waiting = True

    def _finish_iteration(self, state: _RankState) -> None:
        now = self.engine.now
        state.waiting = False
        self._timelines[state.rank].add(Activity.WAIT, state.wait_start, now,
                                        state.iteration)
        self._iter_ends[state.iteration, state.rank] = now
        # Free the mailbox entries of this iteration (bounded memory).
        for src, d in state.recv_partners:
            self._mailbox.discard((src, state.rank, state.iteration, d))

        nxt = state.iteration + 1
        bi = self.spec.barrier_interval
        if bi is not None and nxt % bi == 0 and nxt < self.spec.n_iterations:
            self._enter_barrier(state, nxt)
            return
        self._advance(state, nxt)

    def _advance(self, state: _RankState, nxt: int) -> None:
        if nxt >= self.spec.n_iterations:
            state.done = True
            self._n_finished += 1
            return
        self._start_iteration(state, nxt)

    # ------------------------------------------------------------------
    # Barrier extension
    # ------------------------------------------------------------------
    def _enter_barrier(self, state: _RankState, nxt: int) -> None:
        now = self.engine.now
        bid = nxt
        self._barrier_count[bid] = self._barrier_count.get(bid, 0) + 1
        self._barrier_blocked.setdefault(bid, []).append((state.rank, now))
        if self._barrier_count[bid] == self.spec.n_ranks:
            release = now
            for rank, entered in self._barrier_blocked.pop(bid):
                self._timelines[rank].add(Activity.BARRIER, entered, release,
                                          nxt - 1)
                self.engine.schedule(
                    release,
                    lambda s=self._states[rank], n=nxt: self._advance(s, n),
                )

    # ------------------------------------------------------------------
    @property
    def memory_stats(self) -> dict[int, MemoryArbiter]:
        """Per-socket arbiters (for bandwidth accounting)."""
        return dict(self._arbiters)
