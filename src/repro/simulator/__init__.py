"""Discrete-event MPI cluster simulator (the validation substrate).

The paper validates the oscillator model against traces of MPI
microbenchmarks on the Meggie cluster; this package replaces the
hardware with a faithful-by-construction simulation:

* :class:`EventEngine` — deterministic event calendar;
* :class:`MachineSpec` — node/socket/core layout, per-socket memory
  bandwidth ceiling, network parameters (:meth:`MachineSpec.meggie`);
* kernels — :func:`PiSolverKernel` (compute-bound),
  :func:`StreamTriadKernel`, :func:`SchoenauerTriadKernel`
  (bandwidth-saturating);
* :class:`MemoryArbiter` — per-socket fair-share bandwidth (the
  bottleneck mechanism);
* :class:`ClusterSimulator` + :class:`ProgramSpec` — the
  Irecv/Send/Waitall bulk-synchronous rank state machine;
* :class:`Trace` — ITAC-like per-rank interval records;
* helpers — :func:`run_program`, :func:`run_with_one_off_delay`,
  :func:`bandwidth_scaling`, :func:`paper_program`.
"""

from .engine import EventEngine, EventHandle
from .kernels import (
    Kernel,
    PiSolverKernel,
    SchoenauerTriadKernel,
    StreamTriadKernel,
    kernel_from_name,
)
from .machine import MachineSpec, Placement
from .memory import MemoryArbiter, SocketStats
from .mpi import ClusterSimulator, ProgramSpec
from .network import NetworkModel
from .noise_injection import (
    ComputeNoise,
    ExponentialComputeNoise,
    GaussianComputeNoise,
    Injection,
    NoComputeNoise,
    injection_matrix,
)
from .program import (
    bandwidth_scaling,
    paper_program,
    run_program,
    run_with_one_off_delay,
)
from .trace import Activity, Interval, RankTimeline, Trace

__all__ = [
    "EventEngine", "EventHandle",
    "Kernel", "PiSolverKernel", "SchoenauerTriadKernel", "StreamTriadKernel",
    "kernel_from_name",
    "MachineSpec", "Placement",
    "MemoryArbiter", "SocketStats",
    "ClusterSimulator", "ProgramSpec",
    "NetworkModel",
    "ComputeNoise", "ExponentialComputeNoise", "GaussianComputeNoise",
    "Injection", "NoComputeNoise", "injection_matrix",
    "bandwidth_scaling", "paper_program", "run_program",
    "run_with_one_off_delay",
    "Activity", "Interval", "RankTimeline", "Trace",
]
