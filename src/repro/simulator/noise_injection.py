"""Noise and delay injection for the cluster simulator.

Two channels, mirroring the oscillator model's:

* :class:`Injection` — one-off extra workload on a single rank at a
  single iteration (the paper's idle-wave trigger: "extra workload
  performed by the 5th MPI process");
* :class:`ComputeNoise` subclasses — per-(rank, iteration) random extra
  compute time, realised up-front into a dense matrix so DES runs are
  reproducible for a fixed seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Injection",
    "ComputeNoise",
    "NoComputeNoise",
    "GaussianComputeNoise",
    "ExponentialComputeNoise",
    "injection_matrix",
]


@dataclass(frozen=True)
class Injection:
    """One-off extra workload: ``extra_time`` seconds on ``rank`` at
    ``iteration``."""

    rank: int
    iteration: int
    extra_time: float

    def __post_init__(self) -> None:
        if self.rank < 0 or self.iteration < 0:
            raise ValueError("rank and iteration must be non-negative")
        if self.extra_time <= 0:
            raise ValueError("extra_time must be positive")


def injection_matrix(injections: tuple[Injection, ...] | list[Injection],
                     n_ranks: int, n_iterations: int) -> np.ndarray:
    """Dense ``(n_iterations, n_ranks)`` matrix of injected seconds."""
    out = np.zeros((n_iterations, n_ranks))
    for inj in injections:
        if inj.rank >= n_ranks:
            raise ValueError(f"injection rank {inj.rank} out of range")
        if inj.iteration >= n_iterations:
            raise ValueError(f"injection iteration {inj.iteration} out of range")
        out[inj.iteration, inj.rank] += inj.extra_time
    return out


class ComputeNoise(ABC):
    """Random per-iteration compute-time perturbation."""

    @abstractmethod
    def realize(self, n_ranks: int, n_iterations: int,
                rng: np.random.Generator) -> np.ndarray:
        """Matrix of extra seconds, shape ``(n_iterations, n_ranks)``,
        all entries >= 0 (OS noise only delays)."""

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {"type": type(self).__name__}


class NoComputeNoise(ComputeNoise):
    """The silent cluster."""

    def realize(self, n_ranks: int, n_iterations: int,
                rng: np.random.Generator) -> np.ndarray:
        return np.zeros((n_iterations, n_ranks))


@dataclass
class GaussianComputeNoise(ComputeNoise):
    """Half-normal noise: ``|N(0, std)|`` seconds per (rank, iteration)."""

    std: float

    def realize(self, n_ranks: int, n_iterations: int,
                rng: np.random.Generator) -> np.ndarray:
        if self.std < 0:
            raise ValueError("std must be non-negative")
        return np.abs(rng.normal(0.0, self.std, size=(n_iterations, n_ranks)))

    def describe(self) -> dict:
        return {"type": "GaussianComputeNoise", "std": self.std}


@dataclass
class ExponentialComputeNoise(ComputeNoise):
    """Sparse spiky noise: with probability ``prob`` per (rank, iteration)
    an exponential delay of mean ``scale`` seconds — a good model of OS
    daemon interference."""

    scale: float
    prob: float = 0.05

    def realize(self, n_ranks: int, n_iterations: int,
                rng: np.random.Generator) -> np.ndarray:
        if self.scale < 0:
            raise ValueError("scale must be non-negative")
        if not (0.0 <= self.prob <= 1.0):
            raise ValueError("prob must be in [0, 1]")
        hits = rng.random((n_iterations, n_ranks)) < self.prob
        mags = rng.exponential(self.scale, size=(n_iterations, n_ranks))
        return np.where(hits, mags, 0.0)

    def describe(self) -> dict:
        return {"type": "ExponentialComputeNoise", "scale": self.scale,
                "prob": self.prob}
