"""Execution-time models for the paper's microbenchmark kernels (Sec. 4).

Each kernel splits one iteration (one "sweep") into

* an **in-core part** ``core_time`` — instruction throughput-limited
  work that uses no memory bandwidth, and
* a **memory part** ``traffic_bytes`` — data that must stream from/to
  main memory, progressing at whatever bandwidth share the socket
  arbiter grants.

This sequential two-part model is a simplified ECM picture; it
reproduces exactly the property the paper needs: kernels whose runtime
is dominated by traffic saturate the socket (STREAM at ~5 Broadwell
cores), kernels with heavy in-core work saturate later (the "slow"
Schönauer triad — low-throughput cosine and FP division shift the
saturation point up, Fig. 1(b)), and pure-compute kernels never contend
(PISOLVER).

The paper's kernels:

* ``PISOLVER`` — midpoint-rule quadrature of 4/(1+x^2), 500M steps
  spread over the ranks; purely compute bound.
* ``STREAM triad`` — ``A(:) = B(:) + s*C(:)``: 3 doubles streamed per
  element (+ write-allocate on A makes 4 with typical NT-store-free
  code), negligible in-core work.
* ``Slow Schönauer triad`` — ``A(:) = B(:) + cos(C(:)/D(:))``: 4 streams
  plus an expensive cosine+division per element.
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import MachineSpec

__all__ = [
    "Kernel",
    "PiSolverKernel",
    "StreamTriadKernel",
    "SchoenauerTriadKernel",
    "kernel_from_name",
]

_DOUBLE = 8  # bytes


@dataclass(frozen=True)
class Kernel:
    """A per-iteration workload model.

    Attributes
    ----------
    name:
        Identifier for traces and reports.
    core_time:
        In-core (non-memory) seconds per iteration per rank.
    traffic_bytes:
        Main-memory traffic per iteration per rank (bytes).
    """

    name: str
    core_time: float
    traffic_bytes: float

    def __post_init__(self) -> None:
        if self.core_time < 0 or self.traffic_bytes < 0:
            raise ValueError("kernel parameters must be non-negative")
        if self.core_time == 0 and self.traffic_bytes == 0:
            raise ValueError("kernel must do some work")

    # ------------------------------------------------------------------
    def single_core_time(self, machine: MachineSpec) -> float:
        """Iteration time running alone on a socket (no contention)."""
        return self.core_time + self.traffic_bytes / machine.core_bandwidth

    def contended_time(self, machine: MachineSpec, n_active: int) -> float:
        """Iteration time when ``n_active`` ranks stream concurrently.

        The socket grants each streaming rank
        ``min(core_bandwidth, socket_bandwidth / n_active)``.
        """
        if n_active < 1:
            raise ValueError("n_active must be >= 1")
        rate = min(machine.core_bandwidth,
                   machine.socket_bandwidth / n_active)
        return self.core_time + self.traffic_bytes / rate

    def demanded_bandwidth(self, machine: MachineSpec) -> float:
        """Bandwidth one uncontended rank asks for (bytes/s)."""
        t = self.single_core_time(machine)
        return self.traffic_bytes / t if t > 0 else 0.0

    def saturation_cores(self, machine: MachineSpec) -> float:
        """Cores at which the aggregate demand hits the socket ceiling.

        Fractional value; ``inf`` for kernels with no traffic.  The
        paper's Fig. 1(b) shows STREAM saturating around 5 Broadwell
        cores and the slow Schönauer triad near the full socket.
        """
        demand = self.demanded_bandwidth(machine)
        if demand <= 0:
            return float("inf")
        return machine.socket_bandwidth / demand

    @property
    def is_memory_bound(self) -> bool:
        """Heuristic: does traffic dominate the single-core runtime?

        (Relative to a generic 14 GB/s core: used only for reporting —
        the DES derives contention from traffic_bytes directly.)
        """
        if self.traffic_bytes == 0:
            return False
        mem_time = self.traffic_bytes / 14.0e9
        return mem_time > self.core_time

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {
            "name": self.name,
            "core_time_s": self.core_time,
            "traffic_MB": self.traffic_bytes / 1e6,
            "memory_bound": self.is_memory_bound,
        }


# ----------------------------------------------------------------------
# The paper's kernels
# ----------------------------------------------------------------------
def PiSolverKernel(steps_per_rank: float = 12.5e6,
                   flops_per_step: float = 6.0,
                   machine: MachineSpec | None = None) -> Kernel:
    """PISOLVER: midpoint-rule integration of 4/(1+x^2) (paper Sec. 4).

    500 M total steps over 40 ranks = 12.5 M steps/rank/iteration by
    default.  Each step is an FMA-bound kernel (add, multiply, divide);
    ``flops_per_step=6`` with the machine's scalar throughput gives a
    per-sweep time of a few milliseconds — resource-scalable: zero
    memory traffic, no contention, linear scaling.
    """
    m = machine or MachineSpec.meggie()
    # The division dominates; assume ~1/4 of peak scalar FMA throughput.
    effective_flops = m.core_flops / 8.0
    core_time = steps_per_rank * flops_per_step / effective_flops
    return Kernel(name="pisolver", core_time=core_time, traffic_bytes=0.0)


def StreamTriadKernel(array_elements: float = 20e6) -> Kernel:
    """STREAM triad ``A = B + s*C`` (McCalpin; paper Sec. 4).

    Three explicit streams plus the write-allocate transfer on A gives
    4 doubles = 32 bytes of traffic per element.  Working sets are
    chosen >= 10x LLC (paper Sec. 4): the default 20 M elements x 3
    arrays = 480 MB >> 25 MB LLC, so caches are irrelevant.  In-core
    work (one FMA per element) is negligible against the streams; a
    small per-element core time models loop overhead.
    """
    traffic = array_elements * 4 * _DOUBLE
    core_time = array_elements * 0.05e-9  # ~0.05 ns/element loop overhead
    return Kernel(name="stream_triad", core_time=core_time,
                  traffic_bytes=traffic)


def SchoenauerTriadKernel(array_elements: float = 20e6,
                          cosine_ns: float = 1.4) -> Kernel:
    """"Slow" Schönauer triad ``A = B + cos(C/D)`` (paper Sec. 4).

    Four streams plus write-allocate = 5 doubles = 40 bytes per element,
    and an expensive cosine + FP division per element (``cosine_ns``
    nanoseconds of in-core work).  The heavy in-core part lowers the
    per-core bandwidth demand, moving bandwidth saturation to a higher
    core count — the paper's reason for using it (Fig. 1(b)).
    """
    traffic = array_elements * 5 * _DOUBLE
    core_time = array_elements * cosine_ns * 1e-9
    return Kernel(name="schoenauer_triad", core_time=core_time,
                  traffic_bytes=traffic)


def kernel_from_name(name: str, **kwargs) -> Kernel:
    """Factory used by the CLI."""
    key = name.strip().lower()
    if key in ("pisolver", "pi", "scalable"):
        return PiSolverKernel(**kwargs)
    if key in ("stream", "stream_triad", "triad"):
        return StreamTriadKernel(**kwargs)
    if key in ("schoenauer", "schoenauer_triad", "slow_triad", "slow"):
        return SchoenauerTriadKernel(**kwargs)
    raise ValueError(f"unknown kernel {name!r}")
