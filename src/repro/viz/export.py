"""CSV/JSON exporters used by the experiment scripts and benchmarks.

Every paper artefact is regenerated as plain data files so that any
plotting tool can redraw the figures; the writers here keep the format
uniform (header comment with metadata, then a CSV table).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

__all__ = ["csv_text", "write_csv", "write_json", "write_matrix",
           "read_csv"]


def _prepare(path: str | Path) -> Path:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    return p


def csv_text(columns: Mapping[str, Sequence],
             *, meta: Mapping | None = None) -> str:
    """The :func:`write_csv` document as an in-memory string.

    Same bytes as a :func:`write_csv` file read back: an optional
    ``#``-comment metadata line, then the CSV table.  Used by the
    campaign service to stream result tables without a temp file.
    All columns must have equal length.
    """
    names = list(columns.keys())
    if not names:
        raise ValueError("need at least one column")
    lengths = {name: len(columns[name]) for name in names}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"column lengths differ: {lengths}")

    buf = io.StringIO()
    if meta:
        buf.write("# " + json.dumps(dict(meta)) + "\n")
    writer = csv.writer(buf)
    writer.writerow(names)
    for row in zip(*(columns[name] for name in names)):
        writer.writerow([_fmt(v) for v in row])
    return buf.getvalue()


def write_csv(path: str | Path, columns: Mapping[str, Sequence],
              *, meta: Mapping | None = None) -> Path:
    """Write named columns as CSV with an optional ``#``-comment header.

    All columns must have equal length.
    """
    p = _prepare(path)
    with p.open("w", newline="") as fh:
        fh.write(csv_text(columns, meta=meta))
    return p


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.10g}"
    return str(v)


def write_json(path: str | Path, payload) -> Path:
    """Write a JSON document (NumPy arrays converted to lists)."""
    p = _prepare(path)

    def default(o):
        if isinstance(o, np.ndarray):
            return o.tolist()
        if isinstance(o, (np.floating, np.integer)):
            return o.item()
        raise TypeError(f"not JSON-serialisable: {type(o)}")

    p.write_text(json.dumps(payload, indent=2, default=default))
    return p


def write_matrix(path: str | Path, matrix: np.ndarray,
                 *, meta: Mapping | None = None) -> Path:
    """Write a 2-D array as CSV (column per second-axis index)."""
    m = np.asarray(matrix)
    if m.ndim != 2:
        raise ValueError("write_matrix needs a 2-D array")
    cols = {f"c{j}": m[:, j] for j in range(m.shape[1])}
    return write_csv(path, cols, meta=meta)


def read_csv(path: str | Path) -> dict[str, np.ndarray | list[str]]:
    """Read back a :func:`write_csv` file.

    Columns whose cells all parse as floats come back as float arrays;
    anything else (e.g. panel labels, state names) stays a list of
    strings.
    """
    p = Path(path)
    with p.open() as fh:
        lines = [ln for ln in fh if not ln.startswith("#")]
    reader = csv.reader(lines)
    header = next(reader)
    raw: dict[str, list[str]] = {name: [] for name in header}
    for row in reader:
        for name, cell in zip(header, row):
            raw[name].append(cell)

    out: dict[str, np.ndarray | list[str]] = {}
    for name, cells in raw.items():
        try:
            out[name] = np.asarray([float(c) for c in cells])
        except ValueError:
            out[name] = cells
    return out
