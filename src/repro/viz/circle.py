"""Circle-diagram data preparation (the paper's view (i)).

The GUI's circle diagram places each oscillator on the unit circle at
its phase (mod 2*pi), coloured by instantaneous frequency — "blue being
fast and yellow being slow" (Sec. 3.2).  This module computes the same
data (positions, frequencies, cluster structure) as plain arrays for
the exporters and the ASCII renderer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trajectory import OscillatorTrajectory

__all__ = ["CircleFrame", "circle_frame", "circle_animation_frames",
           "phase_clusters"]


@dataclass
class CircleFrame:
    """One snapshot of the circle diagram.

    Attributes
    ----------
    t:
        Snapshot time.
    angles:
        Phases mod 2*pi, shape ``(n,)``.
    x, y:
        Unit-circle coordinates.
    frequency:
        Instantaneous frequency estimates (colour channel).
    """

    t: float
    angles: np.ndarray
    x: np.ndarray
    y: np.ndarray
    frequency: np.ndarray

    def as_dict(self) -> dict:
        """For the JSON exporter."""
        return {
            "t": self.t,
            "angles": self.angles,
            "x": self.x,
            "y": self.y,
            "frequency": self.frequency,
        }


def circle_frame(traj: OscillatorTrajectory, t_index: int = -1) -> CircleFrame:
    """Snapshot of the circle diagram at one trajectory sample."""
    state = traj.circle_state(t_index)
    t = float(traj.ts[t_index])
    return CircleFrame(t=t, angles=state["angles"], x=state["x"],
                       y=state["y"], frequency=state["frequency"])


def circle_animation_frames(traj: OscillatorTrajectory,
                            n_frames: int = 50) -> list[CircleFrame]:
    """Evenly spaced snapshots covering the whole run (video analogue
    of the paper's animations at http://tiny.cc/MPI_triad)."""
    if n_frames < 1:
        raise ValueError("need at least one frame")
    idx = np.linspace(0, traj.n_samples - 1, n_frames).round().astype(int)
    return [circle_frame(traj, int(k)) for k in idx]


def phase_clusters(angles: np.ndarray, *, gap_threshold: float = 0.3) -> list[np.ndarray]:
    """Group oscillators into clusters of nearby circle positions.

    Sorts the angles and cuts at circular gaps exceeding
    ``gap_threshold`` radians.  A synchronised state yields one cluster;
    a splayed/wavefront state yields roughly one cluster per oscillator.
    Returns the member indices of each cluster.
    """
    angles = np.mod(np.asarray(angles, dtype=float), 2.0 * np.pi)
    n = angles.shape[0]
    if n == 0:
        return []
    order = np.argsort(angles)
    sorted_angles = angles[order]
    # Circular gaps between consecutive sorted phases.
    gaps = np.diff(sorted_angles, append=sorted_angles[0] + 2.0 * np.pi)
    cut_after = np.flatnonzero(gaps > gap_threshold)
    if cut_after.size == 0:
        return [order]
    clusters = []
    start = int(cut_after[-1]) + 1  # begin after the largest-index cut
    members: list[int] = []
    for k in range(n):
        idx = (start + k) % n
        members.append(int(order[idx]))
        if idx in cut_after:
            clusters.append(np.asarray(members))
            members = []
    if members:
        clusters.append(np.asarray(members))
    return clusters
