"""Markdown reproduction-report generator.

``pom report`` runs every registered experiment and writes one
self-contained markdown document with the measured numbers next to the
paper's claims — a regenerable EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["ReportBuilder", "generate_report"]


@dataclass
class ReportBuilder:
    """Accumulates markdown sections and renders the document."""

    title: str = "POM reproduction report"
    sections: list[str] = field(default_factory=list)

    def add_section(self, heading: str, body: str) -> None:
        """Append one ``## heading`` section."""
        self.sections.append(f"## {heading}\n\n{body.strip()}\n")

    def add_table(self, heading: str, columns: dict[str, list],
                  note: str = "") -> None:
        """Append a section containing one markdown table."""
        names = list(columns.keys())
        widths = {n: max(len(n), *(len(_fmt(v)) for v in columns[n]))
                  for n in names}
        header = "| " + " | ".join(n.ljust(widths[n]) for n in names) + " |"
        rule = "|" + "|".join("-" * (widths[n] + 2) for n in names) + "|"
        rows = []
        for i in range(len(columns[names[0]])):
            rows.append("| " + " | ".join(
                _fmt(columns[n][i]).ljust(widths[n]) for n in names) + " |")
        body = "\n".join([header, rule, *rows])
        if note:
            body += f"\n\n{note}"
        self.add_section(heading, body)

    def render(self) -> str:
        """The full markdown document."""
        return f"# {self.title}\n\n" + "\n".join(self.sections)

    def write(self, path: str | Path) -> Path:
        """Render to a file (directories created)."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.render())
        return p


def _fmt(v) -> str:
    if isinstance(v, float) or isinstance(v, np.floating):
        if not np.isfinite(v):
            return str(v)
        return f"{v:.4g}"
    return str(v)


def generate_report(out_path: str | Path, *, quick: bool = True) -> Path:
    """Run the experiment suite and write the markdown report.

    ``quick=True`` uses reduced configurations (seconds); ``False`` the
    paper-scale defaults (a minute or two).
    """
    from ..experiments import (
        kuramoto_baseline,
        run_fig1a,
        run_fig1b,
        run_fig2,
        sweep_beta_kappa,
        sweep_sigma,
    )

    rb = ReportBuilder()

    # FIG1A -----------------------------------------------------------
    fig1a = run_fig1a()
    rb.add_table(
        "FIG1A — interaction potentials (Fig. 1a)",
        {
            "sigma": list(fig1a.sigmas),
            "first zero (measured)": [fig1a.first_zeros[s]
                                      for s in fig1a.sigmas],
            "first zero (theory 2s/3)": [2 * s / 3 for s in fig1a.sigmas],
        },
        note=f"Curve continuity gap at |d|=sigma: {fig1a.continuity_gap:.2e}",
    )

    # FIG1B -----------------------------------------------------------
    fig1b = run_fig1b(array_elements=4e6 if quick else 20e6,
                      n_iterations=6 if quick else 10)
    rb.add_table(
        "FIG1B — socket bandwidth scaling (Fig. 1b)",
        {
            "ranks": fig1b.stream.ranks,
            "STREAM [GB/s]": fig1b.stream.bandwidth_GBs,
            "Schönauer [GB/s]": fig1b.schoenauer.bandwidth_GBs,
            "PISOLVER [GB/s]": fig1b.pisolver.bandwidth_GBs,
        },
        note=(f"STREAM saturates at {fig1b.stream.saturation_ranks:.1f} "
              f"cores (paper: ~5); Schönauer at "
              f"{fig1b.schoenauer.saturation_ranks:.1f}."),
    )

    # FIG2 ------------------------------------------------------------
    fig2 = run_fig2(n_ranks=24 if quick else 40,
                    n_iterations=40 if quick else 50)
    rb.add_table(
        "FIG2 — four-panel analogy (Fig. 2)",
        {
            "panel": list(fig2.panels.keys()),
            "model state": [p.model_verdict.state.value
                            for p in fig2.panels.values()],
            "|gap| [rad]": [p.model_gap for p in fig2.panels.values()],
            "trace wave [r/it]": [p.trace_wave.speed_ranks_per_iteration
                                  for p in fig2.panels.values()],
            "desync index": [p.trace_desync.desync_index
                             for p in fig2.panels.values()],
            "agrees": [p.agrees_with_paper for p in fig2.panels.values()],
        },
        note=(f"(d)/(b) trace speed ratio "
              f"{fig2.trace_speed_ratio_d_over_b:.2f}x (paper ~3x)."),
    )

    # CLAIM-BK --------------------------------------------------------
    bk = sweep_beta_kappa(values=[0.5, 1.0, 2.0, 4.0, 8.0]
                          if quick else None,
                          n_ranks=16 if quick else 24,
                          t_end=400.0 if quick else 300.0)
    rb.add_table(
        "CLAIM-BK — wave speed vs beta*kappa (Sec. 5.1.1)",
        {
            "beta*kappa": list(bk.beta_kappa),
            "wave speed [ranks/s]": list(bk.wave_speed),
            "resync time [s]": list(bk.resync_time),
        },
    )

    # CLAIM-SIGMA -----------------------------------------------------
    sg = sweep_sigma(sigmas=[0.5, 1.0, 1.5, 2.0] if quick else None,
                     n_ranks=16 if quick else 24,
                     t_end=400.0 if quick else 500.0)
    rb.add_table(
        "CLAIM-SIGMA — the 2*sigma/3 law (Sec. 5.2.2)",
        {
            "sigma": list(sg.sigma),
            "|gap| measured": list(sg.mean_abs_gap),
            "2*sigma/3": list(sg.theory_gap),
            "spread [rad]": list(sg.phase_spread),
            "wave speed [ranks/s]": list(sg.wave_speed),
        },
    )

    # CLAIM-KM --------------------------------------------------------
    km = kuramoto_baseline(n=16 if quick else 24,
                           t_end=150.0 if quick else 300.0)
    rb.add_table(
        "CLAIM-KM — plain Kuramoto baseline (Sec. 2.2.2)",
        {
            "probe": ["sync time [s]", "wavefront |gap| held",
                      "phase-slip RHS change"],
            "Kuramoto": [km.km_sync_time, km.km_final_gap,
                         km.km_phase_slip_invariance],
            "POM": [km.pom_sync_time, km.pom_final_gap,
                    km.pom_phase_slip_invariance],
        },
    )

    return rb.write(out_path)
