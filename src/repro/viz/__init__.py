"""Rendering and data export: ASCII views + CSV/JSON writers."""

from .ascii import circle_diagram, heatmap, sparkline, timeline
from .circle import (
    CircleFrame,
    circle_animation_frames,
    circle_frame,
    phase_clusters,
)
from .export import read_csv, write_csv, write_json, write_matrix
from .report import ReportBuilder, generate_report

__all__ = [
    "circle_diagram", "heatmap", "sparkline", "timeline",
    "CircleFrame", "circle_animation_frames", "circle_frame",
    "phase_clusters",
    "read_csv", "write_csv", "write_json", "write_matrix",
    "ReportBuilder", "generate_report",
]
