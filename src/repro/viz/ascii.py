"""ASCII renderers for trajectories and traces.

The paper's MATLAB artifact ships a GUI with three views (circle
diagram, phase-difference timeline, potential timeline); in a terminal
library the equivalents are character rasters:

* :func:`heatmap` — ranks x time intensity raster (used for the
  lagger-normalised phase view, where an idle wave is a travelling
  ridge, and for trace wait-matrices);
* :func:`circle_diagram` — oscillator phases on a character circle;
* :func:`timeline` — a trace's per-rank activity bars (compute ``#``,
  wait ``.``, send ``>``), the ITAC-inset look of Fig. 2;
* :func:`sparkline` — one-line series summaries for reports.
"""

from __future__ import annotations

import numpy as np

__all__ = ["heatmap", "circle_diagram", "timeline", "sparkline"]

_SHADES = " .:-=+*#%@"


def heatmap(matrix: np.ndarray, *, width: int = 72, height: int | None = None,
            title: str = "", ylabel: str = "rank") -> str:
    """Render a 2-D array as an ASCII intensity raster.

    Rows are the *second* axis (ranks), columns the first (time), i.e.
    pass arrays shaped ``(n_time, n_ranks)`` as produced everywhere in
    this library.  Intensity is min-max normalised over the whole
    matrix.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError("heatmap needs a 2-D array")
    m = m.T  # rows = ranks
    n_ranks, n_time = m.shape
    height = height or min(n_ranks, 40)

    # Downsample to the character raster.
    row_idx = np.linspace(0, n_ranks - 1, height).round().astype(int)
    col_idx = np.linspace(0, n_time - 1, min(width, n_time)).round().astype(int)
    sub = m[np.ix_(row_idx, col_idx)]

    lo, hi = float(np.nanmin(sub)), float(np.nanmax(sub))
    span = hi - lo if hi > lo else 1.0
    levels = ((sub - lo) / span * (len(_SHADES) - 1)).round().astype(int)

    lines = []
    if title:
        lines.append(title)
    for r in range(levels.shape[0]):
        label = f"{ylabel}{row_idx[r]:>4d} |"
        lines.append(label + "".join(_SHADES[v] for v in levels[r]))
    lines.append(" " * 10 + f"t: [{0}..{n_time - 1}]  value: [{lo:.3g}, {hi:.3g}]")
    return "\n".join(lines)


def circle_diagram(theta: np.ndarray, *, radius: int = 10,
                   title: str = "") -> str:
    """Plot phases (mod 2*pi) as digits on a character circle.

    Each oscillator is drawn at its phase angle; collisions show the
    count capped at 9 — a tight cluster (synchronised) renders as one
    heavy spot, a splayed state as a ring of digits.
    """
    theta = np.asarray(theta, dtype=float)
    if theta.ndim != 1:
        raise ValueError("theta must be 1-D")
    size = 2 * radius + 1
    grid = [[" " for _ in range(2 * size)] for _ in range(size)]
    # Faint circle outline.
    for a in np.linspace(0, 2 * np.pi, 120, endpoint=False):
        x = int(round(radius + radius * np.cos(a)))
        y = int(round(radius - radius * np.sin(a)))
        grid[y][2 * x] = "·"
    counts: dict[tuple[int, int], int] = {}
    for ang in np.mod(theta, 2.0 * np.pi):
        x = int(round(radius + radius * np.cos(ang)))
        y = int(round(radius - radius * np.sin(ang)))
        counts[(y, x)] = counts.get((y, x), 0) + 1
    for (y, x), c in counts.items():
        grid[y][2 * x] = str(min(c, 9))
    lines = ([title] if title else []) + ["".join(row) for row in grid]
    return "\n".join(lines)


def timeline(wait_matrix: np.ndarray, *, width: int = 72,
             title: str = "") -> str:
    """Render a trace wait-matrix as per-rank activity bars.

    Input shape ``(n_iterations, n_ranks)`` of waiting seconds; cells
    render ``#`` (negligible wait = computing), ``+``, ``.`` by wait
    intensity — an idle wave reads as a diagonal streak of dots, like
    the red streaks in the paper's ITAC insets.
    """
    w = np.asarray(wait_matrix, dtype=float).T  # rows = ranks
    n_ranks, n_iters = w.shape
    hi = float(w.max()) if w.size else 0.0
    col_idx = np.linspace(0, n_iters - 1, min(width, n_iters)).round().astype(int)

    def cell(v: float) -> str:
        if hi <= 0 or v < 0.05 * hi:
            return "#"
        if v < 0.4 * hi:
            return "+"
        return "."

    lines = []
    if title:
        lines.append(title)
    for r in range(n_ranks):
        lines.append(f"rank{r:>4d} |" + "".join(cell(w[r, c]) for c in col_idx))
    lines.append(" " * 9 + "# compute   + some wait   . heavy wait")
    return "\n".join(lines)


def sparkline(values: np.ndarray, *, width: int = 60) -> str:
    """One-line min-max normalised series."""
    v = np.asarray(values, dtype=float)
    if v.ndim != 1 or v.size == 0:
        raise ValueError("sparkline needs a non-empty 1-D array")
    idx = np.linspace(0, v.size - 1, min(width, v.size)).round().astype(int)
    sub = v[idx]
    lo, hi = float(np.nanmin(sub)), float(np.nanmax(sub))
    span = hi - lo if hi > lo else 1.0
    blocks = "▁▂▃▄▅▆▇█"
    lev = ((sub - lo) / span * (len(blocks) - 1)).round().astype(int)
    return "".join(blocks[k] for k in lev)
