"""Command-line interface: ``pom`` / ``python -m repro``.

Subcommands
-----------
``pom list``
    Show the available experiments.
``pom run <experiment> [--out DIR]``
    Regenerate one paper artefact (CSV written to --out).
``pom model ...``
    Free-form oscillator-model run with ASCII output — the scriptable
    replacement for the paper's MATLAB GUI.
``pom trace ...``
    Free-form cluster-simulator run with an ASCII trace timeline.
``pom report <file.md> [--full]``
    Run the whole experiment suite and write a markdown reproduction
    report (quick configurations by default).
"""

from __future__ import annotations

import argparse
import sys

from .backends import auto_backend_name, available_backends, available_kernels
from .core import (
    OneOffDelay,
    PhysicalOscillatorModel,
    initial_from_name,
    potential_from_name,
    ring,
    simulate,
)
from .core.coupling import CouplingSpec, Protocol, WaitMode
from .experiments.registry import get_experiment, list_experiments
from .metrics.sync import classify
from .simulator import (
    Injection,
    kernel_from_name,
    paper_program,
    run_program,
)
from .viz.ascii import circle_diagram, heatmap, timeline

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    p = argparse.ArgumentParser(
        prog="pom",
        description="Physical Oscillator Model for Supercomputing — "
                    "reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible paper artefacts")

    run_p = sub.add_parser("run", help="regenerate one paper artefact")
    run_p.add_argument("experiment", help="experiment name (see `pom list`)")
    run_p.add_argument("--out", default=None,
                       help="directory for CSV output (default: no files)")
    run_p.add_argument("--looped", action="store_true",
                       help="run parameter sweeps point by point instead of "
                            "one batched (R, N) solve (slower; for "
                            "cross-checking)")

    model_p = sub.add_parser("model", help="run the oscillator model")
    model_p.add_argument("--n", type=int, default=24, help="oscillators")
    model_p.add_argument("--potential", default="tanh",
                         help="tanh | bottleneck | kuramoto | linear")
    model_p.add_argument("--sigma", type=float, default=1.0,
                         help="bottleneck interaction horizon")
    model_p.add_argument("--distances", default="1,-1",
                         help="comma-separated distance set, e.g. 1,-1,-2")
    model_p.add_argument("--t-comp", type=float, default=0.9)
    model_p.add_argument("--t-comm", type=float, default=0.1)
    model_p.add_argument("--t-end", type=float, default=300.0)
    model_p.add_argument("--protocol", default="eager",
                         choices=["eager", "rendezvous"])
    model_p.add_argument("--waitall", action="store_true",
                         help="group waits in one MPI_Waitall (kappa = max)")
    model_p.add_argument("--initial", default="sync",
                         help="sync | perturbed | random | splayed")
    model_p.add_argument("--delay-rank", type=int, default=None,
                         help="inject a one-off delay on this rank")
    model_p.add_argument("--delay", type=float, default=2.0,
                         help="one-off delay duration (s)")
    model_p.add_argument("--seed", type=int, default=0)
    model_p.add_argument("--backend", default="auto",
                         choices=list(available_backends()),
                         help="RHS compute backend (auto: by topology "
                              "density)")
    model_p.add_argument("--kernel", default="auto",
                         choices=list(available_kernels()),
                         help="coupling-loop kernel for the edge-list "
                              "backends (auto: fastest available of "
                              "numba/cc/tiled/numpy)")
    model_p.add_argument("--view", default="phases",
                         choices=["phases", "circle", "summary"])

    report_p = sub.add_parser("report",
                              help="write a markdown reproduction report")
    report_p.add_argument("path", help="output .md file")
    report_p.add_argument("--full", action="store_true",
                          help="paper-scale configurations (slower)")

    trace_p = sub.add_parser("trace", help="run the MPI cluster simulator")
    trace_p.add_argument("--kernel", default="pisolver",
                         help="pisolver | stream | schoenauer")
    trace_p.add_argument("--ranks", type=int, default=40)
    trace_p.add_argument("--iters", type=int, default=40)
    trace_p.add_argument("--distances", default="1,-1")
    trace_p.add_argument("--delay-rank", type=int, default=None)
    trace_p.add_argument("--delay-iter", type=int, default=5)
    trace_p.add_argument("--delay-multiple", type=float, default=3.0,
                         help="delay as a multiple of the sweep time")
    trace_p.add_argument("--seed", type=int, default=0)
    return p


def _parse_distances(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(",") if x.strip())
    except ValueError as exc:
        raise SystemExit(f"bad distance set {text!r}: {exc}") from exc


def _cmd_list() -> int:
    for name, desc in list_experiments():
        print(f"{name:>12}  {desc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import inspect

    exp = get_experiment(args.experiment)
    print(f"[{exp.id}] {exp.description}")
    kwargs = {}
    if args.out:
        kwargs["out_dir"] = args.out
    if args.looped:
        # Only the sweep runners take the knob; other artefacts ignore it.
        if "batched" in inspect.signature(exp.runner).parameters:
            kwargs["batched"] = False
        else:
            print("(--looped has no effect on this experiment)")
    result = exp.runner(**kwargs)
    print(result)
    if args.out:
        print(f"CSV written to {args.out}")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    distances = _parse_distances(args.distances)
    potential = (potential_from_name(args.potential, sigma=args.sigma)
                 if args.potential.startswith("bottle")
                 else potential_from_name(args.potential))
    delays = ()
    if args.delay_rank is not None:
        delays = (OneOffDelay(rank=args.delay_rank,
                              t_start=0.1 * args.t_end, delay=args.delay),)
    model = PhysicalOscillatorModel(
        topology=ring(args.n, distances),
        potential=potential,
        t_comp=args.t_comp,
        t_comm=args.t_comm,
        coupling=CouplingSpec(
            protocol=Protocol(args.protocol),
            wait_mode=WaitMode.WAITALL if args.waitall else WaitMode.SEPARATE,
        ),
        delays=delays,
    )
    theta0 = initial_from_name(args.initial, args.n) \
        if args.initial != "splayed" \
        else initial_from_name("splayed", args.n, gap=2 * args.sigma / 3)
    traj = simulate(model, args.t_end, theta0=theta0, seed=args.seed,
                    backend=args.backend, kernel=args.kernel)
    verdict = classify(traj.ts, traj.thetas, model.omega)

    # Report the backend/kernel that actually ran, not the "auto" request
    # (an explicit kernel steers backend "auto" to the edge-list path).
    if args.backend != "auto":
        resolved = args.backend
    elif args.kernel != "auto":
        resolved = "sparse"
    else:
        resolved = auto_backend_name(model.topology)
    kernel_note = ""
    if resolved == "sparse":
        from .kernels import resolve_kernel

        coeffs = potential.kernel_coefficients()
        kernel_note = " kernel=" + resolve_kernel(
            args.kernel, has_coefficients=coeffs is not None,
            n_edges=model.topology.n_edges)
    print(f"N={args.n} potential={potential.name} beta*kappa="
          f"{model.beta_kappa:g} v_p={model.v_p:g} backend={resolved}"
          f"{kernel_note}")
    if args.view == "circle":
        print(circle_diagram(traj.final_phases, title="asymptotic phases"))
    elif args.view == "phases":
        print(heatmap(traj.lagger_normalized(),
                      title="lagger-normalised phases (ranks x time)"))
    print(f"verdict: {verdict.state.value}  spread={verdict.final_spread:.4f} "
          f"|gap|={verdict.mean_abs_gap:.4f}  r={verdict.r_final:.4f}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    kernel = kernel_from_name(args.kernel)
    distances = _parse_distances(args.distances)
    spec = paper_program(kernel, n_ranks=args.ranks, n_iterations=args.iters,
                         distances=distances)
    injections = ()
    if args.delay_rank is not None:
        extra = args.delay_multiple * kernel.single_core_time(spec.machine)
        injections = (Injection(rank=args.delay_rank,
                                iteration=args.delay_iter, extra_time=extra),)
    trace = run_program(spec, injections=injections, seed=args.seed)
    print(timeline(trace.wait_matrix(),
                   title=f"{kernel.name}: waits (ranks x iterations)"))
    print(f"makespan={trace.makespan:.4f}s  total wait={trace.total_wait():.4f}s")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .viz.report import generate_report

    path = generate_report(args.path, quick=not args.full)
    print(f"report written to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "model":
        return _cmd_model(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
