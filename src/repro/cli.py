"""Command-line interface: ``pom`` / ``python -m repro``.

Subcommands
-----------
``pom list``
    Show the available experiments.
``pom run <experiment|spec.json> [--out DIR] [--jobs N] [--cache DIR]``
    Regenerate one paper artefact, or execute a declarative scenario
    spec through the run orchestration layer (sharded across ``--jobs``
    processes, cached/resumable under ``--cache``).  With ``--queue
    PATH`` the campaign runs through the durable work queue: shards
    become leased messages, worker deaths are reaped/retried, and any
    number of extra ``pom worker`` processes (or hosts sharing the
    filesystem) can help drain it.
``pom plan <experiment|spec.json>``
    Compile a scenario into its shard decomposition and show it
    (with per-shard cache state when ``--cache`` is given).
``pom worker <queue.db> [--cache DIR] [--lease-ttl S]``
    Drain shards from a durable campaign queue until it is empty —
    start as many of these as you have cores/hosts.
``pom queue <queue.db> [--requeue-quarantined]``
    Inspect a campaign queue: state counts, retried shards, and
    quarantined shards with their captured tracebacks.
``pom serve <queue.db> [--cache DIR] [--port P] [--workers N]``
    HTTP campaign service over the queue + cache: ``POST /v1/campaigns``
    (spec -> content-hashed campaign id; full cache hits short-circuit,
    misses are enqueued), ``GET /v1/campaigns/{id}`` (status),
    ``GET /v1/campaigns/{id}/result`` (NPZ/CSV artefact), ``/v1/healthz``
    and ``/v1/registry``.  ``--workers N`` keeps N drainer processes
    alive while the queue has work.
``pom submit <spec.json|experiment> --url URL [--wait]``
    Submit a campaign to a running service; prints the campaign id.
``pom status <id|spec.json|experiment> --url URL``
    Campaign status by id (or by spec — the id is the spec hash).
``pom fetch <id|spec.json|experiment> --url URL [--out PATH]``
    Download a finished campaign's result artefact.
``pom model ...``
    Free-form oscillator-model run with ASCII output — the scriptable
    replacement for the paper's MATLAB GUI.
``pom trace ...``
    Free-form cluster-simulator run with an ASCII trace timeline.
``pom report <file.md> [--full]``
    Run the whole experiment suite and write a markdown reproduction
    report (quick configurations by default).
"""

from __future__ import annotations

import argparse
import sys

from .backends import auto_backend_name, available_backends, available_kernels
from .core import (
    OneOffDelay,
    PhysicalOscillatorModel,
    initial_from_name,
    potential_from_name,
    ring,
    simulate,
)
from .core.coupling import CouplingSpec, Protocol, WaitMode
from .experiments.registry import get_experiment, list_experiments
from .metrics.sync import classify
from .simulator import (
    Injection,
    kernel_from_name,
    paper_program,
    run_program,
)
from .viz.ascii import circle_diagram, heatmap, timeline

__all__ = ["main", "build_parser"]


def _add_queue_knobs(parser: argparse.ArgumentParser) -> None:
    """Lease/retry knobs shared by ``pom run --queue`` and ``pom worker``."""
    parser.add_argument("--lease-ttl", type=float, default=30.0,
                        metavar="S",
                        help="shard lease duration; a worker silent this "
                             "long loses the shard to the reaper "
                             "(default 30)")
    parser.add_argument("--heartbeat", type=float, default=None,
                        metavar="S",
                        help="heartbeat interval while solving "
                             "(default: lease-ttl / 3)")
    parser.add_argument("--backoff", type=float, default=0.5, metavar="S",
                        help="base retry delay; attempt k waits "
                             "backoff * 2^(k-1) (default 0.5)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-shard solve timeout: past it the "
                             "worker lets its lease lapse so the shard "
                             "is retried elsewhere (default: none)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    p = argparse.ArgumentParser(
        prog="pom",
        description="Physical Oscillator Model for Supercomputing — "
                    "reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible paper artefacts")

    run_p = sub.add_parser("run", help="regenerate one paper artefact or "
                                       "execute a scenario spec")
    run_p.add_argument("experiment",
                       help="experiment name (see `pom list`) or a "
                            "scenario-spec .json file")
    run_p.add_argument("--out", default=None,
                       help="directory for CSV/NPZ output (default: no "
                            "files)")
    run_p.add_argument("--looped", action="store_true",
                       help="run parameter sweeps point by point instead of "
                            "one batched (R, N) solve (slower; for "
                            "cross-checking)")
    run_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for sharded campaign "
                            "execution (default 1; results are identical "
                            "for any value)")
    run_p.add_argument("--cache", default=None, metavar="DIR",
                       help="content-addressed result cache: finished "
                            "campaigns replay as pure cache hits, killed "
                            "ones resume from completed shards")
    run_p.add_argument("--resume", dest="resume", action="store_true",
                       default=True,
                       help="reuse cached shard solves (default)")
    run_p.add_argument("--no-resume", dest="resume", action="store_false",
                       help="recompute and overwrite cached shards")
    run_p.add_argument("--shard-members", type=int, default=None,
                       help="max members per shard (default: fuse whole "
                            "compatible groups; bounded shards enable "
                            "--jobs scaling, bit-for-bit for fixed-step "
                            "methods)")
    run_p.add_argument("--fuse-topologies", dest="fuse_topologies",
                       action="store_true", default=None,
                       help="merge same-N topology groups into one stacked "
                            "shard (default: automatic for fixed-step "
                            "methods, where the merge is bit-for-bit "
                            "identical to per-group shards)")
    run_p.add_argument("--no-fuse-topologies", dest="fuse_topologies",
                       action="store_false",
                       help="keep one shard per topology value")
    run_p.add_argument("--threads", type=int, default=None,
                       help="in-kernel thread count per shard solve "
                            "(default: POM_NUM_THREADS, else 1; workers "
                            "are pinned to 1 when --jobs > 1 unless set "
                            "explicitly; results are identical for any "
                            "value)")
    run_p.add_argument("--quick", action="store_true",
                       help="reduced-size smoke configuration (the "
                            "registry entry's quick_kwargs)")
    run_p.add_argument("--metrics", default=None, metavar="NAMES",
                       help="comma-separated streaming metrics to fold "
                            "in-solve (overrides the spec's metrics=; e.g. "
                            "order_parameter,wavefront); changes the spec "
                            "hash and therefore the cache keys")
    run_p.add_argument("--trajectories", default=None,
                       metavar="MODE",
                       help='trajectory capture override: "full", "none" '
                            '(metric-only, kilobyte-scale cache), or '
                            '"stride:K" (every Kth accepted step)')
    run_p.add_argument("--queue", default=None, metavar="DB",
                       help="execute through a durable SQLite work queue "
                            "at this path: leased shards, heartbeats, "
                            "retry on worker loss; extra `pom worker` "
                            "processes may drain the same queue")
    run_p.add_argument("--max-attempts", type=int, default=3,
                       help="attempts per shard before quarantine "
                            "(queue mode; default 3)")
    _add_queue_knobs(run_p)

    worker_p = sub.add_parser("worker", help="drain shards from a durable "
                                             "campaign queue")
    worker_p.add_argument("queue", help="queue database (`pom run --queue` "
                                        "path)")
    worker_p.add_argument("--cache", default=None, metavar="DIR",
                          help="shared result cache (default: "
                               "<queue>.cache, the orchestrator's "
                               "default)")
    worker_p.add_argument("--name", default=None,
                          help="worker id recorded on claimed shards "
                               "(default: host-pid)")
    worker_p.add_argument("--max-shards", type=int, default=None,
                          help="exit after completing this many shards "
                               "(default: run until the queue drains)")
    worker_p.add_argument("--threads", type=int, default=None,
                          help="in-kernel threads per solve (default 1)")
    _add_queue_knobs(worker_p)

    queue_p = sub.add_parser("queue", help="inspect a campaign queue "
                                           "(states, retries, quarantine)")
    queue_p.add_argument("queue", help="queue database path")
    queue_p.add_argument("--requeue-quarantined", action="store_true",
                         help="give quarantined shards a fresh set of "
                              "attempts")

    serve_p = sub.add_parser("serve", help="HTTP campaign service over a "
                                           "durable queue + result cache")
    serve_p.add_argument("queue", help="queue database path (shared with "
                                       "any `pom worker` drainers)")
    serve_p.add_argument("--cache", default=None, metavar="DIR",
                         help="shared result cache (default: <queue>.cache)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8765,
                         help="bind port; 0 picks an ephemeral port "
                              "(default 8765)")
    serve_p.add_argument("--workers", type=int, default=0, metavar="N",
                         help="keep N queue-drainer processes alive while "
                              "the queue has work (default 0: rely on "
                              "external `pom worker` processes)")
    serve_p.add_argument("--metrics", default=None, metavar="FILE",
                         help="JSON-lines request log (default: "
                              "<queue>.metrics.jsonl)")
    serve_p.add_argument("--shard-members", type=int, default=None,
                         help="default max members per shard for submitted "
                              "campaigns (requests may override)")
    serve_p.add_argument("--max-attempts", type=int, default=3,
                         help="attempts per shard before quarantine "
                              "(default 3)")
    serve_p.add_argument("--threads", type=int, default=None,
                         help="in-kernel threads per spawned worker "
                              "(default 1)")
    _add_queue_knobs(serve_p)

    def _add_client_knobs(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--url", default="http://127.0.0.1:8765",
                            help="service base URL "
                                 "(default http://127.0.0.1:8765)")

    submit_p = sub.add_parser("submit", help="submit a campaign to a "
                                             "running `pom serve`")
    submit_p.add_argument("spec",
                          help="scenario-spec .json file or a registry "
                               "experiment with a declarative spec")
    _add_client_knobs(submit_p)
    submit_p.add_argument("--quick", action="store_true",
                          help="reduced-size configuration for registry "
                               "specs")
    submit_p.add_argument("--shard-members", type=int, default=None,
                          help="max members per shard")
    submit_p.add_argument("--wait", action="store_true",
                          help="poll until the campaign is done")
    submit_p.add_argument("--timeout", type=float, default=600.0,
                          metavar="S",
                          help="--wait deadline in seconds (default 600)")

    status_p = sub.add_parser("status", help="campaign status from a "
                                             "running `pom serve`")
    status_p.add_argument("campaign",
                          help="campaign id (spec content hash), or a spec "
                               ".json / registry experiment to hash")
    _add_client_knobs(status_p)
    status_p.add_argument("--quick", action="store_true",
                          help="reduced-size configuration for registry "
                               "specs")

    fetch_p = sub.add_parser("fetch", help="download a campaign result "
                                           "from a running `pom serve`")
    fetch_p.add_argument("campaign",
                         help="campaign id (spec content hash), or a spec "
                              ".json / registry experiment to hash")
    _add_client_knobs(fetch_p)
    fetch_p.add_argument("--quick", action="store_true",
                         help="reduced-size configuration for registry "
                              "specs")
    fetch_p.add_argument("--out", default=".", metavar="PATH",
                         help="output file or directory (default: current "
                              "directory)")
    fetch_p.add_argument("--format", default="npz", choices=["npz", "csv"],
                         help="artefact format (default npz)")

    plan_p = sub.add_parser("plan", help="compile a scenario spec and show "
                                         "its shard decomposition")
    plan_p.add_argument("spec",
                        help="scenario-spec .json file or a registry "
                             "experiment with a declarative spec")
    plan_p.add_argument("--cache", default=None, metavar="DIR",
                        help="show per-shard cache state against this "
                             "result cache")
    plan_p.add_argument("--shard-members", type=int, default=None,
                        help="max members per shard")
    plan_p.add_argument("--fuse-topologies", dest="fuse_topologies",
                        action="store_true", default=None,
                        help="merge same-N topology groups into one "
                             "stacked shard (default: automatic for "
                             "fixed-step methods)")
    plan_p.add_argument("--no-fuse-topologies", dest="fuse_topologies",
                        action="store_false",
                        help="keep one shard per topology value")
    plan_p.add_argument("--quick", action="store_true",
                        help="reduced-size configuration for registry "
                             "specs")

    model_p = sub.add_parser("model", help="run the oscillator model")
    model_p.add_argument("--n", type=int, default=24, help="oscillators")
    model_p.add_argument("--potential", default="tanh",
                         help="tanh | bottleneck | kuramoto | linear")
    model_p.add_argument("--sigma", type=float, default=1.0,
                         help="bottleneck interaction horizon")
    model_p.add_argument("--distances", default="1,-1",
                         help="comma-separated distance set, e.g. 1,-1,-2")
    model_p.add_argument("--t-comp", type=float, default=0.9)
    model_p.add_argument("--t-comm", type=float, default=0.1)
    model_p.add_argument("--t-end", type=float, default=300.0)
    model_p.add_argument("--protocol", default="eager",
                         choices=["eager", "rendezvous"])
    model_p.add_argument("--waitall", action="store_true",
                         help="group waits in one MPI_Waitall (kappa = max)")
    model_p.add_argument("--initial", default="sync",
                         help="sync | perturbed | random | splayed")
    model_p.add_argument("--delay-rank", type=int, default=None,
                         help="inject a one-off delay on this rank")
    model_p.add_argument("--delay", type=float, default=2.0,
                         help="one-off delay duration (s)")
    model_p.add_argument("--seed", type=int, default=0)
    model_p.add_argument("--backend", default="auto",
                         choices=list(available_backends()),
                         help="RHS compute backend (auto: by topology "
                              "density)")
    model_p.add_argument("--kernel", default="auto",
                         choices=list(available_kernels()),
                         help="coupling-loop kernel for the edge-list "
                              "backends (auto: fastest available of "
                              "numba/cc/tiled/numpy)")
    model_p.add_argument("--threads", type=int, default=None,
                         help="in-kernel thread count for the compiled "
                              "kernels (default: POM_NUM_THREADS, else 1; "
                              "results are identical for any value)")
    model_p.add_argument("--view", default="phases",
                         choices=["phases", "circle", "summary"])

    report_p = sub.add_parser("report",
                              help="write a markdown reproduction report")
    report_p.add_argument("path", help="output .md file")
    report_p.add_argument("--full", action="store_true",
                          help="paper-scale configurations (slower)")

    trace_p = sub.add_parser("trace", help="run the MPI cluster simulator")
    trace_p.add_argument("--kernel", default="pisolver",
                         help="pisolver | stream | schoenauer")
    trace_p.add_argument("--ranks", type=int, default=40)
    trace_p.add_argument("--iters", type=int, default=40)
    trace_p.add_argument("--distances", default="1,-1")
    trace_p.add_argument("--delay-rank", type=int, default=None)
    trace_p.add_argument("--delay-iter", type=int, default=5)
    trace_p.add_argument("--delay-multiple", type=float, default=3.0,
                         help="delay as a multiple of the sweep time")
    trace_p.add_argument("--seed", type=int, default=0)
    return p


def _parse_distances(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(",") if x.strip())
    except ValueError as exc:
        raise SystemExit(f"bad distance set {text!r}: {exc}") from exc


def _cmd_list() -> int:
    for name, desc in list_experiments():
        print(f"{name:>12}  {desc}")
    return 0


def _looks_like_spec_file(name: str) -> bool:
    import os

    return name.endswith(".json") or os.sep in name


def _resolve_spec(name_or_path: str, *, quick: bool = False):
    """A ScenarioSpec from a .json file or a spec-carrying registry entry."""
    from .runs import ScenarioSpec

    if _looks_like_spec_file(name_or_path):
        return ScenarioSpec.from_json(name_or_path)
    exp = get_experiment(name_or_path)
    if exp.spec_factory is None:
        raise SystemExit(
            f"experiment {name_or_path!r} has no declarative scenario spec; "
            "point at a spec .json file instead"
        )
    return exp.spec_factory(**(exp.quick_kwargs if quick else {}))


def _print_shard_progress(event: dict) -> None:
    # event["done"] is the completion counter — with --jobs N shards
    # finish out of order, so the shard id is reported separately.
    state = "cache hit" if event["cached"] else f"{event['seconds']:.2f}s"
    retried = ""
    if event.get("attempts", 1) > 1:
        retried = f"  [retried: attempt {event['attempts']}]"
    print(f"  [{event['done']}/{event['total']}] shard {event['shard']} "
          f"({event['members']} members): {state}{retried}")


def _run_spec_file(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .runs import compile_plan, run_plan, run_plan_queue
    from .viz.export import write_csv

    if args.looped:
        print("(--looped has no effect on spec-file campaigns)")
    if args.quick and _looks_like_spec_file(args.experiment):
        print("(--quick has no effect on spec-file campaigns — size the "
              "spec itself)")
    spec = _resolve_spec(args.experiment, quick=args.quick)
    if getattr(args, "metrics", None) is not None \
            or getattr(args, "trajectories", None) is not None:
        from .runs import ScenarioSpec

        d = spec.to_dict()
        if args.metrics is not None:
            d["metrics"] = [m for m in
                            (s.strip() for s in args.metrics.split(","))
                            if m]
        if args.trajectories is not None:
            d["trajectories"] = args.trajectories
        spec = ScenarioSpec.from_dict(d)
    spec.validate()
    plan = compile_plan(spec, shard_members=args.shard_members,
                        fuse_topologies=getattr(args, "fuse_topologies",
                                                None))
    print(f"[{spec.name}] {plan.n_members} members in {plan.n_shards} "
          f"shard(s), spec {spec.content_hash()[:16]}")
    if args.queue:
        result = run_plan_queue(
            plan, args.queue, jobs=args.jobs, cache=args.cache,
            resume=args.resume, threads=args.threads,
            lease_ttl=args.lease_ttl, heartbeat_every=args.heartbeat,
            max_attempts=args.max_attempts, backoff=args.backoff,
            timeout=args.timeout, progress=_print_shard_progress)
    else:
        result = run_plan(plan, jobs=args.jobs, cache=args.cache,
                          resume=args.resume, threads=args.threads,
                          progress=_print_shard_progress)
    if result.transport is not None:
        # The pinning witness CI greps for: workers run 1 thread each
        # unless --threads raises it explicitly.
        print(f"workers: {args.jobs} x OMP_NUM_THREADS="
              f"{result.worker_omp or (args.threads or 1)}, "
              f"transport={result.transport}")
    if result.queue is not None:
        q = result.queue
        retried = q.get("retried") or {}
        print(f"queue {q['path']}: {q['workers']} worker(s) "
              f"({q['spawned']} spawned), {len(retried)} shard(s) retried")
        for shard, attempts in sorted(retried.items()):
            print(f"  shard {shard}: recovered after {attempts} attempts")
    print(f"done: {result.n_executed} shard(s) solved, "
          f"{result.n_cached} from cache, {result.wall_s:.2f}s")
    if args.out:
        out = Path(args.out)
        csv_path = write_csv(out / f"{spec.name}.csv",
                             result.summary_table(),
                             meta={"spec": spec.content_hash(),
                                   "name": spec.name})
        npz_path = result.save_npz(out / f"{spec.name}.npz")
        print(f"written: {csv_path} and {npz_path}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import inspect

    if _looks_like_spec_file(args.experiment) or args.queue \
            or args.metrics is not None or args.trajectories is not None \
            or args.fuse_topologies is not None:
        # --queue routes registry experiments through their declarative
        # spec (required for durable execution); _resolve_spec rejects
        # entries that have none.  --metrics/--trajectories/
        # --fuse-topologies likewise only exist on the spec path.
        return _run_spec_file(args)

    exp = get_experiment(args.experiment)
    print(f"[{exp.id}] {exp.description}")
    params = inspect.signature(exp.runner).parameters
    kwargs = {}
    if args.quick:
        kwargs.update(exp.quick_kwargs)
    if args.out:
        kwargs["out_dir"] = args.out
    if args.looped:
        # Only the sweep runners take the knob; other artefacts ignore it.
        if "batched" in params:
            kwargs["batched"] = False
        else:
            print("(--looped has no effect on this experiment)")
    # Orchestration knobs: forwarded to campaign-shaped runners only.
    orchestration = {"jobs": args.jobs, "cache": args.cache,
                     "resume": args.resume,
                     "shard_members": args.shard_members}
    requested = (args.jobs != 1 or args.cache is not None
                 or args.shard_members is not None or not args.resume
                 or args.threads is not None)
    if all(k in params for k in orchestration):
        kwargs.update(orchestration)
        if "threads" in params:
            kwargs["threads"] = args.threads
    elif requested:
        print("(--jobs/--cache/--resume/--shard-members/--threads have no "
              "effect on this experiment)")
    result = exp.runner(**kwargs)
    print(result)
    if args.out:
        print(f"CSV written to {args.out}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import os

    from .runs import ResultCache, WorkQueue, drain_queue
    from .runs.queue import default_queue_sibling

    queue = WorkQueue(args.queue, backoff=args.backoff)
    cache_root = args.cache or default_queue_sibling(args.queue, "cache")
    cache = ResultCache(cache_root)
    name = args.name or f"{os.uname().nodename}-{os.getpid()}"
    # Same pinning contract as pool workers: one in-kernel thread
    # unless raised explicitly.
    from .runs.executor import _worker_env

    os.environ.update(_worker_env(args.threads))

    def _progress(event: dict) -> None:
        print(f"  shard {event['shard']} attempt {event['attempt']}: "
              f"{event['outcome']} ({event['seconds']:.2f}s)")

    print(f"worker {name} draining {queue.path} (cache {cache.root}, "
          f"lease {args.lease_ttl:g}s)")
    stats = drain_queue(queue, cache, worker=name,
                        lease_ttl=args.lease_ttl,
                        heartbeat_every=args.heartbeat,
                        timeout=args.timeout,
                        max_shards=args.max_shards,
                        progress=_progress)
    print(f"drained: {stats['solved']} solved, {stats['cache_hits']} cache "
          f"hits, {stats['failed']} failed, {stats['fenced']} fenced, "
          f"{stats['quarantined']} quarantined")
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .runs import WorkQueue
    from .runs.queue import STATES

    if not Path(args.queue).exists():
        # Inspection must never create the database as a side effect —
        # a typo'd path would otherwise leave a stray empty queue file.
        print(f"queue {args.queue} (spec None): no such queue file")
        print("  " + "  ".join(f"{state}=0" for state in STATES))
        return 0
    queue = WorkQueue(args.queue)
    if args.requeue_quarantined:
        n = queue.requeue_quarantined()
        print(f"requeued {n} quarantined shard(s)")
    info = queue.describe()
    counts = info["counts"]
    print(f"queue {info['path']} (spec {str(info['spec_hash'])[:16]}):")
    print("  " + "  ".join(f"{state}={counts[state]}"
                           for state in ("pending", "leased", "done",
                                         "quarantined")))
    for shard, attempts in sorted((info["retried"] or {}).items()):
        print(f"  shard {shard}: done after {attempts} attempts (retried)")
    for q in info["quarantined"]:
        print(f"  shard {q['shard']}: QUARANTINED after {q['attempts']} "
              "attempt(s)")
        for line in (q["error"] or "").rstrip().splitlines():
            print(f"    | {line}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .service import CampaignServer

    worker_opts = {"lease_ttl": args.lease_ttl,
                   "heartbeat_every": args.heartbeat,
                   "timeout": args.timeout, "backoff": args.backoff,
                   "threads": args.threads}
    server = CampaignServer(args.queue, args.cache,
                            host=args.host, port=args.port,
                            workers=args.workers, metrics=args.metrics,
                            shard_members=args.shard_members,
                            max_attempts=args.max_attempts,
                            worker_opts=worker_opts)
    service = server.service
    print(f"pom serve on {server.url}")
    print(f"  queue    {service.queue_path}")
    print(f"  cache    {service.cache.root}")
    print(f"  metrics  {server.metrics.path}")
    print(f"  workers  {args.workers}")

    def _sigterm(signum, frame):
        # CI (and any supervisor) stops the service with SIGTERM; route
        # it through the KeyboardInterrupt path so workers are
        # terminated and the socket is released instead of orphaned.
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _campaign_id(arg: str, *, quick: bool = False) -> str:
    """Resolve a CLI campaign argument to its id (the spec hash).

    A hex string is already an id; anything else is a spec file or a
    registry experiment, hashed exactly as the server hashes it — so
    ``pom status sweep.json`` works without copying ids around.
    """
    candidate = arg.strip().lower()
    if len(candidate) >= 8 and set(candidate) <= set("0123456789abcdef"):
        return candidate
    spec = _resolve_spec(arg, quick=quick)
    return spec.content_hash()


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    spec = _resolve_spec(args.spec, quick=args.quick)
    spec.validate()
    client = ServiceClient(args.url)
    try:
        out = client.submit(spec, shard_members=args.shard_members)
        origin = "cache" if out["cached"] else \
            f"queue (+{out['new_shards']} new shard(s))"
        print(f"campaign {out['id']}")
        print(f"  {out['members']} members in {out['shards']} shard(s) "
              f"via {origin}; status: {out['status']}")
        if args.wait and out["status"] != "done":
            out = client.wait(out["id"], timeout=args.timeout)
            print(f"  done: {out['counts']['done']}/{out['shards']} "
                  "shard(s)")
    except ServiceError as exc:
        raise SystemExit(f"submit failed: {exc}") from exc
    return 0


def _print_campaign_status(status: dict) -> None:
    counts = status["counts"]
    print(f"campaign {status['id']} [{status['name']}]: "
          f"{status['status']}")
    print("  " + "  ".join(f"{state}={counts[state]}"
                           for state in ("pending", "leased", "done",
                                         "quarantined")))
    for shard, attempts in sorted(status.get("retried", {}).items()):
        print(f"  shard {shard}: done after {attempts} attempts (retried)")
    for q in status.get("quarantined", []):
        print(f"  shard {q['shard']}: QUARANTINED after {q['attempts']} "
              "attempt(s)")


def _cmd_status(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    cid = _campaign_id(args.campaign, quick=args.quick)
    try:
        _print_campaign_status(ServiceClient(args.url).status(cid))
    except ServiceError as exc:
        raise SystemExit(f"status failed: {exc}") from exc
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    cid = _campaign_id(args.campaign, quick=args.quick)
    try:
        path = ServiceClient(args.url).fetch(cid, args.out,
                                             fmt=args.format)
    except ServiceError as exc:
        raise SystemExit(f"fetch failed: {exc}") from exc
    print(f"fetched campaign {cid[:16]} -> {path}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .runs import ResultCache, compile_plan

    spec = _resolve_spec(args.spec, quick=args.quick)
    spec.validate()
    plan = compile_plan(spec, shard_members=args.shard_members,
                        fuse_topologies=args.fuse_topologies)
    cache = ResultCache(args.cache) if args.cache else None
    info = plan.describe(cache)
    print(f"[{info['name']}] spec {info['spec_hash']}: "
          f"{info['members']} members -> {len(info['shards'])} shard(s)")
    for row in info["shards"]:
        state = ""
        if "cached" in row:
            state = "  [cached]" if row["cached"] else "  [pending]"
        topo = (f"topologies={row['topologies']}  "
                if row.get("topologies", 1) > 1 else "")
        print(f"  shard {row['shard']:>3}  members={row['members']:<4} "
              f"{topo}method={row['method']}  t_end={row['t_end']:g}  "
              f"key={row['key']}{state}")
    if cache is not None:
        c = info["cache"]
        print(f"cache {c['root']}: {c['entries']} entries, "
              f"{c['size_bytes'] / 1e6:.1f} MB "
              f"(numerics {c['numerics_version']})")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    distances = _parse_distances(args.distances)
    potential = (potential_from_name(args.potential, sigma=args.sigma)
                 if args.potential.startswith("bottle")
                 else potential_from_name(args.potential))
    delays = ()
    if args.delay_rank is not None:
        delays = (OneOffDelay(rank=args.delay_rank,
                              t_start=0.1 * args.t_end, delay=args.delay),)
    model = PhysicalOscillatorModel(
        topology=ring(args.n, distances),
        potential=potential,
        t_comp=args.t_comp,
        t_comm=args.t_comm,
        coupling=CouplingSpec(
            protocol=Protocol(args.protocol),
            wait_mode=WaitMode.WAITALL if args.waitall else WaitMode.SEPARATE,
        ),
        delays=delays,
    )
    theta0 = initial_from_name(args.initial, args.n) \
        if args.initial != "splayed" \
        else initial_from_name("splayed", args.n, gap=2 * args.sigma / 3)
    traj = simulate(model, args.t_end, theta0=theta0, seed=args.seed,
                    backend=args.backend, kernel=args.kernel,
                    threads=args.threads)
    verdict = classify(traj.ts, traj.thetas, model.omega)

    # Report the backend/kernel that actually ran, not the "auto" request
    # (an explicit kernel or thread count steers backend "auto" to the
    # edge-list path).
    if args.backend != "auto":
        resolved = args.backend
    elif args.kernel != "auto" or args.threads is not None:
        resolved = "sparse"
    else:
        resolved = auto_backend_name(model.topology)
    kernel_note = ""
    if resolved == "sparse":
        from .kernels import resolve_kernel

        coeffs = potential.kernel_coefficients()
        kernel_note = " kernel=" + resolve_kernel(
            args.kernel, has_coefficients=coeffs is not None,
            n_edges=model.topology.n_edges)
    print(f"N={args.n} potential={potential.name} beta*kappa="
          f"{model.beta_kappa:g} v_p={model.v_p:g} backend={resolved}"
          f"{kernel_note}")
    if args.view == "circle":
        print(circle_diagram(traj.final_phases, title="asymptotic phases"))
    elif args.view == "phases":
        print(heatmap(traj.lagger_normalized(),
                      title="lagger-normalised phases (ranks x time)"))
    print(f"verdict: {verdict.state.value}  spread={verdict.final_spread:.4f} "
          f"|gap|={verdict.mean_abs_gap:.4f}  r={verdict.r_final:.4f}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    kernel = kernel_from_name(args.kernel)
    distances = _parse_distances(args.distances)
    spec = paper_program(kernel, n_ranks=args.ranks, n_iterations=args.iters,
                         distances=distances)
    injections = ()
    if args.delay_rank is not None:
        extra = args.delay_multiple * kernel.single_core_time(spec.machine)
        injections = (Injection(rank=args.delay_rank,
                                iteration=args.delay_iter, extra_time=extra),)
    trace = run_program(spec, injections=injections, seed=args.seed)
    print(timeline(trace.wait_matrix(),
                   title=f"{kernel.name}: waits (ranks x iterations)"))
    print(f"makespan={trace.makespan:.4f}s  total wait={trace.total_wait():.4f}s")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .viz.report import generate_report

    path = generate_report(args.path, quick=not args.full)
    print(f"report written to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "queue":
        return _cmd_queue(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "fetch":
        return _cmd_fetch(args)
    if args.command == "model":
        return _cmd_model(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
