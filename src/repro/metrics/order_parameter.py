"""Kuramoto order parameter and related global synchrony measures.

The complex order parameter

    r(t) * exp(i*psi(t)) = (1/N) * sum_j exp(i*theta_j(t))

measures global phase coherence: ``r = 1`` for perfect synchrony,
``r ~ 1/sqrt(N)`` for uniformly scattered phases.  It is the classic
observable for the onset of synchronisation (Strogatz 2000, paper
ref. [22]) and serves here to classify the asymptotic state of the POM:
scalable potentials drive ``r -> 1``; bottlenecked potentials settle at
the ``r`` value of the splayed wavefront state.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "order_parameter",
    "order_parameter_series",
    "mean_phase",
    "splay_order_parameter",
]


def order_parameter(theta: np.ndarray) -> float:
    """Magnitude ``r`` of the complex order parameter for one sample.

    Parameters
    ----------
    theta:
        Phases, shape ``(n,)``.
    """
    theta = np.asarray(theta, dtype=float)
    if theta.ndim != 1 or theta.shape[0] == 0:
        raise ValueError("theta must be a non-empty 1-D array")
    z = np.exp(1j * theta).mean()
    return float(np.abs(z))


def mean_phase(theta: np.ndarray) -> float:
    """Argument ``psi`` of the complex order parameter (circular mean)."""
    theta = np.asarray(theta, dtype=float)
    if theta.ndim != 1 or theta.shape[0] == 0:
        raise ValueError("theta must be a non-empty 1-D array")
    z = np.exp(1j * theta).mean()
    return float(np.angle(z))


def order_parameter_series(thetas: np.ndarray) -> np.ndarray:
    """``r(t)`` for a whole trajectory.

    Parameters
    ----------
    thetas:
        Phases, shape ``(n_t, n)``.

    Returns
    -------
    Array of shape ``(n_t,)``.
    """
    thetas = np.asarray(thetas, dtype=float)
    if thetas.ndim != 2:
        raise ValueError("thetas must be 2-D (n_t, n)")
    z = np.exp(1j * thetas).mean(axis=1)
    return np.abs(z)


def splay_order_parameter(n: int, gap: float) -> float:
    """Analytic ``r`` of the perfectly splayed state ``theta_i = i*gap``.

    Geometric sum: ``r = |sin(n*gap/2) / (n*sin(gap/2))|`` (``-> 1`` as
    ``gap -> 0``).  Used to validate the asymptotic wavefront state of
    the bottleneck potential against theory.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if gap == 0.0:
        return 1.0
    s = np.sin(gap / 2.0)
    if abs(s) < 1e-300:
        return 1.0
    return float(abs(np.sin(n * gap / 2.0) / (n * s)))
