"""Synchronisation / desynchronisation classification and settle times.

Implements the verdicts the paper's evaluation relies on:

* **resynchronisation** (Sec. 5.2.1) — after a disturbance the phases
  "snap back": the co-moving spread decays towards zero and every
  oscillator runs at the natural frequency;
* **desynchronisation** (Sec. 5.2.2) — the symmetric state is unstable;
  adjacent gaps grow and settle at the potential's first zero, giving a
  broken-symmetry state with identical frequencies but non-zero phase
  offsets (the computational wavefront).

The classifier looks at the asymptotic window of a trajectory and asks
two questions: has the spread stopped changing (settled)?  and is it
(near) zero?  Settled + small spread => SYNCHRONIZED; settled + broken
symmetry => DESYNCHRONIZED (on a ring the wavefront state is a domain
pattern of gaps ±2*sigma/3 whose *magnitudes* sit at the potential
zero; ``gap_uniformity`` quantifies how clean the pattern is); still
shrinking => TRANSIENT; growing/irregular => INCOHERENT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .order_parameter import order_parameter_series
from .phase import phase_spread_series

__all__ = ["SyncState", "SyncVerdict", "classify", "settle_time",
           "fixed_point_residual"]


class SyncState(enum.Enum):
    """Asymptotic regime of an oscillator trajectory."""

    SYNCHRONIZED = "synchronized"
    DESYNCHRONIZED = "desynchronized"
    TRANSIENT = "transient"
    INCOHERENT = "incoherent"


@dataclass
class SyncVerdict:
    """Classification result plus the evidence behind it.

    Attributes
    ----------
    state:
        The regime.
    final_spread:
        Co-moving phase spread averaged over the tail window (radians).
    mean_gap:
        Mean *signed* adjacent gap over the tail (radians).  On a ring
        the signed gaps sum to zero identically, so a desynchronised
        ring shows ``mean_gap ~ 0`` with large ``mean_abs_gap``.
    mean_abs_gap:
        Mean magnitude of the adjacent gaps — the quantity that settles
        at the potential's first zero (2*sigma/3) in the
        desynchronised state, with mixed signs on a ring (domains) and
        uniform sign on an open chain (clean wavefront).
    gap_std:
        Std of the per-pair tail-averaged |gaps| — small means every
        pair sits at the same equilibrium distance.
    gap_uniformity:
        ``1 - gap_std / mean_abs_gap`` clipped to [0, 1]: 1 for a
        perfectly clean wavefront (every |gap| equal), lower for
        domain-wall-rich ring states.
    r_final:
        Kuramoto order parameter averaged over the tail.
    drift:
        Residual rate of change of the spread (rad/s) — ~0 for settled
        states.
    """

    state: SyncState
    final_spread: float
    mean_gap: float
    mean_abs_gap: float
    gap_std: float
    gap_uniformity: float
    r_final: float
    drift: float

    @property
    def is_synchronized(self) -> bool:
        """Convenience flag."""
        return self.state is SyncState.SYNCHRONIZED

    @property
    def is_desynchronized(self) -> bool:
        """Convenience flag."""
        return self.state is SyncState.DESYNCHRONIZED


def classify(
    ts: np.ndarray,
    thetas: np.ndarray,
    omega: float,
    *,
    tail_fraction: float = 0.2,
    sync_spread_tol: float = 0.05,
    gap_rel_tol: float = 0.25,
    drift_tol: float = 1e-2,
) -> SyncVerdict:
    """Classify the asymptotic state of a phase trajectory.

    Parameters
    ----------
    ts, thetas:
        Trajectory mesh (``(n_t,)``) and phases (``(n_t, n)``).
    omega:
        Natural angular frequency for the co-moving frame.
    tail_fraction:
        Portion of the run treated as "asymptotic".
    sync_spread_tol:
        Spread below which the state counts as synchronised (radians).
    gap_rel_tol:
        Unused threshold kept for API stability (uniformity is now
        *reported*, not gating the verdict — ring wavefronts are domain
        patterns whose gap signs alternate).
    drift_tol:
        Max |d(spread)/dt| for a state to count as settled (rad/s).
    """
    ts = np.asarray(ts, dtype=float)
    thetas = np.asarray(thetas, dtype=float)
    if thetas.ndim != 2 or ts.shape[0] != thetas.shape[0]:
        raise ValueError("shape mismatch between ts and thetas")
    n_t, n = thetas.shape
    k = max(2, int(np.ceil(n_t * tail_fraction)))
    tail_t = ts[-k:]
    tail_x = thetas[-k:] - omega * tail_t[:, None]

    spread_series = phase_spread_series(tail_x)
    final_spread = float(spread_series.mean())

    # Residual drift of the spread, from a least-squares line.
    if tail_t[-1] > tail_t[0]:
        drift = float(np.polyfit(tail_t, spread_series, 1)[0])
    else:
        drift = 0.0

    # Tail-averaged interior gaps (exclude the ring-wrap pair).
    gaps = np.diff(tail_x, axis=1)        # (k, n-1)
    per_pair = gaps.mean(axis=0)
    mean_gap = float(per_pair.mean())
    abs_pair = np.abs(per_pair)
    mean_abs_gap = float(abs_pair.mean())
    gap_std = float(abs_pair.std())

    r_final = float(order_parameter_series(tail_x).mean())

    uniformity = 0.0
    if mean_abs_gap > 0:
        uniformity = float(np.clip(1.0 - gap_std / mean_abs_gap, 0.0, 1.0))

    settled = abs(drift) <= drift_tol
    if settled and final_spread <= sync_spread_tol:
        state = SyncState.SYNCHRONIZED
    elif settled:
        state = SyncState.DESYNCHRONIZED
    elif drift < 0:
        state = SyncState.TRANSIENT       # still relaxing towards sync
    else:
        state = SyncState.INCOHERENT      # spread still growing

    return SyncVerdict(state=state, final_spread=final_spread,
                       mean_gap=mean_gap, mean_abs_gap=mean_abs_gap,
                       gap_std=gap_std, gap_uniformity=uniformity,
                       r_final=r_final, drift=drift)


def settle_time(
    ts: np.ndarray,
    thetas: np.ndarray,
    omega: float,
    *,
    tol: float = 0.05,
    mode: str = "sync",
    target_gap: float | None = None,
) -> float:
    """First time after which the trajectory stays within tolerance.

    ``mode="sync"``: spread of co-moving phases stays below ``tol``.
    ``mode="desync"``: every interior gap stays within ``tol`` of
    ``target_gap`` (e.g. the potential's stable gap).

    Returns ``inf`` if the condition is never met (or never holds
    through the end).
    """
    ts = np.asarray(ts, dtype=float)
    thetas = np.asarray(thetas, dtype=float)
    x = thetas - omega * ts[:, None]
    if mode == "sync":
        ok = phase_spread_series(x) <= tol
    elif mode == "desync":
        if target_gap is None:
            raise ValueError('mode="desync" requires target_gap')
        gaps = np.diff(x, axis=1)
        ok = np.all(np.abs(gaps - target_gap) <= tol, axis=1)
    else:
        raise ValueError(f"unknown mode {mode!r}")

    if not ok[-1]:
        return float("inf")
    # Walk backwards to the first index of the trailing True block.
    idx = len(ok) - 1
    while idx > 0 and ok[idx - 1]:
        idx -= 1
    return float(ts[idx])


def fixed_point_residual(thetas_tail: np.ndarray, ts_tail: np.ndarray) -> float:
    """RMS deviation of per-oscillator frequency from the common mean.

    In any settled state (sync or splayed wavefront) all oscillators
    share one frequency; this residual is ~0 there and positive during
    transients.  Units: rad/s.
    """
    ts_tail = np.asarray(ts_tail, dtype=float)
    thetas_tail = np.asarray(thetas_tail, dtype=float)
    if thetas_tail.shape[0] < 2:
        raise ValueError("need at least two samples")
    span = ts_tail[-1] - ts_tail[0]
    if span <= 0:
        raise ValueError("tail must span positive time")
    freqs = (thetas_tail[-1] - thetas_tail[0]) / span
    return float(np.sqrt(np.mean((freqs - freqs.mean()) ** 2)))
