"""Idle-wave front extraction and speed measurement on oscillator
trajectories.

A one-off delay on rank ``r0`` creates a phase deficit that propagates
to neighbours through the coupling: rank ``r`` is "hit" when its
co-moving phase first drops below a threshold relative to its pre-wave
level.  The wave speed is the slope of a robust linear fit of rank
distance vs. arrival time — the model-side analogue of the idle-wave
speed that refs. [2, 4] measure in MPI traces (in ranks per second).

The same machinery measures the *decay* of the wave: the per-rank
maximum phase deficit shrinks with distance as the wave interacts with
noise (or with the bottleneck's desynchronised background), and an
exponential fit of deficit vs. distance yields the decay length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WaveFit", "arrival_times", "measure_wave_speed", "wave_decay",
           "paired_wave_decay"]


@dataclass
class WaveFit:
    """Result of an idle-wave measurement.

    Attributes
    ----------
    speed:
        Wave speed in ranks/second (slope of distance vs. arrival);
        ``nan`` when fewer than two ranks were reached.
    arrivals:
        Arrival time per rank (``inf`` = never hit), shape ``(n,)``.
    distances:
        Ring distance of each rank from the source, shape ``(n,)``.
    reached:
        Boolean mask of ranks the wave reached.
    residual:
        RMS residual of the linear fit (s).
    """

    speed: float
    arrivals: np.ndarray
    distances: np.ndarray
    reached: np.ndarray
    residual: float

    @property
    def n_reached(self) -> int:
        """Number of ranks the wave arrived at (excluding the source)."""
        return int(self.reached.sum())


def _ring_distance(n: int, src: int) -> np.ndarray:
    idx = np.arange(n)
    raw = np.abs(idx - src)
    return np.minimum(raw, n - raw).astype(float)


def arrival_times(
    ts: np.ndarray,
    thetas: np.ndarray,
    omega: float,
    source: int,
    *,
    threshold: float = 0.1,
    t_injection: float = 0.0,
) -> np.ndarray:
    """Per-rank first time the phase deficit exceeds ``threshold``.

    The deficit of rank ``i`` at time ``t`` is its co-moving phase drop
    relative to its value at the injection time:
    ``(theta_i(t_inj) - omega*t_inj) - (theta_i(t) - omega*t)``.
    Returns ``inf`` for ranks never reached.  The source rank's own
    arrival is its first crossing too (usually ~``t_injection``).
    """
    ts = np.asarray(ts, dtype=float)
    thetas = np.asarray(thetas, dtype=float)
    if thetas.ndim != 2 or ts.shape[0] != thetas.shape[0]:
        raise ValueError("shape mismatch between ts and thetas")
    n = thetas.shape[1]
    if not (0 <= source < n):
        raise ValueError(f"source rank {source} out of range")

    x = thetas - omega * ts[:, None]      # co-moving phases
    k0 = int(np.searchsorted(ts, t_injection, side="left"))
    k0 = min(k0, len(ts) - 1)
    baseline = x[k0]                       # pre-wave levels
    deficit = baseline[None, :] - x        # positive = lagging

    arrivals = np.full(n, np.inf)
    hit = deficit[k0:] >= threshold        # (n_t - k0, n)
    any_hit = hit.any(axis=0)
    first = np.argmax(hit, axis=0)         # first True index (0 if none)
    arrivals[any_hit] = ts[k0 + first[any_hit]]
    return arrivals


def measure_wave_speed(
    ts: np.ndarray,
    thetas: np.ndarray,
    omega: float,
    source: int,
    *,
    threshold: float = 0.1,
    t_injection: float = 0.0,
    min_ranks: int = 3,
) -> WaveFit:
    """Fit the idle-wave speed from phase-deficit arrival times.

    Only ranks actually reached enter the fit; the source rank is
    excluded (distance 0 anchors the intercept, not the slope).  With
    fewer than ``min_ranks`` reached ranks the speed is ``nan``.
    """
    ts = np.asarray(ts, dtype=float)
    thetas = np.asarray(thetas, dtype=float)
    n = thetas.shape[1]
    arrivals = arrival_times(ts, thetas, omega, source,
                             threshold=threshold, t_injection=t_injection)
    dist = _ring_distance(n, source)
    reached = np.isfinite(arrivals) & (dist > 0)

    if reached.sum() < min_ranks:
        return WaveFit(speed=float("nan"), arrivals=arrivals, distances=dist,
                       reached=reached, residual=float("nan"))

    d = dist[reached]
    a = arrivals[reached]
    # distance = speed * (arrival - t0): fit arrival as a function of
    # distance, then invert — robust when arrivals cluster.
    coeffs = np.polyfit(d, a, 1)
    slope = coeffs[0]                       # seconds per rank
    pred = np.polyval(coeffs, d)
    residual = float(np.sqrt(np.mean((pred - a) ** 2)))
    speed = float(1.0 / slope) if slope > 0 else float("nan")
    return WaveFit(speed=speed, arrivals=arrivals, distances=dist,
                   reached=reached, residual=residual)


def wave_decay(
    ts: np.ndarray,
    thetas: np.ndarray,
    omega: float,
    source: int,
    *,
    t_injection: float = 0.0,
) -> dict:
    """Per-rank maximum phase deficit and an exponential decay fit.

    Returns ``{"max_deficit": (n,), "distance": (n,), "decay_length":
    float}`` where ``decay_length`` is the e-folding distance in ranks
    (``inf`` when the wave does not measurably decay, ``nan`` when the
    fit is impossible).
    """
    ts = np.asarray(ts, dtype=float)
    thetas = np.asarray(thetas, dtype=float)
    n = thetas.shape[1]
    x = thetas - omega * ts[:, None]
    k0 = int(np.searchsorted(ts, t_injection, side="left"))
    k0 = min(k0, len(ts) - 1)
    deficit = x[k0][None, :] - x[k0:]
    max_deficit = deficit.max(axis=0)
    dist = _ring_distance(n, source)

    mask = (dist > 0) & (max_deficit > 1e-12)
    if mask.sum() < 3:
        return {"max_deficit": max_deficit, "distance": dist,
                "decay_length": float("nan")}
    # log(deficit) = log(A) - distance / L
    coeffs = np.polyfit(dist[mask], np.log(max_deficit[mask]), 1)
    slope = coeffs[0]
    decay_length = float(-1.0 / slope) if slope < 0 else float("inf")
    return {"max_deficit": max_deficit, "distance": dist,
            "decay_length": decay_length}


def paired_wave_decay(
    thetas_baseline: np.ndarray,
    thetas_disturbed: np.ndarray,
    source: int,
) -> dict:
    """Noise-robust decay measurement via paired baseline subtraction.

    Runs with and without the one-off delay but with *identical noise
    realisations* (same seed) differ only by the injected wave, so the
    per-rank deficit ``max_t (theta_base - theta_dist)`` isolates the
    coherent wave amplitude even under heavy jitter — the model-side
    analogue of the DES trace-pair analysis.

    Both trajectories must share the same (uniform) time mesh; use
    ``simulate(..., n_samples=...)`` on both runs.

    Returns ``{"max_deficit": (n,), "distance": (n,), "decay_length":
    float}`` as :func:`wave_decay`.
    """
    base = np.asarray(thetas_baseline, dtype=float)
    dist = np.asarray(thetas_disturbed, dtype=float)
    if base.shape != dist.shape:
        raise ValueError("trajectory shapes differ (resample both runs "
                         "onto the same mesh)")
    n = base.shape[1]
    if not (0 <= source < n):
        raise ValueError(f"source rank {source} out of range")
    deficit = base - dist                   # positive where the wave hit
    max_deficit = np.clip(deficit, 0.0, None).max(axis=0)
    dists = _ring_distance(n, source)
    mask = (dists > 0) & (max_deficit > 1e-12)
    if mask.sum() < 3:
        return {"max_deficit": max_deficit, "distance": dists,
                "decay_length": float("nan")}
    coeffs = np.polyfit(dists[mask], np.log(max_deficit[mask]), 1)
    slope = coeffs[0]
    decay_length = float(-1.0 / slope) if slope < 0 else float("inf")
    return {"max_deficit": max_deficit, "distance": dists,
            "decay_length": decay_length}
