"""Streaming in-solve reductions over the batched ``(R, N)`` super-state.

The paper's Sec. 5 claims only ever consume kilobyte-scale reductions
(order parameter, desync wavefront, energy) — never the ``(R, n_t, N)``
trajectory stack itself.  This module makes those reductions
first-class: a :class:`StreamingObserver` folds named metric
accumulators per accepted solver step, so shards can cache metric
arrays instead of trajectories (``ScenarioSpec(metrics=[...],
trajectories="none")``).

Bit-identity is by construction, not by luck: the *same* per-sample
kernels run in both paths.  Streaming calls them on the live solver
state after each accepted step; :func:`metrics_from_trajectories`
re-drives the same observer over the stored trajectory rows.  Because
each row is copied to the same contiguous ``(R, N)`` layout the solver
produced, every reduction sees identical bytes in identical order —
streamed and post-hoc results are equal to the last bit for every
integrator (asserted by the test suite and CI).

Registry
--------
``order_parameter``
    Kuramoto ``r(t)`` per member, shape ``(R, n_t)`` — the formula of
    :func:`repro.metrics.order_parameter.order_parameter_series`.
``phase_spread``
    ``max(theta) - min(theta)`` per member, shape ``(R, n_t)``.
``energy``
    Interaction energy ``(v_p / 2N) * sum_edges U(theta_i - theta_j)``
    per member, shape ``(R, n_t)``, evaluated on the cached edge list
    (the uniform rotation cancels in the differences, so raw phases
    equal the co-moving frame here).
``wavefront``
    Per-rank first arrival time of the idle wave, shape ``(R, N)``:
    the first accepted step where the co-moving phase deficit relative
    to the initial state exceeds the threshold
    (:func:`repro.metrics.wave.arrival_times` semantics with
    ``t_injection = 0``); ``inf`` for ranks never reached.
``phase_histogram``
    Occupancy counts of the wrapped phases over ``HISTOGRAM_BINS``
    uniform bins on ``[0, 2*pi)``, accumulated over all accepted steps,
    shape ``(R, HISTOGRAM_BINS)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "HISTOGRAM_BINS",
    "METRIC_NAMES",
    "SERIES_METRICS",
    "WAVEFRONT_THRESHOLD",
    "StreamingObserver",
    "metrics_from_trajectories",
    "parse_trajectories",
    "validate_metrics",
]

#: the named reductions a ScenarioSpec may declare
METRIC_NAMES = ("order_parameter", "phase_spread", "energy", "wavefront",
                "phase_histogram")

#: reductions producing one value per member per accepted step
SERIES_METRICS = ("order_parameter", "phase_spread", "energy")

#: phase-deficit threshold of the streaming wavefront detector (matches
#: the default of :func:`repro.metrics.wave.arrival_times`)
WAVEFRONT_THRESHOLD = 0.1

#: uniform bins over [0, 2*pi) of the streaming phase histogram
HISTOGRAM_BINS = 32

_TWO_PI = 2.0 * np.pi


def validate_metrics(metrics) -> tuple[str, ...]:
    """Normalise a spec's ``metrics`` field to a tuple of known names.

    Order is preserved (it fixes artefact column order); duplicates and
    unknown names raise.
    """
    if metrics is None:
        return ()
    if isinstance(metrics, str):
        raise ValueError(
            f"metrics must be a sequence of names, got the string "
            f"{metrics!r} (did you mean [{metrics!r}]?)")
    out = tuple(str(m) for m in metrics)
    seen = set()
    for name in out:
        if name not in METRIC_NAMES:
            raise ValueError(f"unknown metric {name!r}; available: "
                             f"{', '.join(METRIC_NAMES)}")
        if name in seen:
            raise ValueError(f"duplicate metric {name!r}")
        seen.add(name)
    return out


def parse_trajectories(mode: str):
    """Parse a ``trajectories`` mode into a solver ``record`` value.

    ``"full"`` and ``"none"`` pass through; ``"stride:K"`` returns the
    positive integer ``K`` (keep every K-th accepted step, plus the
    initial and final states).
    """
    if mode in ("full", "none"):
        return mode
    if isinstance(mode, str) and mode.startswith("stride:"):
        try:
            k = int(mode.split(":", 1)[1])
        except ValueError:
            k = 0
        if k >= 1:
            return k
    raise ValueError(
        f"unknown trajectories mode {mode!r}; expected \"full\", "
        "\"none\", or \"stride:K\" with integer K >= 1")


# ----------------------------------------------------------------------
# per-sample kernels — the single source of truth for both the
# streaming and the post-hoc path (this sharing is what makes them
# bit-identical)
# ----------------------------------------------------------------------
def sample_order_parameter(y: np.ndarray) -> np.ndarray:
    """Kuramoto ``r`` of each member row of a ``(R, N)`` state."""
    return np.abs(np.exp(1j * y).mean(axis=1))


def sample_phase_spread(y: np.ndarray) -> np.ndarray:
    """``max - min`` phase spread of each member row."""
    return y.max(axis=1) - y.min(axis=1)


def sample_energy(y: np.ndarray, rows: np.ndarray, cols: np.ndarray,
                  potentials: Sequence, vp_over_2n: np.ndarray) -> np.ndarray:
    """Interaction energy of each member row, on the shared edge list."""
    d = y[:, rows] - y[:, cols]
    out = np.empty(len(potentials), dtype=float)
    for r, pot in enumerate(potentials):
        u = np.asarray(pot.antiderivative(d[r]), dtype=float)
        out[r] = vp_over_2n[r] * u.sum()
    return out


def sample_histogram_indices(y: np.ndarray, n_bins: int) -> np.ndarray:
    """Bin index of each wrapped phase over ``[0, 2*pi)``."""
    idx = np.floor(np.mod(y, _TWO_PI) * (n_bins / _TWO_PI)).astype(np.intp)
    return np.clip(idx, 0, n_bins - 1)


class StreamingObserver:
    """Fold metric accumulators over accepted solver steps.

    Built once per shard from the fused member models; the integrators
    call it as ``observer(t, y)`` with the stacked ``(R, N)`` state at
    ``t0`` and after every accepted step.  :meth:`finalize` returns the
    kilobyte-scale arrays the cache stores::

        {"metrics_ts": (n_t,),
         "metric_<series>": (R, n_t),       # order_parameter, ...
         "metric_wavefront": (R, N),        # arrival times, inf unreached
         "metric_phase_histogram": (R, B)}  # int64 occupancy counts

    The observer is single-use: observing after :meth:`finalize` or
    finalizing twice is not supported.
    """

    def __init__(self, models: Sequence, metrics: Sequence[str], *,
                 n_bins: int = HISTOGRAM_BINS,
                 wavefront_threshold: float = WAVEFRONT_THRESHOLD) -> None:
        self.metrics = validate_metrics(metrics)
        self._ts: list[float] = []
        self._series: dict[str, list[np.ndarray]] = {
            name: [] for name in self.metrics if name in SERIES_METRICS}
        self._n_bins = int(n_bins)
        self._threshold = float(wavefront_threshold)

        if "energy" in self.metrics:
            rows, cols = models[0].topology.edge_list()
            self._rows = np.asarray(rows, dtype=np.intp)
            self._cols = np.asarray(cols, dtype=np.intp)
            self._potentials = [m.potential for m in models]
            self._vp_over_2n = np.array(
                [m.v_p / (2.0 * m.n) for m in models], dtype=float)
        if "wavefront" in self.metrics:
            self._omegas = np.array([m.omega for m in models],
                                    dtype=float)[:, None]
            self._baseline: np.ndarray | None = None
            self._arrivals: np.ndarray | None = None
        if "phase_histogram" in self.metrics:
            self._counts: np.ndarray | None = None

    def __call__(self, t: float, y: np.ndarray) -> None:
        """Observe the state at one accepted step (or ``t0``)."""
        t = float(t)
        self._ts.append(t)
        for name in self.metrics:
            if name == "order_parameter":
                self._series[name].append(sample_order_parameter(y))
            elif name == "phase_spread":
                self._series[name].append(sample_phase_spread(y))
            elif name == "energy":
                self._series[name].append(sample_energy(
                    y, self._rows, self._cols, self._potentials,
                    self._vp_over_2n))
            elif name == "wavefront":
                x = y - self._omegas * t
                if self._baseline is None:
                    self._baseline = np.array(x)
                    self._arrivals = np.full(y.shape, np.inf)
                newly = ((self._baseline - x >= self._threshold)
                         & np.isinf(self._arrivals))
                self._arrivals[newly] = t
            elif name == "phase_histogram":
                idx = sample_histogram_indices(y, self._n_bins)
                if self._counts is None:
                    self._counts = np.zeros((y.shape[0], self._n_bins),
                                            dtype=np.int64)
                for r in range(idx.shape[0]):
                    self._counts[r] += np.bincount(
                        idx[r], minlength=self._n_bins)

    @property
    def n_observed(self) -> int:
        """Accepted steps observed so far (including ``t0``)."""
        return len(self._ts)

    def finalize(self) -> dict[str, np.ndarray]:
        """The cacheable metric arrays (empty dict for no metrics)."""
        if not self.metrics:
            return {}
        out: dict[str, np.ndarray] = {
            "metrics_ts": np.asarray(self._ts, dtype=float)}
        for name in self.metrics:
            if name in SERIES_METRICS:
                out[f"metric_{name}"] = np.stack(self._series[name], axis=1)
            elif name == "wavefront":
                out["metric_wavefront"] = self._arrivals
            elif name == "phase_histogram":
                out["metric_phase_histogram"] = self._counts
        return out


def metrics_from_trajectories(ts: np.ndarray, thetas: np.ndarray,
                              models: Sequence, metrics: Sequence[str], *,
                              n_bins: int = HISTOGRAM_BINS) -> dict:
    """Post-hoc metrics from a stored ``(R, n_t, N)`` trajectory stack.

    Re-drives a :class:`StreamingObserver` over the trajectory rows —
    the same kernels, on the same contiguous ``(R, N)`` layout the
    solver streamed — so the result is bit-identical to the in-solve
    metrics of the same run.
    """
    ts = np.asarray(ts, dtype=float)
    thetas = np.asarray(thetas, dtype=float)
    if thetas.ndim != 3:
        raise ValueError(
            f"thetas must be a (R, n_t, N) stack, got shape {thetas.shape}")
    if thetas.shape[1] != ts.shape[0]:
        raise ValueError("shape mismatch between ts and thetas")
    obs = StreamingObserver(models, metrics, n_bins=n_bins)
    for k in range(ts.shape[0]):
        obs(ts[k], np.ascontiguousarray(thetas[:, k, :]))
    return obs.finalize()
