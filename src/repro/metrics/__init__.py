"""Observables for oscillator trajectories.

* :mod:`order_parameter` — Kuramoto ``r(t)`` and circular means;
* :mod:`phase` — spreads, adjacent gaps, co-moving/lagger views;
* :mod:`sync` — sync/desync classification, settle times;
* :mod:`wave` — idle-wave arrival, speed and decay fits;
* :mod:`streaming` — in-solve metric reductions (per accepted step)
  for kilobyte-scale campaign caching.
"""

from .energy import (
    energy_series,
    pair_energy_curve,
    sync_energy,
    system_energy,
    wavefront_energy,
)
from .order_parameter import (
    mean_phase,
    order_parameter,
    order_parameter_series,
    splay_order_parameter,
)
from .phase import (
    adjacent_gaps,
    comoving,
    gap_statistics,
    lagger_baseline,
    phase_spread,
    phase_spread_series,
)
from .streaming import (
    METRIC_NAMES,
    SERIES_METRICS,
    StreamingObserver,
    metrics_from_trajectories,
    parse_trajectories,
    validate_metrics,
)
from .sync import (
    SyncState,
    SyncVerdict,
    classify,
    fixed_point_residual,
    settle_time,
)
from .wave import (
    WaveFit,
    arrival_times,
    measure_wave_speed,
    paired_wave_decay,
    wave_decay,
)

__all__ = [
    "energy_series", "pair_energy_curve", "sync_energy", "system_energy",
    "wavefront_energy",
    "mean_phase", "order_parameter", "order_parameter_series",
    "splay_order_parameter",
    "adjacent_gaps", "comoving", "gap_statistics", "lagger_baseline",
    "phase_spread", "phase_spread_series",
    "METRIC_NAMES", "SERIES_METRICS", "StreamingObserver",
    "metrics_from_trajectories", "parse_trajectories", "validate_metrics",
    "SyncState", "SyncVerdict", "classify", "fixed_point_residual",
    "settle_time",
    "WaveFit", "arrival_times", "measure_wave_speed", "paired_wave_decay",
    "wave_decay",
]
