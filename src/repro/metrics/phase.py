"""Phase-spread and gap statistics.

The paper's key observables for the asymptotic state are *how far apart*
the oscillator phases sit: the **phase spread** (max - min of the
co-moving phases; Sec. 5.2.2 reports that a stiffer topology decreases
the asymptotic spread) and the distribution of **adjacent phase gaps**
(which settle at the potential's first zero, ``2*sigma/3``, in the
desynchronised state).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "phase_spread",
    "phase_spread_series",
    "adjacent_gaps",
    "gap_statistics",
    "comoving",
    "lagger_baseline",
]


def comoving(ts: np.ndarray, thetas: np.ndarray, omega: float) -> np.ndarray:
    """Co-rotating-frame phases ``theta_i(t) - omega*t``."""
    ts = np.asarray(ts, dtype=float)
    thetas = np.asarray(thetas, dtype=float)
    if thetas.ndim != 2 or ts.shape[0] != thetas.shape[0]:
        raise ValueError("shape mismatch between ts and thetas")
    return thetas - omega * ts[:, None]


def lagger_baseline(ts: np.ndarray, thetas: np.ndarray, omega: float) -> np.ndarray:
    """Co-moving phases normalised to the slowest process (paper view)."""
    x = comoving(ts, thetas, omega)
    return x - x.min(axis=1, keepdims=True)


def phase_spread(theta: np.ndarray) -> float:
    """``max - min`` of one phase sample (radians)."""
    theta = np.asarray(theta, dtype=float)
    if theta.ndim != 1 or theta.shape[0] == 0:
        raise ValueError("theta must be a non-empty 1-D array")
    return float(theta.max() - theta.min())


def phase_spread_series(thetas: np.ndarray) -> np.ndarray:
    """Spread over time, shape ``(n_t,)``."""
    thetas = np.asarray(thetas, dtype=float)
    if thetas.ndim != 2:
        raise ValueError("thetas must be 2-D (n_t, n)")
    return thetas.max(axis=1) - thetas.min(axis=1)


def adjacent_gaps(theta: np.ndarray, periodic: bool = True) -> np.ndarray:
    """Gaps ``theta_{i+1} - theta_i`` (ring-closed when ``periodic``)."""
    theta = np.asarray(theta, dtype=float)
    if theta.ndim != 1 or theta.shape[0] < 2:
        raise ValueError("theta must be 1-D with at least two entries")
    if periodic:
        return np.roll(theta, -1) - theta
    return np.diff(theta)


def gap_statistics(thetas: np.ndarray, tail_fraction: float = 0.1,
                   periodic: bool = True) -> dict:
    """Summary of the asymptotic adjacent-gap distribution.

    Averages the gaps over the final ``tail_fraction`` of the samples
    and reports mean / std / min / max of the per-pair time averages.
    On the ring the gaps necessarily sum to a multiple of 2*pi; the interior
    (non-wrapping) gaps are what settle at the potential zero, so the
    wrap gap (pair ``(n-1, 0)``) can be excluded via ``periodic=False``.
    """
    thetas = np.asarray(thetas, dtype=float)
    if thetas.ndim != 2:
        raise ValueError("thetas must be 2-D (n_t, n)")
    if not (0.0 < tail_fraction <= 1.0):
        raise ValueError("tail_fraction must be in (0, 1]")
    k = max(1, int(np.ceil(thetas.shape[0] * tail_fraction)))
    tail = thetas[-k:]
    gaps = np.stack([adjacent_gaps(row, periodic=periodic) for row in tail])
    per_pair = gaps.mean(axis=0)
    return {
        "mean": float(per_pair.mean()),
        "std": float(per_pair.std()),
        "min": float(per_pair.min()),
        "max": float(per_pair.max()),
        "per_pair": per_pair,
    }
