"""Energy (Lyapunov) diagnostics for the oscillator model.

For a *symmetric* topology and an *odd* potential, the co-moving phase
dynamics of Eq. 2 (silent system) is an exact gradient flow:

    dx_i/dt = (v_p/N) sum_j T_ij V(x_j - x_i) = -dE/dx_i,

    E(x) = (v_p / 2N) sum_{i,j} T_ij U(x_i - x_j),   U' = V, U(0) = 0.

Consequences the library exposes and the tests verify:

* ``E`` decreases monotonically along trajectories — a Lyapunov
  function that rules out cycles and explains why every run settles;
* the *synchronised* state is the global minimum of the tanh energy
  (``U = log cosh``: single convex well), while the bottleneck energy
  (``U`` has a local maximum at 0 and minima at ``±2*sigma/3``) makes
  lock-step a saddle/maximum and the computational wavefront the
  low-energy state — the paper's "avoid the bottleneck by drifting out
  of lockstep" as literal energy minimisation;
* energy gaps quantify *how far* a configuration is from its asymptote
  (used as a convergence diagnostic by the simulation driver's users).
"""

from __future__ import annotations

import numpy as np

from ..core.model import PhysicalOscillatorModel
from ..core.trajectory import OscillatorTrajectory

__all__ = ["system_energy", "energy_series", "pair_energy_curve",
           "wavefront_energy", "sync_energy"]


def system_energy(model: PhysicalOscillatorModel,
                  theta: np.ndarray) -> float:
    """Total interaction energy ``E`` of one phase configuration.

    Defined for any model, but only a Lyapunov function when the
    topology is symmetric and the potential odd (both true for every
    configuration in the paper).
    """
    theta = np.asarray(theta, dtype=float)
    if theta.shape != (model.n,):
        raise ValueError(f"theta has shape {theta.shape}, "
                         f"expected ({model.n},)")
    t = model.topology.matrix
    dmat = theta[:, None] - theta[None, :]        # x_i - x_j
    u = np.asarray(model.potential.antiderivative(dmat), dtype=float)
    return float((model.v_p / (2.0 * model.n)) * (t * u).sum())


def energy_series(traj: OscillatorTrajectory) -> np.ndarray:
    """``E(t)`` along a trajectory (computed in the co-moving frame —
    the uniform rotation carries no interaction energy)."""
    x = traj.comoving_phases()
    return np.array([system_energy(traj.model, row) for row in x])


def pair_energy_curve(potential, span: float = 10.0,
                      n_points: int = 401) -> dict:
    """The pair energy ``U(d)`` on a grid (for plotting/export).

    Returns ``{"d": grid, "U": values, "V": potential values}``.
    """
    d = np.linspace(-span, span, n_points)
    return {
        "d": d,
        "U": np.asarray(potential.antiderivative(d), dtype=float),
        "V": np.asarray(potential(d), dtype=float),
    }


def sync_energy(model: PhysicalOscillatorModel) -> float:
    """Energy of the perfectly synchronised state (always 0 by the
    ``U(0) = 0`` normalisation — kept for readable comparisons)."""
    return system_energy(model, np.zeros(model.n))


def wavefront_energy(model: PhysicalOscillatorModel,
                     gap: float | None = None) -> float:
    """Energy of the zigzag wavefront state with the given gap.

    Defaults to the potential's stable gap (``2*sigma/3`` for the
    bottleneck potential); for that potential the result is *negative*
    — the wavefront is energetically favourable over lock-step, the
    formal statement of bottleneck evasion.
    """
    g = model.potential.stable_gap() if gap is None else float(gap)
    theta = np.tile([0.0, g], model.n // 2 + 1)[:model.n]
    return system_energy(model, theta)
