"""Fused gather-potential-scatter kernel compiled with the system C compiler.

The batched NumPy RHS is memory-bound at large N: every evaluation
streams several ``(R, E)`` scratch arrays (two gathers, the difference,
the potential values, the flattened ``bincount`` weights) through the
cache hierarchy.  This module compiles a C kernel that walks the edge
list once per member in cache-resident blocks:

1. **gather** — ``d[e] = theta[cols[e]] - theta[rows[e]]`` for one block,
2. **potential** — the coefficient family evaluated in a flat pass that
   GCC auto-vectorises against ``libmvec`` (AVX2/AVX-512 ``tanh``/``sin``
   on glibc >= 2.35),
3. **scatter** — per-row accumulation in the same row-major edge order as
   the NumPy ``bincount`` path, so results agree to the last few ulps
   (the only differences come from the SIMD transcendentals).

The shared library is built on first use with the system ``cc`` (honouring
``$CC``) into a content-addressed cache directory under the user's temp
dir, then loaded via :mod:`ctypes` — no build-time dependency, no
third-party package.  When no working compiler is available the module
reports unavailability and the ``"auto"`` kernel resolution falls back to
the tiled/NumPy paths.

Thread parallelism
------------------
Every kernel takes a trailing ``threads`` argument.  With ``threads > 1``
and an OpenMP-capable compiler the work is split over **disjoint output
rows** (edge spans are row-aligned via binary search on the sorted row
array; ring/torus element ranges are contiguous), so no two threads ever
write the same accumulator and no atomics are needed.  Because each
row's contributions are accumulated in exactly the serial order, results
are **bit-identical for any thread count** — the parallel path is a pure
wall-clock knob, never a numerics knob.  When OpenMP is unavailable the
kernels quietly run serial (``openmp_available()`` reports which).

Topology specialisations (detected from the edge list, never from
builder metadata): distance rings (:func:`ring_offsets`) replace the
gather/scatter with contiguous shifted passes, and 2-D tori
(:func:`torus_halo`) decompose into column ring passes plus per-row halo
passes — both unit-stride, both row-partitionable.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import threading

import numpy as np

__all__ = [
    "cc_available",
    "openmp_available",
    "load_library",
    "ring_offsets",
    "torus_halo",
    "fused_single",
    "fused_batched",
    "ring_single",
    "ring_batched",
    "torus_single",
    "torus_batched",
]

_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#ifdef _OPENMP
#include <omp.h>
#endif

/* Potential kinds: keep in sync with repro/kernels/coeffs.py. */
enum { KIND_TANH = 0, KIND_BOTTLENECK = 1, KIND_KURAMOTO = 2, KIND_LINEAR = 3 };

/* Whether this binary was compiled with OpenMP (the flag-set fallback
 * chain may have landed on a serial build). */
int64_t pom_openmp_available(void) {
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

/* Evaluate one coefficient family on a block of phase differences.
 * Each case is a flat loop over the block so the compiler can
 * auto-vectorise the transcendental against libmvec.
 *
 * Determinism contract: with -ffast-math the *vectorised* libmvec
 * tanh/sin differ from the scalar libm ones by ulps, so an element's
 * value would depend on whether it lands in a SIMD body or a scalar
 * epilogue — i.e. on the loop trip count, which thread chunking
 * changes.  Two measures make the evaluation a pure function of the
 * element value: (1) the block is padded up to a PAD_BLOCK multiple
 * (padding lanes read/write scratch only), so no scalar epilogue ever
 * executes for a real element; (2) the function is noinline, so every
 * call site — serial or parallel, single or batched — runs the same
 * machine code.  This is what makes threads=K bit-identical to
 * threads=1. */
#define PAD_BLOCK 64
#if defined(__GNUC__)
__attribute__((noinline))
#endif
static void potential_block(int64_t kind, double p0, double p1,
                            double *d, double *v, int64_t m) {
    int64_t e;
    int64_t mp = (m + (PAD_BLOCK - 1)) & ~(int64_t)(PAD_BLOCK - 1);
    for (e = m; e < mp; ++e)
        d[e] = 0.0;
    switch (kind) {
    case KIND_TANH:
        for (e = 0; e < mp; ++e)
            v[e] = tanh(p0 * d[e]);
        break;
    case KIND_BOTTLENECK:
        /* -sin inside the horizon |d| < sigma (=p0), sign(d) outside;
         * the sin pass runs on the whole block (vectorisable), then the
         * outside lanes are overwritten. */
        for (e = 0; e < mp; ++e)
            v[e] = -sin(p1 * d[e]);
        for (e = 0; e < m; ++e)
            if (!(fabs(d[e]) < p0))
                v[e] = (double)((d[e] > 0.0) - (d[e] < 0.0));
        break;
    case KIND_KURAMOTO:
        for (e = 0; e < mp; ++e)
            v[e] = sin(d[e]);
        break;
    default: /* KIND_LINEAR */
        for (e = 0; e < mp; ++e)
            v[e] = p0 * d[e];
        break;
    }
}

/* First edge index whose row is >= value (rows are sorted row-major,
 * guaranteed by Topology.from_edge_arrays).  Row-aligned edge spans are
 * what make the parallel scatter race-free without atomics. */
static int64_t row_lower_bound(const int32_t *rows, int64_t n_edges,
                               int64_t value) {
    int64_t lo = 0, hi = n_edges;
    while (lo < hi) {
        int64_t mid = lo + (hi - lo) / 2;
        if ((int64_t)rows[mid] < value)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* Fused coupling restricted to output rows [r0, r1): zero, accumulate
 * the row-aligned edge span in row-major order, scale.  The full-range
 * call (0, n) is arithmetically identical to the pre-threading serial
 * kernel; chunked calls touch disjoint rows, so any row-aligned
 * decomposition reproduces the serial bits. */
static void fused_span(const int32_t *rows, const int32_t *cols,
                       int64_t n_edges, const double *theta, double *out,
                       int64_t r0, int64_t r1, int64_t kind, double p0,
                       double p1, double vp, double *sd, double *sv,
                       int64_t block) {
    int64_t i, e, b0;
    int64_t e0 = row_lower_bound(rows, n_edges, r0);
    int64_t e1 = row_lower_bound(rows, n_edges, r1);
    for (i = r0; i < r1; ++i)
        out[i] = 0.0;
    for (b0 = e0; b0 < e1; b0 += block) {
        int64_t b1 = b0 + block < e1 ? b0 + block : e1;
        int64_t m = b1 - b0;
        const int32_t *rb = rows + b0;
        const int32_t *cb = cols + b0;
        for (e = 0; e < m; ++e)
            sd[e] = theta[cb[e]] - theta[rb[e]];
        potential_block(kind, p0, p1, sd, sv, m);
        for (e = 0; e < m; ++e)
            out[rb[e]] += sv[e];
    }
    for (i = r0; i < r1; ++i)
        out[i] *= vp;
}

/* Fused coupling for one (N,) state.  out[i] = vp * sum_e V(d_e) over
 * the rows, accumulated in row-major edge order (== np.bincount). */
void pom_fused_single(const int32_t *rows, const int32_t *cols,
                      int64_t n_edges, const double *theta, double *out,
                      int64_t n, int64_t kind, double p0, double p1,
                      double vp, double *sd, double *sv, int64_t block,
                      int64_t threads) {
#ifdef _OPENMP
    if (threads > 1) {
#pragma omp parallel num_threads((int)threads)
        {
            int64_t nt = (int64_t)omp_get_num_threads();
            int64_t tid = (int64_t)omp_get_thread_num();
            fused_span(rows, cols, n_edges, theta, out, n * tid / nt,
                       n * (tid + 1) / nt, kind, p0, p1, vp,
                       sd + tid * block, sv + tid * block, block);
        }
        return;
    }
#endif
    (void)threads;
    fused_span(rows, cols, n_edges, theta, out, 0, n, kind, p0, p1, vp,
               sd, sv, block);
}

/* Fused coupling for a stacked (R, N) super-state with per-member
 * potential coefficients and coupling strengths.  The parallel path
 * flattens (member, row-chunk) work items so small-R stacks still fill
 * the thread pool. */
void pom_fused_batched(const int32_t *rows, const int32_t *cols,
                       int64_t n_edges, const double *theta, double *out,
                       int64_t r_count, int64_t n, const int64_t *kinds,
                       const double *p0, const double *p1, const double *vp,
                       double *sd, double *sv, int64_t block,
                       int64_t threads) {
    int64_t r;
#ifdef _OPENMP
    if (threads > 1) {
        int64_t splits = (threads + r_count - 1) / r_count;
        int64_t total = r_count * splits;
        int64_t w;
#pragma omp parallel for schedule(dynamic, 1) num_threads((int)threads)
        for (w = 0; w < total; ++w) {
            int64_t tid = (int64_t)omp_get_thread_num();
            int64_t rr = w / splits;
            int64_t c = w % splits;
            fused_span(rows, cols, n_edges, theta + rr * n, out + rr * n,
                       n * c / splits, n * (c + 1) / splits, kinds[rr],
                       p0[rr], p1[rr], vp[rr], sd + tid * block,
                       sv + tid * block, block);
        }
        return;
    }
#endif
    (void)threads;
    for (r = 0; r < r_count; ++r)
        fused_span(rows, cols, n_edges, theta + r * n, out + r * n, 0, n,
                   kinds[r], p0[r], p1[r], vp[r], sd, sv, block);
}

/* Distance-ring specialisation: every row couples to i + d (mod n) for
 * each offset d — the paper's halo-exchange topologies.  The gather
 * becomes two contiguous shifted segments per offset and the scatter a
 * contiguous accumulate, so every pass auto-vectorises with unit
 * stride.  Accumulation runs offset-by-offset (not column order), which
 * changes the row sums only at the ulp level. */
static void ring_segment(const double *shifted, const double *th, double *o,
                         int64_t m, int64_t kind, double p0, double p1,
                         double *sd, double *sv, int64_t block) {
    int64_t b0, e;
    /* Every kind goes through the blocked scratch form: the gather and
     * the accumulate are exact IEEE ops (vectorisation-invariant), and
     * the transcendental runs inside the one noinline potential_block
     * instance — the determinism contract that keeps thread chunking
     * bit-exact.  (A streaming pass with the transcendental inlined
     * would re-tie element values to the segment trip count.) */
    for (b0 = 0; b0 < m; b0 += block) {
        int64_t b1 = b0 + block < m ? b0 + block : m;
        int64_t len = b1 - b0;
        for (e = 0; e < len; ++e)
            sd[e] = shifted[b0 + e] - th[b0 + e];
        potential_block(kind, p0, p1, sd, sv, len);
        for (e = 0; e < len; ++e)
            o[b0 + e] += sv[e];
    }
}

/* Ring coupling restricted to elements [i0, i1): per offset, the main
 * segment (partner i + d) and the wrapped segment (partner i + d - n)
 * are clipped against the chunk.  The full-range call (0, n) is the
 * pre-threading serial pass order. */
static void ring_chunk(const int64_t *offsets, int64_t n_offsets,
                       const double *theta, double *out, int64_t n,
                       int64_t i0, int64_t i1, int64_t kind, double p0,
                       double p1, double vp, double *sd, double *sv,
                       int64_t block) {
    int64_t i, k;
    for (i = i0; i < i1; ++i)
        out[i] = 0.0;
    for (k = 0; k < n_offsets; ++k) {
        int64_t d = offsets[k];      /* normalised to [1, n-1] */
        int64_t a1 = (n - d) < i1 ? (n - d) : i1;
        int64_t b0 = (n - d) > i0 ? (n - d) : i0;
        if (a1 > i0)
            ring_segment(theta + d + i0, theta + i0, out + i0, a1 - i0,
                         kind, p0, p1, sd, sv, block);
        if (i1 > b0)
            ring_segment(theta + (d - n) + b0, theta + b0, out + b0,
                         i1 - b0, kind, p0, p1, sd, sv, block);
    }
    for (i = i0; i < i1; ++i)
        out[i] *= vp;
}

void pom_fused_ring_single(const int64_t *offsets, int64_t n_offsets,
                           const double *theta, double *out, int64_t n,
                           int64_t kind, double p0, double p1, double vp,
                           double *sd, double *sv, int64_t block,
                           int64_t threads) {
#ifdef _OPENMP
    if (threads > 1) {
#pragma omp parallel num_threads((int)threads)
        {
            int64_t nt = (int64_t)omp_get_num_threads();
            int64_t tid = (int64_t)omp_get_thread_num();
            ring_chunk(offsets, n_offsets, theta, out, n, n * tid / nt,
                       n * (tid + 1) / nt, kind, p0, p1, vp,
                       sd + tid * block, sv + tid * block, block);
        }
        return;
    }
#endif
    (void)threads;
    ring_chunk(offsets, n_offsets, theta, out, n, 0, n, kind, p0, p1, vp,
               sd, sv, block);
}

void pom_fused_ring_batched(const int64_t *offsets, int64_t n_offsets,
                            const double *theta, double *out,
                            int64_t r_count, int64_t n, const int64_t *kinds,
                            const double *p0, const double *p1,
                            const double *vp, double *sd, double *sv,
                            int64_t block, int64_t threads) {
    int64_t r;
#ifdef _OPENMP
    if (threads > 1) {
        int64_t splits = (threads + r_count - 1) / r_count;
        int64_t total = r_count * splits;
        int64_t w;
#pragma omp parallel for schedule(dynamic, 1) num_threads((int)threads)
        for (w = 0; w < total; ++w) {
            int64_t tid = (int64_t)omp_get_thread_num();
            int64_t rr = w / splits;
            int64_t c = w % splits;
            ring_chunk(offsets, n_offsets, theta + rr * n, out + rr * n, n,
                       n * c / splits, n * (c + 1) / splits, kinds[rr],
                       p0[rr], p1[rr], vp[rr], sd + tid * block,
                       sv + tid * block, block);
        }
        return;
    }
#endif
    (void)threads;
    for (r = 0; r < r_count; ++r)
        ring_chunk(offsets, n_offsets, theta + r * n, out + r * n, n, 0, n,
                   kinds[r], p0[r], p1[r], vp[r], sd, sv, block);
}

/* 2-D torus halo specialisation.  The flat index is i = y*w + x with
 * row width w.  Column-direction (and any other whole-lattice) offsets
 * have one partner i + d (mod n) per element — ring passes over the
 * flat state.  Row-direction offsets wrap inside each width-w row:
 * partner y*w + (x + dx) % w — two contiguous segments per row.  Both
 * families are unit-stride; chunking is by torus row, so the parallel
 * decomposition stays row-aligned. */
static void torus_chunk(const int64_t *col_offs, int64_t n_col,
                        const int64_t *row_dxs, int64_t n_dx, int64_t w,
                        const double *theta, double *out, int64_t n,
                        int64_t y0, int64_t y1, int64_t kind, double p0,
                        double p1, double vp, double *sd, double *sv,
                        int64_t block) {
    int64_t i0 = y0 * w, i1 = y1 * w;
    int64_t i, k, y;
    for (i = i0; i < i1; ++i)
        out[i] = 0.0;
    for (k = 0; k < n_col; ++k) {
        int64_t d = col_offs[k];     /* whole-lattice offset in [1, n-1] */
        int64_t a1 = (n - d) < i1 ? (n - d) : i1;
        int64_t b0 = (n - d) > i0 ? (n - d) : i0;
        if (a1 > i0)
            ring_segment(theta + d + i0, theta + i0, out + i0, a1 - i0,
                         kind, p0, p1, sd, sv, block);
        if (i1 > b0)
            ring_segment(theta + (d - n) + b0, theta + b0, out + b0,
                         i1 - b0, kind, p0, p1, sd, sv, block);
    }
    for (k = 0; k < n_dx; ++k) {
        int64_t dx = row_dxs[k];     /* within-row offset in [1, w-1] */
        for (y = y0; y < y1; ++y) {
            const double *th = theta + y * w;
            double *o = out + y * w;
            ring_segment(th + dx, th, o, w - dx, kind, p0, p1,
                         sd, sv, block);
            ring_segment(th, th + (w - dx), o + (w - dx), dx, kind, p0, p1,
                         sd, sv, block);
        }
    }
    for (i = i0; i < i1; ++i)
        out[i] *= vp;
}

void pom_fused_torus_single(const int64_t *col_offs, int64_t n_col,
                            const int64_t *row_dxs, int64_t n_dx,
                            int64_t w, const double *theta, double *out,
                            int64_t n, int64_t kind, double p0, double p1,
                            double vp, double *sd, double *sv,
                            int64_t block, int64_t threads) {
    int64_t h = n / w;
#ifdef _OPENMP
    if (threads > 1) {
#pragma omp parallel num_threads((int)threads)
        {
            int64_t nt = (int64_t)omp_get_num_threads();
            int64_t tid = (int64_t)omp_get_thread_num();
            torus_chunk(col_offs, n_col, row_dxs, n_dx, w, theta, out, n,
                        h * tid / nt, h * (tid + 1) / nt, kind, p0, p1, vp,
                        sd + tid * block, sv + tid * block, block);
        }
        return;
    }
#endif
    (void)threads;
    torus_chunk(col_offs, n_col, row_dxs, n_dx, w, theta, out, n, 0, h,
                kind, p0, p1, vp, sd, sv, block);
}

void pom_fused_torus_batched(const int64_t *col_offs, int64_t n_col,
                             const int64_t *row_dxs, int64_t n_dx,
                             int64_t w, const double *theta, double *out,
                             int64_t r_count, int64_t n,
                             const int64_t *kinds, const double *p0,
                             const double *p1, const double *vp,
                             double *sd, double *sv, int64_t block,
                             int64_t threads) {
    int64_t r;
    int64_t h = n / w;
#ifdef _OPENMP
    if (threads > 1) {
        int64_t splits = (threads + r_count - 1) / r_count;
        int64_t total = r_count * splits;
        int64_t wi;
#pragma omp parallel for schedule(dynamic, 1) num_threads((int)threads)
        for (wi = 0; wi < total; ++wi) {
            int64_t tid = (int64_t)omp_get_thread_num();
            int64_t rr = wi / splits;
            int64_t c = wi % splits;
            torus_chunk(col_offs, n_col, row_dxs, n_dx, w, theta + rr * n,
                        out + rr * n, n, h * c / splits,
                        h * (c + 1) / splits, kinds[rr], p0[rr], p1[rr],
                        vp[rr], sd + tid * block, sv + tid * block, block);
        }
        return;
    }
#endif
    (void)threads;
    for (r = 0; r < r_count; ++r)
        torus_chunk(col_offs, n_col, row_dxs, n_dx, w, theta + r * n,
                    out + r * n, n, 0, h, kinds[r], p0[r], p1[r], vp[r],
                    sd, sv, block);
}
"""

#: edge-block length (doubles); two scratch blocks per thread stay
#: L2-resident
BLOCK_EDGES = 16384

#: (compile flags, extra link flags) tried in order until one builds.
#: NOTE: the object is compiled with -ffast-math (needed for the libmvec
#: SIMD transcendentals) but LINKED without it — linking a shared
#: library with -ffast-math pulls in crtfastmath.o, whose constructor
#: flips the process-wide FTZ/DAZ bits at dlopen time and silently
#: breaks subnormal arithmetic for the whole interpreter.  -fopenmp *is*
#: needed on the link line (libgomp); it does not pull crtfastmath.o.
_FLAG_SETS = (
    # glibc + x86: vectorised libm via libmvec, widest SIMD available,
    # OpenMP row-parallel loops
    (
        [
            "-O3",
            "-march=native",
            "-mprefer-vector-width=512",
            "-ffast-math",
            "-fopenmp-simd",
            "-fopenmp",
            "-fPIC",
        ],
        ["-fopenmp"],
    ),
    # same without OpenMP (serial kernels, threads knob is a no-op)
    (
        [
            "-O3",
            "-march=native",
            "-mprefer-vector-width=512",
            "-ffast-math",
            "-fopenmp-simd",
            "-fPIC",
        ],
        [],
    ),
    # portable optimised builds
    (["-O3", "-ffast-math", "-fopenmp", "-fPIC"], ["-fopenmp"]),
    (["-O3", "-ffast-math", "-fPIC"], []),
    # last resort
    (["-O2", "-fPIC"], []),
)

_lib: ctypes.CDLL | None = None
_lib_failed = False


def _compiler() -> str | None:
    cand = os.environ.get("CC") or "cc"
    return shutil.which(cand)


def _cpu_tag() -> str:
    """Host signature for the cache key — -march=native binaries are not
    portable across CPU generations, so the ISA feature set must be part
    of the content address (shared TMPDIR across heterogeneous nodes)."""
    flags = ""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith(("flags", "Features")):
                    flags = line
                    break
    except OSError:
        pass
    return platform.machine() + platform.system() + flags


def _cache_path() -> str | None:
    digest = hashlib.sha1(
        (_SOURCE + sys.version + np.__version__ + _cpu_tag()).encode()
    )
    tag = digest.hexdigest()[:16]
    uid = os.getuid() if hasattr(os, "getuid") else "u"
    d = os.path.join(tempfile.gettempdir(), f"pom-cc-kernel-{uid}-{tag}")
    # The directory sits in a world-writable location: create it private
    # and refuse to trust it unless we own it, so another local user
    # cannot pre-plant a malicious pom_kernel.so at the predictable path.
    os.makedirs(d, mode=0o700, exist_ok=True)
    if hasattr(os, "getuid") and os.stat(d).st_uid != os.getuid():
        return None
    return os.path.join(d, "pom_kernel.so")


def _build(path: str) -> bool:
    compiler = _compiler()
    if compiler is None:
        return False
    src = path[:-3] + ".c"
    with open(src, "w") as fh:
        fh.write(_SOURCE)
    for flags, link_extra in _FLAG_SETS:
        obj = f"{path}.o{os.getpid()}"
        tmp = f"{path}.tmp{os.getpid()}"
        compile_cmd = [compiler, "-c", *flags, "-o", obj, src]
        link_cmd = [compiler, "-shared", *link_extra, "-o", tmp, obj, "-lm"]
        try:
            proc = subprocess.run(compile_cmd, capture_output=True, timeout=120)
            if proc.returncode == 0:
                proc = subprocess.run(link_cmd, capture_output=True, timeout=120)
        except (OSError, subprocess.SubprocessError):
            continue
        finally:
            if os.path.exists(obj):
                os.unlink(obj)
        if proc.returncode == 0:
            os.replace(tmp, path)  # atomic: concurrent builders agree
            return True
        if os.path.exists(tmp):
            os.unlink(tmp)
    return False


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    i32p = ctypes.POINTER(ctypes.c_int32)
    i64 = ctypes.c_int64
    i64p = ctypes.POINTER(ctypes.c_int64)
    f64 = ctypes.c_double
    f64p = ctypes.POINTER(ctypes.c_double)
    edge = [i32p, i32p, i64, f64p, f64p]
    ring = [i64p, i64, f64p, f64p]
    torus = [i64p, i64, i64p, i64, i64, f64p, f64p]
    single = [i64, i64, f64, f64, f64]
    batched = [i64, i64, i64p, f64p, f64p, f64p]
    scratch = [f64p, f64p, i64, i64]
    lib.pom_openmp_available.restype = i64
    lib.pom_openmp_available.argtypes = []
    lib.pom_fused_single.restype = None
    lib.pom_fused_single.argtypes = edge + single + scratch
    lib.pom_fused_batched.restype = None
    lib.pom_fused_batched.argtypes = edge + batched + scratch
    lib.pom_fused_ring_single.restype = None
    lib.pom_fused_ring_single.argtypes = ring + single + scratch
    lib.pom_fused_ring_batched.restype = None
    lib.pom_fused_ring_batched.argtypes = ring + batched + scratch
    lib.pom_fused_torus_single.restype = None
    lib.pom_fused_torus_single.argtypes = torus + single + scratch
    lib.pom_fused_torus_batched.restype = None
    lib.pom_fused_torus_batched.argtypes = torus + batched + scratch
    return lib


def load_library() -> ctypes.CDLL | None:
    """Build (once) and load the kernel library; ``None`` if unavailable."""
    global _lib, _lib_failed
    if _lib is not None or _lib_failed:
        return _lib
    try:
        path = _cache_path()
        if path is None or (not os.path.exists(path) and not _build(path)):
            _lib_failed = True
            return None
        _lib = _bind(ctypes.CDLL(path))
    except Exception:
        # Any failure (no compiler, exotic platform, unloadable binary)
        # must degrade to "cc unavailable" so the auto resolution falls
        # back to the tiled/NumPy kernels instead of crashing simulate().
        _lib_failed = True
        return None
    return _lib


def cc_available() -> bool:
    """True when the compiled kernel can be built and loaded."""
    return load_library() is not None


def openmp_available() -> bool:
    """True when the compiled kernel binary carries OpenMP support.

    False either because no kernel builds at all or because the
    flag-set fallback chain landed on a serial build — in both cases
    ``threads > 1`` silently degrades to the serial (bit-identical)
    path.
    """
    lib = load_library()
    return bool(lib is not None and lib.pom_openmp_available())


def _f64p(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _i32p(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))


def _i64p(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _aligned_empty(n: int) -> np.ndarray:
    """A float64 scratch array on a 64-byte boundary.

    Pinning the alignment removes the last trip-count-adjacent source
    of SIMD variance: a compiler that peels iterations until a pointer
    is aligned peels the *same* count on every call.  (BLOCK_EDGES * 8
    is a multiple of 64, so the per-OpenMP-thread slices inherit the
    alignment.)
    """
    raw = np.empty(n + 8, dtype=np.float64)
    off = (-raw.ctypes.data % 64) // 8
    return raw[off:off + n]


class _Scratch:
    """Reused per-call scratch: two ``threads * BLOCK_EDGES`` doubles.

    One pair per *Python thread*: ctypes releases the GIL for the
    duration of the C call, so concurrent evaluations from different
    threads must not share write buffers.  Inside one call, OpenMP
    thread ``tid`` works in the disjoint slice ``[tid * BLOCK_EDGES,
    (tid + 1) * BLOCK_EDGES)``.
    """

    def __init__(self, threads: int) -> None:
        self.threads = threads
        self.sd = _aligned_empty(threads * BLOCK_EDGES)
        self.sv = _aligned_empty(threads * BLOCK_EDGES)


_tls = threading.local()


def _scratch_buffers(threads: int = 1) -> "_Scratch":
    scratch = getattr(_tls, "scratch", None)
    if scratch is None or scratch.threads < threads:
        scratch = _tls.scratch = _Scratch(threads)
    return scratch


def _clamp_threads(threads: int) -> int:
    """Effective OpenMP team size: 1 unless the binary supports more."""
    t = int(threads)
    if t <= 1:
        return 1
    return t if openmp_available() else 1


def ring_offsets(rows: np.ndarray, cols: np.ndarray, n: int) -> np.ndarray | None:
    """Offset set of a distance-ring topology, or ``None``.

    A topology is a distance ring iff every row couples to ``i + d (mod
    n)`` for one shared offset set — then the fused C kernel can replace
    its gathers and scatters with contiguous shifted passes.  Verified
    from the edge list itself (O(E)), not from builder metadata, so any
    equivalent construction qualifies.
    """
    if rows.size == 0:
        return None
    offs = (cols - rows) % n
    uniq, counts = np.unique(offs, return_counts=True)
    if uniq.size * n != rows.size or not np.all(counts == n):
        return None
    return np.ascontiguousarray(uniq, dtype=np.int64)


def torus_halo(
    rows: np.ndarray, cols: np.ndarray, n: int
) -> tuple[int, np.ndarray, np.ndarray] | None:
    """Halo decomposition of a 2-D torus edge list, or ``None``.

    Detects (from the edge list alone, like :func:`ring_offsets`) that
    the topology splits into

    * **whole-lattice offsets** — every element couples to ``i + d (mod
      n)`` (the column/vertical halo plus any diagonal rings), and
    * **within-row offsets** — partners stay inside width-``w`` rows,
      coupling ``x`` to ``(x + dx) % w`` (the horizontal halo, whose
      flat offset is *not* uniform because of the per-row wrap — the
      reason these edges defeat the plain ring detection).

    ``w`` is recovered as the gcd of the whole-lattice offsets (for a
    ``W x H`` torus the vertical offsets are ``W`` and ``n - W``), and
    every remaining edge is verified to be within-row with each ``dx``
    covering all ``n`` elements exactly once.  Returns ``(w,
    col_offsets, row_dxs)`` for the compiled torus kernels, or ``None``
    when the edge list is not of this shape (including pure rings,
    which the cheaper ring path already covers).
    """
    if rows.size == 0:
        return None
    offs = (cols - rows) % n
    uniq, counts = np.unique(offs, return_counts=True)
    if uniq.size == 0 or uniq[0] == 0:
        return None
    full = uniq[counts == n]
    if full.size == 0 or full.size == uniq.size:
        return None  # no lattice rings, or a pure ring (handled upstream)
    w = int(np.gcd.reduce(np.concatenate([full, [np.int64(n)]])))
    if w <= 1 or n % w != 0:
        return None
    sel = np.isin(offs, uniq[counts != n])
    pr, pc = rows[sel], cols[sel]
    if not np.array_equal(pr // w, pc // w):
        return None  # partial-offset edges leave their row: not a torus
    dxs, dcounts = np.unique((pc - pr) % w, return_counts=True)
    if dxs.size == 0 or dxs[0] == 0 or not np.all(dcounts == n):
        return None
    return (
        w,
        np.ascontiguousarray(full, dtype=np.int64),
        np.ascontiguousarray(dxs, dtype=np.int64),
    )


def fused_single(
    rows32: np.ndarray,
    cols32: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
    threads: int = 1,
) -> np.ndarray:
    """Coupling term for one contiguous ``(N,)`` state into ``out``."""
    lib = load_library()
    threads = _clamp_threads(threads)
    scratch = _scratch_buffers(threads)
    lib.pom_fused_single(
        _i32p(rows32),
        _i32p(cols32),
        ctypes.c_int64(rows32.size),
        _f64p(theta),
        _f64p(out),
        ctypes.c_int64(theta.size),
        ctypes.c_int64(kind),
        ctypes.c_double(p0),
        ctypes.c_double(p1),
        ctypes.c_double(vp_over_n),
        _f64p(scratch.sd),
        _f64p(scratch.sv),
        ctypes.c_int64(BLOCK_EDGES),
        ctypes.c_int64(threads),
    )
    return out


def fused_batched(
    rows32: np.ndarray,
    cols32: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
    threads: int = 1,
) -> np.ndarray:
    """Coupling terms for a contiguous ``(R, N)`` super-state into ``out``."""
    lib = load_library()
    threads = _clamp_threads(threads)
    scratch = _scratch_buffers(threads)
    r, n = theta.shape
    lib.pom_fused_batched(
        _i32p(rows32),
        _i32p(cols32),
        ctypes.c_int64(rows32.size),
        _f64p(theta),
        _f64p(out),
        ctypes.c_int64(r),
        ctypes.c_int64(n),
        _i64p(kinds),
        _f64p(p0),
        _f64p(p1),
        _f64p(vp_over_n),
        _f64p(scratch.sd),
        _f64p(scratch.sv),
        ctypes.c_int64(BLOCK_EDGES),
        ctypes.c_int64(threads),
    )
    return out


def ring_single(
    offsets: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
    threads: int = 1,
) -> np.ndarray:
    """Distance-ring coupling for one ``(N,)`` state into ``out``."""
    lib = load_library()
    threads = _clamp_threads(threads)
    scratch = _scratch_buffers(threads)
    lib.pom_fused_ring_single(
        _i64p(offsets),
        ctypes.c_int64(offsets.size),
        _f64p(theta),
        _f64p(out),
        ctypes.c_int64(theta.size),
        ctypes.c_int64(kind),
        ctypes.c_double(p0),
        ctypes.c_double(p1),
        ctypes.c_double(vp_over_n),
        _f64p(scratch.sd),
        _f64p(scratch.sv),
        ctypes.c_int64(BLOCK_EDGES),
        ctypes.c_int64(threads),
    )
    return out


def ring_batched(
    offsets: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
    threads: int = 1,
) -> np.ndarray:
    """Distance-ring coupling for an ``(R, N)`` super-state into ``out``."""
    lib = load_library()
    threads = _clamp_threads(threads)
    scratch = _scratch_buffers(threads)
    r, n = theta.shape
    lib.pom_fused_ring_batched(
        _i64p(offsets),
        ctypes.c_int64(offsets.size),
        _f64p(theta),
        _f64p(out),
        ctypes.c_int64(r),
        ctypes.c_int64(n),
        _i64p(kinds),
        _f64p(p0),
        _f64p(p1),
        _f64p(vp_over_n),
        _f64p(scratch.sd),
        _f64p(scratch.sv),
        ctypes.c_int64(BLOCK_EDGES),
        ctypes.c_int64(threads),
    )
    return out


def torus_single(
    halo: tuple[int, np.ndarray, np.ndarray],
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
    threads: int = 1,
) -> np.ndarray:
    """2-D torus halo coupling for one ``(N,)`` state into ``out``.

    ``halo`` is the ``(w, col_offsets, row_dxs)`` decomposition from
    :func:`torus_halo`.
    """
    w, col_offsets, row_dxs = halo
    lib = load_library()
    threads = _clamp_threads(threads)
    scratch = _scratch_buffers(threads)
    lib.pom_fused_torus_single(
        _i64p(col_offsets),
        ctypes.c_int64(col_offsets.size),
        _i64p(row_dxs),
        ctypes.c_int64(row_dxs.size),
        ctypes.c_int64(w),
        _f64p(theta),
        _f64p(out),
        ctypes.c_int64(theta.size),
        ctypes.c_int64(kind),
        ctypes.c_double(p0),
        ctypes.c_double(p1),
        ctypes.c_double(vp_over_n),
        _f64p(scratch.sd),
        _f64p(scratch.sv),
        ctypes.c_int64(BLOCK_EDGES),
        ctypes.c_int64(threads),
    )
    return out


def torus_batched(
    halo: tuple[int, np.ndarray, np.ndarray],
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
    threads: int = 1,
) -> np.ndarray:
    """2-D torus halo coupling for an ``(R, N)`` super-state into ``out``."""
    w, col_offsets, row_dxs = halo
    lib = load_library()
    threads = _clamp_threads(threads)
    scratch = _scratch_buffers(threads)
    r, n = theta.shape
    lib.pom_fused_torus_batched(
        _i64p(col_offsets),
        ctypes.c_int64(col_offsets.size),
        _i64p(row_dxs),
        ctypes.c_int64(row_dxs.size),
        ctypes.c_int64(w),
        _f64p(theta),
        _f64p(out),
        ctypes.c_int64(r),
        ctypes.c_int64(n),
        _i64p(kinds),
        _f64p(p0),
        _f64p(p1),
        _f64p(vp_over_n),
        _f64p(scratch.sd),
        _f64p(scratch.sv),
        ctypes.c_int64(BLOCK_EDGES),
        ctypes.c_int64(threads),
    )
    return out
