"""Fused gather-potential-scatter kernel compiled with the system C compiler.

The batched NumPy RHS is memory-bound at large N: every evaluation
streams several ``(R, E)`` scratch arrays (two gathers, the difference,
the potential values, the flattened ``bincount`` weights) through the
cache hierarchy.  This module compiles a C kernel that walks the edge
list once per member in cache-resident blocks:

1. **gather** — ``d[e] = theta[cols[e]] - theta[rows[e]]`` for one block,
2. **potential** — the coefficient family evaluated in a flat pass that
   GCC auto-vectorises against ``libmvec`` (AVX2/AVX-512 ``tanh``/``sin``
   on glibc >= 2.35),
3. **scatter** — per-row accumulation in the same row-major edge order as
   the NumPy ``bincount`` path, so results agree to the last few ulps
   (the only differences come from the SIMD transcendentals).

The shared library is built on first use with the system ``cc`` (honouring
``$CC``) into a content-addressed cache directory under the user's temp
dir, then loaded via :mod:`ctypes` — no build-time dependency, no
third-party package.  When no working compiler is available the module
reports unavailability and the ``"auto"`` kernel resolution falls back to
the tiled/NumPy paths.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import threading

import numpy as np

__all__ = [
    "cc_available",
    "load_library",
    "ring_offsets",
    "fused_single",
    "fused_batched",
    "ring_single",
    "ring_batched",
]

_SOURCE = r"""
#include <math.h>
#include <stdint.h>

/* Potential kinds: keep in sync with repro/kernels/coeffs.py. */
enum { KIND_TANH = 0, KIND_BOTTLENECK = 1, KIND_KURAMOTO = 2, KIND_LINEAR = 3 };

/* Evaluate one coefficient family on a block of phase differences.
 * Each case is a flat loop over the block so the compiler can
 * auto-vectorise the transcendental against libmvec. */
static void potential_block(int64_t kind, double p0, double p1,
                            const double *d, double *v, int64_t m) {
    int64_t e;
    switch (kind) {
    case KIND_TANH:
        for (e = 0; e < m; ++e)
            v[e] = tanh(p0 * d[e]);
        break;
    case KIND_BOTTLENECK:
        /* -sin inside the horizon |d| < sigma (=p0), sign(d) outside;
         * the sin pass runs on the whole block (vectorisable), then the
         * outside lanes are overwritten. */
        for (e = 0; e < m; ++e)
            v[e] = -sin(p1 * d[e]);
        for (e = 0; e < m; ++e)
            if (!(fabs(d[e]) < p0))
                v[e] = (double)((d[e] > 0.0) - (d[e] < 0.0));
        break;
    case KIND_KURAMOTO:
        for (e = 0; e < m; ++e)
            v[e] = sin(d[e]);
        break;
    default: /* KIND_LINEAR */
        for (e = 0; e < m; ++e)
            v[e] = p0 * d[e];
        break;
    }
}

/* Fused coupling for one (N,) state.  out[i] = vp * sum_e V(d_e) over
 * the rows, accumulated in row-major edge order (== np.bincount). */
void pom_fused_single(const int32_t *rows, const int32_t *cols,
                      int64_t n_edges, const double *theta, double *out,
                      int64_t n, int64_t kind, double p0, double p1,
                      double vp, double *sd, double *sv, int64_t block) {
    int64_t i, e, b0;
    for (i = 0; i < n; ++i)
        out[i] = 0.0;
    for (b0 = 0; b0 < n_edges; b0 += block) {
        int64_t b1 = b0 + block < n_edges ? b0 + block : n_edges;
        int64_t m = b1 - b0;
        const int32_t *rb = rows + b0;
        const int32_t *cb = cols + b0;
        for (e = 0; e < m; ++e)
            sd[e] = theta[cb[e]] - theta[rb[e]];
        potential_block(kind, p0, p1, sd, sv, m);
        for (e = 0; e < m; ++e)
            out[rb[e]] += sv[e];
    }
    for (i = 0; i < n; ++i)
        out[i] *= vp;
}

/* Fused coupling for a stacked (R, N) super-state with per-member
 * potential coefficients and coupling strengths. */
void pom_fused_batched(const int32_t *rows, const int32_t *cols,
                       int64_t n_edges, const double *theta, double *out,
                       int64_t r_count, int64_t n, const int64_t *kinds,
                       const double *p0, const double *p1, const double *vp,
                       double *sd, double *sv, int64_t block) {
    int64_t r;
    for (r = 0; r < r_count; ++r)
        pom_fused_single(rows, cols, n_edges, theta + r * n, out + r * n,
                         n, kinds[r], p0[r], p1[r], vp[r], sd, sv, block);
}

/* Distance-ring specialisation: every row couples to i + d (mod n) for
 * each offset d — the paper's halo-exchange topologies.  The gather
 * becomes two contiguous shifted segments per offset and the scatter a
 * contiguous accumulate, so every pass auto-vectorises with unit
 * stride.  Accumulation runs offset-by-offset (not column order), which
 * changes the row sums only at the ulp level. */
static void ring_segment(const double *shifted, const double *th, double *o,
                         int64_t m, int64_t kind, double p0, double p1,
                         double *sd, double *sv, int64_t block) {
    int64_t b0, e;
    /* tanh/kuramoto/linear need no scratch at all: one streaming pass
     * with the transcendental inlined keeps the whole segment at three
     * memory streams.  The bottleneck family keeps the blocked two-pass
     * form because its outside-the-horizon lanes reread d. */
    switch (kind) {
    case KIND_TANH:
        for (e = 0; e < m; ++e)
            o[e] += tanh(p0 * (shifted[e] - th[e]));
        return;
    case KIND_KURAMOTO:
        for (e = 0; e < m; ++e)
            o[e] += sin(shifted[e] - th[e]);
        return;
    case KIND_LINEAR:
        for (e = 0; e < m; ++e)
            o[e] += p0 * (shifted[e] - th[e]);
        return;
    default:
        break;
    }
    for (b0 = 0; b0 < m; b0 += block) {
        int64_t b1 = b0 + block < m ? b0 + block : m;
        int64_t len = b1 - b0;
        for (e = 0; e < len; ++e)
            sd[e] = shifted[b0 + e] - th[b0 + e];
        potential_block(kind, p0, p1, sd, sv, len);
        for (e = 0; e < len; ++e)
            o[b0 + e] += sv[e];
    }
}

void pom_fused_ring_single(const int64_t *offsets, int64_t n_offsets,
                           const double *theta, double *out, int64_t n,
                           int64_t kind, double p0, double p1, double vp,
                           double *sd, double *sv, int64_t block) {
    int64_t i, k;
    for (i = 0; i < n; ++i)
        out[i] = 0.0;
    for (k = 0; k < n_offsets; ++k) {
        int64_t d = offsets[k];      /* normalised to [1, n-1] */
        /* i in [0, n-d): partner theta[i + d] */
        ring_segment(theta + d, theta, out, n - d, kind, p0, p1,
                     sd, sv, block);
        /* i in [n-d, n): partner wraps to theta[i + d - n] = theta[i - (n-d)] */
        ring_segment(theta, theta + (n - d), out + (n - d), d,
                     kind, p0, p1, sd, sv, block);
    }
    for (i = 0; i < n; ++i)
        out[i] *= vp;
}

void pom_fused_ring_batched(const int64_t *offsets, int64_t n_offsets,
                            const double *theta, double *out,
                            int64_t r_count, int64_t n, const int64_t *kinds,
                            const double *p0, const double *p1,
                            const double *vp, double *sd, double *sv,
                            int64_t block) {
    int64_t r;
    for (r = 0; r < r_count; ++r)
        pom_fused_ring_single(offsets, n_offsets, theta + r * n,
                              out + r * n, n, kinds[r], p0[r], p1[r], vp[r],
                              sd, sv, block);
}
"""

#: edge-block length (doubles); two scratch blocks stay L2-resident
BLOCK_EDGES = 16384

#: compile-stage flag sets tried in order until one builds.  NOTE: the
#: object is compiled with -ffast-math (needed for the libmvec SIMD
#: transcendentals) but LINKED without it — linking a shared library
#: with -ffast-math pulls in crtfastmath.o, whose constructor flips the
#: process-wide FTZ/DAZ bits at dlopen time and silently breaks
#: subnormal arithmetic for the whole interpreter.
_FLAG_SETS = (
    # glibc + x86: vectorised libm via libmvec, widest SIMD available
    [
        "-O3",
        "-march=native",
        "-mprefer-vector-width=512",
        "-ffast-math",
        "-fopenmp-simd",
        "-fPIC",
    ],
    # portable optimised build
    ["-O3", "-ffast-math", "-fPIC"],
    # last resort
    ["-O2", "-fPIC"],
)

_lib: ctypes.CDLL | None = None
_lib_failed = False


def _compiler() -> str | None:
    cand = os.environ.get("CC") or "cc"
    return shutil.which(cand)


def _cpu_tag() -> str:
    """Host signature for the cache key — -march=native binaries are not
    portable across CPU generations, so the ISA feature set must be part
    of the content address (shared TMPDIR across heterogeneous nodes)."""
    flags = ""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith(("flags", "Features")):
                    flags = line
                    break
    except OSError:
        pass
    return platform.machine() + platform.system() + flags


def _cache_path() -> str | None:
    digest = hashlib.sha1(
        (_SOURCE + sys.version + np.__version__ + _cpu_tag()).encode()
    )
    tag = digest.hexdigest()[:16]
    uid = os.getuid() if hasattr(os, "getuid") else "u"
    d = os.path.join(tempfile.gettempdir(), f"pom-cc-kernel-{uid}-{tag}")
    # The directory sits in a world-writable location: create it private
    # and refuse to trust it unless we own it, so another local user
    # cannot pre-plant a malicious pom_kernel.so at the predictable path.
    os.makedirs(d, mode=0o700, exist_ok=True)
    if hasattr(os, "getuid") and os.stat(d).st_uid != os.getuid():
        return None
    return os.path.join(d, "pom_kernel.so")


def _build(path: str) -> bool:
    compiler = _compiler()
    if compiler is None:
        return False
    src = path[:-3] + ".c"
    with open(src, "w") as fh:
        fh.write(_SOURCE)
    for flags in _FLAG_SETS:
        obj = f"{path}.o{os.getpid()}"
        tmp = f"{path}.tmp{os.getpid()}"
        compile_cmd = [compiler, "-c", *flags, "-o", obj, src]
        link_cmd = [compiler, "-shared", "-o", tmp, obj, "-lm"]
        try:
            proc = subprocess.run(compile_cmd, capture_output=True, timeout=120)
            if proc.returncode == 0:
                proc = subprocess.run(link_cmd, capture_output=True, timeout=120)
        except (OSError, subprocess.SubprocessError):
            continue
        finally:
            if os.path.exists(obj):
                os.unlink(obj)
        if proc.returncode == 0:
            os.replace(tmp, path)  # atomic: concurrent builders agree
            return True
        if os.path.exists(tmp):
            os.unlink(tmp)
    return False


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    i32p = ctypes.POINTER(ctypes.c_int32)
    i64 = ctypes.c_int64
    i64p = ctypes.POINTER(ctypes.c_int64)
    f64 = ctypes.c_double
    f64p = ctypes.POINTER(ctypes.c_double)
    edge = [i32p, i32p, i64, f64p, f64p]
    ring = [i64p, i64, f64p, f64p]
    single = [i64, i64, f64, f64, f64]
    batched = [i64, i64, i64p, f64p, f64p, f64p]
    scratch = [f64p, f64p, i64]
    lib.pom_fused_single.restype = None
    lib.pom_fused_single.argtypes = edge + single + scratch
    lib.pom_fused_batched.restype = None
    lib.pom_fused_batched.argtypes = edge + batched + scratch
    lib.pom_fused_ring_single.restype = None
    lib.pom_fused_ring_single.argtypes = ring + single + scratch
    lib.pom_fused_ring_batched.restype = None
    lib.pom_fused_ring_batched.argtypes = ring + batched + scratch
    return lib


def load_library() -> ctypes.CDLL | None:
    """Build (once) and load the kernel library; ``None`` if unavailable."""
    global _lib, _lib_failed
    if _lib is not None or _lib_failed:
        return _lib
    try:
        path = _cache_path()
        if path is None or (not os.path.exists(path) and not _build(path)):
            _lib_failed = True
            return None
        _lib = _bind(ctypes.CDLL(path))
    except Exception:
        # Any failure (no compiler, exotic platform, unloadable binary)
        # must degrade to "cc unavailable" so the auto resolution falls
        # back to the tiled/NumPy kernels instead of crashing simulate().
        _lib_failed = True
        return None
    return _lib


def cc_available() -> bool:
    """True when the compiled kernel can be built and loaded."""
    return load_library() is not None


def _f64p(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _i32p(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))


def _i64p(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


class _Scratch:
    """Reused per-call scratch blocks (two BLOCK_EDGES-long doubles).

    One pair per *thread*: ctypes releases the GIL for the duration of
    the C call, so concurrent evaluations from different threads must
    not share write buffers.
    """

    def __init__(self) -> None:
        self.sd = np.empty(BLOCK_EDGES)
        self.sv = np.empty(BLOCK_EDGES)


_tls = threading.local()


def _scratch_buffers() -> "_Scratch":
    scratch = getattr(_tls, "scratch", None)
    if scratch is None:
        scratch = _tls.scratch = _Scratch()
    return scratch


def ring_offsets(rows: np.ndarray, cols: np.ndarray, n: int) -> np.ndarray | None:
    """Offset set of a distance-ring topology, or ``None``.

    A topology is a distance ring iff every row couples to ``i + d (mod
    n)`` for one shared offset set — then the fused C kernel can replace
    its gathers and scatters with contiguous shifted passes.  Verified
    from the edge list itself (O(E)), not from builder metadata, so any
    equivalent construction qualifies.
    """
    if rows.size == 0:
        return None
    offs = (cols - rows) % n
    uniq, counts = np.unique(offs, return_counts=True)
    if uniq.size * n != rows.size or not np.all(counts == n):
        return None
    return np.ascontiguousarray(uniq, dtype=np.int64)


def fused_single(
    rows32: np.ndarray,
    cols32: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
) -> np.ndarray:
    """Coupling term for one contiguous ``(N,)`` state into ``out``."""
    lib = load_library()
    scratch = _scratch_buffers()
    lib.pom_fused_single(
        _i32p(rows32),
        _i32p(cols32),
        ctypes.c_int64(rows32.size),
        _f64p(theta),
        _f64p(out),
        ctypes.c_int64(theta.size),
        ctypes.c_int64(kind),
        ctypes.c_double(p0),
        ctypes.c_double(p1),
        ctypes.c_double(vp_over_n),
        _f64p(scratch.sd),
        _f64p(scratch.sv),
        ctypes.c_int64(BLOCK_EDGES),
    )
    return out


def fused_batched(
    rows32: np.ndarray,
    cols32: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
) -> np.ndarray:
    """Coupling terms for a contiguous ``(R, N)`` super-state into ``out``."""
    lib = load_library()
    scratch = _scratch_buffers()
    r, n = theta.shape
    lib.pom_fused_batched(
        _i32p(rows32),
        _i32p(cols32),
        ctypes.c_int64(rows32.size),
        _f64p(theta),
        _f64p(out),
        ctypes.c_int64(r),
        ctypes.c_int64(n),
        _i64p(kinds),
        _f64p(p0),
        _f64p(p1),
        _f64p(vp_over_n),
        _f64p(scratch.sd),
        _f64p(scratch.sv),
        ctypes.c_int64(BLOCK_EDGES),
    )
    return out


def ring_single(
    offsets: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
) -> np.ndarray:
    """Distance-ring coupling for one ``(N,)`` state into ``out``."""
    lib = load_library()
    scratch = _scratch_buffers()
    lib.pom_fused_ring_single(
        _i64p(offsets),
        ctypes.c_int64(offsets.size),
        _f64p(theta),
        _f64p(out),
        ctypes.c_int64(theta.size),
        ctypes.c_int64(kind),
        ctypes.c_double(p0),
        ctypes.c_double(p1),
        ctypes.c_double(vp_over_n),
        _f64p(scratch.sd),
        _f64p(scratch.sv),
        ctypes.c_int64(BLOCK_EDGES),
    )
    return out


def ring_batched(
    offsets: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
) -> np.ndarray:
    """Distance-ring coupling for an ``(R, N)`` super-state into ``out``."""
    lib = load_library()
    scratch = _scratch_buffers()
    r, n = theta.shape
    lib.pom_fused_ring_batched(
        _i64p(offsets),
        ctypes.c_int64(offsets.size),
        _f64p(theta),
        _f64p(out),
        ctypes.c_int64(r),
        ctypes.c_int64(n),
        _i64p(kinds),
        _f64p(p0),
        _f64p(p1),
        _f64p(vp_over_n),
        _f64p(scratch.sd),
        _f64p(scratch.sv),
        ctypes.c_int64(BLOCK_EDGES),
    )
    return out
