"""Vectorisable potential coefficients for the fused kernels.

The compiled kernels (:mod:`repro.kernels.cc`, :mod:`repro.kernels.numba_kernels`)
evaluate the interaction potential *inline* per edge block, so they cannot
call back into an arbitrary Python :class:`~repro.core.potentials.Potential`.
Instead, every shipped potential family exposes its behaviour as a
``(kind, p0, p1)`` coefficient triple via
:meth:`~repro.core.potentials.Potential.kernel_coefficients` (the compiled
counterpart of the ``Potential.stack`` family vectorisation):

========== =============================== ======================== =====
kind        family                          p0                       p1
========== =============================== ======================== =====
0           tanh (Eq. 3)                    gain                     --
1           bottleneck (Eq. 4)              sigma                    3*pi/(2*sigma)
2           kuramoto (Eq. 1)                --                       --
3           linear                          k                        --
========== =============================== ======================== =====

``CustomPotential`` (and any third-party subclass that does not override
``kernel_coefficients``) returns ``None``: the backends then fall back to
the NumPy paths, which go through the Python callable (per potential
group for heterogeneous batches).

:func:`eval_coefficients` is the NumPy reference semantics of the inline
evaluation; the kernel-equivalence tests pin the compiled kernels against
it, and against the original ``Potential.__call__``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "KIND_TANH",
    "KIND_BOTTLENECK",
    "KIND_KURAMOTO",
    "KIND_LINEAR",
    "KIND_NAMES",
    "family_coefficients",
    "eval_coefficients",
]

KIND_TANH = 0
KIND_BOTTLENECK = 1
KIND_KURAMOTO = 2
KIND_LINEAR = 3

#: kind id -> family name (for reports and error messages)
KIND_NAMES = {
    KIND_TANH: "tanh",
    KIND_BOTTLENECK: "bottleneck",
    KIND_KURAMOTO: "kuramoto",
    KIND_LINEAR: "linear",
}


def family_coefficients(
    potentials: Sequence,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Stack per-member coefficient triples for a batched fused kernel.

    Returns ``(kinds, p0, p1)`` arrays of length R, or ``None`` as soon
    as any member's potential has no coefficient representation (the
    batched backends then keep the NumPy per-group path).  Unlike
    ``Potential.stack``, the members do *not* need to belong to one
    family — the compiled kernels dispatch on ``kinds[r]`` per member.
    """
    kinds = np.empty(len(potentials), dtype=np.int64)
    p0 = np.zeros(len(potentials))
    p1 = np.zeros(len(potentials))
    for r, pot in enumerate(potentials):
        coeffs = pot.kernel_coefficients()
        if coeffs is None:
            return None
        kinds[r], p0[r], p1[r] = coeffs
    return kinds, p0, p1


def eval_coefficients(kind: int, p0: float, p1: float, d: np.ndarray) -> np.ndarray:
    """NumPy reference of the inline potential evaluation.

    Bit-compatible with the corresponding ``Potential.__call__`` (same
    formulas, same operation order); the compiled kernels match it to
    within the ulp-level differences of the libm/SIMD transcendentals.
    """
    d = np.asarray(d, dtype=float)
    if kind == KIND_TANH:
        return np.tanh(p0 * d)
    if kind == KIND_BOTTLENECK:
        out = np.sign(d)
        inside = np.abs(d) < p0
        out[inside] = -np.sin((p1 * d)[inside])
        return out
    if kind == KIND_KURAMOTO:
        return np.sin(d)
    if kind == KIND_LINEAR:
        return p0 * d
    raise ValueError(f"unknown potential kind {kind!r}")
