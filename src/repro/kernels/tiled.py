"""CSR-tiled pure-NumPy coupling kernels — the compiled-kernel fallback.

Same fused gather-potential-scatter structure as the compiled kernels,
expressed as NumPy passes over *row-aligned edge blocks* instead of one
monolithic ``(R, E)`` round-trip: each block's gather, potential values,
and segment sum stay cache-resident before the next block is touched.
Because every block boundary coincides with a row boundary (cut on the
cached ``Topology.csr()`` ``indptr``), each row is accumulated entirely
inside one block, in the same row-major edge order as the un-tiled
``np.bincount`` — the results are bit-identical to the plain NumPy path
for any potential, including :class:`~repro.core.potentials.CustomPotential`
(the potential is still an arbitrary Python callable here, which is what
makes this the universal fallback when numba and a C compiler are both
unavailable).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "TilePlan",
    "TiledSingleCoupling",
    "TiledBatchedCoupling",
    "TiledStackedCoupling",
]

#: default edge-block length for the single-state kernel (doubles)
BLOCK_EDGES = 32768

#: total per-block element budget for the batched kernel — divided by
#: the member count R, so the (R, block) scratch stays L2-resident
BATCH_BLOCK_BUDGET = 16384


class TilePlan:
    """Row-aligned edge blocks over a topology's CSR view.

    Each block is a tuple ``(e0, e1, r0, r1, local_rows)``: the edge
    range, the row range it covers, and the block-local row indices
    (``rows[e0:e1] - r0``) for the per-block segment sum.  Rows with
    more edges than ``block_edges`` get a (single) oversized block —
    correctness never depends on the block size.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        rows: np.ndarray,
        n: int,
        block_edges: int = BLOCK_EDGES,
    ) -> None:
        if block_edges < 1:
            raise ValueError("block_edges must be positive")
        self.n = int(n)
        self.n_edges = int(rows.size)
        self.block_edges = int(block_edges)
        blocks = []
        r0 = 0
        while r0 < n and indptr[r0] < self.n_edges:
            target = indptr[r0] + block_edges
            r1 = int(np.searchsorted(indptr, target, side="left"))
            r1 = max(r0 + 1, min(r1, n))
            e0, e1 = int(indptr[r0]), int(indptr[r1])
            local = (rows[e0:e1] - r0).astype(np.intp)
            blocks.append((e0, e1, r0, r1, local))
            r0 = r1
        self.blocks = blocks

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


class TiledSingleCoupling:
    """Blocked coupling evaluator for one ``(N,)`` state."""

    def __init__(
        self,
        topology,
        potential: Callable,
        vp_over_n: float,
        block_edges: int = BLOCK_EDGES,
    ) -> None:
        indptr, _ = topology.csr()
        self._rows, self._cols = topology.edge_list()
        self.plan = TilePlan(indptr, self._rows, topology.n, block_edges)
        self._potential = potential
        self._vp_over_n = float(vp_over_n)

    def __call__(self, theta: np.ndarray) -> np.ndarray:
        acc = np.zeros(self.plan.n)
        cols = self._cols
        pot = self._potential
        for e0, e1, r0, r1, local in self.plan.blocks:
            d = theta[cols[e0:e1]] - theta[self._rows[e0:e1]]
            v = np.asarray(pot(d), dtype=float)
            acc[r0:r1] += np.bincount(local, weights=v, minlength=r1 - r0)
        acc *= self._vp_over_n
        return acc


class TiledBatchedCoupling:
    """Blocked coupling evaluator for a stacked ``(R, N)`` super-state.

    ``edge_potential`` maps an ``(R, m)`` block of phase differences to
    ``(R, m)`` potential values with row ``r`` evaluated under member
    ``r``'s potential — the heterogeneous backend passes its grouped /
    family-stacked evaluator, so parameter grids and ``CustomPotential``
    members work unchanged.
    """

    def __init__(
        self,
        topology,
        edge_potential: Callable,
        vps_column: np.ndarray,
        r_count: int,
        block_edges: int | None = None,
    ) -> None:
        indptr, _ = topology.csr()
        self._rows, self._cols = topology.edge_list()
        if block_edges is None:
            block_edges = max(512, BATCH_BLOCK_BUDGET // max(int(r_count), 1))
        self.plan = TilePlan(indptr, self._rows, topology.n, block_edges)
        self._edge_potential = edge_potential
        self._vps = vps_column  # (R, 1)
        self._r = int(r_count)
        # Per-block flattened segment indices (member r, local row i at
        # r*(r1-r0) + i) and preallocated gather scratch.
        self._flat = []
        width = 0
        for e0, e1, r0, r1, local in self.plan.blocks:
            offs = np.arange(self._r, dtype=np.intp)[:, None] * (r1 - r0)
            self._flat.append((offs + local[None, :]).ravel())
            width = max(width, e1 - e0)
        self._gather = np.empty((self._r, width))
        self._scratch = np.empty((self._r, width))

    def __call__(self, theta: np.ndarray) -> np.ndarray:
        acc = np.zeros((self._r, self.plan.n))
        rows, cols = self._rows, self._cols
        for (e0, e1, r0, r1, _), flat in zip(self.plan.blocks, self._flat):
            m = e1 - e0
            d = self._gather[:, :m]
            np.take(theta, cols[e0:e1], axis=1, out=d)
            np.take(theta, rows[e0:e1], axis=1, out=self._scratch[:, :m])
            np.subtract(d, self._scratch[:, :m], out=d)
            v = np.asarray(self._edge_potential(d), dtype=float)
            seg = np.bincount(flat, weights=v.ravel(), minlength=self._r * (r1 - r0))
            acc[:, r0:r1] += seg.reshape(self._r, r1 - r0)
        acc *= self._vps
        return acc


class TiledStackedCoupling:
    """Blocked coupling for a stack of members with *different* edge lists.

    Topology-axis batches have no shared ``(rows, cols)``, so the
    whole batch is treated as one block-diagonal graph on ``R * N``
    nodes: member ``r``'s edge ``(i, j)`` becomes the global edge
    ``(r*N + i, r*N + j)``.  Concatenating the per-member row-major
    edge lists in member order keeps the global list row-major, so the
    standard :class:`TilePlan` applies unchanged and every global row
    still accumulates inside one block in row-major edge order — the
    result is bit-identical to solving each member (or each
    same-topology group) separately.

    ``potentials`` is one callable per member; blocks spanning several
    members evaluate each member's contiguous edge segment with its own
    potential (elementwise, hence bit-equal to any grouped evaluation).
    """

    def __init__(
        self,
        n: int,
        rows_list: list[np.ndarray],
        cols_list: list[np.ndarray],
        potentials: list[Callable],
        vps_column: np.ndarray,
        block_edges: int = BLOCK_EDGES,
    ) -> None:
        n = int(n)
        r_count = len(rows_list)
        sizes = np.array([r.size for r in rows_list], dtype=np.intp)
        self._edge_offs = np.concatenate(([0], np.cumsum(sizes)))
        node_offs = np.arange(r_count, dtype=np.intp) * n
        self._grows = np.concatenate(
            [o + np.asarray(r, dtype=np.intp)
             for o, r in zip(node_offs, rows_list)])
        self._gcols = np.concatenate(
            [o + np.asarray(c, dtype=np.intp)
             for o, c in zip(node_offs, cols_list)])
        counts = np.bincount(self._grows, minlength=r_count * n)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        self.plan = TilePlan(indptr, self._grows, r_count * n, block_edges)
        self._pots = list(potentials)
        self._vps = vps_column  # (R, 1)
        self._r = r_count
        self._n = n

    def __call__(self, theta: np.ndarray) -> np.ndarray:
        flat = np.ascontiguousarray(theta).reshape(-1)
        acc = np.zeros(self._r * self._n)
        grows, gcols, offs = self._grows, self._gcols, self._edge_offs
        for e0, e1, r0, r1, local in self.plan.blocks:
            d = flat[gcols[e0:e1]] - flat[grows[e0:e1]]
            v = np.empty(e1 - e0)
            m = int(np.searchsorted(offs, e0, side="right")) - 1
            s = e0
            while s < e1:
                stop = min(e1, int(offs[m + 1]))
                if stop > s:
                    v[s - e0 : stop - e0] = np.asarray(
                        self._pots[m](d[s - e0 : stop - e0]), dtype=float
                    )
                s = stop
                m += 1
            acc[r0:r1] += np.bincount(local, weights=v, minlength=r1 - r0)
        out = acc.reshape(self._r, self._n)
        out *= self._vps
        return out
