"""Numba-jitted fused gather-potential-scatter kernels.

The JIT twin of :mod:`repro.kernels.cc`: the same single-state and
batched fused CSR walks, compiled by numba instead of the system C
compiler.  Numba is an *optional* dependency (``pip install -e .[fast]``);
when it is missing, :func:`numba_available` returns False and the
``"auto"`` kernel resolution falls through to the compiled-C / tiled /
NumPy paths.  The CI matrix runs the test suite both with and without
numba so neither path can rot.

The loops mirror the NumPy semantics exactly: per-row accumulation in
row-major edge order (the ``np.bincount`` order), potential formulas
identical to :func:`repro.kernels.coeffs.eval_coefficients`.  Branching
on the potential kind happens once per member, outside the edge loop.

Like the C twin, distance-ring topologies (the paper's halo exchanges)
take a specialised path (:func:`ring_single` / :func:`ring_batched`):
for each normalised offset ``d`` the gather becomes two contiguous
shifted segments and the scatter a contiguous accumulate, so numba's
loops run at unit stride with no index arrays at all.  Accumulation is
offset-by-offset (the C kernel's pass order, not the column order of
``np.bincount``), which changes the row sums only at the ulp level.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "numba_available",
    "fused_single",
    "fused_batched",
    "ring_single",
    "ring_batched",
]

try:  # pragma: no cover - exercised only on the with-numba CI leg
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    njit = None
    HAVE_NUMBA = False


def numba_available() -> bool:
    """True when numba is importable (``pip install -e .[fast]``)."""
    return HAVE_NUMBA


if HAVE_NUMBA:  # pragma: no cover - exercised only on the with-numba CI leg

    @njit(cache=False)
    def _coupling_row(rows, cols, theta, out, kind, p0, p1, vp_over_n):
        n = theta.shape[0]
        n_edges = rows.shape[0]
        for i in range(n):
            out[i] = 0.0
        if kind == 0:  # tanh
            for e in range(n_edges):
                d = theta[cols[e]] - theta[rows[e]]
                out[rows[e]] += math.tanh(p0 * d)
        elif kind == 1:  # bottleneck
            for e in range(n_edges):
                d = theta[cols[e]] - theta[rows[e]]
                if abs(d) < p0:
                    out[rows[e]] += -math.sin(p1 * d)
                elif d > 0.0:
                    out[rows[e]] += 1.0
                elif d < 0.0:
                    out[rows[e]] += -1.0
        elif kind == 2:  # kuramoto
            for e in range(n_edges):
                d = theta[cols[e]] - theta[rows[e]]
                out[rows[e]] += math.sin(d)
        else:  # linear
            for e in range(n_edges):
                d = theta[cols[e]] - theta[rows[e]]
                out[rows[e]] += p0 * d
        for i in range(n):
            out[i] *= vp_over_n

    @njit(cache=False)
    def _fused_batched_impl(rows, cols, theta, out, kinds, p0, p1, vp_over_n):
        r_count = theta.shape[0]
        for r in range(r_count):
            _coupling_row(
                rows, cols, theta[r], out[r], kinds[r], p0[r], p1[r], vp_over_n[r]
            )

    @njit(cache=False)
    def _ring_pass(theta, out, start, stop, shift, kind, p0, p1):
        # One contiguous segment of one offset: rows [start, stop) couple
        # to theta[i + shift] (shift already wrapped by the caller), so
        # every access is unit-stride.  Kind branch outside the loop.
        if kind == 0:  # tanh
            for i in range(start, stop):
                out[i] += math.tanh(p0 * (theta[i + shift] - theta[i]))
        elif kind == 1:  # bottleneck
            for i in range(start, stop):
                d = theta[i + shift] - theta[i]
                if abs(d) < p0:
                    out[i] += -math.sin(p1 * d)
                elif d > 0.0:
                    out[i] += 1.0
                elif d < 0.0:
                    out[i] += -1.0
        elif kind == 2:  # kuramoto
            for i in range(start, stop):
                out[i] += math.sin(theta[i + shift] - theta[i])
        else:  # linear
            for i in range(start, stop):
                out[i] += p0 * (theta[i + shift] - theta[i])

    @njit(cache=False)
    def _ring_row(offsets, theta, out, kind, p0, p1, vp_over_n):
        n = theta.shape[0]
        for i in range(n):
            out[i] = 0.0
        for k in range(offsets.shape[0]):
            d = offsets[k]  # normalised to [1, n-1]
            # i in [0, n-d): partner theta[i + d]
            _ring_pass(theta, out, 0, n - d, d, kind, p0, p1)
            # i in [n-d, n): partner wraps to theta[i + d - n]
            _ring_pass(theta, out, n - d, n, d - n, kind, p0, p1)
        for i in range(n):
            out[i] *= vp_over_n

    @njit(cache=False)
    def _ring_batched_impl(offsets, theta, out, kinds, p0, p1, vp_over_n):
        r_count = theta.shape[0]
        for r in range(r_count):
            _ring_row(
                offsets, theta[r], out[r], kinds[r], p0[r], p1[r], vp_over_n[r]
            )


def fused_single(
    rows32: np.ndarray,
    cols32: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
) -> np.ndarray:
    """Coupling term for one ``(N,)`` state into ``out`` (requires numba)."""
    _coupling_row(rows32, cols32, theta, out, kind, p0, p1, vp_over_n)
    return out


def fused_batched(
    rows32: np.ndarray,
    cols32: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
) -> np.ndarray:
    """Coupling terms for an ``(R, N)`` super-state into ``out`` (numba)."""
    _fused_batched_impl(rows32, cols32, theta, out, kinds, p0, p1, vp_over_n)
    return out


def ring_single(
    offsets: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
) -> np.ndarray:
    """Distance-ring coupling for one ``(N,)`` state into ``out`` (numba).

    ``offsets`` is the normalised offset set from
    :func:`repro.kernels.cc.ring_offsets` (int64, values in
    ``[1, n-1]``) — the same contract as the C twin.
    """
    _ring_row(offsets, theta, out, kind, p0, p1, vp_over_n)
    return out


def ring_batched(
    offsets: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
) -> np.ndarray:
    """Distance-ring coupling for an ``(R, N)`` super-state (numba)."""
    _ring_batched_impl(offsets, theta, out, kinds, p0, p1, vp_over_n)
    return out
