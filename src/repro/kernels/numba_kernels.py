"""Numba-jitted fused gather-potential-scatter kernels.

The JIT twin of :mod:`repro.kernels.cc`: the same single-state and
batched fused CSR walks, compiled by numba instead of the system C
compiler.  Numba is an *optional* dependency (``pip install -e .[fast]``);
when it is missing, :func:`numba_available` returns False and the
``"auto"`` kernel resolution falls through to the compiled-C / tiled /
NumPy paths.  The CI matrix runs the test suite both with and without
numba so neither path can rot.

The loops mirror the NumPy semantics exactly: per-row accumulation in
row-major edge order (the ``np.bincount`` order), potential formulas
identical to :func:`repro.kernels.coeffs.eval_coefficients`.  Branching
on the potential kind happens once per member, outside the edge loop.

Like the C twin, distance-ring topologies (the paper's halo exchanges)
take a specialised path (:func:`ring_single` / :func:`ring_batched`):
for each normalised offset ``d`` the gather becomes two contiguous
shifted segments and the scatter a contiguous accumulate, so numba's
loops run at unit stride with no index arrays at all.  2-D tori take
the halo path (:func:`torus_single` / :func:`torus_batched`, fed by
:func:`repro.kernels.cc.torus_halo`): whole-lattice ring passes plus
per-row shifted passes.  Accumulation in both is pass-by-pass (the C
kernel's order, not the column order of ``np.bincount``), which changes
the row sums only at the ulp level.

Thread parallelism mirrors the C twin's contract: every wrapper takes a
``threads`` argument, and ``threads > 1`` dispatches to a
``parallel=True`` twin whose ``prange`` runs over **deterministic
row-aligned chunks computed from the requested thread count** — never
from the live numba pool size — with each chunk calling the same
serial-jitted span/chunk helper.  Disjoint output rows, no atomics, and
per-element math independent of the decomposition make ``threads=K``
bit-identical to ``threads=1`` regardless of how numba actually
schedules the chunks.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "numba_available",
    "fused_single",
    "fused_batched",
    "ring_single",
    "ring_batched",
    "torus_single",
    "torus_batched",
]

try:  # pragma: no cover - exercised only on the with-numba CI leg
    import numba
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    numba = None
    njit = None
    prange = None
    HAVE_NUMBA = False


def numba_available() -> bool:
    """True when numba is importable (``pip install -e .[fast]``)."""
    return HAVE_NUMBA


def _effective_threads(threads: int) -> int:
    """Clamp the thread request to what numba's pool can honour.

    The chunk count fed to ``prange`` equals the value returned here, so
    the decomposition — and therefore the bits — depend only on the
    request, but there is no point splitting beyond the pool.
    """
    if not HAVE_NUMBA or threads is None:
        return 1
    t = int(threads)
    if t <= 1:
        return 1
    t = min(t, int(numba.config.NUMBA_NUM_THREADS))
    if t > 1:
        try:  # pragma: no cover - with-numba leg only
            numba.set_num_threads(t)
        except Exception:
            return 1
    return t


if HAVE_NUMBA:  # pragma: no cover - exercised only on the with-numba CI leg

    @njit(cache=False)
    def _lower_bound(rows, value):
        # First edge whose (sorted) row is >= value: row-aligned edge
        # spans are what make the parallel scatter race-free.
        lo = 0
        hi = rows.shape[0]
        while lo < hi:
            mid = (lo + hi) // 2
            if rows[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @njit(cache=False)
    def _fused_span(rows, cols, theta, out, r0, r1, kind, p0, p1, vp_over_n):
        # Fused coupling restricted to output rows [r0, r1); the
        # full-range call (0, n) is the serial kernel, and any
        # row-aligned decomposition reproduces its bits (numba's scalar
        # math.* calls are pure per-element functions).
        e0 = _lower_bound(rows, r0)
        e1 = _lower_bound(rows, r1)
        for i in range(r0, r1):
            out[i] = 0.0
        if kind == 0:  # tanh
            for e in range(e0, e1):
                d = theta[cols[e]] - theta[rows[e]]
                out[rows[e]] += math.tanh(p0 * d)
        elif kind == 1:  # bottleneck
            for e in range(e0, e1):
                d = theta[cols[e]] - theta[rows[e]]
                if abs(d) < p0:
                    out[rows[e]] += -math.sin(p1 * d)
                elif d > 0.0:
                    out[rows[e]] += 1.0
                elif d < 0.0:
                    out[rows[e]] += -1.0
        elif kind == 2:  # kuramoto
            for e in range(e0, e1):
                d = theta[cols[e]] - theta[rows[e]]
                out[rows[e]] += math.sin(d)
        else:  # linear
            for e in range(e0, e1):
                d = theta[cols[e]] - theta[rows[e]]
                out[rows[e]] += p0 * d
        for i in range(r0, r1):
            out[i] *= vp_over_n

    @njit(cache=False)
    def _fused_batched_impl(rows, cols, theta, out, kinds, p0, p1, vp_over_n):
        r_count = theta.shape[0]
        n = theta.shape[1]
        for r in range(r_count):
            _fused_span(
                rows,
                cols,
                theta[r],
                out[r],
                0,
                n,
                kinds[r],
                p0[r],
                p1[r],
                vp_over_n[r],
            )

    @njit(cache=False, parallel=True)
    def _fused_single_par(rows, cols, theta, out, kind, p0, p1, vp_over_n, chunks):
        n = theta.shape[0]
        for c in prange(chunks):
            _fused_span(
                rows,
                cols,
                theta,
                out,
                n * c // chunks,
                n * (c + 1) // chunks,
                kind,
                p0,
                p1,
                vp_over_n,
            )

    @njit(cache=False, parallel=True)
    def _fused_batched_par(rows, cols, theta, out, kinds, p0, p1, vp_over_n, chunks):
        # Flattened (member, row-chunk) work items so small-R stacks
        # still fill the pool; splits is derived from the request only.
        r_count = theta.shape[0]
        n = theta.shape[1]
        splits = (chunks + r_count - 1) // r_count
        for w in prange(r_count * splits):
            r = w // splits
            c = w % splits
            _fused_span(
                rows,
                cols,
                theta[r],
                out[r],
                n * c // splits,
                n * (c + 1) // splits,
                kinds[r],
                p0[r],
                p1[r],
                vp_over_n[r],
            )

    @njit(cache=False)
    def _ring_pass(theta, out, start, stop, shift, kind, p0, p1):
        # One contiguous segment of one offset: rows [start, stop) couple
        # to theta[i + shift] (shift already wrapped by the caller), so
        # every access is unit-stride.  Kind branch outside the loop.
        if kind == 0:  # tanh
            for i in range(start, stop):
                out[i] += math.tanh(p0 * (theta[i + shift] - theta[i]))
        elif kind == 1:  # bottleneck
            for i in range(start, stop):
                d = theta[i + shift] - theta[i]
                if abs(d) < p0:
                    out[i] += -math.sin(p1 * d)
                elif d > 0.0:
                    out[i] += 1.0
                elif d < 0.0:
                    out[i] += -1.0
        elif kind == 2:  # kuramoto
            for i in range(start, stop):
                out[i] += math.sin(theta[i + shift] - theta[i])
        else:  # linear
            for i in range(start, stop):
                out[i] += p0 * (theta[i + shift] - theta[i])

    @njit(cache=False)
    def _ring_chunk(offsets, theta, out, n, i0, i1, kind, p0, p1, vp_over_n):
        # Ring coupling restricted to elements [i0, i1): per offset, the
        # main segment (partner i + d) and the wrapped segment (partner
        # i + d - n) are clipped against the chunk.
        for i in range(i0, i1):
            out[i] = 0.0
        for k in range(offsets.shape[0]):
            d = offsets[k]  # normalised to [1, n-1]
            a1 = min(n - d, i1)
            b0 = max(n - d, i0)
            if a1 > i0:
                _ring_pass(theta, out, i0, a1, d, kind, p0, p1)
            if i1 > b0:
                _ring_pass(theta, out, b0, i1, d - n, kind, p0, p1)
        for i in range(i0, i1):
            out[i] *= vp_over_n

    @njit(cache=False)
    def _ring_batched_impl(offsets, theta, out, kinds, p0, p1, vp_over_n):
        r_count = theta.shape[0]
        n = theta.shape[1]
        for r in range(r_count):
            _ring_chunk(
                offsets,
                theta[r],
                out[r],
                n,
                0,
                n,
                kinds[r],
                p0[r],
                p1[r],
                vp_over_n[r],
            )

    @njit(cache=False, parallel=True)
    def _ring_single_par(offsets, theta, out, kind, p0, p1, vp_over_n, chunks):
        n = theta.shape[0]
        for c in prange(chunks):
            _ring_chunk(
                offsets,
                theta,
                out,
                n,
                n * c // chunks,
                n * (c + 1) // chunks,
                kind,
                p0,
                p1,
                vp_over_n,
            )

    @njit(cache=False, parallel=True)
    def _ring_batched_par(offsets, theta, out, kinds, p0, p1, vp_over_n, chunks):
        r_count = theta.shape[0]
        n = theta.shape[1]
        splits = (chunks + r_count - 1) // r_count
        for w in prange(r_count * splits):
            r = w // splits
            c = w % splits
            _ring_chunk(
                offsets,
                theta[r],
                out[r],
                n,
                n * c // splits,
                n * (c + 1) // splits,
                kinds[r],
                p0[r],
                p1[r],
                vp_over_n[r],
            )

    @njit(cache=False)
    def _torus_chunk(
        col_offs,
        row_dxs,
        w,
        theta,
        out,
        n,
        y0,
        y1,
        kind,
        p0,
        p1,
        vp_over_n,
    ):
        # Torus coupling restricted to lattice rows [y0, y1) of width w:
        # whole-lattice offsets are ring passes over the flat state,
        # within-row offsets wrap inside each width-w row.
        i0 = y0 * w
        i1 = y1 * w
        for i in range(i0, i1):
            out[i] = 0.0
        for k in range(col_offs.shape[0]):
            d = col_offs[k]  # whole-lattice offset in [1, n-1]
            a1 = min(n - d, i1)
            b0 = max(n - d, i0)
            if a1 > i0:
                _ring_pass(theta, out, i0, a1, d, kind, p0, p1)
            if i1 > b0:
                _ring_pass(theta, out, b0, i1, d - n, kind, p0, p1)
        for k in range(row_dxs.shape[0]):
            dx = row_dxs[k]  # within-row offset in [1, w-1]
            for y in range(y0, y1):
                base = y * w
                _ring_pass(theta, out, base, base + w - dx, dx, kind, p0, p1)
                _ring_pass(theta, out, base + w - dx, base + w, dx - w, kind, p0, p1)
        for i in range(i0, i1):
            out[i] *= vp_over_n

    @njit(cache=False)
    def _torus_batched_impl(col_offs, row_dxs, w, theta, out, kinds, p0, p1, vp_over_n):
        r_count = theta.shape[0]
        n = theta.shape[1]
        h = n // w
        for r in range(r_count):
            _torus_chunk(
                col_offs,
                row_dxs,
                w,
                theta[r],
                out[r],
                n,
                0,
                h,
                kinds[r],
                p0[r],
                p1[r],
                vp_over_n[r],
            )

    @njit(cache=False, parallel=True)
    def _torus_single_par(
        col_offs, row_dxs, w, theta, out, kind, p0, p1, vp_over_n, chunks
    ):
        n = theta.shape[0]
        h = n // w
        for c in prange(chunks):
            _torus_chunk(
                col_offs,
                row_dxs,
                w,
                theta,
                out,
                n,
                h * c // chunks,
                h * (c + 1) // chunks,
                kind,
                p0,
                p1,
                vp_over_n,
            )

    @njit(cache=False, parallel=True)
    def _torus_batched_par(
        col_offs, row_dxs, w, theta, out, kinds, p0, p1, vp_over_n, chunks
    ):
        r_count = theta.shape[0]
        n = theta.shape[1]
        h = n // w
        splits = (chunks + r_count - 1) // r_count
        for wi in prange(r_count * splits):
            r = wi // splits
            c = wi % splits
            _torus_chunk(
                col_offs,
                row_dxs,
                w,
                theta[r],
                out[r],
                n,
                h * c // splits,
                h * (c + 1) // splits,
                kinds[r],
                p0[r],
                p1[r],
                vp_over_n[r],
            )


def fused_single(
    rows32: np.ndarray,
    cols32: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
    threads: int = 1,
) -> np.ndarray:
    """Coupling term for one ``(N,)`` state into ``out`` (requires numba)."""
    t = _effective_threads(threads)
    if t > 1:
        _fused_single_par(rows32, cols32, theta, out, kind, p0, p1, vp_over_n, t)
    else:
        _fused_span(
            rows32, cols32, theta, out, 0, theta.shape[0], kind, p0, p1, vp_over_n
        )
    return out


def fused_batched(
    rows32: np.ndarray,
    cols32: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
    threads: int = 1,
) -> np.ndarray:
    """Coupling terms for an ``(R, N)`` super-state into ``out`` (numba)."""
    t = _effective_threads(threads)
    if t > 1:
        _fused_batched_par(rows32, cols32, theta, out, kinds, p0, p1, vp_over_n, t)
    else:
        _fused_batched_impl(rows32, cols32, theta, out, kinds, p0, p1, vp_over_n)
    return out


def ring_single(
    offsets: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
    threads: int = 1,
) -> np.ndarray:
    """Distance-ring coupling for one ``(N,)`` state into ``out`` (numba).

    ``offsets`` is the normalised offset set from
    :func:`repro.kernels.cc.ring_offsets` (int64, values in
    ``[1, n-1]``) — the same contract as the C twin.
    """
    t = _effective_threads(threads)
    if t > 1:
        _ring_single_par(offsets, theta, out, kind, p0, p1, vp_over_n, t)
    else:
        _ring_chunk(
            offsets,
            theta,
            out,
            theta.shape[0],
            0,
            theta.shape[0],
            kind,
            p0,
            p1,
            vp_over_n,
        )
    return out


def ring_batched(
    offsets: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
    threads: int = 1,
) -> np.ndarray:
    """Distance-ring coupling for an ``(R, N)`` super-state (numba)."""
    t = _effective_threads(threads)
    if t > 1:
        _ring_batched_par(offsets, theta, out, kinds, p0, p1, vp_over_n, t)
    else:
        _ring_batched_impl(offsets, theta, out, kinds, p0, p1, vp_over_n)
    return out


def torus_single(
    halo: tuple[int, np.ndarray, np.ndarray],
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
    threads: int = 1,
) -> np.ndarray:
    """2-D torus halo coupling for one ``(N,)`` state into ``out`` (numba).

    ``halo`` is the ``(w, col_offsets, row_dxs)`` decomposition from
    :func:`repro.kernels.cc.torus_halo` — the same contract as the C
    twin.
    """
    w, col_offsets, row_dxs = halo
    n = theta.shape[0]
    t = _effective_threads(threads)
    if t > 1:
        _torus_single_par(
            col_offsets, row_dxs, w, theta, out, kind, p0, p1, vp_over_n, t
        )
    else:
        _torus_chunk(
            col_offsets, row_dxs, w, theta, out, n, 0, n // w, kind, p0, p1, vp_over_n
        )
    return out


def torus_batched(
    halo: tuple[int, np.ndarray, np.ndarray],
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
    threads: int = 1,
) -> np.ndarray:
    """2-D torus halo coupling for an ``(R, N)`` super-state (numba)."""
    w, col_offsets, row_dxs = halo
    t = _effective_threads(threads)
    if t > 1:
        _torus_batched_par(
            col_offsets, row_dxs, w, theta, out, kinds, p0, p1, vp_over_n, t
        )
    else:
        _torus_batched_impl(
            col_offsets, row_dxs, w, theta, out, kinds, p0, p1, vp_over_n
        )
    return out
