"""Numba-jitted fused gather-potential-scatter kernels.

The JIT twin of :mod:`repro.kernels.cc`: the same single-state and
batched fused CSR walks, compiled by numba instead of the system C
compiler.  Numba is an *optional* dependency (``pip install -e .[fast]``);
when it is missing, :func:`numba_available` returns False and the
``"auto"`` kernel resolution falls through to the compiled-C / tiled /
NumPy paths.  The CI matrix runs the test suite both with and without
numba so neither path can rot.

The loops mirror the NumPy semantics exactly: per-row accumulation in
row-major edge order (the ``np.bincount`` order), potential formulas
identical to :func:`repro.kernels.coeffs.eval_coefficients`.  Branching
on the potential kind happens once per member, outside the edge loop.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["numba_available", "fused_single", "fused_batched"]

try:  # pragma: no cover - exercised only on the with-numba CI leg
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    njit = None
    HAVE_NUMBA = False


def numba_available() -> bool:
    """True when numba is importable (``pip install -e .[fast]``)."""
    return HAVE_NUMBA


if HAVE_NUMBA:  # pragma: no cover - exercised only on the with-numba CI leg

    @njit(cache=False)
    def _coupling_row(rows, cols, theta, out, kind, p0, p1, vp_over_n):
        n = theta.shape[0]
        n_edges = rows.shape[0]
        for i in range(n):
            out[i] = 0.0
        if kind == 0:  # tanh
            for e in range(n_edges):
                d = theta[cols[e]] - theta[rows[e]]
                out[rows[e]] += math.tanh(p0 * d)
        elif kind == 1:  # bottleneck
            for e in range(n_edges):
                d = theta[cols[e]] - theta[rows[e]]
                if abs(d) < p0:
                    out[rows[e]] += -math.sin(p1 * d)
                elif d > 0.0:
                    out[rows[e]] += 1.0
                elif d < 0.0:
                    out[rows[e]] += -1.0
        elif kind == 2:  # kuramoto
            for e in range(n_edges):
                d = theta[cols[e]] - theta[rows[e]]
                out[rows[e]] += math.sin(d)
        else:  # linear
            for e in range(n_edges):
                d = theta[cols[e]] - theta[rows[e]]
                out[rows[e]] += p0 * d
        for i in range(n):
            out[i] *= vp_over_n

    @njit(cache=False)
    def _fused_batched_impl(rows, cols, theta, out, kinds, p0, p1, vp_over_n):
        r_count = theta.shape[0]
        for r in range(r_count):
            _coupling_row(
                rows, cols, theta[r], out[r], kinds[r], p0[r], p1[r], vp_over_n[r]
            )


def fused_single(
    rows32: np.ndarray,
    cols32: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kind: int,
    p0: float,
    p1: float,
    vp_over_n: float,
) -> np.ndarray:
    """Coupling term for one ``(N,)`` state into ``out`` (requires numba)."""
    _coupling_row(rows32, cols32, theta, out, kind, p0, p1, vp_over_n)
    return out


def fused_batched(
    rows32: np.ndarray,
    cols32: np.ndarray,
    theta: np.ndarray,
    out: np.ndarray,
    kinds: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    vp_over_n: np.ndarray,
) -> np.ndarray:
    """Coupling terms for an ``(R, N)`` super-state into ``out`` (numba)."""
    _fused_batched_impl(rows32, cols32, theta, out, kinds, p0, p1, vp_over_n)
    return out
