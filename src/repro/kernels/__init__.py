"""Compiled and tiled coupling kernels for large-N topologies.

The RHS backends (:mod:`repro.backends`) delegate the hot coupling loop
— gather partner phases over the edge list, evaluate the interaction
potential, scatter-accumulate per row — to one of four interchangeable
*kernels*, selected by the ``kernel=`` knob threaded through
``make_backend`` / ``make_batched_backend``, ``simulate*``, and the CLI:

``"numpy"``
    The PR-1/PR-2 vectorised edge-list path (one ``(R, E)`` round-trip
    per evaluation).  Always available; the reference implementation.
``"tiled"``
    CSR-tiled NumPy (:mod:`repro.kernels.tiled`): the same arithmetic
    blocked over row-aligned edge ranges so the scratch stays
    cache-resident.  Works for *any* potential, including
    ``CustomPotential``.
``"numba"``
    Numba-jitted fused kernel (:mod:`repro.kernels.numba_kernels`).
    Requires the optional ``fast`` extra (``pip install -e .[fast]``)
    and a potential family with kernel coefficients.
``"cc"``
    Fused kernel compiled on first use with the system C compiler and
    loaded via ctypes (:mod:`repro.kernels.cc`).  Same requirements as
    ``"numba"`` minus the Python package: any working ``cc`` will do.

``"auto"`` resolves, in order: ``numba`` (when importable), ``cc`` (when
a compiler is available) — both only if every potential in the batch
exposes :meth:`~repro.core.potentials.Potential.kernel_coefficients` —
then ``tiled`` for problems with at least ``TILED_AUTO_MIN_EDGES``
edges, else ``numpy``.  Delayed (DDE) evaluations always use the NumPy
edge-patching path regardless of the knob; the kernels cover the
non-delayed fast path that dominates every paper workload.

Orthogonal to the kernel choice, :func:`resolve_threads` resolves the
in-kernel thread count (the ``threads=`` knob on the backends /
``simulate*`` / CLI, defaulting to the ``POM_NUM_THREADS`` environment
variable): the compiled kernels split their work over disjoint output
rows, bit-identical to the serial pass for any count.
"""

from __future__ import annotations

import os
import warnings

from .cc import cc_available, openmp_available
from .coeffs import (
    KIND_BOTTLENECK,
    KIND_KURAMOTO,
    KIND_LINEAR,
    KIND_NAMES,
    KIND_TANH,
    eval_coefficients,
    family_coefficients,
)
from .numba_kernels import numba_available
from .tiled import (
    TiledBatchedCoupling,
    TiledSingleCoupling,
    TiledStackedCoupling,
    TilePlan,
)

__all__ = [
    "KERNELS",
    "TILED_AUTO_MIN_EDGES",
    "THREADS_ENV_VAR",
    "available_kernels",
    "normalize_kernel_name",
    "resolve_kernel",
    "resolve_threads",
    "compiled_kernel_name",
    "cc_available",
    "openmp_available",
    "numba_available",
    "family_coefficients",
    "eval_coefficients",
    "KIND_TANH",
    "KIND_BOTTLENECK",
    "KIND_KURAMOTO",
    "KIND_LINEAR",
    "KIND_NAMES",
    "TilePlan",
    "TiledSingleCoupling",
    "TiledBatchedCoupling",
    "TiledStackedCoupling",
]

#: names accepted by the ``kernel=`` knobs
KERNELS = ("auto", "numpy", "tiled", "numba", "cc")

#: edge count from which "auto" prefers the tiled over the plain NumPy
#: path when no compiled kernel is available (below it the single
#: un-tiled round-trip is already cache-resident)
TILED_AUTO_MIN_EDGES = 8192

#: environment default for the in-kernel thread count; an explicit
#: ``threads=`` knob always wins.  The sharded executor pins this to 1
#: inside worker processes so jobs x threads never oversubscribes.
THREADS_ENV_VAR = "POM_NUM_THREADS"


def resolve_threads(threads: int | None = None) -> int:
    """Effective in-kernel thread count.

    Resolution order: the explicit ``threads=`` knob, then the
    ``POM_NUM_THREADS`` environment variable, then 1 (serial).  Read at
    *call* time, never cached at import, so the executor's worker
    initializer can pin it after fork.  The count only steers wall
    clock: the compiled kernels are bit-identical for any value, and
    silently run serial when the binary lacks OpenMP (``cc``) or numba
    is capped (``NUMBA_NUM_THREADS``).
    """
    if threads is not None:
        t = int(threads)
        if t < 1:
            raise ValueError("threads must be positive")
        return t
    env = os.environ.get(THREADS_ENV_VAR)
    if env:
        try:
            t = int(env)
        except ValueError:
            raise ValueError(
                f"invalid {THREADS_ENV_VAR}={env!r}: expected a positive "
                "integer"
            ) from None
        if t < 1:
            raise ValueError(
                f"invalid {THREADS_ENV_VAR}={env!r}: expected a positive "
                "integer"
            )
        return t
    return 1


def available_kernels() -> tuple[str, ...]:
    """Names accepted by the ``kernel=`` knobs (availability not implied)."""
    return KERNELS


def normalize_kernel_name(name: str | None) -> str:
    """Validate a ``kernel=`` knob value; returns the canonical key.

    The single source of the "unknown kernel" error, shared by the
    declarative model field, the realisation-time override, the backend
    constructors, and the CLI.
    """
    key = (name or "auto").strip().lower()
    if key not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; available: {', '.join(KERNELS)}")
    return key


def compiled_kernel_name() -> str | None:
    """The preferred available compiled kernel, or ``None``."""
    if numba_available():
        return "numba"
    if cc_available():
        return "cc"
    return None


_warned_coefficient_fallback = False


def _warn_coefficient_fallback(fallback: str) -> None:
    """One-time note that a compiled kernel was skipped for a potential
    without kernel coefficients (``CustomPotential``)."""
    global _warned_coefficient_fallback
    if _warned_coefficient_fallback:
        return
    _warned_coefficient_fallback = True
    warnings.warn(
        "a potential without kernel coefficients (e.g. CustomPotential) "
        f'forced kernel "auto" onto the Python-potential "{fallback}" path '
        f'although a compiled kernel ("{compiled_kernel_name()}") is '
        "available; expect a serial slowdown — use a shipped potential "
        "family (tanh/bottleneck/kuramoto/linear) for the fused kernels",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_kernel(name: str | None, *, has_coefficients: bool, n_edges: int) -> str:
    """Resolve a ``kernel=`` request to a concrete, runnable kernel.

    Parameters
    ----------
    name:
        The knob value (``None`` means ``"auto"``).
    has_coefficients:
        Whether every potential involved exposes kernel coefficients
        (compiled kernels evaluate the potential inline and cannot call
        back into Python).
    n_edges:
        Edge count of the topology — drives the tiled-vs-numpy choice.

    ``"auto"`` falls back; explicit requests fail loudly when the kernel
    cannot run, so a benchmark or test never quietly measures the wrong
    code path.  The coefficient-less fallback (``CustomPotential``)
    warns once per process: a campaign silently running the Python-loop
    potential instead of a compiled kernel is a large, otherwise
    invisible slowdown.
    """
    key = normalize_kernel_name(name)
    if key == "auto":
        if has_coefficients:
            compiled = compiled_kernel_name()
            if compiled is not None:
                return compiled
        fallback = "tiled" if n_edges >= TILED_AUTO_MIN_EDGES else "numpy"
        if not has_coefficients and compiled_kernel_name() is not None:
            _warn_coefficient_fallback(fallback)
        return fallback
    if key == "numba":
        if not numba_available():
            raise RuntimeError(
                'kernel "numba" requested but numba is not installed; '
                "install the fast extra (pip install -e .[fast]) or use "
                'kernel="cc"/"tiled"/"auto"'
            )
        if not has_coefficients:
            raise ValueError(
                'kernel "numba" requires potentials with kernel '
                "coefficients (the shipped tanh/bottleneck/kuramoto/"
                "linear families); custom potentials need "
                'kernel="tiled" or "numpy"'
            )
    if key == "cc":
        if not cc_available():
            raise RuntimeError(
                'kernel "cc" requested but no working C compiler was '
                'found; use kernel="numba"/"tiled"/"auto"'
            )
        if not has_coefficients:
            raise ValueError(
                'kernel "cc" requires potentials with kernel '
                "coefficients (the shipped tanh/bottleneck/kuramoto/"
                "linear families); custom potentials need "
                'kernel="tiled" or "numpy"'
            )
    return key
