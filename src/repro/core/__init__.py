"""Core of the reproduction: the physical oscillator model (Eq. 2).

Public surface:

* potentials — :class:`TanhPotential` (scalable), :class:`BottleneckPotential`
  (bottlenecked, interaction horizon sigma), :class:`KuramotoPotential`
  (baseline), :class:`LinearPotential`, :class:`CustomPotential`;
* topologies — :func:`ring`, :func:`chain`, :func:`all_to_all`,
  :func:`grid2d`, :func:`torus2d`, :func:`random_topology`,
  :func:`from_edges`, :func:`from_networkx`;
* coupling — :class:`CouplingSpec` with :class:`Protocol`
  (eager/rendezvous) and :class:`WaitMode` (separate/waitall);
* noise — local jitter channels, one-off delays, interaction delays;
* the models — :class:`PhysicalOscillatorModel`, :class:`KuramotoModel`;
* the driver — :func:`simulate` returning :class:`OscillatorTrajectory`.
"""

from .coupling import CouplingSpec, Protocol, WaitMode
from .ensemble import EnsembleResult, GridResult, grid_sweep, run_ensemble
from .initial import (
    initial_from_name,
    perturbed,
    random_phases,
    splayed,
    synchronized,
    wavefront,
)
from .model import KuramotoModel, PhysicalOscillatorModel, RealizedModel
from .noise import (
    CompositeNoise,
    ConstantInteractionNoise,
    DelaySchedule,
    GaussianJitter,
    InteractionNoise,
    LocalNoise,
    LognormalJitter,
    NoInteractionNoise,
    NoNoise,
    OneOffDelay,
    RandomInteractionNoise,
    StaticLoadImbalance,
    TauField,
    UniformJitter,
    ZetaProcess,
)
from .potentials import (
    BottleneckPotential,
    CustomPotential,
    KuramotoPotential,
    LinearPotential,
    Potential,
    TanhPotential,
    potential_from_name,
)
from .simulation import (
    default_dt,
    simulate,
    simulate_batched,
    simulate_grid,
    simulate_kuramoto,
)
from .topology import (
    Topology,
    TopologyKind,
    all_to_all,
    chain,
    dragonfly,
    fat_tree,
    from_edges,
    from_networkx,
    grid2d,
    hypercube,
    make_topology,
    random_topology,
    register_topology,
    ring,
    ring_edges,
    topology_kinds,
    topology_n_from_spec,
    torus2d,
    torus2d_edges,
)
from .trajectory import OscillatorTrajectory

__all__ = [
    # coupling
    "CouplingSpec", "Protocol", "WaitMode",
    # ensembles
    "EnsembleResult", "GridResult", "grid_sweep", "run_ensemble",
    # initial conditions
    "initial_from_name", "perturbed", "random_phases", "splayed",
    "synchronized", "wavefront",
    # models
    "KuramotoModel", "PhysicalOscillatorModel", "RealizedModel",
    # noise
    "CompositeNoise", "ConstantInteractionNoise", "DelaySchedule",
    "GaussianJitter", "InteractionNoise", "LocalNoise", "LognormalJitter",
    "NoInteractionNoise", "NoNoise", "OneOffDelay", "RandomInteractionNoise",
    "StaticLoadImbalance", "TauField", "UniformJitter", "ZetaProcess",
    # potentials
    "BottleneckPotential", "CustomPotential", "KuramotoPotential",
    "LinearPotential", "Potential", "TanhPotential", "potential_from_name",
    # simulation
    "default_dt", "simulate", "simulate_batched", "simulate_grid",
    "simulate_kuramoto",
    # topology
    "Topology", "TopologyKind", "all_to_all", "chain", "dragonfly",
    "fat_tree", "from_edges", "from_networkx", "grid2d", "hypercube",
    "make_topology", "random_topology", "register_topology", "ring",
    "ring_edges", "topology_kinds", "topology_n_from_spec", "torus2d",
    "torus2d_edges",
    # trajectory
    "OscillatorTrajectory",
]
