"""Simulation driver: integrate a model into an `OscillatorTrajectory`.

Solver selection
----------------
* ``"dopri"`` (default) — the adaptive Dormand-Prince 5(4) pair, the
  method the paper's MATLAB artifact uses (``ode45``).  When noise or
  one-off delays make the RHS piecewise-smooth, the maximum step is
  capped at half the shortest feature length so the controller resolves
  the kinks instead of stepping over them.
* ``"rk4"`` / ``"euler"`` — fixed-step references.
* Interaction delays (``tau_ij > 0``) switch to a fixed-step RK4 with a
  cubic-Hermite :class:`~repro.integrate.history.HistoryBuffer`
  (method-of-steps; sub-step lookups past the last accepted point are
  linearly extrapolated from the recorded derivative, keeping the
  scheme second-order accurate for delays smaller than the step).
* ``"em"`` — Euler-Maruyama treating a Gaussian local-noise channel as
  true white noise instead of a frozen piecewise-constant sample.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backends import (
    BatchedBackend,
    HeteroBatchedBackend,
    frequency_from_period,
    make_batched_backend,
)
from ..integrate import (
    HistoryBuffer,
    solve_dopri45,
    solve_euler,
    solve_euler_maruyama,
    solve_rk4,
)
from .initial import synchronized
from .model import KuramotoModel, PhysicalOscillatorModel, RealizedModel
from .noise import GaussianJitter, NoNoise
from .trajectory import OscillatorTrajectory

__all__ = ["simulate", "simulate_batched", "simulate_grid",
           "simulate_kuramoto", "default_dt"]


def default_dt(model: PhysicalOscillatorModel, safety: float = 50.0) -> float:
    """A fixed step that resolves both the cycle and the coupling.

    The two time scales are the oscillation period ``T`` and the
    coupling relaxation time ``~1/v_p``; the step is the smaller of the
    two divided by ``safety``.
    """
    t_cycle = model.period
    v = abs(model.v_p)
    t_coupling = 1.0 / v if v > 0 else np.inf
    return min(t_cycle, t_coupling) / safety


def _noise_feature_dt(model: PhysicalOscillatorModel) -> float:
    """Shortest piecewise-constant feature the solver must resolve."""
    feature = np.inf
    noise = model.local_noise
    refresh = getattr(noise, "refresh", None)
    if refresh is not None and not isinstance(noise, NoNoise):
        feature = min(feature, float(refresh))
    for d in model.delays:
        feature = min(feature, max(d.effective_window, 1e-9))
    return feature


def simulate(
    model: PhysicalOscillatorModel,
    t_end: float,
    *,
    theta0: Sequence[float] | np.ndarray | None = None,
    method: str = "dopri",
    dt: float | None = None,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    seed: int | None = None,
    n_samples: int | None = None,
    backend: str | None = None,
    kernel: str | None = None,
    threads: int | None = None,
) -> OscillatorTrajectory:
    """Integrate the POM from 0 to ``t_end``.

    Parameters
    ----------
    model:
        Declarative model description.
    t_end:
        Integration horizon in seconds.
    theta0:
        Initial phases; default all-zero (synchronised).
    method:
        ``"dopri"`` | ``"rk4"`` | ``"euler"`` | ``"em"``.
    dt:
        Fixed step for the non-adaptive methods (default:
        :func:`default_dt`).
    rtol, atol:
        Tolerances for ``"dopri"``.
    seed:
        Seed for the noise realisation — fixed seed = reproducible run.
    n_samples:
        If set, the returned trajectory is resampled onto a uniform mesh
        of this many points (adaptive meshes are irregular).
    backend:
        RHS compute backend override (``"auto"`` | ``"dense"`` |
        ``"sparse"``); default: the model's own ``backend`` knob.
    kernel:
        Coupling-loop kernel override (``"auto"`` | ``"numpy"`` |
        ``"tiled"`` | ``"numba"`` | ``"cc"``, see :mod:`repro.kernels`);
        default: the model's own ``kernel`` knob.
    threads:
        In-kernel thread count for the compiled kernels (bit-identical
        for any value); default: ``POM_NUM_THREADS``, else 1.

    Returns
    -------
    OscillatorTrajectory
    """
    if t_end <= 0:
        raise ValueError("t_end must be positive")
    theta0 = (synchronized(model.n) if theta0 is None
              else np.asarray(theta0, dtype=float).copy())
    if theta0.shape != (model.n,):
        raise ValueError(f"theta0 has shape {theta0.shape}, expected ({model.n},)")

    realized = model.realize(t_end, rng=seed, backend=backend, kernel=kernel,
                             threads=threads)
    if dt is None:
        dt = default_dt(model)

    if realized.has_delays:
        sol = _solve_dde(realized, t_end, theta0, dt)
    elif method == "dopri":
        max_step = _noise_feature_dt(model) / 2.0
        sol = solve_dopri45(realized.make_ode_rhs(), (0.0, t_end), theta0,
                            rtol=rtol, atol=atol,
                            max_step=max_step if np.isfinite(max_step) else np.inf)
    elif method == "rk4":
        sol = solve_rk4(realized.make_ode_rhs(), (0.0, t_end), theta0, dt=dt)
    elif method == "euler":
        sol = solve_euler(realized.make_ode_rhs(), (0.0, t_end), theta0, dt=dt)
    elif method == "em":
        sol = _solve_em(model, realized, t_end, theta0, dt, seed)
    else:
        raise ValueError(f"unknown method {method!r}")

    if not sol.success:
        raise RuntimeError(f"integration failed: {sol.message}")

    traj = OscillatorTrajectory(ts=sol.ts, thetas=sol.ys, model=model,
                                solution=sol, seed=seed)
    if n_samples is not None:
        traj = traj.resample(n_samples)
    return traj


def _subset_rhs_factory(stacked: HeteroBatchedBackend):
    """Member-subset RHS factory for the per-member adaptive control.

    Builds (and caches) a small backend over just the requested member
    rows so the solver can re-step a few stiff members without paying
    for the whole batch.  Member rows are independent, which is what
    makes the row-subset evaluation exact.
    """
    cache: dict[tuple[int, ...], object] = {}

    def factory(idx: tuple[int, ...]):
        fn = cache.get(idx)
        if fn is None:
            fn = stacked.subset(idx).make_ode_rhs()
            if len(cache) < 64:     # bound memory for pathological grids
                cache[idx] = fn
        return fn

    return factory


def _solve_em_stacked(stacked: HeteroBatchedBackend, amps: np.ndarray,
                      t_end: float, theta0s: np.ndarray, dt: float,
                      seeds: Sequence[int], observer=None,
                      record: str | int = "full"):
    """Batched Euler-Maruyama: (R, N) Wiener increments inside the solver.

    ``amps`` is the per-member diffusion amplitude column ``(R, 1)``;
    each member's increments come from its own seeded generator, in the
    same order the sequential per-seed solve draws them, so the batched
    ensemble reproduces the one-seed-at-a-time runs bit for bit.
    """
    drift = stacked.make_em_drift()

    def diffusion(t: float, theta: np.ndarray) -> np.ndarray:
        return np.broadcast_to(amps, theta.shape)

    rngs = [np.random.default_rng(int(s)) for s in seeds]
    return solve_euler_maruyama(drift, diffusion, (0.0, t_end), theta0s,
                                dt=dt, rng=rngs, observer=observer,
                                record=record)


def _em_amplitude(model: PhysicalOscillatorModel) -> float:
    """Diffusion amplitude of the EM noise mapping (see :func:`_solve_em`)."""
    noise = model.local_noise
    if not isinstance(noise, GaussianJitter):
        raise ValueError('method "em" requires a GaussianJitter local noise')
    return model.omega ** 2 / (2.0 * np.pi) * noise.std


def _solve_stacked(stacked, models: Sequence[PhysicalOscillatorModel],
                   t_end: float, theta0s: np.ndarray, method: str,
                   dt: float, rtol: float, atol: float,
                   seeds: Sequence[int], per_member_adaptive: bool,
                   observer=None, record: str | int = "full"):
    """Shared solver dispatch for the batched ensemble and grid paths.

    ``observer``/``record`` are the streaming-metrics hooks of
    :mod:`repro.metrics.streaming`: the observer sees the stacked
    ``(R, N)`` state at ``t0`` and after every accepted step (on every
    method, including the DDE path whose ``step_callback`` is occupied
    by the history buffer), while ``record`` controls which states the
    returned mesh retains.
    """
    if method == "em" and stacked.has_delays:
        # Interaction delays switch to the deterministic DDE integrator,
        # which has no diffusion term — silently dropping the white
        # noise would simulate the wrong stochastic model.
        raise ValueError(
            'method "em" is not supported for models with interaction '
            "delays (the DDE path has no diffusion term)"
        )
    if stacked.has_delays:
        history = HistoryBuffer(0.0, theta0s)
        rhs = stacked.make_dde_rhs(history)
        history._fs[0] = rhs(0.0, theta0s)

        def cb(t: float, y: np.ndarray) -> None:
            history.append(t, y, rhs(t, y))

        return solve_rk4(rhs, (0.0, t_end), theta0s, dt=dt, step_callback=cb,
                         observer=observer, record=record)
    if method == "dopri":
        max_step = min(_noise_feature_dt(m) for m in models) / 2.0
        return solve_dopri45(
            stacked.make_ode_rhs(), (0.0, t_end), theta0s,
            rtol=rtol, atol=atol,
            max_step=max_step if np.isfinite(max_step) else np.inf,
            subset_rhs=(_subset_rhs_factory(stacked)
                        if per_member_adaptive else None),
            observer=observer, record=record)
    if method == "rk4":
        return solve_rk4(stacked.make_ode_rhs(), (0.0, t_end), theta0s, dt=dt,
                         observer=observer, record=record)
    if method == "euler":
        return solve_euler(stacked.make_ode_rhs(), (0.0, t_end), theta0s,
                           dt=dt, observer=observer, record=record)
    if method == "em":
        amps = np.array([_em_amplitude(m) for m in models])[:, None]
        return _solve_em_stacked(stacked, amps, t_end, theta0s, dt, seeds,
                                 observer=observer, record=record)
    raise ValueError(f"unknown method {method!r}")


class _MemberDense:
    """One member's slice of a stacked ``(R, N)`` dense output."""

    def __init__(self, dense, member: int) -> None:
        self._dense = dense
        self._member = member

    def __call__(self, t: np.ndarray) -> np.ndarray:
        return self._dense(t)[:, self._member, :]


def _fan_out(sol, models: Sequence[PhysicalOscillatorModel],
             seeds: Sequence[int],
             n_samples: int | None) -> list[OscillatorTrajectory]:
    """Slice a stacked solution back into per-member trajectories.

    Each member gets its own :class:`~repro.integrate.Solution` view —
    the shared mesh, its row of the states, a member-sliced dense output
    (when the solver built one), and the shared solver stats (including
    ``member_rejections`` from the per-member step control).
    """
    from ..integrate import Solution

    # Resample the whole stack in one pass — evaluating the stacked
    # dense output once and slicing rows, instead of one full-batch
    # evaluation per member.
    sampled = sol.resample(n_samples) if n_samples is not None else sol

    trajs = []
    for r, (model, seed) in enumerate(zip(models, seeds)):
        member_sol = Solution(
            ts=sol.ts, ys=sol.ys[:, r, :], stats=sol.stats,
            dense=(_MemberDense(sol.dense, r) if sol.dense is not None
                   else None),
            success=sol.success, message=sol.message)
        trajs.append(OscillatorTrajectory(
            ts=sampled.ts, thetas=sampled.ys[:, r, :],
            model=model, solution=member_sol, seed=int(seed)))
    return trajs


def simulate_batched(
    model: PhysicalOscillatorModel,
    t_end: float,
    *,
    seeds: Sequence[int],
    theta0_factory=None,
    method: str = "dopri",
    dt: float | None = None,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    n_samples: int | None = None,
    backend: str | None = None,
    kernel: str | None = None,
    threads: int | None = None,
    per_member_adaptive: bool = True,
) -> list[OscillatorTrajectory]:
    """Integrate a whole seed ensemble as one ``(R, N)`` super-state.

    Realises the model once per seed, stacks the members, evaluates all
    RHSs through the vectorised :class:`~repro.backends.BatchedBackend`,
    and runs a *single* solver pass.  This amortises the per-step Python
    overhead over all members and replaces R small coupling kernels with
    one large one.  The members share one (adaptive) time mesh; every
    member individually satisfies the tolerances (per-member error norm,
    see :func:`repro.integrate.controller.error_norm`), and with
    ``per_member_adaptive`` a member that rejects a step the rest
    accepted is re-stepped on its own instead of shrinking the shared
    step.

    Parameters mirror :func:`simulate`, except:

    seeds:
        One noise-realisation seed per ensemble member.
    theta0_factory:
        Optional per-seed initial condition, ``f(seed) -> (n,)``.
    method:
        ``"dopri"`` | ``"rk4"`` | ``"euler"`` | ``"em"``.  The batched
        Euler-Maruyama draws the ``(R, N)`` Wiener increments inside the
        solver from per-seed generators, reproducing the sequential
        per-seed runs bit for bit (at equal ``dt``).
    kernel:
        Coupling-loop kernel for the batched backend (``"auto"`` |
        ``"numpy"`` | ``"tiled"`` | ``"numba"`` | ``"cc"``).
    threads:
        In-kernel thread count for the compiled kernels (bit-identical
        for any value); default: ``POM_NUM_THREADS``, else 1.
    per_member_adaptive:
        Enable the per-member step-rejection control for ``"dopri"``
        (default on; turn off to force the PR-1 worst-member-drags-all
        behaviour, e.g. for benchmarking).

    Returns
    -------
    list[OscillatorTrajectory]
        One trajectory per seed, in seed order, all on the shared mesh.
    """
    if t_end <= 0:
        raise ValueError("t_end must be positive")
    if len(seeds) == 0:
        raise ValueError("need at least one seed")

    members = [model.realize(t_end, rng=seed, backend=backend, kernel=kernel)
               for seed in seeds]
    stacked = BatchedBackend(members, kernel=kernel
                             if kernel is not None else model.kernel,
                             threads=threads)
    theta0s = np.stack([
        (synchronized(model.n) if theta0_factory is None
         else np.asarray(theta0_factory(seed), dtype=float))
        for seed in seeds
    ])
    if theta0s.shape != (len(seeds), model.n):
        raise ValueError(
            f"stacked theta0 has shape {theta0s.shape}, "
            f"expected ({len(seeds)}, {model.n})"
        )
    if dt is None:
        dt = default_dt(model)

    models = [model] * len(seeds)
    sol = _solve_stacked(stacked, models, t_end, theta0s, method, dt,
                         rtol, atol, seeds, per_member_adaptive)
    if not sol.success:
        raise RuntimeError(f"batched integration failed: {sol.message}")
    return _fan_out(sol, models, seeds, n_samples)


def simulate_grid(
    models: Sequence[PhysicalOscillatorModel],
    t_end: float,
    *,
    seeds: int | Sequence[int] = 0,
    theta0: Sequence[float] | np.ndarray | None = None,
    theta0s: Sequence | np.ndarray | None = None,
    method: str = "dopri",
    dt: float | None = None,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    n_samples: int | None = None,
    kernel: str | None = None,
    threads: int | None = None,
    per_member_adaptive: bool = True,
    observer=None,
    record: str | int = "full",
) -> list[OscillatorTrajectory]:
    """Integrate a parameter grid of models as one ``(R, N)`` super-state.

    The heterogeneous counterpart of :func:`simulate_batched`: the
    models may differ in coupling strength, period, potential, noise,
    one-off delay schedule — and even **topology** (a machine-design
    sweep over same-N candidate networks runs through the backend's
    padded stacked edge-list path, bit-identical to grouping by
    topology) — only the oscillator count N must be shared.  All grid
    points are compiled into a single
    :class:`~repro.backends.HeteroBatchedBackend` and integrated in one
    solver pass; per-point trajectories are fanned back out, each
    carrying its own model metadata.

    Parameters
    ----------
    models:
        One declarative model per grid point.
    t_end:
        Shared integration horizon.
    seeds:
        A single seed applied to every grid point (the usual sweep
        convention: identical noise stream per point), or one seed per
        model.
    theta0:
        Shared initial phases for all points (default: synchronised).
    theta0s:
        Per-point initial phases ``(R, N)``; overrides ``theta0``.
    method, dt, rtol, atol, n_samples, kernel, threads, per_member_adaptive:
        As in :func:`simulate_batched` (``"em"`` batches too — each
        point draws its Wiener increments from its own seeded stream).
    observer:
        Streaming-metrics hook (e.g. a
        :class:`repro.metrics.streaming.StreamingObserver`), called with
        the stacked ``(R, N)`` state at ``t0`` and after every accepted
        step.  Never changes the integration itself.
    record:
        Trajectory retention: ``"full"`` (default) | ``"none"`` |
        stride ``K``.  Thinned retention is incompatible with
        ``n_samples`` (resampling needs the full mesh).

    Returns
    -------
    list[OscillatorTrajectory]
        One trajectory per model, in input order, all on the shared mesh.
    """
    if t_end <= 0:
        raise ValueError("t_end must be positive")
    if n_samples is not None and record != "full":
        raise ValueError('n_samples requires record="full"')
    models = list(models)
    if len(models) == 0:
        raise ValueError("need at least one model")
    n = models[0].n
    for m in models[1:]:
        if m.n != n:
            raise ValueError("grid models disagree on N")

    if np.ndim(seeds) == 0:
        seed_list = [int(seeds)] * len(models)
    else:
        seed_list = [int(s) for s in seeds]
        if len(seed_list) != len(models):
            raise ValueError(
                f"got {len(seed_list)} seeds for {len(models)} models")

    if kernel is None:
        # Honour the models' declarative kernel field when they agree
        # (mirrors simulate/simulate_batched); disagreeing grids fall
        # back to auto resolution for the stacked backend.
        model_kernels = {m.kernel for m in models}
        kernel = model_kernels.pop() if len(model_kernels) == 1 else "auto"
    members = [m.realize(t_end, rng=s, kernel=kernel)
               for m, s in zip(models, seed_list)]
    stacked = make_batched_backend(members, kernel=kernel, threads=threads)

    if theta0s is not None:
        theta0s = np.asarray(theta0s, dtype=float).copy()
    else:
        base = (synchronized(n) if theta0 is None
                else np.asarray(theta0, dtype=float))
        theta0s = np.tile(base, (len(models), 1))
    if theta0s.shape != (len(models), n):
        raise ValueError(
            f"stacked theta0 has shape {theta0s.shape}, "
            f"expected ({len(models)}, {n})"
        )
    if dt is None:
        dt = min(default_dt(m) for m in models)

    sol = _solve_stacked(stacked, models, t_end, theta0s, method, dt,
                         rtol, atol, seed_list, per_member_adaptive,
                         observer=observer, record=record)
    if not sol.success:
        raise RuntimeError(f"grid integration failed: {sol.message}")
    return _fan_out(sol, models, seed_list, n_samples)


def _solve_dde(realized: RealizedModel, t_end: float, theta0: np.ndarray,
               dt: float):
    """Fixed-step RK4 with a history buffer for the delayed coupling."""
    history = HistoryBuffer(0.0, theta0)
    rhs = realized.make_dde_rhs(history)
    # Seed the initial derivative so sub-step extrapolation works from
    # the very first step.
    history._fs[0] = rhs(0.0, theta0)

    def cb(t: float, y: np.ndarray) -> None:
        history.append(t, y, rhs(t, y))

    return solve_rk4(rhs, (0.0, t_end), theta0, dt=dt, step_callback=cb)


def _solve_em(model: PhysicalOscillatorModel, realized: RealizedModel,
              t_end: float, theta0: np.ndarray, dt: float, seed: int | None):
    """Euler-Maruyama: Gaussian zeta treated as white frequency noise.

    The drift uses the *noise-free* intrinsic frequency plus the one-off
    delay schedule; the Gaussian channel's std maps to the diffusion
    amplitude ``omega^2/(2*pi) * std`` (first-order expansion of
    ``2*pi/(T + zeta)`` around ``zeta = 0``).
    """
    noise = model.local_noise
    if not isinstance(noise, GaussianJitter):
        raise ValueError('method "em" requires a GaussianJitter local noise')
    amp = model.omega ** 2 / (2.0 * np.pi) * noise.std

    period = model.period
    n = model.n
    sched = realized.delay_schedule

    def drift(t: float, theta: np.ndarray) -> np.ndarray:
        freq = frequency_from_period(period + sched(t, n))
        return freq + realized.coupling_term(t, theta)

    def diffusion(t: float, theta: np.ndarray) -> np.ndarray:
        return np.full(n, amp)

    rng = np.random.default_rng(seed)
    return solve_euler_maruyama(drift, diffusion, (0.0, t_end), theta0,
                                dt=dt, rng=rng)


def simulate_kuramoto(
    model: KuramotoModel,
    t_end: float,
    *,
    theta0: Sequence[float] | np.ndarray | None = None,
    method: str = "dopri",
    dt: float | None = None,
    rtol: float = 1e-6,
    atol: float = 1e-9,
):
    """Integrate the plain Kuramoto baseline; returns the raw Solution.

    (The Kuramoto model has no notion of topology/potential metadata, so
    no :class:`OscillatorTrajectory` wrapper — metrics operate on the
    arrays directly.)
    """
    if t_end <= 0:
        raise ValueError("t_end must be positive")
    theta0 = (np.zeros(model.n) if theta0 is None
              else np.asarray(theta0, dtype=float).copy())
    if theta0.shape != (model.n,):
        raise ValueError(f"theta0 has shape {theta0.shape}, expected ({model.n},)")
    if method == "dopri":
        return solve_dopri45(model.rhs, (0.0, t_end), theta0, rtol=rtol, atol=atol)
    if method == "rk4":
        if dt is None:
            dt = 0.02 / max(abs(model.coupling_k), float(np.max(np.abs(model.omega_vec))), 1.0)
        return solve_rk4(model.rhs, (0.0, t_end), theta0, dt=dt)
    raise ValueError(f"unknown method {method!r}")
