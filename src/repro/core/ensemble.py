"""Ensemble and parameter-grid utilities.

Noise realisations make single trajectories anecdotal; the paper's
qualitative claims ("the system resynchronises", "the gaps settle at
2*sigma/3") are statements about typical behaviour.  This module runs
seed ensembles and parameter grids and aggregates arbitrary metrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from .model import PhysicalOscillatorModel
from .simulation import simulate, simulate_batched
from .trajectory import OscillatorTrajectory

__all__ = ["EnsembleResult", "run_ensemble", "GridResult", "grid_sweep"]


@dataclass
class EnsembleResult:
    """Aggregated metrics over a seed ensemble.

    Attributes
    ----------
    seeds:
        The seeds used.
    values:
        ``{metric_name: array over seeds}``.
    """

    seeds: tuple[int, ...]
    values: dict[str, np.ndarray] = field(default_factory=dict)

    def mean(self, name: str) -> float:
        """Ensemble mean of one metric (NaN-aware)."""
        return float(np.nanmean(self.values[name]))

    def std(self, name: str) -> float:
        """Ensemble standard deviation (NaN-aware)."""
        return float(np.nanstd(self.values[name]))

    def quantile(self, name: str, q: float) -> float:
        """Ensemble quantile (NaN-aware)."""
        return float(np.nanquantile(self.values[name], q))

    def summary(self) -> dict:
        """``{metric: {"mean": ..., "std": ...}}`` for reports."""
        return {
            name: {"mean": self.mean(name), "std": self.std(name)}
            for name in self.values
        }


def run_ensemble(
    model: PhysicalOscillatorModel,
    t_end: float,
    metrics: Mapping[str, Callable[[OscillatorTrajectory], float]],
    *,
    seeds: Sequence[int] = tuple(range(8)),
    theta0_factory: Callable[[int], np.ndarray] | None = None,
    batched: bool = False,
    **simulate_kwargs,
) -> EnsembleResult:
    """Simulate the model once per seed and evaluate the metrics.

    Parameters
    ----------
    model:
        The declarative model (noise channels re-realised per seed).
    t_end:
        Horizon per run.
    metrics:
        Named callables ``f(trajectory) -> float``.
    seeds:
        Ensemble seeds (also fed to ``theta0_factory``).
    theta0_factory:
        Optional per-seed initial condition, ``f(seed) -> (n,)``.
    batched:
        If True, stack all seeds into one ``(R, N)`` super-state and
        integrate the whole ensemble in a single solver pass
        (:func:`repro.core.simulation.simulate_batched`) — typically
        several times faster than the sequential loop.  The members
        then share one (adaptive) time mesh.
    simulate_kwargs:
        Forwarded to :func:`repro.core.simulate` (or its batched
        counterpart).
    """
    if not metrics:
        raise ValueError("need at least one metric")
    out: dict[str, list[float]] = {name: [] for name in metrics}
    if batched:
        trajs = simulate_batched(model, t_end, seeds=seeds,
                                 theta0_factory=theta0_factory,
                                 **simulate_kwargs)
        for traj in trajs:
            for name, fn in metrics.items():
                out[name].append(float(fn(traj)))
    else:
        for seed in seeds:
            theta0 = theta0_factory(seed) if theta0_factory is not None else None
            traj = simulate(model, t_end, theta0=theta0, seed=seed,
                            **simulate_kwargs)
            for name, fn in metrics.items():
                out[name].append(float(fn(traj)))
    return EnsembleResult(
        seeds=tuple(int(s) for s in seeds),
        values={name: np.asarray(vals) for name, vals in out.items()},
    )


@dataclass
class GridResult:
    """Outcome of a parameter-grid sweep.

    Attributes
    ----------
    param_names:
        Order of the swept parameters.
    points:
        List of parameter dicts, one per grid point.
    results:
        The runner's return value per point.
    """

    param_names: tuple[str, ...]
    points: list[dict]
    results: list

    def column(self, extractor: Callable) -> np.ndarray:
        """Apply an extractor to every result; returns an array."""
        return np.asarray([extractor(r) for r in self.results])

    def as_table(self, extractors: Mapping[str, Callable]) -> dict:
        """Columns dict (parameters + extracted metrics) for CSV export."""
        table: dict[str, list] = {name: [] for name in self.param_names}
        for point in self.points:
            for name in self.param_names:
                table[name].append(point[name])
        for name, fn in extractors.items():
            table[name] = [fn(r) for r in self.results]
        return table


def grid_sweep(param_grid: Mapping[str, Sequence],
               runner: Callable[..., object]) -> GridResult:
    """Run ``runner(**point)`` for every point of the Cartesian grid.

    ``param_grid`` maps parameter names to value lists; the runner is
    called with keyword arguments.
    """
    if not param_grid:
        raise ValueError("parameter grid must not be empty")
    names = tuple(param_grid.keys())
    points: list[dict] = []
    results: list = []
    for combo in itertools.product(*(param_grid[n] for n in names)):
        point = dict(zip(names, combo))
        points.append(point)
        results.append(runner(**point))
    return GridResult(param_names=names, points=points, results=results)
